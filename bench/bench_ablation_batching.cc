// Ablation of the invalidator's group processing (Section 4.2.1): the
// same update batch analyzed per-tuple versus folded into Δ-tables with
// one OR-combined polling query per (instance, relation). Reports the
// polling-query count and wall time per cycle for both modes.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "common/clock.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"

namespace {

using namespace cacheportal;

struct World {
  explicit World(bool batch) : db(&clock) {
    db.CreateTable(db::TableSchema("Car",
                                   {{"maker", db::ColumnType::kString},
                                    {"model", db::ColumnType::kString},
                                    {"price", db::ColumnType::kInt}}))
        .ok();
    db.CreateTable(db::TableSchema("Mileage",
                                   {{"model", db::ColumnType::kString},
                                    {"EPA", db::ColumnType::kInt}}))
        .ok();
    for (int i = 0; i < 100; ++i) {
      db.ExecuteSql(
            StrCat("INSERT INTO Mileage VALUES ('m", i, "', ", i % 50, ")"))
          .value();
    }
    invalidator::InvalidatorOptions options;
    options.batch_deltas = batch;
    invalidator =
        std::make_unique<invalidator::Invalidator>(&db, &map, &clock,
                                                   options);
    invalidator->RunCycle().value();
    // 20 join instances; inserts will need polling.
    for (int i = 0; i < 20; ++i) {
      map.Add(StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model = "
                     "Mileage.model AND Car.price < ",
                     1000 + i),
              StrCat("shop/p", i, "?##"), "/r", 0);
    }
  }

  void AddUpdates(int n) {
    for (int i = 0; i < n; ++i) {
      // Models outside Mileage: polls come back empty, instances persist.
      db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('mk', 'zz", i, "', ",
                           100 + i, ")"))
          .value();
    }
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  std::unique_ptr<invalidator::Invalidator> invalidator;
};

void RunMode(benchmark::State& state, bool batch) {
  World world(batch);
  const int updates = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    world.AddUpdates(updates);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.counters["polls/cycle"] =
      static_cast<double>(world.invalidator->stats().polls_issued) /
      static_cast<double>(
          std::max<uint64_t>(1, world.invalidator->stats().cycles - 1));
  state.SetItemsProcessed(state.iterations() * updates);
}

void BM_PerTuplePolling(benchmark::State& state) { RunMode(state, false); }
BENCHMARK(BM_PerTuplePolling)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

void BM_BatchedPolling(benchmark::State& state) { RunMode(state, true); }
BENCHMARK(BM_BatchedPolling)->Arg(1)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
