// Reproduces the introduction's argument against time-based refreshing
// (the Oracle9i-era alternative): pages cached with a TTL are refreshed
// whether or not they changed (wasted recomputation) and can still be
// served stale inside the TTL window. CachePortal's invalidation
// regenerates exactly the changed pages and never serves a stale one
// after a cycle.
//
// Setup: one table of 10 groups; pages list one group each. Updates
// arrive continuously. We compare:
//   - TTL caching with max-age in {1, 5, 20} sync intervals;
//   - CachePortal invalidation (no TTL).
// Metrics per mode: stale hits (served bytes != fresh bytes), origin
// regenerations (backend work), total hits.

#include <cstdio>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "workload/paper_site.h"

namespace {

using namespace cacheportal;
using workload::PageClass;
using workload::PaperSite;
using workload::PaperSiteOptions;

struct ModeResult {
  uint64_t requests = 0;
  uint64_t hits = 0;
  uint64_t stale_hits = 0;
  uint64_t regenerations = 0;
};

/// Runs the workload. `ttl_intervals` <= 0 means CachePortal invalidation;
/// otherwise pages carry max-age = ttl_intervals seconds and no
/// invalidation cycles run (only the mapper, which is free).
ModeResult RunMode(int ttl_intervals, uint64_t seed) {
  PaperSiteOptions options;
  options.small_rows = 80;
  options.large_rows = 240;
  options.seed = seed;
  PaperSite site(options);
  Random rng(seed * 131 + 7);
  ModeResult result;

  // For TTL mode, wrap requests so responses carry max-age before they
  // reach the cache. The servlet wrapper preserves max_age on rewrite, so
  // the cleanest faithful injection point is the servlet config default:
  // here we simulate TTL by explicitly re-storing with max-age... The
  // public API path: the origin would set Cache-Control itself. PaperSite
  // servlets do not, so for TTL mode we emulate expiry by ejecting all
  // pages every `ttl_intervals` cycles (equivalent behavior: a full
  // refresh wave each TTL period).
  int interval = 0;
  for (int round = 0; round < 60; ++round) {
    for (int r = 0; r < 20; ++r) {
      PageClass cls = static_cast<PageClass>(rng.Uniform(3));
      int grp = static_cast<int>(rng.Uniform(site.join_values()));
      http::HttpResponse resp = site.Request(cls, grp);
      ++result.requests;
      bool hit = resp.headers.Get("X-Cache") == "HIT";
      if (hit) {
        ++result.hits;
        std::string fresh = site.FreshBody(cls, grp).value_or("");
        if (resp.body != fresh) ++result.stale_hits;
      } else {
        ++result.regenerations;
      }
    }
    site.RandomUpdates(2);
    if (ttl_intervals <= 0) {
      site.RunCycle().value();  // CachePortal invalidation.
    } else {
      // Time-based refresh: pages expire wholesale every TTL period;
      // the database's update log is consumed by nobody.
      ++interval;
      if (interval % ttl_intervals == 0) {
        site.portal()->page_cache()->Clear();
      }
      site.clock()->Advance(kMicrosPerSecond);
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Time-based refresh vs CachePortal invalidation "
              "(1200 requests, 2 updates/interval)\n");
  std::printf("| %-22s | %8s | %6s | %11s | %13s |\n", "mode", "requests",
              "hits", "stale hits", "regenerations");
  std::printf("|------------------------|----------|--------|-------------|"
              "---------------|\n");
  struct Mode {
    const char* name;
    int ttl;
  } modes[] = {
      {"TTL, refresh every 1", 1},
      {"TTL, refresh every 5", 5},
      {"TTL, refresh every 20", 20},
      {"CachePortal invalidation", 0},
  };
  for (const Mode& mode : modes) {
    ModeResult r = RunMode(mode.ttl, 42);
    std::printf("| %-22s | %8llu | %6llu | %11llu | %13llu |\n", mode.name,
                static_cast<unsigned long long>(r.requests),
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.stale_hits),
                static_cast<unsigned long long>(r.regenerations));
  }
  std::printf(
      "\nReading: short TTLs waste regenerations; long TTLs serve stale\n"
      "pages; CachePortal minimizes both simultaneously (the paper's\n"
      "introduction, on Oracle9i-style time-based refreshing).\n");
  return 0;
}
