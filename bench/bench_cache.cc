// Microbenchmarks of the cache layer: PageCache lookup/store/invalidate
// and DataCache synchronization — the per-request costs that must stay
// negligible next to page generation for Configuration III to win.

#include <benchmark/benchmark.h>

#include "cache/data_cache.h"
#include "cache/page_cache.h"
#include "common/clock.h"
#include "common/strings.h"

namespace {

using namespace cacheportal;

http::PageId Page(int i) {
  http::PageId id("shop", "/p");
  id.get_params()["i"] = std::to_string(i);
  return id;
}

http::HttpResponse CacheablePage() {
  http::HttpResponse resp = http::HttpResponse::Ok(
      std::string(2048, 'x'));  // A ~2 KiB page.
  http::CacheControl cc;
  cc.is_private = true;
  cc.owner = http::kCachePortalOwner;
  resp.SetCacheControl(cc);
  return resp;
}

void BM_PageCacheHit(benchmark::State& state) {
  ManualClock clock;
  cache::PageCache cache(static_cast<size_t>(state.range(0)) + 1, &clock);
  http::HttpResponse resp = CacheablePage();
  for (int i = 0; i < state.range(0); ++i) cache.Store(Page(i), resp);
  int i = 0;
  for (auto _ : state) {
    auto hit = cache.Lookup(Page(i++ % static_cast<int>(state.range(0))));
    benchmark::DoNotOptimize(hit);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCacheHit)->Arg(100)->Arg(10000);

void BM_PageCacheStore(benchmark::State& state) {
  ManualClock clock;
  cache::PageCache cache(1 << 20, &clock);
  http::HttpResponse resp = CacheablePage();
  int i = 0;
  for (auto _ : state) {
    cache.Store(Page(i++), resp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCacheStore);

void BM_PageCacheEject(benchmark::State& state) {
  ManualClock clock;
  cache::PageCache cache(1 << 20, &clock);
  http::HttpResponse resp = CacheablePage();
  int i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    cache.Store(Page(i), resp);
    http::HttpRequest eject;
    eject.host = "shop";
    eject.path = "/p";
    eject.get_params["i"] = std::to_string(i);
    eject.headers.Set("Cache-Control", "eject");
    ++i;
    state.ResumeTiming();
    auto response = cache.HandleInvalidationRequest(eject);
    benchmark::DoNotOptimize(response);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageCacheEject);

void BM_DataCacheSynchronize(benchmark::State& state) {
  cache::DataCache cache(1 << 20);
  db::QueryResult result;
  result.columns = {"x"};
  const int entries = static_cast<int>(state.range(0));
  db::DeltaSet deltas;
  db::UpdateRecord rec;
  rec.table = "t0";
  rec.op = db::UpdateOp::kInsert;
  rec.row = {sql::Value::Int(1)};
  deltas.Add(rec);
  for (auto _ : state) {
    state.PauseTiming();
    cache.Clear();
    for (int i = 0; i < entries; ++i) {
      // 10 distinct tables; a sync on t0 invalidates ~10%.
      cache.Store(StrCat("q", i), result, {StrCat("t", i % 10)});
    }
    state.ResumeTiming();
    size_t dropped = cache.Synchronize(deltas);
    benchmark::DoNotOptimize(dropped);
  }
  state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_DataCacheSynchronize)->Arg(100)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
