// The three site configurations of Section 5 rebuilt on the REAL library
// (the simulator measures time under contention; this measures the other
// axis the paper argues about: DBMS burden and freshness).
//
//   Conf I   — replicated databases, no caching: every request queries a
//              replica; every update is applied to every replica.
//   Conf II  — one DBMS + a middle-tier DataCacheConnection per app
//              server, synchronized once per interval: fewer DBMS
//              queries, but pages served between an update and the next
//              synchronization are STALE.
//   Conf III — one DBMS + CachePortal's web cache + invalidator: fewest
//              DBMS queries, and no stale page after a cycle.
//
// Identical workloads (same seed) for all three.

#include <cstdio>

#include "common/clock.h"
#include "common/random.h"
#include "common/strings.h"
#include "cache/data_cache_connection.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"

namespace {

using namespace cacheportal;

constexpr int kGroups = 10;
constexpr int kRounds = 50;
constexpr int kRequestsPerRound = 20;
constexpr int kUpdatesPerRound = 3;
constexpr int kReplicas = 2;

struct ConfigResult {
  const char* name;
  uint64_t db_queries = 0;   // SELECTs that reached a DBMS.
  uint64_t db_dml = 0;       // DML statements executed across replicas.
  uint64_t stale_serves = 0; // Responses not matching fresh regeneration.
  uint64_t cache_hits = 0;
};

std::string PageSql(int grp) {
  return StrCat("SELECT id, val FROM Data WHERE grp = ", grp,
                " ORDER BY id");
}

void SeedData(db::Database* db, Random* rng, int* next_id) {
  db->ExecuteSql("CREATE TABLE Data (id INT, grp INT, val INT)").value();
  for (int i = 0; i < 200; ++i) {
    db->ExecuteSql(StrCat("INSERT INTO Data VALUES (", (*next_id)++, ", ",
                          rng->Uniform(kGroups), ", ", rng->Uniform(1000),
                          ")"))
        .value();
  }
}

std::string UpdateSql(Random* rng, int* next_id) {
  if (rng->OneIn(0.6)) {
    return StrCat("INSERT INTO Data VALUES (", (*next_id)++, ", ",
                  rng->Uniform(kGroups), ", ", rng->Uniform(1000), ")");
  }
  return StrCat("DELETE FROM Data WHERE id = ",
                rng->Uniform(static_cast<uint64_t>(*next_id)));
}

// ---------------------------------------------------------------------
ConfigResult RunConfI(uint64_t seed) {
  ConfigResult result{"Conf I (replication)"};
  Random rng(seed);
  ManualClock clock;
  std::vector<std::unique_ptr<db::Database>> replicas;
  int next_id = 0;
  for (int r = 0; r < kReplicas; ++r) {
    replicas.push_back(std::make_unique<db::Database>(&clock));
    Random seeder(seed + 100);  // Identical contents on every replica.
    int id = 0;
    SeedData(replicas.back().get(), &seeder, &id);
    next_id = id;
  }
  size_t rr = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int q = 0; q < kRequestsPerRound; ++q) {
      int grp = static_cast<int>(rng.Uniform(kGroups));
      db::Database* db = replicas[rr++ % replicas.size()].get();
      db->ExecuteSql(PageSql(grp)).value();  // Always fresh by definition.
    }
    for (int u = 0; u < kUpdatesPerRound; ++u) {
      std::string dml = UpdateSql(&rng, &next_id);
      for (auto& replica : replicas) replica->ExecuteSql(dml).value();
    }
  }
  for (auto& replica : replicas) {
    result.db_queries += replica->queries_executed();
    result.db_dml += replica->dml_executed();
  }
  return result;
}

// ---------------------------------------------------------------------
ConfigResult RunConfII(uint64_t seed) {
  ConfigResult result{"Conf II (middle-tier)"};
  Random rng(seed);
  ManualClock clock;
  db::Database db(&clock);
  int next_id = 0;
  {
    Random seeder(seed + 100);
    SeedData(&db, &seeder, &next_id);
  }
  server::MemoryDbDriver driver;
  driver.BindDatabase("d", &db);
  std::vector<std::unique_ptr<server::Connection>> inners;
  std::vector<std::unique_ptr<cache::DataCacheConnection>> caches;
  for (int i = 0; i < kReplicas; ++i) {
    inners.push_back(std::move(driver.Connect("jdbc:cacheportal:d").value()));
    caches.push_back(std::make_unique<cache::DataCacheConnection>(
        inners.back().get(), 1000));
  }
  uint64_t baseline_queries = db.queries_executed();
  uint64_t sync_seq = db.update_log().LastSeq();
  size_t rr = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int q = 0; q < kRequestsPerRound; ++q) {
      int grp = static_cast<int>(rng.Uniform(kGroups));
      auto& conn = caches[rr++ % caches.size()];
      auto served = conn->ExecuteQuery(PageSql(grp)).value();
      // Freshness check against the DBMS directly (not counted as load).
      uint64_t probe = db.queries_executed();
      auto fresh = db.ExecuteSql(PageSql(grp)).value();
      baseline_queries += db.queries_executed() - probe;
      if (served.ToString() != fresh.ToString()) ++result.stale_serves;
    }
    for (int u = 0; u < kUpdatesPerRound; ++u) {
      db.ExecuteSql(UpdateSql(&rng, &next_id)).value();
    }
    // The per-interval cache synchronization the paper charges Conf II.
    db::DeltaSet deltas =
        db::DeltaSet::FromRecords(db.update_log().ReadSince(sync_seq));
    sync_seq = db.update_log().LastSeq();
    for (auto& conn : caches) conn->Synchronize(deltas);
  }
  result.db_queries = db.queries_executed() - baseline_queries;
  result.db_dml = db.dml_executed();
  for (auto& conn : caches) result.cache_hits += conn->stats().hits;
  return result;
}

// ---------------------------------------------------------------------
ConfigResult RunConfIII(uint64_t seed) {
  ConfigResult result{"Conf III (CachePortal)"};
  Random rng(seed);
  ManualClock clock;
  db::Database db(&clock);
  int next_id = 0;
  {
    Random seeder(seed + 100);
    SeedData(&db, &seeder, &next_id);
  }
  core::CachePortal portal(&db, &clock);
  auto raw = std::make_unique<server::MemoryDbDriver>();
  raw->BindDatabase("d", &db);
  server::DriverManager drivers;
  drivers.RegisterDriver(portal.WrapDriver(raw.get()));
  auto pool = std::move(server::ConnectionPool::Create(
                            "p", "jdbc:cacheportal-log:jdbc:cacheportal:d",
                            2, &drivers)
                            .value());
  server::ApplicationServer app(pool.get());
  app.RegisterServlet(
         "/page",
         std::make_unique<server::FunctionServlet>(
             [&clock](const http::HttpRequest& req,
                      server::ServletContext* ctx) {
               clock.Advance(100);
               auto rows = ctx->connection->ExecuteQuery(
                   PageSql(static_cast<int>(
                       std::strtol(req.get_params.at("grp").c_str(),
                                   nullptr, 10))));
               return http::HttpResponse::Ok(rows->ToString());
             }),
         server::ServletConfig{})
      .ok();
  portal.AttachTo(&app);
  server::ServletConfig config;
  config.name = "/page";
  config.key_get_params = {"grp"};
  portal.RegisterServlet(config);
  core::CachingProxy* proxy = portal.CreateProxy(&app);

  uint64_t baseline_queries = db.queries_executed();
  for (int round = 0; round < kRounds; ++round) {
    for (int q = 0; q < kRequestsPerRound; ++q) {
      int grp = static_cast<int>(rng.Uniform(kGroups));
      clock.Advance(50);
      http::HttpResponse served = proxy->Handle(*http::HttpRequest::Get(
          StrCat("http://site/page?grp=", grp)));
      if (served.headers.Get("X-Cache") == "HIT") ++result.cache_hits;
      uint64_t probe = db.queries_executed();
      auto fresh = db.ExecuteSql(PageSql(grp)).value();
      baseline_queries += db.queries_executed() - probe;
      if (served.body != fresh.ToString()) ++result.stale_serves;
    }
    for (int u = 0; u < kUpdatesPerRound; ++u) {
      db.ExecuteSql(UpdateSql(&rng, &next_id)).value();
    }
    clock.Advance(kMicrosPerSecond);
    portal.RunCycle().value();
  }
  result.db_queries = db.queries_executed() - baseline_queries;
  result.db_dml = db.dml_executed();
  return result;
}

}  // namespace

int main() {
  std::printf("Real-stack configuration comparison: %d rounds x (%d "
              "requests + %d updates), %d app servers\n",
              kRounds, kRequestsPerRound, kUpdatesPerRound, kReplicas);
  std::printf("(stale = served bytes differ from a fresh regeneration at "
              "serve time)\n\n");
  std::printf("| %-22s | %10s | %7s | %11s | %6s |\n", "configuration",
              "db queries", "db DML", "stale pages", "hits");
  std::printf("|------------------------|------------|---------|"
              "-------------|--------|\n");
  for (const ConfigResult& r :
       {RunConfI(42), RunConfII(42), RunConfIII(42)}) {
    std::printf("| %-22s | %10llu | %7llu | %11llu | %6llu |\n", r.name,
                static_cast<unsigned long long>(r.db_queries),
                static_cast<unsigned long long>(r.db_dml),
                static_cast<unsigned long long>(r.stale_serves),
                static_cast<unsigned long long>(r.cache_hits));
  }
  std::printf(
      "\nReading: with per-interval synchronization (II) / invalidation "
      "(III),\nno architecture serves stale pages at interval boundaries "
      "- the\ndifferentiator is backend burden. Conf I pays every query "
      "plus\nreplicated DML; Conf II still sends every cache miss and "
      "every\nsynchronization to the one DBMS; Conf III sends only "
      "cold misses,\nre-generations of genuinely invalidated pages, and "
      "LIMIT-1 polls.\n");
  return 0;
}
