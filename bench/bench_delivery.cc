// Microbenchmarks of the reliable delivery layer: queue overhead on the
// healthy path (which every invalidation pays), retry grinding under
// injected drop rates, and checkpoint/restore round trips — the costs of
// at-least-once delivery that must stay negligible next to invalidation
// analysis itself.

#include <benchmark/benchmark.h>

#include <string>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/reliable_delivery.h"
#include "http/message.h"
#include "invalidator/fault_sink.h"
#include "invalidator/invalidator.h"

namespace {

using namespace cacheportal;

class NullSink : public invalidator::InvalidationSink {
 public:
  Status SendInvalidation(const http::HttpRequest&,
                          const std::string&) override {
    return Status::OK();
  }
};

http::HttpRequest EjectMessage(int i) {
  http::HttpRequest message =
      *http::HttpRequest::Get("http://shop/p?i=" + std::to_string(i));
  message.headers.Set("Cache-Control", "eject");
  return message;
}

// The healthy fast path: a queue in front of an always-up sink. This is
// the per-message tax of reliability when nothing goes wrong.
void BM_DeliveryHealthyPath(benchmark::State& state) {
  ManualClock clock;
  NullSink sink;
  core::ReliableDeliveryQueue queue(&clock, {});
  queue.AddSink(&sink, "edge");
  http::HttpRequest message = EjectMessage(0);
  for (auto _ : state) {
    queue.SendInvalidation(message, "shop/p?i=0##");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeliveryHealthyPath);

// Retry grinding: deliver a batch through a sink dropping arg0% of
// messages, then drain the backlog on a manual clock. items/s counts
// messages fully delivered, so the slowdown versus 0% IS the retry cost.
void BM_DeliveryUnderDrops(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  constexpr int kBatch = 64;
  ManualClock clock;
  NullSink sink;
  FaultConfig config;
  config.drop_probability = drop;
  FaultInjector faults(7, config);
  invalidator::FaultInjectingSink flaky(&sink, &faults);
  core::DeliveryOptions options;
  options.initial_backoff = kMicrosPerMilli;
  options.max_attempts = 64;
  // Attempt-bounded: the wall-clock deadline would dead-letter messages
  // aging behind a grinding head and quarantine the sink mid-benchmark.
  options.delivery_deadline = 0;
  core::ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&flaky, "edge");
  http::HttpRequest message = EjectMessage(0);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      queue.SendInvalidation(message, "shop/p?i=0##");
    }
    size_t drained = queue.DrainWith(&clock);
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["retries"] = static_cast<double>(queue.stats().retries);
}
BENCHMARK(BM_DeliveryUnderDrops)->Arg(0)->Arg(30)->Arg(60);

// Checkpointing a backlog of arg0 pending messages and restoring it into
// a fresh queue — the crash-recovery round trip.
void BM_DeliveryCheckpointRestore(benchmark::State& state) {
  const int backlog = static_cast<int>(state.range(0));
  ManualClock clock;
  class DownSink : public invalidator::InvalidationSink {
   public:
    Status SendInvalidation(const http::HttpRequest&,
                            const std::string&) override {
      return Status::Internal("down");
    }
  } down;
  core::DeliveryOptions options;
  options.max_attempts = 1 << 20;
  core::ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&down, "edge");
  for (int i = 0; i < backlog; ++i) {
    queue.SendInvalidation(EjectMessage(i), "k" + std::to_string(i));
  }
  for (auto _ : state) {
    std::string checkpoint = queue.CheckpointState();
    core::ReliableDeliveryQueue restored(&clock, options);
    NullSink sink;
    restored.AddSink(&sink, "edge");
    Status status = restored.RestoreState(checkpoint);
    benchmark::DoNotOptimize(status);
  }
  state.SetItemsProcessed(state.iterations() * backlog);
}
BENCHMARK(BM_DeliveryCheckpointRestore)->Arg(16)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
