// End-to-end benchmark of the REAL CachePortal stack (no simulation):
// the paper's synthetic application served through database + JDBC
// wrapper + app server + sniffer + front cache + invalidator. Prints the
// series the paper's hybrid testbed measured — hit ratio and invalidation
// traffic as the update rate grows — then times the full request path.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "common/random.h"
#include "workload/paper_site.h"

namespace {

using namespace cacheportal;
using workload::PageClass;
using workload::PaperSite;
using workload::PaperSiteOptions;

/// One experiment: `rounds` rounds of (25 requests, `updates_per_round`
/// updates, one cycle); reports the realized hit ratio.
struct E2eResult {
  double hit_ratio = 0;
  uint64_t pages_invalidated = 0;
  uint64_t polls = 0;
};

E2eResult RunScenario(int updates_per_round, uint64_t seed) {
  PaperSiteOptions options;
  options.small_rows = 100;
  options.large_rows = 400;
  options.seed = seed;
  PaperSite site(options);
  Random rng(seed * 31 + 5);
  uint64_t hits = 0, requests = 0, invalidated = 0;
  for (int round = 0; round < 20; ++round) {
    for (int r = 0; r < 25; ++r) {
      PageClass cls = static_cast<PageClass>(rng.Uniform(3));
      int grp = static_cast<int>(rng.Uniform(site.join_values()));
      http::HttpResponse resp = site.Request(cls, grp);
      ++requests;
      if (resp.headers.Get("X-Cache") == "HIT") ++hits;
    }
    site.RandomUpdates(updates_per_round);
    auto report = site.RunCycle();
    if (report.ok()) invalidated += report->pages_invalidated;
  }
  E2eResult result;
  result.hit_ratio = static_cast<double>(hits) / requests;
  result.pages_invalidated = invalidated;
  result.polls = site.portal()->invalidator().stats().polls_issued;
  return result;
}

void PrintSeries() {
  std::printf(
      "End-to-end (real stack): hit ratio vs update rate, 25 req + 1 "
      "cycle per round, 20 rounds\n");
  std::printf("| %13s | %9s | %12s | %6s |\n", "updates/round",
              "hit ratio", "invalidated", "polls");
  std::printf("|---------------|-----------|--------------|--------|\n");
  for (int updates : {0, 1, 2, 5, 10, 20}) {
    E2eResult r = RunScenario(updates, 42);
    std::printf("| %13d | %9.2f | %12llu | %6llu |\n", updates, r.hit_ratio,
                static_cast<unsigned long long>(r.pages_invalidated),
                static_cast<unsigned long long>(r.polls));
  }
  std::printf("\n");
}

void BM_RequestPathHit(benchmark::State& state) {
  PaperSiteOptions options;
  options.small_rows = 100;
  options.large_rows = 400;
  PaperSite site(options);
  site.Request(PageClass::kLight, 0);  // Warm the entry.
  for (auto _ : state) {
    http::HttpResponse resp = site.Request(PageClass::kLight, 0);
    benchmark::DoNotOptimize(resp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestPathHit);

void BM_RequestPathMiss(benchmark::State& state) {
  PaperSiteOptions options;
  options.small_rows = 100;
  options.large_rows = 400;
  PaperSite site(options);
  for (auto _ : state) {
    state.PauseTiming();
    site.portal()->page_cache()->Clear();
    state.ResumeTiming();
    http::HttpResponse resp = site.Request(PageClass::kMedium, 3);
    benchmark::DoNotOptimize(resp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestPathMiss);

void BM_FullRound(benchmark::State& state) {
  PaperSiteOptions options;
  options.small_rows = 100;
  options.large_rows = 400;
  PaperSite site(options);
  Random rng(7);
  for (auto _ : state) {
    for (int r = 0; r < 25; ++r) {
      site.Request(static_cast<PageClass>(rng.Uniform(3)),
                   static_cast<int>(rng.Uniform(site.join_values())));
    }
    site.RandomUpdates(static_cast<int>(state.range(0)));
    auto report = site.RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * 25);
}
BENCHMARK(BM_FullRound)->Arg(0)->Arg(5)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  PrintSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
