// Invalidator throughput, backing Section 2.4's claim that the
// invalidator is not a bottleneck: cost of one synchronization cycle as
// the number of cached query instances and the update-batch size grow,
// plus the effect of join indexes on DBMS polling traffic.

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <atomic>
#include <memory>
#include <thread>

#include "common/clock.h"
#include "common/env.h"
#include "common/strings.h"
#include "db/database.h"
#include "invalidator/durability.h"
#include "invalidator/invalidator.h"
#include "sniffer/qiurl_map.h"

namespace {

using namespace cacheportal;

/// A self-contained world: the Example 4.1 schema, `instances` cached
/// query instances (half single-table, half joins), ready for cycles.
struct World {
  World(int instances, bool with_join_index,
        invalidator::InvalidatorOptions options = {}, int mileage_rows = 100)
      : db(&clock) {
    db.CreateTable(db::TableSchema("Car",
                                   {{"maker", db::ColumnType::kString},
                                    {"model", db::ColumnType::kString},
                                    {"price", db::ColumnType::kInt}}))
        .ok();
    db.CreateTable(db::TableSchema("Mileage",
                                   {{"model", db::ColumnType::kString},
                                    {"EPA", db::ColumnType::kInt}}))
        .ok();
    for (int i = 0; i < mileage_rows; ++i) {
      db.ExecuteSql(
            StrCat("INSERT INTO Mileage VALUES ('m", i, "', ", i % 50, ")"))
          .value();
    }
    invalidator =
        std::make_unique<invalidator::Invalidator>(&db, &map, &clock,
                                                   options);
    if (with_join_index) {
      invalidator->CreateJoinIndex("Mileage", "model").ok();
    }
    invalidator->RunCycle().value();  // Drain seeding.
    // All join instances with thresholds far above the inserted prices:
    // every cycle, every instance needs its join side checked (polling or
    // join index), and the empty poll keeps instances registered.
    num_instances = instances;
    RecacheMissing();
  }

  /// (Re-)caches every instance whose pages left the map — steady-state
  /// refill for modes that invalidate instances each cycle (conservative
  /// and emergency rungs).
  void RecacheMissing() {
    for (int i = 0; i < num_instances; ++i) {
      std::string sql =
          StrCat("SELECT Car.model FROM Car, Mileage WHERE Car.model "
                 "= Mileage.model AND Car.price < ",
                 10000000 + i);
      if (!map.PagesForQuery(sql).empty()) continue;
      map.Add(sql, StrCat("shop/p", i, "?##"), "/r", 0);
    }
  }

  void AddUpdates(int n) {
    for (int i = 0; i < n; ++i) {
      // Models outside Mileage: the price predicate passes, the join
      // must be decided, and the verdict is "no partner" (no churn).
      db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('mk', 'zz", i, "', ",
                           500000 + i, ")"))
          .value();
    }
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  std::unique_ptr<invalidator::Invalidator> invalidator;
  int num_instances = 0;
};

/// A point-lookup world for the type-compiled matcher: `instances`
/// single-table instances of one type (`maker = ...`), each with a
/// distinct bind value. Every cycle inserts tuples matching none of
/// them, so the interpreted path substitutes every instance's WHERE AST
/// per tuple while the bind-value index answers each tuple with one
/// hash probe — the tentpole's O(instances) vs O(1) contrast.
struct EqWorld {
  /// mode 0 = interpreted (per-instance AST substitution), 1 = compiled
  /// matcher with per-tuple index probes, 2 = compiled matcher with
  /// columnar batch probes + fast-path instance skipping.
  EqWorld(int instances, int mode) : db(&clock) {
    db.CreateTable(db::TableSchema("Car",
                                   {{"maker", db::ColumnType::kString},
                                    {"model", db::ColumnType::kString},
                                    {"price", db::ColumnType::kInt}}))
        .ok();
    invalidator::InvalidatorOptions options;
    options.use_type_matcher = mode >= 1;
    options.batch_impact = mode >= 2;
    invalidator =
        std::make_unique<invalidator::Invalidator>(&db, &map, &clock,
                                                   options);
    for (int i = 0; i < instances; ++i) {
      map.Add(StrCat("SELECT model FROM Car WHERE maker = 'maker", i, "'"),
              StrCat("shop/p", i, "?##"), "/r", 0);
    }
    invalidator->RunCycle().value();  // Register instances untimed.
  }

  void AddUpdates(int n) {
    for (int i = 0; i < n; ++i) {
      db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('nobody', 'zz", i,
                           "', ", 500000 + i, ")"))
          .value();
    }
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  std::unique_ptr<invalidator::Invalidator> invalidator;
};

/// Full cycle cost as the instance count grows, across the three impact
/// modes (range(1)): 0 interpreted per-instance AST substitution, 1 the
/// compiled matcher probing bind-value indexes per tuple, 2 the columnar
/// batch evaluator (whole-column probes + fast-path instance skipping).
/// Updates match no instance, so instances stay registered and the
/// measurement is steady-state. The 10^6-instance point runs only the
/// matcher modes — the interpreted path is quadratic there.
void BM_CycleVsInstances(benchmark::State& state) {
  EqWorld world(static_cast<int>(state.range(0)),
                static_cast<int>(state.range(1)));
  for (auto _ : state) {
    state.PauseTiming();
    world.AddUpdates(4);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  const auto& ms = world.invalidator->matcher_stats();
  state.counters["tuples-excluded"] = static_cast<double>(ms.tuples_excluded);
  state.counters["short-circuits"] =
      static_cast<double>(ms.instances_short_circuited);
  state.counters["fast-path"] = static_cast<double>(ms.fast_path_instances);
  state.counters["batch-probes"] = static_cast<double>(ms.batch_probes);
}
BENCHMARK(BM_CycleVsInstances)
    ->ArgsProduct({{100, 1000, 10000, 100000}, {0, 1, 2}})
    ->Args({1000000, 1})
    ->Args({1000000, 2})
    ->ArgNames({"instances", "mode"})
    ->Unit(benchmark::kMillisecond);

/// Residual-poll consolidation: `range(0)` join instances of one type,
/// each needing its join side decided every cycle. Consolidation off
/// (range(1)=0) issues one polling query per instance; on (range(1)=1)
/// the per-type disjunctions cut DBMS round trips to
/// ceil(instances/chunk) with identical verdicts.
void BM_ConsolidatedPolls(benchmark::State& state) {
  invalidator::InvalidatorOptions options;
  options.consolidate_polls = state.range(1) != 0;
  World world(static_cast<int>(state.range(0)), false, options);
  for (auto _ : state) {
    state.PauseTiming();
    world.AddUpdates(1);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  // polls_issued counts LOGICAL member polls and is identical in both
  // modes by design; the round-trip counter is what consolidation cuts.
  state.counters["round-trips/cycle"] =
      static_cast<double>(world.invalidator->matcher_stats().poll_round_trips) /
      static_cast<double>(std::max<uint64_t>(1, world.invalidator->stats().cycles));
}
BENCHMARK(BM_ConsolidatedPolls)
    ->ArgsProduct({{16, 64, 256}, {0, 1}})
    ->ArgNames({"instances", "consolidated"})
    ->Unit(benchmark::kMillisecond);

/// Same with join indexes: polls answered inside the invalidator.
void BM_CycleVsInstancesWithIndex(benchmark::State& state) {
  World world(static_cast<int>(state.range(0)), true);
  for (auto _ : state) {
    state.PauseTiming();
    world.AddUpdates(10);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["polls/cycle"] = static_cast<double>(
      world.invalidator->stats().polls_issued /
      std::max<uint64_t>(1, world.invalidator->stats().cycles));
  state.counters["idx-answers/cycle"] = static_cast<double>(
      world.invalidator->stats().polls_answered_by_index /
      std::max<uint64_t>(1, world.invalidator->stats().cycles));
}
BENCHMARK(BM_CycleVsInstancesWithIndex)->Arg(10)->Arg(100)->Arg(1000);

/// A world where the false-eject rate has a by-construction ground
/// truth: `instances` exact-eligible range instances (`SELECT maker,
/// model ... WHERE price < T`) over a Car table with a `stock` column,
/// and every cycle's updates are in-place UPDATEs touching only
/// `stock` — a column no instance's result reads and no WHERE mentions.
/// No cached page's bytes can change, so every eject is a false eject.
struct StrategyWorld {
  StrategyWorld(int instances, bool exact) : db(&clock) {
    db.CreateTable(db::TableSchema("Car",
                                   {{"maker", db::ColumnType::kString},
                                    {"model", db::ColumnType::kString},
                                    {"price", db::ColumnType::kInt},
                                    {"stock", db::ColumnType::kInt}}))
        .ok();
    for (int i = 0; i < 200; ++i) {
      // All prices below every instance threshold: each updated row's
      // WHERE verdict is TRUE, so the conservative walk ejects.
      db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('mk', 'm", i, "', ",
                           (i % 200) * 100, ", 5)"))
          .value();
    }
    invalidator::InvalidatorOptions options;
    options.exact_strategy = exact;
    invalidator =
        std::make_unique<invalidator::Invalidator>(&db, &map, &clock,
                                                   options);
    invalidator->RunCycle().value();  // Drain seeding.
    num_instances = instances;
    RecacheMissing();
    invalidator->RunCycle().value();  // Register instances untimed.
  }

  void RecacheMissing() {
    for (int i = 0; i < num_instances; ++i) {
      std::string sql =
          StrCat("SELECT maker, model FROM Car WHERE price < ", 20000 + i);
      if (!map.PagesForQuery(sql).empty()) continue;
      map.Add(sql, StrCat("shop/p", i, "?##"), "/r", 0);
    }
  }

  void Mutate(int n) {
    for (int i = 0; i < n; ++i) {
      db.ExecuteSql(StrCat("UPDATE Car SET stock = ", next_stock++,
                           " WHERE model = 'm", i % 200, "'"))
          .value();
    }
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  std::unique_ptr<invalidator::Invalidator> invalidator;
  int num_instances = 0;
  int next_stock = 100;
};

/// Cycle cost and eject precision, exact tier (range(1)=1) versus the
/// conservative impact walk (range(1)=0), on the irrelevant-update
/// workload above. The counters carry the tentpole's claim: the
/// conservative walk ejects ~every instance every cycle (all false),
/// the exact tier ejects none, and neither path issues DBMS polls.
void BM_CycleVsStrategy(benchmark::State& state) {
  StrategyWorld world(static_cast<int>(state.range(0)),
                      state.range(1) == 1);
  uint64_t ejects = 0;
  for (auto _ : state) {
    state.PauseTiming();
    world.RecacheMissing();  // Refill what the previous cycle ejected.
    world.Mutate(8);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle().value();
    ejects += report.affected_instances;
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  double decisions =
      static_cast<double>(state.iterations()) * state.range(0);
  state.counters["false-ejects"] = static_cast<double>(ejects);
  state.counters["false-eject-rate"] =
      decisions > 0 ? static_cast<double>(ejects) / decisions : 0;
  state.counters["polls"] =
      static_cast<double>(world.invalidator->stats().polls_issued);
}
BENCHMARK(BM_CycleVsStrategy)
    ->ArgsProduct({{100, 1000}, {0, 1}})
    ->ArgNames({"instances", "exact"})
    ->Unit(benchmark::kMillisecond);

/// Cycle cost versus update-batch size at a fixed 100 instances.
void BM_CycleVsBatchSize(benchmark::State& state) {
  World world(100, false);
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    world.AddUpdates(batch);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_CycleVsBatchSize)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

/// Parallel-pipeline scaling: a poll-heavy cycle (no join index, so every
/// join instance's poll goes to the DBMS and scans a 2000-row Mileage)
/// swept across worker counts. UseRealTime is required: pooled work runs
/// off the benchmark thread, so its CPU-time clock would miss it.
void BM_CycleVsWorkers(benchmark::State& state) {
  invalidator::InvalidatorOptions options;
  options.worker_threads = static_cast<size_t>(state.range(0));
  World world(200, false, options, /*mileage_rows=*/2000);
  for (auto _ : state) {
    state.PauseTiming();
    world.AddUpdates(10);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * 200);
  state.counters["polls/cycle"] = static_cast<double>(
      world.invalidator->stats().polls_issued /
      std::max<uint64_t>(1, world.invalidator->stats().cycles));
}
BENCHMARK(BM_CycleVsWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

/// Overload sweep: cycle cost across (update rate × degradation mode).
/// range(0) is the update-batch size per cycle; range(1) pins the ladder
/// to one rung by watermark choice (0 = controller off, 1 = economy,
/// 2 = conservative, 3 = emergency). Counters report what each rung
/// trades: backlog age observed at the cycle (staleness pressure) and
/// the over-invalidation rate (conservative + emergency decisions per
/// consumed update).
void BM_CycleVsOverloadMode(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  invalidator::InvalidatorOptions options;
  if (mode > 0) {
    auto& ov = options.overload;
    ov.enabled = true;
    ov.min_dwell = 0;
    ov.staleness_bound = 3600 * kMicrosPerSecond;  // Depth drives mode.
    // Pin the requested rung: the thresholds at or below it are 1 (any
    // backlog qualifies), the ones above it unreachable.
    ov.economy_backlog = 1;
    ov.conservative_backlog = mode >= 2 ? 1 : uint64_t{1} << 40;
    ov.emergency_backlog = mode >= 3 ? 1 : uint64_t{1} << 40;
    ov.economy_poll_budget = 4;
  }
  World world(200, false, options);
  for (auto _ : state) {
    state.PauseTiming();
    world.RecacheMissing();  // Refill what the degraded rungs flushed.
    world.AddUpdates(batch);
    world.clock.Advance(kMicrosPerSecond);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  const auto& stats = world.invalidator->stats();
  const uint64_t cycles = std::max<uint64_t>(1, stats.cycles);
  const uint64_t updates = std::max<uint64_t>(1, stats.updates_processed);
  state.SetItemsProcessed(state.iterations() * batch);
  state.counters["polls/cycle"] =
      static_cast<double>(stats.polls_issued / cycles);
  state.counters["over-inval-rate"] =
      static_cast<double>(stats.conservative_invalidations) /
      static_cast<double>(updates);
  if (world.invalidator->overload_controller() != nullptr) {
    state.counters["max-backlog-age-us"] = static_cast<double>(
        world.invalidator->overload_controller()->stats().max_backlog_age);
  }
}
BENCHMARK(BM_CycleVsOverloadMode)
    ->ArgsProduct({{16, 64, 256}, {0, 1, 2, 3}})
    ->ArgNames({"updates", "mode"});

/// A many-type world for the sharded metadata plane: `kTables` one-column
/// tables, each contributing one query type (`a < $1`), instances spread
/// round-robin. Updates never match a predicate, so instances stay
/// registered and cycles are steady-state impact analysis over every
/// shard.
struct ShardWorld {
  static constexpr int kTables = 16;

  ShardWorld(int instances, size_t shards, size_t workers) : db(&clock) {
    for (int t = 0; t < kTables; ++t) {
      db.CreateTable(
            db::TableSchema(StrCat("T", t), {{"a", db::ColumnType::kInt}}))
          .ok();
    }
    invalidator::InvalidatorOptions options;
    options.metadata_shards = shards;
    options.worker_threads = workers;
    options.use_type_matcher = true;
    invalidator =
        std::make_unique<invalidator::Invalidator>(&db, &map, &clock,
                                                   options);
    for (int i = 0; i < instances; ++i) {
      map.Add(InstanceSql(i), StrCat("shop/p", i, "?##"), "/r", 0);
    }
    invalidator->RunCycle().value();  // Register instances untimed.
  }

  /// Thresholds stay far below the inserted values, so no instance is
  /// ever invalidated.
  static std::string InstanceSql(int i) {
    return StrCat("SELECT a FROM T", i % kTables, " WHERE a < ",
                  1000000 + i);
  }

  void AddUpdates(int n) {
    for (int i = 0; i < n; ++i) {
      db.ExecuteSql(
            StrCat("INSERT INTO T", i % kTables, " VALUES (", 5000000 + i,
                   ")"))
          .value();
    }
  }

  ManualClock clock;
  db::Database db;
  sniffer::QiUrlMap map;
  std::unique_ptr<invalidator::Invalidator> invalidator;
};

/// Cycle cost across metadata-plane shard counts: the differential tests
/// pin the decisions byte-identical at any (shards x workers), so this
/// curve is pure overhead/benefit of the sharding — merged iteration and
/// per-shard locking versus the single-lock plane. UseRealTime because
/// the impact fan-out runs on pool threads.
void BM_CycleVsShards(benchmark::State& state) {
  ShardWorld world(static_cast<int>(state.range(1)),
                   static_cast<size_t>(state.range(0)), /*workers=*/4);
  for (auto _ : state) {
    state.PauseTiming();
    world.AddUpdates(16);
    state.ResumeTiming();
    auto report = world.invalidator->RunCycle();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_CycleVsShards)
    ->ArgsProduct({{1, 2, 4, 8}, {1000, 10000}})
    ->ArgNames({"shards", "instances"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Registration throughput while a cycle churns — the tentpole's reason
/// to exist. A background thread runs update + cycle back to back; the
/// timed thread streams QI/URL-map adds and registrations over a bounded
/// rotating SQL set (after the first rotation every call is the known-SQL
/// fast path: route-map lookup + one shard lock). More shards means a
/// registration rarely waits on the shard a cycle phase currently holds.
void BM_RegistrationDuringCycle(benchmark::State& state) {
  ShardWorld world(1000, static_cast<size_t>(state.range(0)),
                   /*workers=*/2);
  std::atomic<bool> stop{false};
  std::thread cycler([&world, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      world.AddUpdates(4);
      world.invalidator->RunCycle().value();
    }
  });
  constexpr int kRotation = 4096;
  constexpr int kOffset = 100000;  // Disjoint from the seeded instances.
  int64_t i = 0;
  for (auto _ : state) {
    const int slot = static_cast<int>(i % kRotation);
    const std::string sql = ShardWorld::InstanceSql(kOffset + slot);
    world.map.Add(sql, StrCat("reg/p", slot, "?##"), "/r", 0);
    Status status = world.invalidator->RegisterInstance(sql);
    benchmark::DoNotOptimize(status);
    ++i;
  }
  stop.store(true, std::memory_order_relaxed);
  cycler.join();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrationDuringCycle)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("shards")
    ->UseRealTime();

/// Restart cost versus registered instances, with and without a
/// snapshot covering them. The timed region is DurabilityCoordinator
/// Open(): snapshot load + WAL-suffix replay — the time until the
/// process can serve again (the registry itself rebuilds lazily, inside
/// the first cycle). With snapshot=1 the WAL suffix is 3 commits
/// regardless of instance count; with snapshot=0 the suffix IS the full
/// registration history, so Open degrades to O(total state) — the
/// contrast the snapshot machinery exists to buy.
void BM_RecoveryVsInstances(benchmark::State& state) {
  const int instances = static_cast<int>(state.range(0));
  const bool snapshot = state.range(1) != 0;
  ManualClock clock;
  db::Database db(&clock);
  db.CreateTable(db::TableSchema("Car",
                                 {{"maker", db::ColumnType::kString},
                                  {"model", db::ColumnType::kString},
                                  {"price", db::ColumnType::kInt}}))
      .ok();
  sniffer::QiUrlMap map;
  SimEnv env;
  invalidator::DurabilityOptions dopts;
  dopts.dir = "meta";
  dopts.env = &env;
  dopts.snapshot_every_cycles = 0;

  // The doomed process: register everything, journal it, maybe snapshot,
  // then commit a short post-snapshot suffix.
  {
    invalidator::Invalidator inv(&db, &map, &clock);
    invalidator::DurabilityCoordinator coord(&inv, dopts);
    if (!coord.Open().ok()) state.SkipWithError("setup open failed");
    for (int i = 0; i < instances; ++i) {
      map.Add(StrCat("SELECT model FROM Car WHERE maker = 'maker", i, "'"),
              StrCat("shop/p", i, "?##"), "/r", 0);
    }
    coord.RunCycle().value();
    if (snapshot && !coord.Snapshot().ok()) {
      state.SkipWithError("setup snapshot failed");
    }
    for (int r = 0; r < 3; ++r) {
      db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('nobody', 'zz", r,
                           "', ", 500000 + r, ")"))
          .value();
      coord.RunCycle().value();
    }
  }

  uint64_t replayed = 0;
  uint64_t staged = 0;
  for (auto _ : state) {
    state.PauseTiming();
    env.Recover();  // Power-cut the previous incarnation's handles.
    invalidator::Invalidator inv(&db, &map, &clock);
    invalidator::DurabilityCoordinator coord(&inv, dopts);
    state.ResumeTiming();
    if (!coord.Open().ok()) state.SkipWithError("recovery open failed");
    state.PauseTiming();
    replayed = coord.store().stats().records_recovered;
    staged = inv.pending_restore_ops();
    inv.ApplyPendingRestore();  // The lazy drain, outside the timing.
    benchmark::DoNotOptimize(inv.metadata().NumInstances());
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * instances);
  state.counters["wal-records-replayed"] = static_cast<double>(replayed);
  state.counters["staged-restore-ops"] = static_cast<double>(staged);
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    state.counters["maxrss-mb"] =
        static_cast<double>(usage.ru_maxrss) / 1024.0;
  }
}
BENCHMARK(BM_RecoveryVsInstances)
    ->ArgsProduct({{1000, 10000, 100000}, {0, 1}})
    ->ArgNames({"instances", "snapshot"})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
