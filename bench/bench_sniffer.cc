// Sniffer overhead benchmark, backing the paper's claim (Section 2.4)
// that the sniffer is never the bottleneck: per-request logging and
// request-to-query mapping cost versus the cost of actually generating a
// page (executing its query). Also scales the mapper over growing logs.

#include <benchmark/benchmark.h>

#include "common/clock.h"
#include "common/strings.h"
#include "db/database.h"
#include "sniffer/mapper.h"
#include "sniffer/qiurl_map.h"
#include "sniffer/request_logger.h"

namespace {

using namespace cacheportal;

/// Per-request cost of the request logger (open + close + key narrowing).
void BM_RequestLogging(benchmark::State& state) {
  ManualClock clock;
  sniffer::RequestLog log;
  sniffer::RequestLogger logger(&log, &clock);
  server::ServletConfig config;
  config.name = "cars";
  config.key_get_params = {"model"};
  logger.RegisterServlet(config);
  auto req =
      http::HttpRequest::Get("http://shop/cars?model=Avalon&session=xyz");
  http::HttpResponse resp = http::HttpResponse::Ok("page");
  for (auto _ : state) {
    uint64_t token = logger.BeforeService("cars", *req);
    clock.Advance(10);
    logger.AfterService(token, "cars", *req, &resp);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RequestLogging);

/// Page generation cost for comparison: one indexed select on a table of
/// state.range(0) rows.
void BM_PageGeneration(benchmark::State& state) {
  db::Database db;
  db.CreateTable(db::TableSchema("Car", {{"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
      .ok();
  for (int i = 0; i < state.range(0); ++i) {
    db.ExecuteSql(StrCat("INSERT INTO Car VALUES ('m", i, "', ", i * 7, ")"))
        .value();
  }
  for (auto _ : state) {
    auto result = db.ExecuteSql("SELECT * FROM Car WHERE price < 5000");
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PageGeneration)->Arg(500)->Arg(2500);

/// Mapper throughput: N completed requests each with one query.
void BM_MapperRun(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    sniffer::RequestLog requests;
    sniffer::QueryLog queries;
    sniffer::QiUrlMap map;
    sniffer::RequestToQueryMapper mapper(&requests, &queries, &map);
    for (int i = 0; i < n; ++i) {
      Micros t = i * 100;
      uint64_t id = requests.Open("s", StrCat("/p", i), "", "",
                                  StrCat("page", i), t);
      queries.Append(StrCat("SELECT * FROM T WHERE x = ", i), true, t + 10,
                     t + 40);
      requests.Close(id, t + 60);
    }
    state.ResumeTiming();
    size_t added = mapper.Run();
    benchmark::DoNotOptimize(added);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MapperRun)->Arg(100)->Arg(1000)->Arg(10000);

/// QI/URL map insertion with dedup.
void BM_QiUrlMapAdd(benchmark::State& state) {
  sniffer::QiUrlMap map;
  int i = 0;
  for (auto _ : state) {
    map.Add(StrCat("SELECT * FROM T WHERE x = ", i % 1000),
            StrCat("page", i % 1000), "/r", i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QiUrlMapAdd);

}  // namespace

BENCHMARK_MAIN();
