// Microbenchmarks of the SQL substrate: lexing, parsing, canonical
// printing, query-type extraction (the sniffer/registration hot path),
// and condition folding (the invalidator hot path).

#include <benchmark/benchmark.h>

#include "sql/analyzer.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "sql/template.h"

namespace {

using namespace cacheportal;

const char* kQueries[] = {
    "SELECT * FROM Car WHERE price < 20000",
    "SELECT Car.maker, Car.model, Car.price, Mileage.EPA FROM Car, Mileage "
    "WHERE Car.model = Mileage.model AND Car.price < 20000",
    "SELECT maker, COUNT(*) AS n FROM Car WHERE price BETWEEN 1000 AND "
    "30000 GROUP BY maker ORDER BY n DESC LIMIT 10",
    "SELECT * FROM Car WHERE maker IN ('Toyota', 'Honda', 'Ford') AND "
    "(price < 20000 OR model LIKE 'C%') AND model IS NOT NULL",
};

void BM_Lex(benchmark::State& state) {
  const std::string sql = kQueries[state.range(0)];
  for (auto _ : state) {
    auto tokens = sql::Lexer::Tokenize(sql);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_Lex)->DenseRange(0, 3);

void BM_Parse(benchmark::State& state) {
  const std::string sql = kQueries[state.range(0)];
  for (auto _ : state) {
    auto stmt = sql::Parser::Parse(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_Parse)->DenseRange(0, 3);

void BM_Print(benchmark::State& state) {
  auto stmt = sql::Parser::Parse(kQueries[state.range(0)]).value();
  for (auto _ : state) {
    std::string text = sql::StatementToSql(*stmt);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_Print)->DenseRange(0, 3);

void BM_ExtractTemplate(benchmark::State& state) {
  auto select = sql::Parser::ParseSelect(kQueries[state.range(0)]).value();
  for (auto _ : state) {
    auto tmpl = sql::ExtractTemplate(*select);
    benchmark::DoNotOptimize(tmpl);
  }
}
BENCHMARK(BM_ExtractTemplate)->DenseRange(0, 3);

void BM_SubstituteAndFold(benchmark::State& state) {
  auto select = sql::Parser::ParseSelect(kQueries[1]).value();
  auto substituter = [](const std::string& table, const std::string& column)
      -> std::optional<sql::Value> {
    if (table != "Car") return std::nullopt;
    if (column == "model") return sql::Value::String("Avalon");
    if (column == "price") return sql::Value::Int(15000);
    if (column == "maker") return sql::Value::String("Toyota");
    return std::nullopt;
  };
  for (auto _ : state) {
    auto substituted = sql::SubstituteColumns(*select->where, substituter);
    auto folded = sql::FoldConstants(*substituted);
    benchmark::DoNotOptimize(folded);
  }
}
BENCHMARK(BM_SubstituteAndFold);

}  // namespace

BENCHMARK_MAIN();
