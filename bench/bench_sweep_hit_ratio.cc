// Parameter sweep over Table 1's hit_ratio: expected response time of
// Configuration III as the web cache's hit ratio varies. The paper keeps
// 70% constant; this sweep shows the sensitivity (the DBMS saturates as
// the miss stream grows, which is why over-invalidation — which lowers
// the effective hit ratio — matters).

#include <cstdio>

#include "sim/site.h"

using namespace cacheportal;

int main() {
  std::printf("Hit-ratio sweep, Conf III (30 req/s, <5,5,5,5> updates)\n");
  std::printf("| %9s | %12s | %10s | %10s |\n", "hit ratio", "exp resp ms",
              "missDB ms", "db util");
  std::printf("|-----------|--------------|------------|------------|\n");
  for (double hit_ratio : {0.0, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    sim::SimParams params;
    params.hit_ratio = hit_ratio;
    params.updates = sim::UpdateLoad{5, 5, 5, 5};
    sim::RunReport report =
        sim::RunSiteSimulation(sim::SiteConfig::kWebCache, params);
    std::printf("| %9.2f | %12.0f | %10.0f | %10.2f |\n", hit_ratio,
                report.metrics.response.Mean(),
                report.metrics.miss_db.Mean(), report.db_utilization);
  }
  return 0;
}
