// Sweep over Table 1's inval_rate coupling: Conf III with the constant
// 70% hit ratio the paper assumes versus a hit ratio that degrades with
// update rate (over-invalidation ejecting pages faster than traffic
// re-populates them — the decay is fitted to the real-stack measurement
// of bench_end_to_end). Shows where the "web cache always wins" claim
// starts to erode when invalidation is not free.

#include <cstdio>

#include "sim/site.h"

using namespace cacheportal;

int main() {
  std::printf("Invalidation-pressure sweep, Conf III (30 req/s)\n");
  std::printf("| %10s | %14s | %16s | %13s |\n", "updates/s",
              "const hit=0.70", "decaying hit", "eff hit ratio");
  std::printf("|------------|----------------|------------------|"
              "---------------|\n");
  for (double per_stream : {0.0, 2.0, 5.0, 8.0, 12.0, 20.0}) {
    sim::SimParams constant;
    constant.updates =
        sim::UpdateLoad{per_stream, per_stream, per_stream, per_stream};
    sim::SimParams decaying = constant;
    decaying.model_invalidation = true;

    sim::RunReport a =
        sim::RunSiteSimulation(sim::SiteConfig::kWebCache, constant);
    sim::RunReport b =
        sim::RunSiteSimulation(sim::SiteConfig::kWebCache, decaying);
    double eff = decaying.hit_ratio /
                 (1.0 + decaying.inval_sensitivity *
                            decaying.updates.Total());
    std::printf("| %10.0f | %11.0f ms | %13.0f ms | %13.2f |\n",
                4 * per_stream, a.metrics.response.Mean(),
                b.metrics.response.Mean(), eff);
  }
  return 0;
}
