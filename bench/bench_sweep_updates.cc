// Parameter sweep extending Tables 2/3 along the update-rate axis
// (Table 1's update_rate): expected response time for Conf II and
// Conf III as the total update rate grows from 0 to ~50/s. The paper's
// claim: "this difference gets significantly higher as the rate of
// updates increases" — Conf III's curve stays much flatter.

#include <cstdio>

#include "sim/site.h"

using namespace cacheportal;

int main() {
  std::printf("Update-rate sweep (30 req/s, 70%% hit ratio); expected "
              "response in ms\n");
  std::printf("| %10s | %10s | %10s | %12s | %12s |\n", "updates/s",
              "conf II", "conf III", "II hit", "III hit");
  std::printf("|------------|------------|------------|--------------|"
              "--------------|\n");
  for (double per_stream : {0.0, 2.0, 5.0, 8.0, 12.0}) {
    sim::SimParams params;
    params.updates = sim::UpdateLoad{per_stream, per_stream, per_stream,
                                     per_stream};
    sim::RunReport ii =
        sim::RunSiteSimulation(sim::SiteConfig::kMiddleTierCache, params);
    sim::RunReport iii =
        sim::RunSiteSimulation(sim::SiteConfig::kWebCache, params);
    std::printf("| %10.0f | %10.0f | %10.0f | %12.0f | %12.0f |\n",
                4 * per_stream, ii.metrics.response.Mean(),
                iii.metrics.response.Mean(),
                ii.metrics.hit_response.Mean(),
                iii.metrics.hit_response.Mean());
  }
  return 0;
}
