// Regenerates Table 2 of the paper: average response times for the three
// site configurations under three update loads, with negligible
// middle-tier cache access overhead in Configuration II.
//
// Expected shape (the claim being reproduced, not the absolute numbers):
//   - Conf I is an order of magnitude slower than II/III even with no
//     updates (resource starvation at the co-located replicas);
//   - Conf II and III are close at no updates;
//   - the II-III gap widens as the update rate grows;
//   - Conf III hit responses are unaffected by updates.

#include <cstdio>

#include "bench/table_common.h"

using namespace cacheportal;
using namespace cacheportal::bench;

int main() {
  PrintTableHeader(
      "Table 2: 30 req/s, 70% hit ratio, negligible middle-tier cache "
      "access overhead (response times in ms)");
  for (const UpdateCase& uc : kUpdateCases) {
    for (sim::SiteConfig config : {sim::SiteConfig::kReplicated,
                                   sim::SiteConfig::kMiddleTierCache,
                                   sim::SiteConfig::kWebCache}) {
      sim::SimParams params;
      params.updates = uc.load;
      params.data_cache_connection_cost = false;
      sim::RunReport report = sim::RunSiteSimulation(config, params);
      const char* name = config == sim::SiteConfig::kReplicated ? "Conf I"
                         : config == sim::SiteConfig::kMiddleTierCache
                             ? "Conf II"
                             : "Conf III";
      PrintTableRow(uc.label, name, report,
                    config != sim::SiteConfig::kReplicated);
    }
  }

  // Appendix: the per-class split the paper's caption describes ("10
  // light-, 10 medium-, and 10 heavy-DB load per request"), Conf III.
  std::printf("\nPer-class mean response, Conf III (ms):\n");
  std::printf("| %-17s | %8s | %8s | %8s |\n", "update rate", "light",
              "medium", "heavy");
  std::printf("|-------------------|----------|----------|----------|\n");
  for (const UpdateCase& uc : kUpdateCases) {
    sim::SimParams params;
    params.updates = uc.load;
    sim::RunReport report =
        sim::RunSiteSimulation(sim::SiteConfig::kWebCache, params);
    std::printf("| %-17s | %8.0f | %8.0f | %8.0f |\n", uc.label,
                report.metrics.per_class[0].Mean(),
                report.metrics.per_class[1].Mean(),
                report.metrics.per_class[2].Mean());
  }
  return 0;
}
