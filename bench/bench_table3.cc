// Regenerates Table 3 of the paper: as Table 2, but Configuration II's
// middle-tier data cache is a local DBMS requiring connection
// establishment per access, competing for the app-server CPU.
//
// Expected shape: Conf II collapses (its expected response exceeds even
// Conf I's), while Conf I and Conf III rows match Table 2.

#include "bench/table_common.h"

using namespace cacheportal;
using namespace cacheportal::bench;

int main() {
  PrintTableHeader(
      "Table 3: 30 req/s, 70% hit ratio, NON-negligible middle-tier cache "
      "access overhead in Conf II (response times in ms)");
  for (const UpdateCase& uc : kUpdateCases) {
    for (sim::SiteConfig config : {sim::SiteConfig::kReplicated,
                                   sim::SiteConfig::kMiddleTierCache,
                                   sim::SiteConfig::kWebCache}) {
      sim::SimParams params;
      params.updates = uc.load;
      params.data_cache_connection_cost =
          config == sim::SiteConfig::kMiddleTierCache;
      sim::RunReport report = sim::RunSiteSimulation(config, params);
      const char* name = config == sim::SiteConfig::kReplicated ? "Conf I"
                         : config == sim::SiteConfig::kMiddleTierCache
                             ? "Conf II"
                             : "Conf III";
      PrintTableRow(uc.label, name, report,
                    config != sim::SiteConfig::kReplicated);
    }
  }
  return 0;
}
