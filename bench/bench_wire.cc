// Microbenchmarks of the real-socket invalidation wire: end-to-end eject
// throughput through the full delivery stack (ReliableDeliveryQueue →
// WireCacheSink → WireInvalidationClient → loopback TCP →
// InvalidationServer → ack), the raw framed round trip without the
// queue, and the same storm ground through injected ack drops — the
// at-least-once tax when the network misbehaves.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/reliable_delivery.h"
#include "core/remote_cache.h"
#include "net/invalidation_server.h"
#include "net/wire_client.h"
#include "tools/storm.h"

namespace {

using namespace cacheportal;

struct WireFixture {
  std::unique_ptr<net::InvalidationServer> server;
  std::unique_ptr<net::WireInvalidationClient> client;
  std::atomic<uint64_t> applied{0};

  explicit WireFixture(const Clock* clock, FaultInjector* server_faults) {
    net::InvalidationServerOptions server_options;
    server_options.io_timeout = 2 * kMicrosPerSecond;
    server_options.faults = server_faults;
    auto started = net::InvalidationServer::Start(
        [this](const std::string&, uint64_t, uint64_t) {
          applied.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        },
        std::move(server_options));
    server = std::move(started).value();

    net::WireClientOptions client_options;
    client_options.port = server->port();
    client_options.client_id = "bench";
    client_options.io_timeout = 500 * kMicrosPerMilli;
    client_options.reconnect_backoff = kMicrosPerMilli;
    client = std::make_unique<net::WireInvalidationClient>(
        clock, std::move(client_options));
  }
};

// End-to-end throughput of the full delivery stack over a healthy
// loopback socket: every eject pays the queue, the framed encode, a TCP
// round trip, the server's dedup ledger, and the ack parse. items/s is
// ejects confirmed per second — the per-cache delivery ceiling of one
// invalidator connection.
void BM_WireDeliveryThroughput(benchmark::State& state) {
  ManualClock clock;
  WireFixture wire(&clock, nullptr);
  core::WireCacheSink sink(
      [&wire](const std::string& bytes, const std::string& key) {
        return wire.client->Deliver(key, bytes);
      });
  core::ReliableDeliveryQueue queue(&clock, {});
  queue.AddSink(&sink, "cache-0");
  uint64_t i = 0;
  for (auto _ : state) {
    queue.SendInvalidation(tools::StormEject(1, i), tools::StormKey(1, i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["acks"] = static_cast<double>(wire.client->acks_received());
}
BENCHMARK(BM_WireDeliveryThroughput)->UseRealTime();

// The raw framed round trip: client → socket → dedup → ack, no delivery
// queue in front. The gap to BM_WireDeliveryThroughput is the queue's
// bookkeeping overhead on the healthy path.
void BM_WireRawDeliver(benchmark::State& state) {
  ManualClock clock;
  WireFixture wire(&clock, nullptr);
  uint64_t i = 0;
  for (auto _ : state) {
    Status sent =
        wire.client->Deliver(tools::StormKey(2, i), "payload");
    benchmark::DoNotOptimize(sent);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireRawDeliver)->UseRealTime();

// Delivery with the server dropping arg0% of acks: the client times out,
// the queue retries, the server dedups the replay by (epoch, seq).
// items/s counts ejects fully confirmed, so the slowdown versus 0% IS
// the price of at-least-once over a lossy wire (dominated by the ack
// timeout, which is why it is kept short here).
void BM_WireDeliveryUnderAckDrops(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  constexpr int kBatch = 16;
  ManualClock clock;
  FaultConfig config;
  config.drop_probability = drop;
  FaultInjector faults(11, config);
  WireFixture wire(&clock, drop > 0 ? &faults : nullptr);
  // Shorten the ack wait so retry grinding measures queue+dedup work,
  // not multi-second timeout sleeps.
  net::WireClientOptions client_options;
  client_options.port = wire.server->port();
  client_options.io_timeout = 50 * kMicrosPerMilli;
  client_options.reconnect_backoff = kMicrosPerMilli;
  net::WireInvalidationClient client(&clock, std::move(client_options));
  core::WireCacheSink sink(
      [&client](const std::string& bytes, const std::string& key) {
        return client.Deliver(key, bytes);
      });
  core::DeliveryOptions options;
  options.initial_backoff = kMicrosPerMilli;
  options.max_attempts = 1 << 16;
  options.delivery_deadline = 0;
  core::ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&sink, "cache-0");
  uint64_t i = 0;
  for (auto _ : state) {
    for (int b = 0; b < kBatch; ++b) {
      queue.SendInvalidation(tools::StormEject(3, i), tools::StormKey(3, i));
      ++i;
    }
    size_t drained = queue.DrainWith(&clock);
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["retries"] = static_cast<double>(queue.stats().retries);
  state.counters["dup_acks"] =
      static_cast<double>(wire.server->stats().ejects_duplicate);
}
BENCHMARK(BM_WireDeliveryUnderAckDrops)->Arg(0)->Arg(20)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
