// Microbenchmarks of the real-socket invalidation wire: end-to-end eject
// throughput through the full delivery stack (ReliableDeliveryQueue →
// WireCacheSink → WireInvalidationClient → loopback TCP →
// InvalidationServer → ack), the raw framed round trip without the
// queue, and the same storm ground through injected ack drops — the
// at-least-once tax when the network misbehaves.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "core/delivery_router.h"
#include "core/reliable_delivery.h"
#include "core/remote_cache.h"
#include "http/message.h"
#include "net/invalidation_server.h"
#include "net/wire_client.h"
#include "tools/storm.h"

namespace {

using namespace cacheportal;

struct WireFixture {
  std::unique_ptr<net::InvalidationServer> server;
  std::unique_ptr<net::WireInvalidationClient> client;
  std::atomic<uint64_t> applied{0};

  explicit WireFixture(const Clock* clock, FaultInjector* server_faults) {
    net::InvalidationServerOptions server_options;
    server_options.io_timeout = 2 * kMicrosPerSecond;
    server_options.faults = server_faults;
    auto started = net::InvalidationServer::Start(
        [this](std::string_view, uint64_t, uint64_t) {
          applied.fetch_add(1, std::memory_order_relaxed);
          return Status::OK();
        },
        std::move(server_options));
    server = std::move(started).value();

    net::WireClientOptions client_options;
    client_options.port = server->port();
    client_options.client_id = "bench";
    client_options.io_timeout = 500 * kMicrosPerMilli;
    client_options.reconnect_backoff = kMicrosPerMilli;
    client = std::make_unique<net::WireInvalidationClient>(
        clock, std::move(client_options));
  }
};

// End-to-end throughput of the full delivery stack over a healthy
// loopback socket: every eject pays the queue, the framed encode, a TCP
// round trip, the server's dedup ledger, and the ack parse. items/s is
// ejects confirmed per second — the per-cache delivery ceiling of one
// invalidator connection.
void BM_WireDeliveryThroughput(benchmark::State& state) {
  ManualClock clock;
  WireFixture wire(&clock, nullptr);
  core::WireCacheSink sink(
      [&wire](const std::string& bytes, const std::string& key) {
        return wire.client->Deliver(key, bytes);
      });
  core::ReliableDeliveryQueue queue(&clock, {});
  queue.AddSink(&sink, "cache-0");
  uint64_t i = 0;
  for (auto _ : state) {
    queue.SendInvalidation(tools::StormEject(1, i), tools::StormKey(1, i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["acks"] = static_cast<double>(wire.client->acks_received());
}
BENCHMARK(BM_WireDeliveryThroughput)->UseRealTime();

// The raw framed round trip: client → socket → dedup → ack, no delivery
// queue in front. The gap to BM_WireDeliveryThroughput is the queue's
// bookkeeping overhead on the healthy path.
void BM_WireRawDeliver(benchmark::State& state) {
  ManualClock clock;
  WireFixture wire(&clock, nullptr);
  uint64_t i = 0;
  for (auto _ : state) {
    Status sent =
        wire.client->Deliver(tools::StormKey(2, i), "payload");
    benchmark::DoNotOptimize(sent);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireRawDeliver)->UseRealTime();

// Delivery with the server dropping arg0% of acks: the client times out,
// the queue retries, the server dedups the replay by (epoch, seq).
// items/s counts ejects fully confirmed, so the slowdown versus 0% IS
// the price of at-least-once over a lossy wire (dominated by the ack
// timeout, which is why it is kept short here).
void BM_WireDeliveryUnderAckDrops(benchmark::State& state) {
  const double drop = static_cast<double>(state.range(0)) / 100.0;
  constexpr int kBatch = 16;
  ManualClock clock;
  FaultConfig config;
  config.drop_probability = drop;
  FaultInjector faults(11, config);
  WireFixture wire(&clock, drop > 0 ? &faults : nullptr);
  // Shorten the ack wait so retry grinding measures queue+dedup work,
  // not multi-second timeout sleeps.
  net::WireClientOptions client_options;
  client_options.port = wire.server->port();
  client_options.io_timeout = 50 * kMicrosPerMilli;
  client_options.reconnect_backoff = kMicrosPerMilli;
  net::WireInvalidationClient client(&clock, std::move(client_options));
  core::WireCacheSink sink(
      [&client](const std::string& bytes, const std::string& key) {
        return client.Deliver(key, bytes);
      });
  core::DeliveryOptions options;
  options.initial_backoff = kMicrosPerMilli;
  options.max_attempts = 1 << 16;
  options.delivery_deadline = 0;
  core::ReliableDeliveryQueue queue(&clock, options);
  queue.AddSink(&sink, "cache-0");
  uint64_t i = 0;
  for (auto _ : state) {
    for (int b = 0; b < kBatch; ++b) {
      queue.SendInvalidation(tools::StormEject(3, i), tools::StormKey(3, i));
      ++i;
    }
    size_t drained = queue.DrainWith(&clock);
    benchmark::DoNotOptimize(drained);
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
  state.counters["retries"] = static_cast<double>(queue.stats().retries);
  state.counters["dup_acks"] =
      static_cast<double>(wire.server->stats().ejects_duplicate);
}
BENCHMARK(BM_WireDeliveryUnderAckDrops)->Arg(0)->Arg(20)->UseRealTime();

// The pipelined batched wire with consistent-hash fan-out:
// args = {batch, window, peers}. batch=1/window=1/peers=1 is the
// stop-and-wait baseline (one frame, one ack, one round trip each);
// batch=64/window=128 streams EJECT_BATCH runs with cumulative acks.
// items/s counts ejects confirmed end-to-end, so the ratio to the
// baseline IS the pipelining win on this loopback.
void BM_WireBatchedThroughput(benchmark::State& state) {
  const size_t batch = static_cast<size_t>(state.range(0));
  const size_t window = static_cast<size_t>(state.range(1));
  const int peers = static_cast<int>(state.range(2));
  constexpr uint64_t kChunk = 64;  // Ejects enqueued per iteration.

  ManualClock clock;
  std::vector<std::unique_ptr<WireFixture>> wires;
  std::vector<std::unique_ptr<core::WireCacheSink>> sinks;
  core::DeliveryOptions options;
  options.batch_max = static_cast<int>(batch);
  core::ReliableDeliveryQueue queue(&clock, options);
  core::DeliveryRouter router(&queue);
  for (int p = 0; p < peers; ++p) {
    wires.push_back(std::make_unique<WireFixture>(&clock, nullptr));
    net::WireInvalidationClient* client = wires.back()->client.get();
    {
      // Rebuild the client with the sweep's batch/window settings.
      net::WireClientOptions client_options;
      client_options.port = wires.back()->server->port();
      client_options.client_id = "bench-batched";
      client_options.io_timeout = 500 * kMicrosPerMilli;
      client_options.reconnect_backoff = kMicrosPerMilli;
      client_options.batch_max = batch;
      client_options.window_frames = window;
      wires.back()->client = std::make_unique<net::WireInvalidationClient>(
          &clock, std::move(client_options));
      client = wires.back()->client.get();
    }
    sinks.push_back(std::make_unique<core::WireCacheSink>(
        [client](const std::string& bytes, const std::string& key) {
          return client->Deliver(key, bytes);
        },
        [client](const std::vector<std::pair<std::string, std::string>>&
                     kv) {
          std::vector<net::WireInvalidationClient::BatchEntry> entries;
          entries.reserve(kv.size());
          for (const auto& [key, bytes] : kv) {
            entries.push_back({key, bytes});
          }
          net::WireBatchResult sent = client->DeliverBatch(entries);
          return invalidator::BatchSendResult{sent.confirmed, sent.status};
        }));
    router.AddPeer(sinks.back().get(),
                   "peer-" + std::to_string(p));
  }

  // Pre-generate the storm outside the timed loop: constructing an
  // eject parses its URL twice (once for the message, once for the
  // cache key), and that CPU cost is identical in every sweep point —
  // leaving it in the loop measures the storm generator, not the wire,
  // and flattens the stop-and-wait vs pipelined ratio.
  constexpr uint64_t kPool = 4096;
  std::vector<std::pair<http::HttpRequest, std::string>> storm;
  storm.reserve(kPool);
  for (uint64_t n = 0; n < kPool; ++n) {
    storm.emplace_back(tools::StormEject(4, n), tools::StormKey(4, n));
  }

  uint64_t i = 0;
  for (auto _ : state) {
    for (uint64_t c = 0; c < kChunk; ++c) {
      const auto& [eject, key] = storm[i % kPool];
      router.SendInvalidation(eject, key);
      ++i;
    }
    while (queue.pending() > 0) queue.Pump();
  }
  state.SetItemsProcessed(state.iterations() * kChunk);
  uint64_t batch_frames = 0;
  uint64_t acks = 0;
  for (const auto& wire : wires) {
    batch_frames += wire->client->batch_frames_sent();
    acks += wire->client->acks_received();
  }
  state.counters["batch_frames"] = static_cast<double>(batch_frames);
  state.counters["acks"] = static_cast<double>(acks);
}
BENCHMARK(BM_WireBatchedThroughput)
    ->ArgsProduct({{1, 16, 64}, {1, 128}, {1, 3}})
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
