#ifndef CACHEPORTAL_BENCH_TABLE_COMMON_H_
#define CACHEPORTAL_BENCH_TABLE_COMMON_H_

#include <cstdio>

#include "sim/site.h"

namespace cacheportal::bench {

/// Prints one response-time row in the layout of the paper's Tables 2/3:
/// Miss(DB, Resp), Hit(Resp), Exp(Resp), all in milliseconds.
inline void PrintTableRow(const char* update_label, const char* conf_label,
                          const sim::RunReport& report, bool has_cache) {
  const sim::SimMetrics& m = report.metrics;
  if (has_cache) {
    std::printf("| %-17s | %-9s | %8.0f | %8.0f | %6.0f | %8.0f |\n",
                update_label, conf_label, m.miss_db.Mean(),
                m.miss_response.Mean(), m.hit_response.Mean(),
                m.response.Mean());
  } else {
    std::printf("| %-17s | %-9s | %8.0f | %8.0f | %6s | %8.0f |\n",
                update_label, conf_label, m.miss_db.Mean(),
                m.miss_response.Mean(), "N/A", m.response.Mean());
  }
}

inline void PrintTableHeader(const char* title) {
  std::printf("%s\n", title);
  std::printf("| %-17s | %-9s | %8s | %8s | %6s | %8s |\n", "update rate",
              "config", "missDB", "missResp", "hit", "exp");
  std::printf("|-------------------|-----------|----------|----------|"
              "--------|----------|\n");
}

struct UpdateCase {
  const char* label;
  sim::UpdateLoad load;
};

inline constexpr UpdateCase kUpdateCases[] = {
    {"no updates", {0, 0, 0, 0}},
    {"<5,5,5,5>", {5, 5, 5, 5}},
    {"<12,12,12,12>", {12, 12, 12, 12}},
};

}  // namespace cacheportal::bench

#endif  // CACHEPORTAL_BENCH_TABLE_COMMON_H_
