file(REMOVE_RECURSE
  "CMakeFiles/bench_configs_real.dir/bench_configs_real.cc.o"
  "CMakeFiles/bench_configs_real.dir/bench_configs_real.cc.o.d"
  "bench_configs_real"
  "bench_configs_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_configs_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
