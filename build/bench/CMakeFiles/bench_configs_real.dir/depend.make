# Empty dependencies file for bench_configs_real.
# This may be replaced when dependencies are built.
