file(REMOVE_RECURSE
  "CMakeFiles/bench_delivery.dir/bench_delivery.cc.o"
  "CMakeFiles/bench_delivery.dir/bench_delivery.cc.o.d"
  "bench_delivery"
  "bench_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
