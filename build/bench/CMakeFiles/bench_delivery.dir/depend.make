# Empty dependencies file for bench_delivery.
# This may be replaced when dependencies are built.
