file(REMOVE_RECURSE
  "CMakeFiles/bench_invalidator.dir/bench_invalidator.cc.o"
  "CMakeFiles/bench_invalidator.dir/bench_invalidator.cc.o.d"
  "bench_invalidator"
  "bench_invalidator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_invalidator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
