# Empty compiler generated dependencies file for bench_invalidator.
# This may be replaced when dependencies are built.
