file(REMOVE_RECURSE
  "CMakeFiles/bench_sniffer.dir/bench_sniffer.cc.o"
  "CMakeFiles/bench_sniffer.dir/bench_sniffer.cc.o.d"
  "bench_sniffer"
  "bench_sniffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sniffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
