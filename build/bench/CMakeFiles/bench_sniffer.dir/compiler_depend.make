# Empty compiler generated dependencies file for bench_sniffer.
# This may be replaced when dependencies are built.
