# Empty dependencies file for bench_sql.
# This may be replaced when dependencies are built.
