file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_hit_ratio.dir/bench_sweep_hit_ratio.cc.o"
  "CMakeFiles/bench_sweep_hit_ratio.dir/bench_sweep_hit_ratio.cc.o.d"
  "bench_sweep_hit_ratio"
  "bench_sweep_hit_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_hit_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
