file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_invalidation.dir/bench_sweep_invalidation.cc.o"
  "CMakeFiles/bench_sweep_invalidation.dir/bench_sweep_invalidation.cc.o.d"
  "bench_sweep_invalidation"
  "bench_sweep_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
