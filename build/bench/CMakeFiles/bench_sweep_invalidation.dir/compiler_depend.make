# Empty compiler generated dependencies file for bench_sweep_invalidation.
# This may be replaced when dependencies are built.
