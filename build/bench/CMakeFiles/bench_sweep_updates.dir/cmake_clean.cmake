file(REMOVE_RECURSE
  "CMakeFiles/bench_sweep_updates.dir/bench_sweep_updates.cc.o"
  "CMakeFiles/bench_sweep_updates.dir/bench_sweep_updates.cc.o.d"
  "bench_sweep_updates"
  "bench_sweep_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sweep_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
