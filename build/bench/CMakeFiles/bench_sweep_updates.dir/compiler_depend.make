# Empty compiler generated dependencies file for bench_sweep_updates.
# This may be replaced when dependencies are built.
