file(REMOVE_RECURSE
  "CMakeFiles/car_dealership.dir/car_dealership.cpp.o"
  "CMakeFiles/car_dealership.dir/car_dealership.cpp.o.d"
  "car_dealership"
  "car_dealership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/car_dealership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
