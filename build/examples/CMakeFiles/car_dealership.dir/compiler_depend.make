# Empty compiler generated dependencies file for car_dealership.
# This may be replaced when dependencies are built.
