file(REMOVE_RECURSE
  "CMakeFiles/config_comparison.dir/config_comparison.cpp.o"
  "CMakeFiles/config_comparison.dir/config_comparison.cpp.o.d"
  "config_comparison"
  "config_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
