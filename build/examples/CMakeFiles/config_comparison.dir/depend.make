# Empty dependencies file for config_comparison.
# This may be replaced when dependencies are built.
