file(REMOVE_RECURSE
  "CMakeFiles/edge_network.dir/edge_network.cpp.o"
  "CMakeFiles/edge_network.dir/edge_network.cpp.o.d"
  "edge_network"
  "edge_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
