# Empty compiler generated dependencies file for edge_network.
# This may be replaced when dependencies are built.
