
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/data_cache.cc" "src/CMakeFiles/cacheportal.dir/cache/data_cache.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/cache/data_cache.cc.o.d"
  "/root/repo/src/cache/data_cache_connection.cc" "src/CMakeFiles/cacheportal.dir/cache/data_cache_connection.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/cache/data_cache_connection.cc.o.d"
  "/root/repo/src/cache/page_cache.cc" "src/CMakeFiles/cacheportal.dir/cache/page_cache.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/cache/page_cache.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/cacheportal.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/common/clock.cc.o.d"
  "/root/repo/src/common/fault_injector.cc" "src/CMakeFiles/cacheportal.dir/common/fault_injector.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/common/fault_injector.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/cacheportal.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/cacheportal.dir/common/status.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/cacheportal.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/common/strings.cc.o.d"
  "/root/repo/src/core/cache_portal.cc" "src/CMakeFiles/cacheportal.dir/core/cache_portal.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/core/cache_portal.cc.o.d"
  "/root/repo/src/core/caching_proxy.cc" "src/CMakeFiles/cacheportal.dir/core/caching_proxy.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/core/caching_proxy.cc.o.d"
  "/root/repo/src/core/reliable_delivery.cc" "src/CMakeFiles/cacheportal.dir/core/reliable_delivery.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/core/reliable_delivery.cc.o.d"
  "/root/repo/src/core/remote_cache.cc" "src/CMakeFiles/cacheportal.dir/core/remote_cache.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/core/remote_cache.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/cacheportal.dir/db/database.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/db/database.cc.o.d"
  "/root/repo/src/db/delta.cc" "src/CMakeFiles/cacheportal.dir/db/delta.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/db/delta.cc.o.d"
  "/root/repo/src/db/executor.cc" "src/CMakeFiles/cacheportal.dir/db/executor.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/db/executor.cc.o.d"
  "/root/repo/src/db/schema.cc" "src/CMakeFiles/cacheportal.dir/db/schema.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/db/schema.cc.o.d"
  "/root/repo/src/db/table.cc" "src/CMakeFiles/cacheportal.dir/db/table.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/db/table.cc.o.d"
  "/root/repo/src/db/update_log.cc" "src/CMakeFiles/cacheportal.dir/db/update_log.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/db/update_log.cc.o.d"
  "/root/repo/src/http/cache_control.cc" "src/CMakeFiles/cacheportal.dir/http/cache_control.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/http/cache_control.cc.o.d"
  "/root/repo/src/http/headers.cc" "src/CMakeFiles/cacheportal.dir/http/headers.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/http/headers.cc.o.d"
  "/root/repo/src/http/message.cc" "src/CMakeFiles/cacheportal.dir/http/message.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/http/message.cc.o.d"
  "/root/repo/src/http/url.cc" "src/CMakeFiles/cacheportal.dir/http/url.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/http/url.cc.o.d"
  "/root/repo/src/invalidator/baseline.cc" "src/CMakeFiles/cacheportal.dir/invalidator/baseline.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/baseline.cc.o.d"
  "/root/repo/src/invalidator/impact.cc" "src/CMakeFiles/cacheportal.dir/invalidator/impact.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/impact.cc.o.d"
  "/root/repo/src/invalidator/info_manager.cc" "src/CMakeFiles/cacheportal.dir/invalidator/info_manager.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/info_manager.cc.o.d"
  "/root/repo/src/invalidator/invalidator.cc" "src/CMakeFiles/cacheportal.dir/invalidator/invalidator.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/invalidator.cc.o.d"
  "/root/repo/src/invalidator/policy.cc" "src/CMakeFiles/cacheportal.dir/invalidator/policy.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/policy.cc.o.d"
  "/root/repo/src/invalidator/polling_cache.cc" "src/CMakeFiles/cacheportal.dir/invalidator/polling_cache.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/polling_cache.cc.o.d"
  "/root/repo/src/invalidator/registry.cc" "src/CMakeFiles/cacheportal.dir/invalidator/registry.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/registry.cc.o.d"
  "/root/repo/src/invalidator/scheduler.cc" "src/CMakeFiles/cacheportal.dir/invalidator/scheduler.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/invalidator/scheduler.cc.o.d"
  "/root/repo/src/net/http_server.cc" "src/CMakeFiles/cacheportal.dir/net/http_server.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/net/http_server.cc.o.d"
  "/root/repo/src/server/app_server.cc" "src/CMakeFiles/cacheportal.dir/server/app_server.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/server/app_server.cc.o.d"
  "/root/repo/src/server/jdbc.cc" "src/CMakeFiles/cacheportal.dir/server/jdbc.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/server/jdbc.cc.o.d"
  "/root/repo/src/server/load_balancer.cc" "src/CMakeFiles/cacheportal.dir/server/load_balancer.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/server/load_balancer.cc.o.d"
  "/root/repo/src/server/web_server.cc" "src/CMakeFiles/cacheportal.dir/server/web_server.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/server/web_server.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/cacheportal.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sim/simulator.cc.o.d"
  "/root/repo/src/sim/site.cc" "src/CMakeFiles/cacheportal.dir/sim/site.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sim/site.cc.o.d"
  "/root/repo/src/sim/station.cc" "src/CMakeFiles/cacheportal.dir/sim/station.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sim/station.cc.o.d"
  "/root/repo/src/sniffer/log_io.cc" "src/CMakeFiles/cacheportal.dir/sniffer/log_io.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sniffer/log_io.cc.o.d"
  "/root/repo/src/sniffer/mapper.cc" "src/CMakeFiles/cacheportal.dir/sniffer/mapper.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sniffer/mapper.cc.o.d"
  "/root/repo/src/sniffer/qiurl_map.cc" "src/CMakeFiles/cacheportal.dir/sniffer/qiurl_map.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sniffer/qiurl_map.cc.o.d"
  "/root/repo/src/sniffer/query_log.cc" "src/CMakeFiles/cacheportal.dir/sniffer/query_log.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sniffer/query_log.cc.o.d"
  "/root/repo/src/sniffer/query_logger.cc" "src/CMakeFiles/cacheportal.dir/sniffer/query_logger.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sniffer/query_logger.cc.o.d"
  "/root/repo/src/sniffer/request_log.cc" "src/CMakeFiles/cacheportal.dir/sniffer/request_log.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sniffer/request_log.cc.o.d"
  "/root/repo/src/sniffer/request_logger.cc" "src/CMakeFiles/cacheportal.dir/sniffer/request_logger.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sniffer/request_logger.cc.o.d"
  "/root/repo/src/sql/analyzer.cc" "src/CMakeFiles/cacheportal.dir/sql/analyzer.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/analyzer.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/cacheportal.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/eval.cc" "src/CMakeFiles/cacheportal.dir/sql/eval.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/eval.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/cacheportal.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/cacheportal.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/printer.cc" "src/CMakeFiles/cacheportal.dir/sql/printer.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/printer.cc.o.d"
  "/root/repo/src/sql/template.cc" "src/CMakeFiles/cacheportal.dir/sql/template.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/template.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/CMakeFiles/cacheportal.dir/sql/value.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/sql/value.cc.o.d"
  "/root/repo/src/workload/paper_site.cc" "src/CMakeFiles/cacheportal.dir/workload/paper_site.cc.o" "gcc" "src/CMakeFiles/cacheportal.dir/workload/paper_site.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
