file(REMOVE_RECURSE
  "libcacheportal.a"
)
