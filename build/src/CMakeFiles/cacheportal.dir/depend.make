# Empty dependencies file for cacheportal.
# This may be replaced when dependencies are built.
