# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sql")
subdirs("db")
subdirs("http")
subdirs("net")
subdirs("cache")
subdirs("server")
subdirs("sniffer")
subdirs("invalidator")
subdirs("core")
subdirs("sim")
subdirs("workload")
