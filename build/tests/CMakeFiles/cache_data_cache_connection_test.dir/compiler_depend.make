# Empty compiler generated dependencies file for cache_data_cache_connection_test.
# This may be replaced when dependencies are built.
