file(REMOVE_RECURSE
  "CMakeFiles/cache_page_cache_test.dir/cache_page_cache_test.cc.o"
  "CMakeFiles/cache_page_cache_test.dir/cache_page_cache_test.cc.o.d"
  "cache_page_cache_test"
  "cache_page_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_page_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
