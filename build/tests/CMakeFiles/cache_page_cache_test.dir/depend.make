# Empty dependencies file for cache_page_cache_test.
# This may be replaced when dependencies are built.
