file(REMOVE_RECURSE
  "CMakeFiles/core_proxy_test.dir/core_proxy_test.cc.o"
  "CMakeFiles/core_proxy_test.dir/core_proxy_test.cc.o.d"
  "core_proxy_test"
  "core_proxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
