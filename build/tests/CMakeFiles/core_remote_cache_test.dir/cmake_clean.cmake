file(REMOVE_RECURSE
  "CMakeFiles/core_remote_cache_test.dir/core_remote_cache_test.cc.o"
  "CMakeFiles/core_remote_cache_test.dir/core_remote_cache_test.cc.o.d"
  "core_remote_cache_test"
  "core_remote_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_remote_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
