# Empty compiler generated dependencies file for core_remote_cache_test.
# This may be replaced when dependencies are built.
