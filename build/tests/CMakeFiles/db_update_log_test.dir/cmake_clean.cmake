file(REMOVE_RECURSE
  "CMakeFiles/db_update_log_test.dir/db_update_log_test.cc.o"
  "CMakeFiles/db_update_log_test.dir/db_update_log_test.cc.o.d"
  "db_update_log_test"
  "db_update_log_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_update_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
