# Empty dependencies file for db_update_log_test.
# This may be replaced when dependencies are built.
