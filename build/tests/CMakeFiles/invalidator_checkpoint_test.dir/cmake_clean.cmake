file(REMOVE_RECURSE
  "CMakeFiles/invalidator_checkpoint_test.dir/invalidator_checkpoint_test.cc.o"
  "CMakeFiles/invalidator_checkpoint_test.dir/invalidator_checkpoint_test.cc.o.d"
  "invalidator_checkpoint_test"
  "invalidator_checkpoint_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidator_checkpoint_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
