# Empty dependencies file for invalidator_checkpoint_test.
# This may be replaced when dependencies are built.
