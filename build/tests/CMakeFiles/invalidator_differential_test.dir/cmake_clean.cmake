file(REMOVE_RECURSE
  "CMakeFiles/invalidator_differential_test.dir/invalidator_differential_test.cc.o"
  "CMakeFiles/invalidator_differential_test.dir/invalidator_differential_test.cc.o.d"
  "invalidator_differential_test"
  "invalidator_differential_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidator_differential_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
