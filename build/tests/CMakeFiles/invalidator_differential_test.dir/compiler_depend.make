# Empty compiler generated dependencies file for invalidator_differential_test.
# This may be replaced when dependencies are built.
