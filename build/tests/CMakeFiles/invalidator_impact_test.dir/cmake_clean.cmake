file(REMOVE_RECURSE
  "CMakeFiles/invalidator_impact_test.dir/invalidator_impact_test.cc.o"
  "CMakeFiles/invalidator_impact_test.dir/invalidator_impact_test.cc.o.d"
  "invalidator_impact_test"
  "invalidator_impact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidator_impact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
