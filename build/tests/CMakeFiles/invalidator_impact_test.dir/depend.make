# Empty dependencies file for invalidator_impact_test.
# This may be replaced when dependencies are built.
