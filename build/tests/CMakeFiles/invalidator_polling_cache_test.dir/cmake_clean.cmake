file(REMOVE_RECURSE
  "CMakeFiles/invalidator_polling_cache_test.dir/invalidator_polling_cache_test.cc.o"
  "CMakeFiles/invalidator_polling_cache_test.dir/invalidator_polling_cache_test.cc.o.d"
  "invalidator_polling_cache_test"
  "invalidator_polling_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidator_polling_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
