# Empty dependencies file for invalidator_polling_cache_test.
# This may be replaced when dependencies are built.
