file(REMOVE_RECURSE
  "CMakeFiles/invalidator_registry_test.dir/invalidator_registry_test.cc.o"
  "CMakeFiles/invalidator_registry_test.dir/invalidator_registry_test.cc.o.d"
  "invalidator_registry_test"
  "invalidator_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidator_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
