# Empty dependencies file for invalidator_registry_test.
# This may be replaced when dependencies are built.
