file(REMOVE_RECURSE
  "CMakeFiles/invalidator_test.dir/invalidator_test.cc.o"
  "CMakeFiles/invalidator_test.dir/invalidator_test.cc.o.d"
  "invalidator_test"
  "invalidator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/invalidator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
