# Empty dependencies file for invalidator_test.
# This may be replaced when dependencies are built.
