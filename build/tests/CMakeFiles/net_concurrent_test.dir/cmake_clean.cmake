file(REMOVE_RECURSE
  "CMakeFiles/net_concurrent_test.dir/net_concurrent_test.cc.o"
  "CMakeFiles/net_concurrent_test.dir/net_concurrent_test.cc.o.d"
  "net_concurrent_test"
  "net_concurrent_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_concurrent_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
