# Empty compiler generated dependencies file for net_concurrent_test.
# This may be replaced when dependencies are built.
