file(REMOVE_RECURSE
  "CMakeFiles/property_http_test.dir/property_http_test.cc.o"
  "CMakeFiles/property_http_test.dir/property_http_test.cc.o.d"
  "property_http_test"
  "property_http_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
