# Empty compiler generated dependencies file for property_http_test.
# This may be replaced when dependencies are built.
