file(REMOVE_RECURSE
  "CMakeFiles/property_invalidation_test.dir/property_invalidation_test.cc.o"
  "CMakeFiles/property_invalidation_test.dir/property_invalidation_test.cc.o.d"
  "property_invalidation_test"
  "property_invalidation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_invalidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
