# Empty compiler generated dependencies file for property_invalidation_test.
# This may be replaced when dependencies are built.
