file(REMOVE_RECURSE
  "CMakeFiles/property_parser_robustness_test.dir/property_parser_robustness_test.cc.o"
  "CMakeFiles/property_parser_robustness_test.dir/property_parser_robustness_test.cc.o.d"
  "property_parser_robustness_test"
  "property_parser_robustness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_parser_robustness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
