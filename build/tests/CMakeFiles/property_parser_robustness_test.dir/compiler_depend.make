# Empty compiler generated dependencies file for property_parser_robustness_test.
# This may be replaced when dependencies are built.
