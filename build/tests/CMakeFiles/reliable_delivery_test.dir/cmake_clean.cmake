file(REMOVE_RECURSE
  "CMakeFiles/reliable_delivery_test.dir/reliable_delivery_test.cc.o"
  "CMakeFiles/reliable_delivery_test.dir/reliable_delivery_test.cc.o.d"
  "reliable_delivery_test"
  "reliable_delivery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliable_delivery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
