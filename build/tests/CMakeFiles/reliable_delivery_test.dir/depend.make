# Empty dependencies file for reliable_delivery_test.
# This may be replaced when dependencies are built.
