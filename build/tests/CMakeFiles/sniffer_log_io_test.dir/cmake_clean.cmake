file(REMOVE_RECURSE
  "CMakeFiles/sniffer_log_io_test.dir/sniffer_log_io_test.cc.o"
  "CMakeFiles/sniffer_log_io_test.dir/sniffer_log_io_test.cc.o.d"
  "sniffer_log_io_test"
  "sniffer_log_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sniffer_log_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
