file(REMOVE_RECURSE
  "CMakeFiles/sniffer_test.dir/sniffer_test.cc.o"
  "CMakeFiles/sniffer_test.dir/sniffer_test.cc.o.d"
  "sniffer_test"
  "sniffer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sniffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
