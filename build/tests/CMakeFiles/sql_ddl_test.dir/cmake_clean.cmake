file(REMOVE_RECURSE
  "CMakeFiles/sql_ddl_test.dir/sql_ddl_test.cc.o"
  "CMakeFiles/sql_ddl_test.dir/sql_ddl_test.cc.o.d"
  "sql_ddl_test"
  "sql_ddl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_ddl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
