# Empty compiler generated dependencies file for sql_ddl_test.
# This may be replaced when dependencies are built.
