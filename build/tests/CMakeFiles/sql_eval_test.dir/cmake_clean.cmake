file(REMOVE_RECURSE
  "CMakeFiles/sql_eval_test.dir/sql_eval_test.cc.o"
  "CMakeFiles/sql_eval_test.dir/sql_eval_test.cc.o.d"
  "sql_eval_test"
  "sql_eval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
