file(REMOVE_RECURSE
  "CMakeFiles/sql_having_test.dir/sql_having_test.cc.o"
  "CMakeFiles/sql_having_test.dir/sql_having_test.cc.o.d"
  "sql_having_test"
  "sql_having_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_having_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
