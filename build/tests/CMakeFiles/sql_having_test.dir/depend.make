# Empty dependencies file for sql_having_test.
# This may be replaced when dependencies are built.
