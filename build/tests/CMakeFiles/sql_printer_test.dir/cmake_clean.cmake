file(REMOVE_RECURSE
  "CMakeFiles/sql_printer_test.dir/sql_printer_test.cc.o"
  "CMakeFiles/sql_printer_test.dir/sql_printer_test.cc.o.d"
  "sql_printer_test"
  "sql_printer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
