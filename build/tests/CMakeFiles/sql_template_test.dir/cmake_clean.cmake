file(REMOVE_RECURSE
  "CMakeFiles/sql_template_test.dir/sql_template_test.cc.o"
  "CMakeFiles/sql_template_test.dir/sql_template_test.cc.o.d"
  "sql_template_test"
  "sql_template_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_template_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
