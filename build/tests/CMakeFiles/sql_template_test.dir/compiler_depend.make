# Empty compiler generated dependencies file for sql_template_test.
# This may be replaced when dependencies are built.
