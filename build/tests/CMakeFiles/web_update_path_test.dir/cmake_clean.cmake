file(REMOVE_RECURSE
  "CMakeFiles/web_update_path_test.dir/web_update_path_test.cc.o"
  "CMakeFiles/web_update_path_test.dir/web_update_path_test.cc.o.d"
  "web_update_path_test"
  "web_update_path_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_update_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
