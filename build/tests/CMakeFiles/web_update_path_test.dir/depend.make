# Empty dependencies file for web_update_path_test.
# This may be replaced when dependencies are built.
