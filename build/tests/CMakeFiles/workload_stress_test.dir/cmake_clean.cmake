file(REMOVE_RECURSE
  "CMakeFiles/workload_stress_test.dir/workload_stress_test.cc.o"
  "CMakeFiles/workload_stress_test.dir/workload_stress_test.cc.o.d"
  "workload_stress_test"
  "workload_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
