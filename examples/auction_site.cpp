// A livelier scenario than the paper's car catalog: an auction site where
// bids arrive continuously. Demonstrates:
//   - temporal sensitivity: the hot-auction ticker demands fresher data
//     than the invalidation cycle can guarantee, so its pages are never
//     cached (Section 3.1's temporal-sensitivity value);
//   - invalidation policies: a hard request-based rule pins the admin
//     page non-cacheable;
//   - self-tuning: the category listing churns so hard that policy
//     discovery marks its query type non-cacheable after a while.
//
// Build & run:  ./build/examples/auction_site

#include <cstdio>

#include "common/strings.h"
#include "core/cache_portal.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"

using namespace cacheportal;

int main() {
  SystemClock clock;
  db::Database database(&clock);
  database
      .CreateTable(db::TableSchema("Auction",
                                   {{"id", db::ColumnType::kInt},
                                    {"category", db::ColumnType::kString},
                                    {"top_bid", db::ColumnType::kInt}}))
      .ok();
  for (int i = 0; i < 12; ++i) {
    database
        .ExecuteSql(StrCat("INSERT INTO Auction VALUES (", i, ", '",
                           i % 2 == 0 ? "art" : "coins", "', ",
                           100 + 10 * i, ")"))
        .value();
  }

  core::CachePortalOptions options;
  options.invalidation_cycle = kMicrosPerSecond;  // 1 s cycles.
  options.invalidator.thresholds.max_invalidation_ratio = 0.6;
  options.invalidator.thresholds.min_checks = 3;
  core::CachePortal portal(&database, &clock, options);

  auto raw_driver = std::make_unique<server::MemoryDbDriver>();
  raw_driver->BindDatabase("auction", &database);
  server::DriverManager drivers;
  drivers.RegisterDriver(portal.WrapDriver(raw_driver.get()));
  auto pool = std::move(
      server::ConnectionPool::Create(
          "pool", "jdbc:cacheportal-log:jdbc:cacheportal:auction", 4,
          &drivers)
          .value());
  server::ApplicationServer app(pool.get());

  auto add_servlet = [&](const std::string& path, const std::string& sql) {
    app.RegisterServlet(
           path,
           std::make_unique<server::FunctionServlet>(
               [sql](const http::HttpRequest& req,
                     server::ServletContext* ctx) {
                 std::string bound = sql;
                 size_t pos = bound.find("$cat");
                 if (pos != std::string::npos) {
                   std::string cat = req.get_params.count("cat")
                                         ? req.get_params.at("cat")
                                         : "art";
                   bound.replace(pos, 4, "'" + cat + "'");
                 }
                 auto rows = ctx->connection->ExecuteQuery(bound);
                 return http::HttpResponse::Ok(
                     rows.ok() ? rows->ToString()
                               : rows.status().ToString());
               }),
           server::ServletConfig{})
        .ok();
  };
  add_servlet("/category",
              "SELECT id, top_bid FROM Auction WHERE category = $cat");
  add_servlet("/ticker",
              "SELECT id, top_bid FROM Auction ORDER BY top_bid DESC "
              "LIMIT 3");
  add_servlet("/admin", "SELECT COUNT(*) FROM Auction");

  portal.AttachTo(&app);
  {
    server::ServletConfig cfg;
    cfg.name = "/category";
    cfg.key_get_params = {"cat"};
    portal.RegisterServlet(cfg);
  }
  {
    server::ServletConfig cfg;
    cfg.name = "/ticker";
    // The ticker must reflect bids within 50 ms — tighter than the 1 s
    // invalidation cycle, so CachePortal refuses to cache it.
    cfg.temporal_sensitivity = 50 * kMicrosPerMilli;
    portal.RegisterServlet(cfg);
  }
  // Hard policy: never cache the admin page.
  portal.AddPolicyRule(
      {invalidator::PolicyRule::Kind::kRequestBased, "/admin", false});

  core::CachingProxy* site = portal.CreateProxy(&app);
  auto get = [&](const std::string& url) {
    auto req = http::HttpRequest::Get(url);
    http::HttpResponse resp = site->Handle(*req);
    std::printf("GET %-32s [%s]\n", url.c_str(),
                resp.headers.Get("X-Cache").value_or("-").c_str());
    return resp;
  };

  std::printf("== category pages cache; ticker and admin never do ==\n");
  get("http://auction/category?cat=art");
  get("http://auction/category?cat=art");     // HIT.
  get("http://auction/ticker");
  get("http://auction/ticker");               // MISS again (sensitive).
  get("http://auction/admin");
  get("http://auction/admin");                // MISS again (policy).

  std::printf("\n== bids arrive; the invalidator keeps pages honest ==\n");
  for (int round = 0; round < 5; ++round) {
    database
        .ExecuteSql(StrCat("UPDATE Auction SET top_bid = top_bid + 25 "
                           "WHERE id = ",
                           2 * round))
        .value();
    auto report = portal.RunCycle().value();
    std::printf("round %d: %llu update(s), %llu page(s) ejected\n", round,
                static_cast<unsigned long long>(report.updates),
                static_cast<unsigned long long>(report.pages_invalidated));
    get("http://auction/category?cat=art");
  }

  std::printf("\n== policy discovery: art-category query type churns ==\n");
  std::printf("query type still cacheable? %s\n",
              portal.invalidator().IsQuerySqlCacheable(
                  "SELECT id, top_bid FROM Auction WHERE category = 'art'")
                  ? "yes"
                  : "no (self-tuned off)");
  return 0;
}
