// The paper's running example (Example 4.1): an e-commerce car site with
// tables Car(maker, model, price) and Mileage(model, EPA). A page lists
// cheap cars joined with their EPA mileage. This example walks through the
// invalidator's three verdicts:
//
//   1. An insert that provably cannot affect the page (condition folds to
//      FALSE) — no work at all.
//   2. An insert whose effect depends on the join — a *polling query* is
//      generated and issued.
//   3. The same decision answered from a *join index* maintained inside
//      the invalidator — zero DBMS polling.
//
// Build & run:  ./build/examples/car_dealership

#include <cstdio>

#include "core/cache_portal.h"
#include "db/database.h"
#include "invalidator/impact.h"
#include "server/app_server.h"
#include "server/jdbc.h"
#include "sql/parser.h"
#include "sql/printer.h"

using namespace cacheportal;

namespace {

constexpr char kQuery1[] =
    "select Car.maker, Car.model, Car.price, Mileage.EPA from Car, Mileage "
    "where Car.model = Mileage.model and Car.price < 20000";

void ShowVerdict(const db::Database& db, const char* label,
                 const invalidator::ImpactResult& impact) {
  const char* kind = impact.kind == invalidator::ImpactKind::kUnaffected
                         ? "UNAFFECTED (no invalidation, no DB work)"
                     : impact.kind == invalidator::ImpactKind::kAffected
                         ? "AFFECTED (invalidate immediately)"
                         : "NEEDS POLLING";
  std::printf("%-42s -> %s\n", label, kind);
  if (impact.polling_query != nullptr) {
    std::string poll = sql::StatementToSql(*impact.polling_query);
    std::printf("    polling query: %s\n", poll.c_str());
    auto result = db.ExecuteQuery(*impact.polling_query);
    std::printf("    poll result:   %s -> %s\n",
                result->rows.empty() ? "empty" : "non-empty",
                result->rows.empty() ? "page stays" : "invalidate page");
  }
}

}  // namespace

int main() {
  SystemClock clock;
  db::Database db(&clock);
  db.CreateTable(db::TableSchema("Car", {{"maker", db::ColumnType::kString},
                                         {"model", db::ColumnType::kString},
                                         {"price", db::ColumnType::kInt}}))
      .ok();
  db.CreateTable(db::TableSchema("Mileage",
                                 {{"model", db::ColumnType::kString},
                                  {"EPA", db::ColumnType::kInt}}))
      .ok();
  db.ExecuteSql("INSERT INTO Mileage VALUES ('Avalon', 28)").value();
  db.ExecuteSql("INSERT INTO Mileage VALUES ('Civic', 36)").value();
  db.ExecuteSql("INSERT INTO Car VALUES ('Honda', 'Civic', 18000)").value();

  std::printf("Query1 (builds URL1):\n  %s\n\n", kQuery1);
  auto query = sql::Parser::ParseSelect(kQuery1).value();
  invalidator::ImpactAnalyzer analyzer(&db);

  std::printf("-- Section 4, Example 4.1 ------------------------------\n");
  // Case 1: the Eclipse insert from the paper. 20000 < 20000 folds FALSE.
  ShowVerdict(db, "insert Car('Mitsubishi','Eclipse',20000)",
              *analyzer.AnalyzeTuple(
                  *query, "Car",
                  {sql::Value::String("Mitsubishi"),
                   sql::Value::String("Eclipse"), sql::Value::Int(20000)}));

  // Case 2: a qualifying Avalon — the join with Mileage must be checked.
  ShowVerdict(db, "insert Car('Toyota','Avalon',15000)",
              *analyzer.AnalyzeTuple(
                  *query, "Car",
                  {sql::Value::String("Toyota"), sql::Value::String("Avalon"),
                   sql::Value::Int(15000)}));

  // Case 3: qualifying price but no Mileage partner.
  ShowVerdict(db, "insert Car('Ford','Focus',15000)",
              *analyzer.AnalyzeTuple(
                  *query, "Car",
                  {sql::Value::String("Ford"), sql::Value::String("Focus"),
                   sql::Value::Int(15000)}));

  // Group processing: a whole delta in one batched polling query.
  std::printf("\n-- Group processing (Section 4.2.1) --------------------\n");
  std::vector<db::Row> delta = {
      {sql::Value::String("T"), sql::Value::String("Avalon"),
       sql::Value::Int(15000)},
      {sql::Value::String("H"), sql::Value::String("Civic"),
       sql::Value::Int(16000)},
      {sql::Value::String("F"), sql::Value::String("Focus"),
       sql::Value::Int(17000)},
  };
  ShowVerdict(db, "batch of 3 Car inserts",
              *analyzer.AnalyzeDelta(*query, "Car", delta));

  // Join index: the same question answered inside the invalidator.
  std::printf("\n-- Join index (Section 4.3) ----------------------------\n");
  sniffer::QiUrlMap map;
  invalidator::Invalidator inv(&db, &map, &clock, {});
  inv.CreateJoinIndex("Mileage", "model").ok();
  map.Add(kQuery1, "dealer/cheap-cars?##", "/cheap-cars", 0);
  db.ExecuteSql("INSERT INTO Car VALUES ('Toyota', 'Avalon', 15000)")
      .value();
  auto report = inv.RunCycle().value();
  std::printf("cycle: %llu checks, %llu poll(s) to the DBMS, "
              "%llu answered by the join index, %llu page(s) invalidated\n",
              static_cast<unsigned long long>(report.checks),
              static_cast<unsigned long long>(report.polls_issued),
              static_cast<unsigned long long>(report.polls_answered_by_index),
              static_cast<unsigned long long>(report.pages_invalidated));
  return 0;
}
