// Reproduces the architecture comparison of Section 5 interactively:
// runs the three site configurations (replication, middle-tier data
// caches, CachePortal's dynamic web cache) under the paper's workload and
// prints response times in the layout of Tables 2 and 3, plus per-module
// utilizations showing where the bottleneck sits.
//
// Build & run:  ./build/examples/config_comparison

#include <cstdio>

#include "sim/site.h"

using namespace cacheportal;
using namespace cacheportal::sim;

namespace {

void PrintRow(const char* label, const RunReport& report, bool has_cache) {
  const SimMetrics& m = report.metrics;
  if (has_cache) {
    std::printf("  %-22s missDB=%8.0f  missResp=%8.0f  hit=%6.0f  "
                "exp=%8.0f (ms)\n",
                label, m.miss_db.Mean(), m.miss_response.Mean(),
                m.hit_response.Mean(), m.response.Mean());
  } else {
    std::printf("  %-22s missDB=%8.0f  missResp=%8.0f  hit=   N/A  "
                "exp=%8.0f (ms)\n",
                label, m.miss_db.Mean(), m.miss_response.Mean(),
                m.response.Mean());
  }
  std::printf("  %-22s p50=%.0f p95=%.0f (ms); util: machines=%.2f "
              "db=%.2f network=%.2f cache=%.2f\n",
              "", report.metrics.Percentile(0.5),
              report.metrics.Percentile(0.95), report.machine_utilization,
              report.db_utilization, report.network_utilization,
              report.cache_utilization);
}

}  // namespace

int main() {
  const UpdateLoad loads[] = {{0, 0, 0, 0}, {5, 5, 5, 5}, {12, 12, 12, 12}};
  const char* load_names[] = {"no updates", "<5,5,5,5>/s", "<12,12,12,12>/s"};

  std::printf("Workload: 30 req/s (10 light + 10 medium + 10 heavy), "
              "70%% cache hit ratio, 4 web servers\n\n");

  for (int i = 0; i < 3; ++i) {
    std::printf("== update load: %s ==\n", load_names[i]);
    for (SiteConfig config : {SiteConfig::kReplicated,
                              SiteConfig::kMiddleTierCache,
                              SiteConfig::kWebCache}) {
      SimParams params;
      params.updates = loads[i];
      RunReport report = RunSiteSimulation(config, params);
      PrintRow(SiteConfigName(config), report,
               config != SiteConfig::kReplicated);
    }
    std::printf("\n");
  }

  std::printf("== Table 3 variant: Conf II with per-access connection "
              "cost at the data cache ==\n");
  for (int i = 0; i < 3; ++i) {
    SimParams params;
    params.updates = loads[i];
    params.data_cache_connection_cost = true;
    RunReport report =
        RunSiteSimulation(SiteConfig::kMiddleTierCache, params);
    PrintRow(load_names[i], report, true);
  }
  return 0;
}
