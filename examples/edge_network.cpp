// The cache topology of the paper's Figure 1: the origin site (with
// CachePortal's front cache) plus edge caches operated by a CDN, all
// CachePortal-compliant. The invalidator's eject messages travel as real
// serialized HTTP to every cache — the "vertical invalidation" of
// Section 6, from the database up to the network edge.
//
// Build & run:  ./build/examples/edge_network

#include <cstdio>

#include "core/cache_portal.h"
#include "core/remote_cache.h"
#include "db/database.h"
#include "server/app_server.h"
#include "server/jdbc.h"

using namespace cacheportal;

int main() {
  SystemClock clock;

  // ---- Origin site: database, app server, CachePortal. ----
  db::Database database(&clock);
  database
      .CreateTable(db::TableSchema("News", {{"id", db::ColumnType::kInt},
                                            {"region", db::ColumnType::kString},
                                            {"headline", db::ColumnType::kString}}))
      .ok();
  database.ExecuteSql("INSERT INTO News VALUES (1, 'us', 'market rallies')")
      .value();
  database.ExecuteSql("INSERT INTO News VALUES (2, 'eu', 'summit opens')")
      .value();

  core::CachePortal portal(&database, &clock);
  auto raw = std::make_unique<server::MemoryDbDriver>();
  raw->BindDatabase("news", &database);
  server::DriverManager drivers;
  drivers.RegisterDriver(portal.WrapDriver(raw.get()));
  auto pool = std::move(
      server::ConnectionPool::Create(
          "pool", "jdbc:cacheportal-log:jdbc:cacheportal:news", 2, &drivers)
          .value());
  server::ApplicationServer app(pool.get());
  app.RegisterServlet(
         "/headlines",
         std::make_unique<server::FunctionServlet>(
             [](const http::HttpRequest& req, server::ServletContext* ctx) {
               std::string region = req.get_params.count("region")
                                        ? req.get_params.at("region")
                                        : "us";
               auto rows = ctx->connection->ExecuteQuery(
                   "SELECT headline FROM News WHERE region = '" + region +
                   "'");
               return http::HttpResponse::Ok(
                   rows.ok() ? rows->ToString() : rows.status().ToString());
             }),
         server::ServletConfig{})
      .ok();
  portal.AttachTo(&app);
  server::ServletConfig config;
  config.name = "/headlines";
  config.key_get_params = {"region"};
  portal.RegisterServlet(config);
  core::CachingProxy* origin = portal.CreateProxy(&app);

  // ---- Two edge caches (say, one per continent), fed by the origin. ----
  cache::PageCache us_edge_cache(100, &clock), eu_edge_cache(100, &clock);
  auto lookup = [&config](const std::string& path)
      -> const server::ServletConfig* {
    return path == "/headlines" ? &config : nullptr;
  };
  core::RemoteCacheEndpoint us_edge(&us_edge_cache, origin, lookup);
  core::RemoteCacheEndpoint eu_edge(&eu_edge_cache, origin, lookup);

  // The invalidator notifies the edges over serialized HTTP.
  core::WireCacheSink us_sink(&us_edge), eu_sink(&eu_edge);
  portal.mutable_invalidator()->AddSink(&us_sink);
  portal.mutable_invalidator()->AddSink(&eu_sink);

  auto edge_get = [&](core::RemoteCacheEndpoint* edge, const char* name,
                      const std::string& url) {
    std::string wire = http::HttpRequest::Get(url)->Serialize();
    auto resp = http::HttpResponse::Parse(edge->HandleWire(wire)).value();
    std::printf("[%s edge] GET %-38s [%s]\n", name, url.c_str(),
                resp.headers.Get("X-Cache").value_or("-").c_str());
    return resp;
  };

  std::printf("== requests hit the edges; misses flow to the origin ==\n");
  edge_get(&us_edge, "US", "http://news/headlines?region=us");
  edge_get(&us_edge, "US", "http://news/headlines?region=us");  // HIT.
  edge_get(&eu_edge, "EU", "http://news/headlines?region=eu");
  edge_get(&eu_edge, "EU", "http://news/headlines?region=eu");  // HIT.
  portal.RunCycle().value();  // QI/URL map now knows both pages.

  std::printf("\n== breaking news in the US region ==\n");
  database
      .ExecuteSql("INSERT INTO News VALUES (3, 'us', 'CachePortal ships')")
      .value();
  auto report = portal.RunCycle().value();
  std::printf("cycle: %llu page(s) invalidated; eject messages: US edge %llu"
              " (confirmed %llu), EU edge %llu (confirmed %llu)\n",
              static_cast<unsigned long long>(report.pages_invalidated),
              static_cast<unsigned long long>(us_sink.messages_sent()),
              static_cast<unsigned long long>(us_sink.ejections_confirmed()),
              static_cast<unsigned long long>(eu_sink.messages_sent()),
              static_cast<unsigned long long>(eu_sink.ejections_confirmed()));

  std::printf("\n== the US page regenerates; the EU page still hits ==\n");
  http::HttpResponse us =
      edge_get(&us_edge, "US", "http://news/headlines?region=us");
  std::printf("%s", us.body.c_str());
  edge_get(&eu_edge, "EU", "http://news/headlines?region=eu");
  return 0;
}
