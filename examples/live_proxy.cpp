// The whole system on a real TCP socket: a database-driven site with
// CachePortal attached, served by the minimal HTTP server, queried by a
// real HTTP client over loopback. This is the deployment shape of the
// paper's Figure 4 with actual bytes on an actual wire.
//
// Build & run:  ./build/examples/live_proxy

#include <cstdio>
#include <mutex>

#include "core/cache_portal.h"
#include "db/database.h"
#include "net/http_server.h"
#include "server/app_server.h"
#include "server/jdbc.h"

using namespace cacheportal;

int main() {
  SystemClock clock;
  db::Database database(&clock);
  database
      .CreateTable(db::TableSchema("Menu", {{"dish", db::ColumnType::kString},
                                            {"price", db::ColumnType::kInt}}))
      .ok();
  database.ExecuteSql("INSERT INTO Menu VALUES ('soup', 6)").value();
  database.ExecuteSql("INSERT INTO Menu VALUES ('pasta', 12)").value();

  core::CachePortal portal(&database, &clock);
  auto raw = std::make_unique<server::MemoryDbDriver>();
  raw->BindDatabase("cafe", &database);
  server::DriverManager drivers;
  drivers.RegisterDriver(portal.WrapDriver(raw.get()));
  auto pool = std::move(
      server::ConnectionPool::Create(
          "pool", "jdbc:cacheportal-log:jdbc:cacheportal:cafe", 2, &drivers)
          .value());
  server::ApplicationServer app(pool.get());
  app.RegisterServlet(
         "/menu",
         std::make_unique<server::FunctionServlet>(
             [](const http::HttpRequest& req, server::ServletContext* ctx) {
               std::string max = req.get_params.count("max")
                                     ? req.get_params.at("max")
                                     : "1000";
               auto rows = ctx->connection->ExecuteQuery(
                   "SELECT dish, price FROM Menu WHERE price < " + max);
               return http::HttpResponse::Ok(
                   rows.ok() ? rows->ToString() : rows.status().ToString());
             }),
         server::ServletConfig{})
      .ok();
  portal.AttachTo(&app);
  server::ServletConfig config;
  config.name = "/menu";
  config.key_get_params = {"max"};
  portal.RegisterServlet(config);
  core::CachingProxy* proxy = portal.CreateProxy(&app);

  // Serve the proxy on a real loopback socket. The handler serializes
  // access because the library is single-threaded by design.
  std::mutex mu;
  auto server = net::HttpServer::Start([&](const std::string& wire) {
    std::lock_guard<std::mutex> lock(mu);
    auto request = http::HttpRequest::Parse(wire);
    if (!request.ok()) {
      return http::HttpResponse(400, request.status().ToString())
          .Serialize();
    }
    return proxy->Handle(*request).Serialize();
  });
  if (!server.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  uint16_t port = (*server)->port();
  std::printf("CachePortal site listening on 127.0.0.1:%u\n\n", port);

  auto fetch = [&](const std::string& path) {
    auto req = http::HttpRequest::Get("http://127.0.0.1" + path);
    auto wire = net::FetchWire(port, req->Serialize());
    auto resp = http::HttpResponse::Parse(*wire).value();
    std::printf("GET %-16s -> %d [%s]\n%s\n", path.c_str(),
                resp.status_code,
                resp.headers.Get("X-Cache").value_or("-").c_str(),
                resp.body.c_str());
    return resp;
  };

  std::printf("== two fetches over TCP: miss, then hit ==\n");
  fetch("/menu?max=10");
  fetch("/menu?max=10");

  std::printf("== the menu changes; the invalidator ejects the page ==\n");
  {
    std::lock_guard<std::mutex> lock(mu);
    database.ExecuteSql("INSERT INTO Menu VALUES ('salad', 8)").value();
    portal.RunCycle().value();
  }
  fetch("/menu?max=10");

  std::printf("server handled %llu requests; shutting down\n",
              static_cast<unsigned long long>((*server)->requests_handled()));
  (*server)->Stop();
  return 0;
}
