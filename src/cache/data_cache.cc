#include "cache/data_cache.h"

#include "common/strings.h"

namespace cacheportal::cache {

DataCache::DataCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<db::QueryResult> DataCache::Lookup(const std::string& sql) {
  ++stats_.lookups;
  auto it = entries_.find(sql);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.erase(it->second.lru_pos);
  lru_.push_front(it->first);
  it->second.lru_pos = lru_.begin();
  ++stats_.hits;
  return it->second.result;
}

void DataCache::Store(const std::string& sql, db::QueryResult result,
                      const std::vector<std::string>& tables) {
  auto it = entries_.find(sql);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  Entry entry;
  entry.result = std::move(result);
  for (const std::string& t : tables) entry.tables.insert(AsciiToLower(t));
  lru_.push_front(sql);
  entry.lru_pos = lru_.begin();
  entries_.emplace(sql, std::move(entry));
  ++stats_.stores;
  EvictIfNeeded();
}

size_t DataCache::Synchronize(const db::DeltaSet& deltas) {
  ++stats_.synchronizations;
  size_t removed = 0;
  std::set<std::string> updated;
  for (const std::string& t : deltas.Tables()) {
    updated.insert(AsciiToLower(t));
  }
  if (updated.empty()) return 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool stale = false;
    for (const std::string& t : it->second.tables) {
      if (updated.contains(t)) {
        stale = true;
        break;
      }
    }
    if (stale) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.entries_invalidated += removed;
  return removed;
}

size_t DataCache::InvalidateTable(const std::string& table) {
  std::string key = AsciiToLower(table);
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.tables.contains(key)) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  stats_.entries_invalidated += removed;
  return removed;
}

void DataCache::Clear() {
  entries_.clear();
  lru_.clear();
}

void DataCache::EvictIfNeeded() {
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
}

}  // namespace cacheportal::cache
