#ifndef CACHEPORTAL_CACHE_DATA_CACHE_H_
#define CACHEPORTAL_CACHE_DATA_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "db/database.h"
#include "db/delta.h"

namespace cacheportal::cache {

/// Counters exposed by DataCache.
struct DataCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t synchronizations = 0;     // Synchronize() calls.
  uint64_t entries_invalidated = 0;  // Results dropped by synchronization.

  double HitRatio() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// A middle-tier data cache in the paper's Configuration II position
/// (Oracle 8i-style): query results cached beside each application server.
/// Results are keyed by SQL text and tagged with the tables they read;
/// Synchronize() drops every result touching an updated table, modeling
/// the database/data-cache synchronization the paper charges Conf. II for.
class DataCache {
 public:
  explicit DataCache(size_t capacity);

  DataCache(const DataCache&) = delete;
  DataCache& operator=(const DataCache&) = delete;

  /// Cached result of `sql`, if present.
  std::optional<db::QueryResult> Lookup(const std::string& sql);

  /// Caches `result` for `sql`; `tables` are the relations it read
  /// (lower-cased for matching).
  void Store(const std::string& sql, db::QueryResult result,
             const std::vector<std::string>& tables);

  /// Applies one synchronization interval: every cached result reading a
  /// table present in `deltas` is invalidated. Returns how many results
  /// were dropped.
  size_t Synchronize(const db::DeltaSet& deltas);

  /// Drops all results reading `table`.
  size_t InvalidateTable(const std::string& table);

  void Clear();

  size_t size() const { return entries_.size(); }
  const DataCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DataCacheStats(); }

 private:
  struct Entry {
    db::QueryResult result;
    std::set<std::string> tables;  // Lower-cased.
    std::list<std::string>::iterator lru_pos;
  };

  void EvictIfNeeded();

  size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // Front = most recently used.
  DataCacheStats stats_;
};

}  // namespace cacheportal::cache

#endif  // CACHEPORTAL_CACHE_DATA_CACHE_H_
