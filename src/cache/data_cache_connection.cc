#include "cache/data_cache_connection.h"

#include "sql/parser.h"

namespace cacheportal::cache {

Result<db::QueryResult> DataCacheConnection::ExecuteQuery(
    const std::string& sql) {
  if (std::optional<db::QueryResult> hit = cache_.Lookup(sql);
      hit.has_value()) {
    return *hit;
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(db::QueryResult result,
                               inner_->ExecuteQuery(sql));
  // Tag the result with the relations it read so synchronization can
  // invalidate it. Unparseable SQL is forwarded uncached (never stale).
  Result<std::unique_ptr<sql::SelectStatement>> select =
      sql::Parser::ParseSelect(sql);
  if (select.ok()) {
    std::vector<std::string> tables;
    tables.reserve((*select)->from.size());
    for (const sql::TableRef& ref : (*select)->from) {
      tables.push_back(ref.table);
    }
    cache_.Store(sql, result, tables);
  }
  return result;
}

Result<int64_t> DataCacheConnection::ExecuteUpdate(const std::string& sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(int64_t affected,
                               inner_->ExecuteUpdate(sql));
  // Write-through hygiene: drop our own cached results for the table this
  // statement touched.
  Result<sql::StatementPtr> parsed = sql::Parser::Parse(sql);
  if (parsed.ok()) {
    switch ((*parsed)->kind()) {
      case sql::StatementKind::kInsert:
        cache_.InvalidateTable(
            static_cast<const sql::InsertStatement&>(**parsed).table);
        break;
      case sql::StatementKind::kDelete:
        cache_.InvalidateTable(
            static_cast<const sql::DeleteStatement&>(**parsed).table);
        break;
      case sql::StatementKind::kUpdate:
        cache_.InvalidateTable(
            static_cast<const sql::UpdateStatement&>(**parsed).table);
        break;
      default:
        break;
    }
  }
  return affected;
}

}  // namespace cacheportal::cache
