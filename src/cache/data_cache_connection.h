#ifndef CACHEPORTAL_CACHE_DATA_CACHE_CONNECTION_H_
#define CACHEPORTAL_CACHE_DATA_CACHE_CONNECTION_H_

#include <string>

#include "cache/data_cache.h"
#include "server/jdbc.h"

namespace cacheportal::cache {

/// Configuration II's middle-tier data cache as a JDBC decorator
/// (Oracle 8i-style): a Connection that answers repeated SELECTs from a
/// local DataCache and forwards misses (and all DML) to the inner
/// connection. Deployed between the application server and its pool, it
/// is invisible to servlets — exactly how the paper describes middle-tier
/// data caching.
///
/// Consistency is the deployment's responsibility: call Synchronize()
/// with each interval's deltas (the paper's once-per-second cache/DBMS
/// synchronization), or results go stale. DML through THIS connection
/// invalidates the tables it touches immediately (write-through hygiene);
/// updates arriving on other paths are only seen at synchronization.
class DataCacheConnection : public server::Connection {
 public:
  /// `inner` is not owned and must outlive this connection.
  DataCacheConnection(server::Connection* inner, size_t capacity)
      : inner_(inner), cache_(capacity) {}

  // server::Connection:
  Result<db::QueryResult> ExecuteQuery(const std::string& sql) override;
  Result<int64_t> ExecuteUpdate(const std::string& sql) override;

  /// Drops cached results reading tables updated in `deltas`; returns the
  /// number dropped.
  size_t Synchronize(const db::DeltaSet& deltas) {
    return cache_.Synchronize(deltas);
  }

  const DataCacheStats& stats() const { return cache_.stats(); }
  size_t size() const { return cache_.size(); }

 private:
  server::Connection* inner_;
  DataCache cache_;
};

}  // namespace cacheportal::cache

#endif  // CACHEPORTAL_CACHE_DATA_CACHE_CONNECTION_H_
