#include "cache/page_cache.h"

namespace cacheportal::cache {

PageCache::PageCache(size_t capacity, const Clock* clock)
    : capacity_(capacity == 0 ? 1 : capacity), clock_(clock) {}

std::optional<http::HttpResponse> PageCache::Lookup(const http::PageId& id) {
  ++stats_.lookups;
  std::string key = id.CacheKey();
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = it->second;
  if (entry.expires_at.has_value() &&
      clock_->NowMicros() >= *entry.expires_at) {
    lru_.erase(entry.lru_pos);
    entries_.erase(it);
    ++stats_.expirations;
    ++stats_.misses;
    return std::nullopt;
  }
  Touch(key, entry);
  ++stats_.hits;
  return entry.response;
}

bool PageCache::Store(const http::PageId& id,
                      const http::HttpResponse& response) {
  http::CacheControl cc = response.GetCacheControl();
  if (!cc.CacheableByCachePortal()) {
    ++stats_.rejected_stores;
    return false;
  }
  std::string key = id.CacheKey();
  Micros now = clock_->NowMicros();

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
  }
  Entry entry;
  entry.response = response;
  entry.stored_at = now;
  if (cc.max_age_seconds.has_value()) {
    entry.expires_at = now + *cc.max_age_seconds * kMicrosPerSecond;
  }
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  entries_.emplace(std::move(key), std::move(entry));
  ++stats_.stores;
  EvictIfNeeded();
  return true;
}

bool PageCache::Invalidate(const http::PageId& id) {
  return InvalidateKey(id.CacheKey());
}

bool PageCache::InvalidateKey(const std::string& cache_key) {
  auto it = entries_.find(cache_key);
  if (it == entries_.end()) return false;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  ++stats_.invalidations;
  return true;
}

http::HttpResponse PageCache::HandleInvalidationRequest(
    const http::HttpRequest& req) {
  std::optional<std::string> cc_header = req.headers.Get("Cache-Control");
  if (!cc_header.has_value() ||
      !http::CacheControl::Parse(*cc_header).eject) {
    return http::HttpResponse(400, "missing eject directive");
  }
  if (Invalidate(req.ToPageId())) {
    return http::HttpResponse(204, "");
  }
  return http::HttpResponse(404, "page not cached");
}

size_t PageCache::InvalidateMatching(
    const std::function<bool(const std::string&)>& pred) {
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (pred(it->first)) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
      ++removed;
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
  return removed;
}

void PageCache::Clear() {
  entries_.clear();
  lru_.clear();
}

bool PageCache::Contains(const http::PageId& id) const {
  return entries_.contains(id.CacheKey());
}

std::vector<std::string> PageCache::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(key);
  return keys;
}

void PageCache::Touch(const std::string& key, Entry& entry) {
  lru_.erase(entry.lru_pos);
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
}

void PageCache::EvictIfNeeded() {
  while (entries_.size() > capacity_) {
    const std::string& victim = lru_.back();
    entries_.erase(victim);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace cacheportal::cache
