#ifndef CACHEPORTAL_CACHE_PAGE_CACHE_H_
#define CACHEPORTAL_CACHE_PAGE_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/clock.h"
#include "http/message.h"
#include "http/url.h"

namespace cacheportal::cache {

/// Counters exposed by PageCache for experiments and self-tuning.
struct PageCacheStats {
  uint64_t lookups = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t stores = 0;
  uint64_t rejected_stores = 0;   // Response was not cacheable.
  uint64_t invalidations = 0;     // Removed by eject messages.
  uint64_t evictions = 0;         // Removed by LRU pressure.
  uint64_t expirations = 0;       // Removed because max-age passed.

  double HitRatio() const {
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
  }
};

/// A dynamic-content web cache in the paper's Configuration III position:
/// it stores full HTTP responses keyed by the page identity (URL + key
/// parameters), evicts LRU, honors max-age expiry, and understands the
/// `Cache-Control: eject` invalidation message sent by the invalidator.
///
/// The cache is CachePortal-compliant: responses marked
/// `private, owner="cacheportal"` are cacheable here but not elsewhere.
class PageCache {
 public:
  /// `capacity` is the maximum number of cached pages; `clock` drives
  /// expiry (must outlive the cache).
  PageCache(size_t capacity, const Clock* clock);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Returns the cached response for `id` if present and fresh.
  std::optional<http::HttpResponse> Lookup(const http::PageId& id);

  /// Stores `response` under `id` if its Cache-Control allows a
  /// CachePortal cache to keep it. Returns true if stored.
  bool Store(const http::PageId& id, const http::HttpResponse& response);

  /// Removes the page with identity `id`. Returns true if it was cached.
  bool Invalidate(const http::PageId& id);

  /// Removes the page with the given canonical cache key.
  bool InvalidateKey(const std::string& cache_key);

  /// Handles an invalidation HTTP message: a request carrying
  /// `Cache-Control: eject` removes the addressed page. Returns 204 when
  /// ejected, 404 when the page was not cached, and 400 for a request
  /// without the eject directive.
  http::HttpResponse HandleInvalidationRequest(const http::HttpRequest& req);

  /// Removes every cached page whose key satisfies `pred`; returns count.
  size_t InvalidateMatching(
      const std::function<bool(const std::string& cache_key)>& pred);

  /// Drops everything.
  void Clear();

  bool Contains(const http::PageId& id) const;
  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }

  const PageCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PageCacheStats(); }

  /// Canonical keys of all cached pages (diagnostics).
  std::vector<std::string> Keys() const;

 private:
  struct Entry {
    http::HttpResponse response;
    Micros stored_at = 0;
    std::optional<Micros> expires_at;
    std::list<std::string>::iterator lru_pos;
  };

  void Touch(const std::string& key, Entry& entry);
  void EvictIfNeeded();

  size_t capacity_;
  const Clock* clock_;
  std::unordered_map<std::string, Entry> entries_;
  // Front = most recently used.
  std::list<std::string> lru_;
  PageCacheStats stats_;
};

}  // namespace cacheportal::cache

#endif  // CACHEPORTAL_CACHE_PAGE_CACHE_H_
