#include "common/clock.h"

#include <chrono>

namespace cacheportal {

namespace {

Micros SteadyNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

SystemClock::SystemClock() : epoch_(SteadyNow()) {}

Micros SystemClock::NowMicros() const { return SteadyNow() - epoch_; }

}  // namespace cacheportal
