#ifndef CACHEPORTAL_COMMON_CLOCK_H_
#define CACHEPORTAL_COMMON_CLOCK_H_

#include <cstdint>

namespace cacheportal {

/// Microseconds since an arbitrary epoch. All timestamps in the library
/// (request logs, query logs, update logs, simulation events) use this unit.
using Micros = int64_t;

constexpr Micros kMicrosPerMilli = 1000;
constexpr Micros kMicrosPerSecond = 1000 * 1000;

/// Abstract time source. Components take a Clock* so that tests and the
/// discrete-event simulator can control time; production wiring uses
/// SystemClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds since this clock's epoch.
  virtual Micros NowMicros() const = 0;
};

/// Wall-clock time source backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  SystemClock();

  Micros NowMicros() const override;

 private:
  Micros epoch_;
};

/// Manually advanced clock for tests and simulation.
class ManualClock : public Clock {
 public:
  explicit ManualClock(Micros start = 0) : now_(start) {}

  Micros NowMicros() const override { return now_; }

  /// Moves time forward by `delta` microseconds (must be >= 0).
  void Advance(Micros delta) { now_ += delta; }

  /// Jumps to an absolute time (must not move backwards in normal use).
  void SetTime(Micros now) { now_ = now; }

 private:
  Micros now_;
};

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_CLOCK_H_
