#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace cacheportal {

namespace {

Status ErrnoStatus(const char* op, const std::string& path) {
  return Status::Internal(StrCat(op, " '", path, "': ", std::strerror(errno)));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    while (!data.empty()) {
      ssize_t n = ::write(fd_, data.data(), data.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      data.remove_prefix(static_cast<size_t>(n));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ >= 0 && ::close(fd_) != 0) {
      fd_ = -1;
      return ErrnoStatus("close", path_);
    }
    fd_ = -1;
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

PosixEnv* PosixEnv::Default() {
  static PosixEnv* env = new PosixEnv();
  return env;
}

Result<std::unique_ptr<WritableFile>> PosixEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("open", path);
  return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
}

Result<std::string> PosixEnv::ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound(StrCat("no such file: ", path));
    }
    return ErrnoStatus("open", path);
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ErrnoStatus("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from);
  }
  return Status::OK();
}

Status PosixEnv::DeleteFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
  return Status::OK();
}

Status PosixEnv::CreateDir(const std::string& path) {
  // mkdir -p: create every prefix, tolerating ones that already exist.
  for (size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    std::string prefix = path.substr(0, i);
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", prefix);
    }
  }
  return Status::OK();
}

Status PosixEnv::SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoStatus("open dir", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    return ErrnoStatus("fsync dir", dir);
  }
  ::close(fd);
  return Status::OK();
}

Result<std::vector<std::string>> PosixEnv::ListDir(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ErrnoStatus("opendir", dir);
  std::vector<std::string> out;
  for (struct dirent* entry = ::readdir(d); entry != nullptr;
       entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    struct stat st;
    std::string full = StrCat(dir, "/", name);
    if (::stat(full.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      out.push_back(std::move(name));
    }
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

bool PosixEnv::FileExists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

Status PosixEnv::TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate", path);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SimEnv

/// A handle into the simulated filesystem. Holds the inode directly (not
/// the path) so renames don't detach it — exactly like a POSIX fd.
class SimWritableFile : public WritableFile {
 public:
  SimWritableFile(SimEnv* env, SimEnv::InodePtr inode, uint64_t generation)
      : env_(env), inode_(std::move(inode)), generation_(generation) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    CACHEPORTAL_RETURN_NOT_OK(CheckLiveLocked());
    if (env_->MaybeCrashLocked("env:append:before")) {
      return env_->CrashedStatus();
    }
    inode_->live.append(data.data(), data.size());
    if (env_->MaybeCrashLocked("env:append:after")) {
      return env_->CrashedStatus();
    }
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    CACHEPORTAL_RETURN_NOT_OK(CheckLiveLocked());
    if (env_->MaybeCrashLocked("env:sync:before")) {
      return env_->CrashedStatus();
    }
    // The torn-tail point: the kernel got half the dirty range to the
    // platter before power died.
    if (env_->faults_ != nullptr &&
        env_->faults_->CrashAt("env:sync:partial")) {
      if (inode_->live.size() > inode_->durable.size()) {
        size_t unsynced = inode_->live.size() - inode_->durable.size();
        inode_->durable =
            inode_->live.substr(0, inode_->durable.size() + (unsynced + 1) / 2);
      } else {
        inode_->durable = inode_->live;
      }
      env_->crashed_ = true;
      return env_->CrashedStatus();
    }
    inode_->durable = inode_->live;
    if (env_->MaybeCrashLocked("env:sync:after")) {
      return env_->CrashedStatus();
    }
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

 private:
  /// Caller holds env_->mu_.
  Status CheckLiveLocked() const {
    if (env_->crashed_) return env_->CrashedStatus();
    if (generation_ != env_->generation_) {
      return Status::Internal("stale file handle (SimEnv recovered)");
    }
    return Status::OK();
  }

  SimEnv* env_;
  SimEnv::InodePtr inode_;
  uint64_t generation_;
};

bool SimEnv::MaybeCrashLocked(const char* point) {
  if (faults_ != nullptr && faults_->CrashAt(point)) {
    crashed_ = true;
    return true;
  }
  return false;
}

std::string SimEnv::DirOf(const std::string& path) {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";  // Matches AtomicFileWriter.
  return path.substr(0, slash);
}

Result<std::unique_ptr<WritableFile>> SimEnv::NewWritableFile(
    const std::string& path, bool truncate) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  InodePtr& inode = live_ns_[path];
  if (inode == nullptr) inode = std::make_shared<Inode>();
  // O_TRUNC clears what readers see; the durable bytes linger until the
  // next Sync (a crash in between may resurrect pre-truncate content —
  // the strictest reading of POSIX, which recovery code must tolerate).
  if (truncate) inode->live.clear();
  return std::unique_ptr<WritableFile>(
      new SimWritableFile(this, inode, generation_));
}

Result<std::string> SimEnv::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  auto it = live_ns_.find(path);
  if (it == live_ns_.end()) {
    return Status::NotFound(StrCat("no such file: ", path));
  }
  return it->second->live;
}

Status SimEnv::RenameFile(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  auto it = live_ns_.find(from);
  if (it == live_ns_.end()) {
    return Status::NotFound(StrCat("no such file: ", from));
  }
  if (MaybeCrashLocked("env:rename:before")) return CrashedStatus();
  InodePtr inode = it->second;
  live_ns_.erase(it);
  live_ns_[to] = std::move(inode);
  if (MaybeCrashLocked("env:rename:after")) return CrashedStatus();
  return Status::OK();
}

Status SimEnv::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  auto it = live_ns_.find(path);
  if (it == live_ns_.end()) {
    return Status::NotFound(StrCat("no such file: ", path));
  }
  if (MaybeCrashLocked("env:delete:before")) return CrashedStatus();
  live_ns_.erase(it);
  if (MaybeCrashLocked("env:delete:after")) return CrashedStatus();
  return Status::OK();
}

Status SimEnv::CreateDir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  // Directory creation is modeled as immediately durable — the store
  // creates its directory once at deploy time, long before any crash
  // the tests care about.
  dirs_.insert(path);
  return Status::OK();
}

Status SimEnv::SyncDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  if (MaybeCrashLocked("env:dirsync:before")) return CrashedStatus();
  // Promote the directory's namespace: durable entries under `dir`
  // become exactly the live ones. File CONTENT durability is untouched
  // (that's Sync's job) — the inodes are shared between the namespaces.
  for (auto it = durable_ns_.begin(); it != durable_ns_.end();) {
    if (DirOf(it->first) == dir) {
      it = durable_ns_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : live_ns_) {
    if (DirOf(path) == dir) durable_ns_[path] = inode;
  }
  if (MaybeCrashLocked("env:dirsync:after")) return CrashedStatus();
  return Status::OK();
}

Result<std::vector<std::string>> SimEnv::ListDir(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  std::vector<std::string> out;
  for (const auto& [path, inode] : live_ns_) {
    if (DirOf(path) == dir) out.push_back(path.substr(dir.size() + 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool SimEnv::FileExists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return live_ns_.count(path) != 0;
}

Status SimEnv::TruncateFile(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return CrashedStatus();
  auto it = live_ns_.find(path);
  if (it == live_ns_.end()) {
    return Status::NotFound(StrCat("no such file: ", path));
  }
  if (MaybeCrashLocked("env:truncate:before")) return CrashedStatus();
  Inode& inode = *it->second;
  if (size < inode.live.size()) inode.live.resize(size);
  if (MaybeCrashLocked("env:truncate:after")) return CrashedStatus();
  return Status::OK();
}

bool SimEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

void SimEnv::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [path, inode] : durable_ns_) {
    inode->live = inode->durable;
  }
  live_ns_ = durable_ns_;
  crashed_ = false;
  ++generation_;
}

Status SimEnv::CorruptFile(const std::string& path, uint64_t offset,
                           std::string_view bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_ns_.find(path);
  if (it == live_ns_.end()) {
    return Status::NotFound(StrCat("no such file: ", path));
  }
  Inode& inode = *it->second;
  if (offset + bytes.size() > inode.live.size()) {
    return Status::InvalidArgument("corruption range past end of file");
  }
  inode.live.replace(offset, bytes.size(), bytes);
  // The corruption models bad bytes ON MEDIA, so it hits the durable
  // image too (clamped to its length).
  if (offset < inode.durable.size()) {
    size_t n = std::min<size_t>(bytes.size(), inode.durable.size() - offset);
    inode.durable.replace(offset, n, bytes.substr(0, n));
  }
  return Status::OK();
}

}  // namespace cacheportal
