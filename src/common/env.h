#ifndef CACHEPORTAL_COMMON_ENV_H_
#define CACHEPORTAL_COMMON_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"

namespace cacheportal {

/// An open file accepting appended bytes. Append() buffers (the bytes
/// may be lost on a crash); Sync() makes everything appended so far
/// durable. Close() does NOT sync.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  virtual Status Append(std::string_view data) = 0;
  virtual Status Sync() = 0;
  virtual Status Close() = 0;
};

/// The filesystem surface the storage layer is written against. Two
/// implementations: PosixEnv (the real thing) and SimEnv (an in-memory
/// filesystem with an explicit durable/volatile split and crash
/// injection, for the crash-point sweep tests).
///
/// Durability contract — the same one POSIX gives:
///   - Appended bytes survive a crash only after WritableFile::Sync().
///   - A created/renamed/deleted NAME survives a crash only after
///     SyncDir() on its parent directory; the file's CONTENT still only
///     survives up to its last Sync().
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending, creating it if absent. With `truncate`,
  /// existing content is discarded first.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// The file's full current (volatile) content.
  virtual Result<std::string> ReadFile(const std::string& path) = 0;

  /// Renames `from` onto `to`, atomically replacing any existing `to`.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status DeleteFile(const std::string& path) = 0;

  /// Creates `path` (and parents) if absent; OK if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// Makes `dir`'s namespace operations (creates, renames, deletes)
  /// durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  /// Names (not paths) of the regular files directly inside `dir`,
  /// sorted ascending.
  virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  /// Shrinks `path` to its first `size` bytes (torn-tail repair).
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;
};

/// The real filesystem. Stateless; one shared instance.
class PosixEnv : public Env {
 public:
  static PosixEnv* Default();

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
};

/// In-memory filesystem with an explicit volatile/durable split, the
/// substrate of the crash-point sweep. Every file is an inode holding
/// `live` bytes (what readers see now) and `durable` bytes (what
/// survives a crash); the namespace is likewise doubled. Sync() promotes
/// a file's live bytes to durable; SyncDir() promotes the directory's
/// namespace. Crash() throws away everything volatile — exactly the
/// state a machine reboot leaves on a POSIX filesystem that honors
/// fsync.
///
/// Crash injection: when built over a FaultInjector with an armed crash
/// point (FaultInjector::ArmCrash), every filesystem mutation consults
/// CrashAt() at named points — before and after each append, sync,
/// rename, delete, and directory sync, plus a "partial sync" point that
/// makes only half the unsynced bytes durable (a torn tail). When the
/// armed point fires the env crashes itself: the mutation fails with
/// Status::Internal("simulated crash..."), and every subsequent
/// operation fails until Recover() is called.
///
/// Thread-safe (one mutex); determinstic given the injector's arming.
class SimEnv : public Env {
 public:
  /// `faults` may be null (no crash injection); not owned.
  explicit SimEnv(FaultInjector* faults = nullptr) : faults_(faults) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Result<std::string> ReadFile(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

  /// True once an armed crash point fired (every op fails until
  /// Recover()).
  bool crashed() const;

  /// Simulated reboot: volatile state is discarded (live := durable for
  /// every surviving inode, namespace := durable namespace), open file
  /// handles from before the crash go stale, and operations work again.
  /// Also usable without a prior crash to model a clean power cut.
  void Recover();

  /// Test hook: replaces `path`'s bytes in place — live AND durable —
  /// without moving through the crash-point machinery. For building
  /// corruption corpora (bit flips, truncations) between incarnations.
  Status CorruptFile(const std::string& path, uint64_t offset,
                     std::string_view bytes);

 private:
  friend class SimWritableFile;

  struct Inode {
    std::string live;
    std::string durable;
  };
  using InodePtr = std::shared_ptr<Inode>;

  /// Caller holds mu_. Consults the injector; on fire, marks the env
  /// crashed and returns true (the caller fails its operation).
  bool MaybeCrashLocked(const char* point);
  Status CrashedStatus() const {
    return Status::Internal("simulated crash (SimEnv)");
  }
  static std::string DirOf(const std::string& path);

  FaultInjector* faults_;
  mutable std::mutex mu_;
  bool crashed_ = false;
  /// Bumped by Recover(); handles opened before a recovery are stale.
  uint64_t generation_ = 0;
  std::map<std::string, InodePtr> live_ns_;
  std::map<std::string, InodePtr> durable_ns_;
  std::set<std::string> dirs_;
};

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_ENV_H_
