#include "common/fault_injector.h"

#include <algorithm>

namespace cacheportal {

std::string FaultInjector::Malform(std::string bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes.empty()) return "\x01";
  switch (rng_.Uniform(3)) {
    case 0:  // Truncate somewhere inside the payload.
      bytes.resize(rng_.Uniform(bytes.size()));
      if (bytes.empty()) bytes = "\x01";
      break;
    case 1: {  // Flip bytes in the framing (status/request line).
      size_t window = std::min<size_t>(bytes.size(), 32);
      size_t flips = 1 + rng_.Uniform(4);
      for (size_t i = 0; i < flips; ++i) {
        size_t pos = rng_.Uniform(window);
        bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5a);
      }
      break;
    }
    default:  // Destroy the framing: no status line, no CRLFCRLF.
      bytes = "\x7f garbled " + bytes.substr(bytes.size() / 2);
      for (char& c : bytes) {
        if (c == '\r' || c == '\n') c = ' ';
      }
      break;
  }
  return bytes;
}

}  // namespace cacheportal
