#include "common/fault_injector.h"

#include <algorithm>

namespace cacheportal {

std::string FaultInjector::Malform(std::string bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes.empty()) return "\x01";
  switch (rng_.Uniform(3)) {
    case 0:  // Truncate somewhere inside the payload.
      bytes.resize(rng_.Uniform(bytes.size()));
      if (bytes.empty()) bytes = "\x01";
      break;
    case 1: {  // Flip bytes in the framing (status/request line).
      size_t window = std::min<size_t>(bytes.size(), 32);
      size_t flips = 1 + rng_.Uniform(4);
      for (size_t i = 0; i < flips; ++i) {
        size_t pos = rng_.Uniform(window);
        bytes[pos] = static_cast<char>(bytes[pos] ^ 0x5a);
      }
      break;
    }
    default:  // Destroy the framing: no status line, no CRLFCRLF.
      bytes = "\x7f garbled " + bytes.substr(bytes.size() / 2);
      for (char& c : bytes) {
        if (c == '\r' || c == '\n') c = ' ';
      }
      break;
  }
  return bytes;
}

std::vector<FaultWindow> FaultInjector::MakeBurstSchedule(
    uint64_t seed, size_t bursts, Micros horizon, Micros burst_length,
    Micros added_delay) {
  std::vector<FaultWindow> windows;
  if (bursts == 0 || horizon == 0) return windows;
  // Stratified placement: one burst lands uniformly inside each
  // horizon/bursts stratum, so bursts never overlap and the whole
  // horizon sees comparable stress. A dedicated RNG keeps the schedule
  // a function of the seed alone.
  Random rng(seed);
  Micros stratum = horizon / static_cast<Micros>(bursts);
  if (stratum == 0) stratum = 1;
  Micros length = std::min(burst_length, stratum);
  if (length == 0) length = 1;
  for (size_t i = 0; i < bursts; ++i) {
    Micros stratum_start = static_cast<Micros>(i) * stratum;
    Micros slack = stratum - length;
    Micros offset =
        slack > 0 ? static_cast<Micros>(rng.Uniform(
                        static_cast<uint64_t>(slack) + 1))
                  : 0;
    FaultWindow window;
    window.start = stratum_start + offset;
    window.end = window.start + length;
    window.config.drop_probability = 1.0;  // Total sink failure.
    if (added_delay > 0) {
      window.config.delay_probability = 1.0;
      window.config.delay = added_delay;
    }
    windows.push_back(window);
  }
  return windows;
}

}  // namespace cacheportal
