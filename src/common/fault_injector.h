#ifndef CACHEPORTAL_COMMON_FAULT_INJECTOR_H_
#define CACHEPORTAL_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/random.h"

namespace cacheportal {

/// Probabilities and magnitudes of the faults an injector produces. All
/// probabilities are independent per decision point; a config of all
/// zeros injects nothing.
struct FaultConfig {
  /// The message or response vanishes entirely (lost datagram, closed
  /// connection): the operation fails and nothing reaches the peer.
  double drop_probability = 0.0;
  /// The operation fails visibly (connection reset, 5xx) without any
  /// side effect — retrying may succeed.
  double transient_error_probability = 0.0;
  /// The operation's bytes are corrupted in transit; the peer receives
  /// something unparseable.
  double malform_probability = 0.0;
  /// The operation is slowed (or its acknowledgement lost) by `delay`.
  double delay_probability = 0.0;
  /// Injected latency when a delay fires.
  Micros delay = 50 * kMicrosPerMilli;
};

/// Deterministic, seeded fault-decision engine for robustness tests and
/// chaos benches. The injector itself only answers "should this
/// operation fail, and how?"; layer-specific wrappers consult it:
///
///   - invalidator::FaultInjectingSink wraps an InvalidationSink,
///   - server::FaultInjectingConnection wraps a server::Connection,
///   - net::WrapWireHandlerWithFaults wraps an HttpServer::WireHandler.
///
/// Decisions consume the internal RNG in a fixed order (drop, error,
/// malform, delay), so two injectors with the same seed and config make
/// identical decisions — tests replay exactly.
///
/// Thread-safe: wire-level wrappers consult the injector from server
/// threads while the test thread stages fault windows via SetConfig /
/// Heal, so every member serializes on an internal mutex.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed, FaultConfig config = {})
      : rng_(seed), config_(config) {}

  /// Replaces the active fault mix (e.g. to stage a fault window).
  void SetConfig(const FaultConfig& config) {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
  }

  /// Stops injecting: all probabilities to zero. Counters are kept.
  void Heal() {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = FaultConfig{};
  }

  FaultConfig config() const {
    std::lock_guard<std::mutex> lock(mu_);
    return config_;
  }

  /// True if the current operation's payload should be lost.
  bool ShouldDrop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(config_.drop_probability)) return false;
    ++drops_injected_;
    return true;
  }

  /// True if the current operation should fail with a transient error.
  bool ShouldError() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(config_.transient_error_probability)) return false;
    ++errors_injected_;
    return true;
  }

  /// True if the current operation's bytes should be corrupted.
  bool ShouldMalform() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(config_.malform_probability)) return false;
    ++malforms_injected_;
    return true;
  }

  /// The latency to inject into the current operation, if any.
  std::optional<Micros> ShouldDelay() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(config_.delay_probability)) return std::nullopt;
    ++delays_injected_;
    return config_.delay;
  }

  /// Deterministically corrupts `bytes`: truncation, framing byte flips,
  /// or wholesale garbling, chosen from the injector's RNG. The result
  /// differs from the input and does not parse as an HTTP message.
  std::string Malform(std::string bytes);

  // Lifetime counters (survive Heal()).
  uint64_t drops_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return drops_injected_;
  }
  uint64_t errors_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return errors_injected_;
  }
  uint64_t malforms_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return malforms_injected_;
  }
  uint64_t delays_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delays_injected_;
  }
  uint64_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return drops_injected_ + errors_injected_ + malforms_injected_ +
           delays_injected_;
  }

 private:
  /// Caller holds mu_.
  bool Fires(double probability) {
    if (probability <= 0.0) return false;
    return rng_.NextDouble() < probability;
  }

  mutable std::mutex mu_;
  Random rng_;
  FaultConfig config_;
  uint64_t drops_injected_ = 0;
  uint64_t errors_injected_ = 0;
  uint64_t malforms_injected_ = 0;
  uint64_t delays_injected_ = 0;
};

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_FAULT_INJECTOR_H_
