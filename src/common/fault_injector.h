#ifndef CACHEPORTAL_COMMON_FAULT_INJECTOR_H_
#define CACHEPORTAL_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/random.h"

namespace cacheportal {

/// Probabilities and magnitudes of the faults an injector produces. All
/// probabilities are independent per decision point; a config of all
/// zeros injects nothing.
struct FaultConfig {
  /// The message or response vanishes entirely (lost datagram, closed
  /// connection): the operation fails and nothing reaches the peer.
  double drop_probability = 0.0;
  /// The operation fails visibly (connection reset, 5xx) without any
  /// side effect — retrying may succeed.
  double transient_error_probability = 0.0;
  /// The operation's bytes are corrupted in transit; the peer receives
  /// something unparseable.
  double malform_probability = 0.0;
  /// The operation is slowed (or its acknowledgement lost) by `delay`.
  double delay_probability = 0.0;
  /// Injected latency when a delay fires.
  Micros delay = 50 * kMicrosPerMilli;

  // ---- Socket-level faults (consulted by the wire transports). ----
  // These model what TCP actually does to a connection, as opposed to
  // the message-level faults above: net::WireInvalidationClient consults
  // them around every socket write, and net::InvalidationServer around
  // every reply.

  /// Only a prefix of the bytes reaches the wire before the connection
  /// dies — the peer sees a torn frame, the classic crash-mid-write
  /// residue (the socket analogue of a WAL torn tail).
  double partial_write_probability = 0.0;
  /// The connection is reset (RST) mid-exchange: the write fails and the
  /// socket is unusable; reconnecting may succeed.
  double reset_probability = 0.0;
  /// The network is partitioned: connects are refused and in-flight
  /// bytes are blackholed until the partition (typically a FaultWindow)
  /// lifts.
  double partition_probability = 0.0;
};

/// A scheduled fault burst: while the injector's clock reads a time in
/// [start, end) the window's config replaces the base config. Windows
/// model overload storms — a sink going fully dark for a stretch — as
/// opposed to the base config's steady background noise.
struct FaultWindow {
  Micros start = 0;  // Inclusive.
  Micros end = 0;    // Exclusive.
  FaultConfig config;
};

/// Deterministic, seeded fault-decision engine for robustness tests and
/// chaos benches. The injector itself only answers "should this
/// operation fail, and how?"; layer-specific wrappers consult it:
///
///   - invalidator::FaultInjectingSink wraps an InvalidationSink,
///   - server::FaultInjectingConnection wraps a server::Connection,
///   - net::WrapWireHandlerWithFaults wraps an HttpServer::WireHandler.
///
/// Decisions consume the internal RNG in the order the wrapper consults
/// them (each Should* call draws exactly one value), so two injectors
/// with the same seed, config, and decision sequence make identical
/// decisions — tests replay exactly.
///
/// Thread-safe: wire-level wrappers consult the injector from server
/// threads while the test thread stages fault windows via SetConfig /
/// Heal, so every member serializes on an internal mutex.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed, FaultConfig config = {})
      : rng_(seed), config_(config) {}

  /// Replaces the active fault mix (e.g. to stage a fault window).
  void SetConfig(const FaultConfig& config) {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = config;
  }

  /// Stops injecting: all probabilities to zero. Counters are kept; a
  /// schedule, if any, stays armed (ClearSchedule() removes it).
  void Heal() {
    std::lock_guard<std::mutex> lock(mu_);
    config_ = FaultConfig{};
  }

  FaultConfig config() const {
    std::lock_guard<std::mutex> lock(mu_);
    return config_;
  }

  /// Arms a time-based fault schedule: whenever `clock` (not owned)
  /// reads a time inside one of `windows`, that window's config replaces
  /// the base config for every decision. Windows are checked in order;
  /// the first match wins. With the same seed, schedule, and decision
  /// sequence on a ManualClock, runs replay exactly.
  void SetSchedule(const Clock* clock, std::vector<FaultWindow> windows) {
    std::lock_guard<std::mutex> lock(mu_);
    schedule_clock_ = clock;
    windows_ = std::move(windows);
  }

  /// Disarms the schedule; the base config applies again everywhere.
  void ClearSchedule() {
    std::lock_guard<std::mutex> lock(mu_);
    schedule_clock_ = nullptr;
    windows_.clear();
  }

  /// The config in force right now (base, or the active window's).
  FaultConfig effective_config() const {
    std::lock_guard<std::mutex> lock(mu_);
    return Effective();
  }

  /// Builds a reproducible overload profile: `bursts` non-overlapping
  /// windows of total sink failure (100% drop) plus `added_delay` of
  /// latency, stratified across [0, horizon) — one burst placed
  /// uniformly at random inside each horizon/bursts stratum. The same
  /// seed always yields the same schedule.
  static std::vector<FaultWindow> MakeBurstSchedule(uint64_t seed,
                                                    size_t bursts,
                                                    Micros horizon,
                                                    Micros burst_length,
                                                    Micros added_delay = 0);

  /// True if the current operation's payload should be lost.
  bool ShouldDrop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(Effective().drop_probability)) return false;
    ++drops_injected_;
    return true;
  }

  /// True if the current operation should fail with a transient error.
  bool ShouldError() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(Effective().transient_error_probability)) return false;
    ++errors_injected_;
    return true;
  }

  /// True if the current operation's bytes should be corrupted.
  bool ShouldMalform() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(Effective().malform_probability)) return false;
    ++malforms_injected_;
    return true;
  }

  /// True if the current write should deliver only a prefix and then
  /// kill the connection (torn frame on the peer's side).
  bool ShouldPartialWrite() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(Effective().partial_write_probability)) return false;
    ++partial_writes_injected_;
    return true;
  }

  /// True if the current operation's connection should be reset.
  bool ShouldReset() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(Effective().reset_probability)) return false;
    ++resets_injected_;
    return true;
  }

  /// True if the network is partitioned for the current operation
  /// (connect refused / bytes blackholed).
  bool ShouldPartition() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!Fires(Effective().partition_probability)) return false;
    ++partitions_injected_;
    return true;
  }

  /// The latency to inject into the current operation, if any.
  std::optional<Micros> ShouldDelay() {
    std::lock_guard<std::mutex> lock(mu_);
    FaultConfig effective = Effective();
    if (!Fires(effective.delay_probability)) return std::nullopt;
    ++delays_injected_;
    return effective.delay;
  }

  /// Deterministically corrupts `bytes`: truncation, framing byte flips,
  /// or wholesale garbling, chosen from the injector's RNG. The result
  /// differs from the input and does not parse as an HTTP message.
  std::string Malform(std::string bytes);

  // ---- Crash points (the storage layer's kill switch). ----
  //
  // Durable-storage code calls CrashAt("name") at every point where a
  // process death would leave a distinct on-disk state — before and
  // after each append, fsync, rename, delete, and directory sync. While
  // a crash is armed, every such call is COUNTED, and the nth one
  // (0-based) fires: CrashAt returns true exactly once, then disarms.
  // The sweep harness first arms an unreachable index to count a clean
  // run's points, then replays the run once per index.

  /// Arms the crash: the `nth` crash point consulted from now on fires.
  /// Resets the per-arming counter.
  void ArmCrash(uint64_t nth) {
    std::lock_guard<std::mutex> lock(mu_);
    crash_armed_ = nth;
    crash_points_seen_ = 0;
  }

  /// Disarms without firing; the point counter keeps its last value.
  void DisarmCrash() {
    std::lock_guard<std::mutex> lock(mu_);
    crash_armed_ = kCrashDisarmed;
  }

  /// Consult-and-maybe-fire. Counts only while armed.
  bool CrashAt(std::string_view point) {
    std::lock_guard<std::mutex> lock(mu_);
    if (crash_armed_ == kCrashDisarmed) return false;
    uint64_t index = crash_points_seen_++;
    if (index != crash_armed_) return false;
    crash_armed_ = kCrashDisarmed;
    ++crashes_injected_;
    last_crash_point_ = std::string(point);
    return true;
  }

  /// Crash points consulted since the last ArmCrash (the sweep's upper
  /// bound when armed past the end of the run).
  uint64_t crash_points_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crash_points_seen_;
  }
  uint64_t crashes_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return crashes_injected_;
  }
  /// Name of the most recently fired crash point ("" if none yet).
  std::string last_crash_point() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_crash_point_;
  }

  // Lifetime counters (survive Heal()).
  uint64_t drops_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return drops_injected_;
  }
  uint64_t errors_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return errors_injected_;
  }
  uint64_t malforms_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return malforms_injected_;
  }
  uint64_t delays_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return delays_injected_;
  }
  uint64_t partial_writes_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return partial_writes_injected_;
  }
  uint64_t resets_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return resets_injected_;
  }
  uint64_t partitions_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return partitions_injected_;
  }
  uint64_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return drops_injected_ + errors_injected_ + malforms_injected_ +
           delays_injected_ + partial_writes_injected_ + resets_injected_ +
           partitions_injected_;
  }

 private:
  /// Caller holds mu_.
  bool Fires(double probability) {
    if (probability <= 0.0) return false;
    return rng_.NextDouble() < probability;
  }

  /// Caller holds mu_. The active window's config, else the base one.
  FaultConfig Effective() const {
    if (schedule_clock_ != nullptr) {
      Micros now = schedule_clock_->NowMicros();
      for (const FaultWindow& window : windows_) {
        if (now >= window.start && now < window.end) return window.config;
      }
    }
    return config_;
  }

  static constexpr uint64_t kCrashDisarmed = ~uint64_t{0};

  mutable std::mutex mu_;
  Random rng_;
  FaultConfig config_;
  const Clock* schedule_clock_ = nullptr;
  std::vector<FaultWindow> windows_;
  uint64_t drops_injected_ = 0;
  uint64_t errors_injected_ = 0;
  uint64_t malforms_injected_ = 0;
  uint64_t delays_injected_ = 0;
  uint64_t partial_writes_injected_ = 0;
  uint64_t resets_injected_ = 0;
  uint64_t partitions_injected_ = 0;
  uint64_t crash_armed_ = kCrashDisarmed;
  uint64_t crash_points_seen_ = 0;
  uint64_t crashes_injected_ = 0;
  std::string last_crash_point_;
};

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_FAULT_INJECTOR_H_
