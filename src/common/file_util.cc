#include "common/file_util.h"

#include <array>
#include <memory>

namespace cacheportal {

namespace {

/// Table-driven CRC-32 (IEEE, reflected: polynomial 0xEDB88320), the
/// same function zlib's crc32() computes.
const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  const auto& table = CrcTable();
  crc = ~crc;
  for (unsigned char byte : data) {
    crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

uint32_t GetFixed32(const char* p) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

uint64_t GetFixed64(const char* p) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

Status AtomicFileWriter::Write(Env* env, const std::string& path,
                               std::string_view contents) {
  std::string tmp = path + ".tmp";
  {
    CACHEPORTAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                                 env->NewWritableFile(tmp, /*truncate=*/true));
    CACHEPORTAL_RETURN_NOT_OK(file->Append(contents));
    // The content must be durable BEFORE the rename publishes the name:
    // rename-then-sync can leave the new name pointing at a hole.
    CACHEPORTAL_RETURN_NOT_OK(file->Sync());
    CACHEPORTAL_RETURN_NOT_OK(file->Close());
  }
  CACHEPORTAL_RETURN_NOT_OK(env->RenameFile(tmp, path));
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return env->SyncDir(dir);
}

}  // namespace cacheportal
