#include "common/file_util.h"

#include <array>
#include <cstring>
#include <memory>

namespace cacheportal {

namespace {

/// Table-driven CRC-32 (IEEE, reflected: polynomial 0xEDB88320), the
/// same function zlib's crc32() computes — with the slicing-by-8
/// variant's 8 derived tables so the hot loop eats 8 bytes per step
/// instead of 1. Table 0 alone is the classic byte-at-a-time table
/// (used for the tail); table j maps "what does this byte contribute
/// j positions later", which is what lets 8 lookups replace 8
/// dependent iterations. Identical output to the 1-byte loop.
const std::array<std::array<uint32_t, 256>, 8>& CrcTables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = [] {
    std::array<std::array<uint32_t, 256>, 8> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = t[0][i];
      for (int j = 1; j < 8; ++j) {
        c = t[0][c & 0xFF] ^ (c >> 8);
        t[j][i] = c;
      }
    }
    return t;
  }();
  return tables;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t crc) {
  const auto& t = CrcTables();
  crc = ~crc;
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(data.data());
  size_t n = data.size();
  // 8 bytes per step. The two 32-bit loads are little-endian reads of
  // the stream (memcpy: alignment-safe), matching the reflected
  // polynomial's bit order — same assumption the wire format itself
  // makes (all integers little-endian).
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    crc ^= lo;
    crc = t[7][crc & 0xFF] ^ t[6][(crc >> 8) & 0xFF] ^
          t[5][(crc >> 16) & 0xFF] ^ t[4][crc >> 24] ^ t[3][hi & 0xFF] ^
          t[2][(hi >> 8) & 0xFF] ^ t[1][(hi >> 16) & 0xFF] ^
          t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(value >> (8 * i));
  dst->append(buf, 8);
}

uint32_t GetFixed32(const char* p) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

uint64_t GetFixed64(const char* p) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(p[i]);
  }
  return value;
}

Status AtomicFileWriter::Write(Env* env, const std::string& path,
                               std::string_view contents) {
  std::string tmp = path + ".tmp";
  {
    CACHEPORTAL_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                                 env->NewWritableFile(tmp, /*truncate=*/true));
    CACHEPORTAL_RETURN_NOT_OK(file->Append(contents));
    // The content must be durable BEFORE the rename publishes the name:
    // rename-then-sync can leave the new name pointing at a hole.
    CACHEPORTAL_RETURN_NOT_OK(file->Sync());
    CACHEPORTAL_RETURN_NOT_OK(file->Close());
  }
  CACHEPORTAL_RETURN_NOT_OK(env->RenameFile(tmp, path));
  size_t slash = path.rfind('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return env->SyncDir(dir);
}

}  // namespace cacheportal
