#ifndef CACHEPORTAL_COMMON_FILE_UTIL_H_
#define CACHEPORTAL_COMMON_FILE_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/env.h"
#include "common/status.h"

namespace cacheportal {

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`, optionally
/// continuing from a previous value: Crc32(b, Crc32(a)) == Crc32(a+b).
uint32_t Crc32(std::string_view data, uint32_t crc = 0);

/// Little-endian fixed-width integer framing (the WAL's record headers).
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
/// `p` must have 4 (8) readable bytes.
uint32_t GetFixed32(const char* p);
uint64_t GetFixed64(const char* p);

/// Crash-safe whole-file replacement: write `path`.tmp, fsync it, rename
/// over `path`, fsync the directory. At every kill point the target is
/// either the complete old content or the complete new content — never a
/// prefix, never absent once it existed.
class AtomicFileWriter {
 public:
  static Status Write(Env* env, const std::string& path,
                      std::string_view contents);
};

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_FILE_UTIL_H_
