#ifndef CACHEPORTAL_COMMON_LOGGING_H_
#define CACHEPORTAL_COMMON_LOGGING_H_

#include <string>

namespace cacheportal {

/// Severity levels for the library's diagnostic log.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum severity that is emitted to stderr. Defaults to
/// kWarning so that library users see nothing in normal operation.
void SetLogLevel(LogLevel level);

LogLevel GetLogLevel();

/// Emits `message` to stderr if `level` passes the threshold.
void LogMessage(LogLevel level, const std::string& message);

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_LOGGING_H_
