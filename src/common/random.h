#ifndef CACHEPORTAL_COMMON_RANDOM_H_
#define CACHEPORTAL_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace cacheportal {

/// Deterministic pseudo-random generator (xorshift64*). Used throughout the
/// workload generators and the simulator so that experiments are exactly
/// reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL)
      : state_(seed != 0 ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool OneIn(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times of Poisson processes in the workload generators).
  double Exponential(double mean) {
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

 private:
  uint64_t state_;
};

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_RANDOM_H_
