#ifndef CACHEPORTAL_COMMON_STATUS_H_
#define CACHEPORTAL_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace cacheportal {

/// A Status encapsulates the result of an operation. It may indicate
/// success, or it may indicate an error with an associated error message.
/// This library does not throw exceptions across public API boundaries;
/// fallible operations return Status (or Result<T>, below).
class Status {
 public:
  /// Error categories. kOk means success.
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kNotSupported,
    kParseError,
    kInternal,
    /// The operation failed for a transient, environmental reason — a
    /// peer was unreachable, a connection reset, a timeout expired, a
    /// partition is in force — and retrying the SAME operation may
    /// succeed. Transport layers return this (rather than kInternal) so
    /// retry machinery can tell "try again" from "give up":
    /// core::ReliableDeliveryQueue retries kUnavailable/kInternal but
    /// dead-letters fatal codes (kNotSupported, kParseError,
    /// kInvalidArgument) without burning attempts.
    kUnavailable,
  };

  /// Creates a success status.
  Status() : code_(Code::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  // Factory functions, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(Code::kParseError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsParseError() const { return code_ == Code::kParseError; }
  bool IsInternal() const { return code_ == Code::kInternal; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }

  /// The error message, empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Human-readable representation, e.g. "ParseError: unexpected token".
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A Result<T> holds either a value of type T or an error Status.
/// Modeled after arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit, so functions can
  /// `return value;`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error. `status` must not be OK.
  Result(Status status) : value_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(value_); }

  /// The error status; OK() if this Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  /// The contained value. Must only be called when ok().
  const T& value() const& { return std::get<T>(value_); }
  T& value() & { return std::get<T>(value_); }
  T&& value() && { return std::get<T>(std::move(value_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value if ok(), otherwise `fallback`.
  T value_or(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define CACHEPORTAL_RETURN_NOT_OK(expr)             \
  do {                                              \
    ::cacheportal::Status _st = (expr);             \
    if (!_st.ok()) return _st;                      \
  } while (false)

/// Evaluates a Result-returning expression; assigns the value to `lhs` or
/// propagates the error.
#define CACHEPORTAL_ASSIGN_OR_RETURN(lhs, expr) \
  auto CACHEPORTAL_CONCAT_(_res_, __LINE__) = (expr);                 \
  if (!CACHEPORTAL_CONCAT_(_res_, __LINE__).ok())                     \
    return CACHEPORTAL_CONCAT_(_res_, __LINE__).status();             \
  lhs = std::move(CACHEPORTAL_CONCAT_(_res_, __LINE__)).value()

#define CACHEPORTAL_CONCAT_(a, b) CACHEPORTAL_CONCAT_IMPL_(a, b)
#define CACHEPORTAL_CONCAT_IMPL_(a, b) a##b

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_STATUS_H_
