#include "common/strings.h"

#include <cctype>
#include <charconv>

namespace cacheportal {

std::vector<std::string> StrSplit(std::string_view input, char delimiter) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delimiter, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      break;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(parts[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string AsciiToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

Result<uint64_t> ParseUint64(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty integer");
  uint64_t value = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::ParseError(
        StrCat("integer out of uint64 range: '", std::string(text), "'"));
  }
  if (ec != std::errc() || ptr != end) {
    return Status::ParseError(
        StrCat("not an unsigned integer: '", std::string(text), "'"));
  }
  return value;
}

}  // namespace cacheportal
