#ifndef CACHEPORTAL_COMMON_STRINGS_H_
#define CACHEPORTAL_COMMON_STRINGS_H_

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cacheportal {

/// Splits `input` on `delimiter`, returning all pieces (including empty
/// ones between consecutive delimiters). Splitting the empty string yields
/// a single empty piece, matching absl::StrSplit semantics.
std::vector<std::string> StrSplit(std::string_view input, char delimiter);

/// Joins `parts` with `separator` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII lower-casing (SQL keywords, header names).
std::string AsciiToLower(std::string_view input);

/// ASCII upper-casing.
std::string AsciiToUpper(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// Strict decimal parse of an unsigned 64-bit integer: the whole of
/// `text` must be digits and the value must fit, else ParseError. Unlike
/// strtoull, never coerces garbage (or a leading '-') to a number —
/// checkpoint/restore paths depend on corrupt input being rejected
/// rather than silently parsed as 0.
Result<uint64_t> ParseUint64(std::string_view text);

/// Streams all arguments into a single string. Lightweight stand-in for
/// absl::StrCat (std::format is unavailable on the toolchain we target).
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream oss;
  (oss << ... << args);
  return oss.str();
}

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_STRINGS_H_
