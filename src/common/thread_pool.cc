#include "common/thread_pool.h"

#include <algorithm>

namespace cacheportal {

ThreadPool::ThreadPool(size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t blocks = std::min(n, threads_.size());
  if (blocks <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = n * b / blocks;
    const size_t end = n * (b + 1) / blocks;
    futures.push_back(Submit([begin, end, &fn] {
      for (size_t i = begin; i < end; ++i) fn(i);
    }));
  }
  for (std::future<void>& future : futures) future.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain.
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace cacheportal
