#ifndef CACHEPORTAL_COMMON_THREAD_POOL_H_
#define CACHEPORTAL_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cacheportal {

/// A fixed-size worker pool for fanning independent work out across
/// threads. Built for the invalidator's parallel pipeline but generic:
/// Submit() enqueues one task and returns a future; ParallelFor() shards
/// an index range across the workers and blocks until every shard ran.
///
/// The pool never grows or shrinks; the destructor drains outstanding
/// tasks and joins. Tasks must not Submit() back into the pool they run
/// on (a task waiting on a sibling's future could deadlock once all
/// workers wait).
class ThreadPool {
 public:
  /// Spawns `workers` threads. `workers` must be >= 1.
  explicit ThreadPool(size_t workers);

  /// Drains queued tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return threads_.size(); }

  /// Enqueues `fn`; the returned future resolves when it has run (and
  /// rethrows anything it threw).
  std::future<void> Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, n), sharded into contiguous blocks
  /// across the workers, and blocks until all calls returned. `fn` must
  /// be safe to invoke concurrently for distinct indices.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace cacheportal

#endif  // CACHEPORTAL_COMMON_THREAD_POOL_H_
