#include "core/cache_portal.h"

namespace cacheportal::core {

CachePortal::CachePortal(db::Database* database, const Clock* clock,
                         CachePortalOptions options)
    : database_(database),
      clock_(clock),
      options_(options),
      request_logger_(&request_log_, clock),
      mapper_(&request_log_, &query_log_, &qiurl_map_),
      page_cache_(options_.page_cache_capacity, clock),
      invalidator_(database, &qiurl_map_, clock, options_.invalidator),
      sink_(&page_cache_) {
  request_logger_.SetInvalidationCycle(options_.invalidation_cycle);
  // Feedback loop (Section 3.1): the wrapper consults the invalidator's
  // policies before making a servlet's pages cacheable.
  request_logger_.SetCacheabilityOracle(
      [this](const std::string& servlet_name) {
        return invalidator_.policy().IsServletCacheable(servlet_name);
      });
  invalidator_.AddSink(&sink_);
}

std::unique_ptr<server::Driver> CachePortal::WrapDriver(
    server::Driver* inner) {
  return std::make_unique<sniffer::QueryLoggingDriver>(inner, &query_log_,
                                                       clock_);
}

std::unique_ptr<server::Connection> CachePortal::WrapConnection(
    server::Connection* inner) {
  sniffer::QueryLoggingDriver driver(nullptr, &query_log_, clock_);
  return driver.WrapConnection(inner);
}

void CachePortal::AttachTo(server::ApplicationServer* app_server) {
  attached_app_server_ = app_server;
  app_server->SetInterceptor(&request_logger_);
}

void CachePortal::RegisterServlet(const server::ServletConfig& config) {
  request_logger_.RegisterServlet(config);
}

CachingProxy* CachePortal::CreateProxy(server::RequestHandler* upstream,
                                       ProxyShedOptions shed) {
  auto lookup = [this](const std::string& path)
      -> const server::ServletConfig* {
    // Prefer the request logger's registry (keyed by servlet name, which
    // defaults to the path), then the attached app server.
    const server::ServletConfig* config = request_logger_.FindConfig(path);
    if (config != nullptr) return config;
    if (attached_app_server_ != nullptr) {
      return attached_app_server_->FindConfig(path);
    }
    return nullptr;
  };
  proxies_.push_back(std::make_unique<CachingProxy>(
      &page_cache_, upstream, lookup, std::move(shed)));
  return proxies_.back().get();
}

std::string CachePortal::Checkpoint() {
  std::string state = invalidator_.Checkpoint();
  // The cursor (and un-acked delivery state) is captured in `state`;
  // everything at or below it is now unreachable by any consumer path,
  // including crash+Restore, so the log may drop it.
  database_->update_log().TrimThrough(invalidator_.consumed_update_seq());
  return state;
}

Result<invalidator::CycleReport> CachePortal::RunCycle() {
  mapper_.Run();
  CACHEPORTAL_ASSIGN_OR_RETURN(invalidator::CycleReport report,
                               invalidator_.RunCycle());
  if (options_.truncate_update_log) {
    database_->update_log().Truncate(invalidator_.consumed_update_seq());
  }
  return report;
}

}  // namespace cacheportal::core
