#include "core/cache_portal.h"

#include "common/logging.h"
#include "common/strings.h"

namespace cacheportal::core {

CachePortal::CachePortal(db::Database* database, const Clock* clock,
                         CachePortalOptions options)
    : database_(database),
      clock_(clock),
      options_(options),
      request_logger_(&request_log_, clock),
      mapper_(&request_log_, &query_log_, &qiurl_map_),
      page_cache_(options_.page_cache_capacity, clock),
      invalidator_(database, &qiurl_map_, clock, options_.invalidator),
      sink_(&page_cache_) {
  request_logger_.SetInvalidationCycle(options_.invalidation_cycle);
  // Feedback loop (Section 3.1): the wrapper consults the invalidator's
  // policies before making a servlet's pages cacheable.
  request_logger_.SetCacheabilityOracle(
      [this](const std::string& servlet_name) {
        return invalidator_.policy().IsServletCacheable(servlet_name);
      });
  invalidator_.AddSink(&sink_);
  if (!options_.durability.dir.empty()) {
    durability_ = std::make_unique<invalidator::DurabilityCoordinator>(
        &invalidator_, options_.durability);
  }
}

Status CachePortal::RecoverDurableState() {
  if (durability_ == nullptr) {
    return Status::InvalidArgument(
        "durability not configured (options.durability.dir is empty)");
  }
  CACHEPORTAL_RETURN_NOT_OK(durability_->Open());
  // Warm the registry before traffic: sniffer threads registering while
  // recovery drains would race the journal-suppression window.
  durability_->FinishRecovery();
  return Status::OK();
}

std::unique_ptr<server::Driver> CachePortal::WrapDriver(
    server::Driver* inner) {
  return std::make_unique<sniffer::QueryLoggingDriver>(inner, &query_log_,
                                                       clock_);
}

std::unique_ptr<server::Connection> CachePortal::WrapConnection(
    server::Connection* inner) {
  sniffer::QueryLoggingDriver driver(nullptr, &query_log_, clock_);
  return driver.WrapConnection(inner);
}

void CachePortal::AttachTo(server::ApplicationServer* app_server) {
  attached_app_server_ = app_server;
  app_server->SetInterceptor(&request_logger_);
}

void CachePortal::RegisterServlet(const server::ServletConfig& config) {
  request_logger_.RegisterServlet(config);
}

CachingProxy* CachePortal::CreateProxy(server::RequestHandler* upstream,
                                       ProxyShedOptions shed) {
  auto lookup = [this](const std::string& path)
      -> const server::ServletConfig* {
    // Prefer the request logger's registry (keyed by servlet name, which
    // defaults to the path), then the attached app server.
    const server::ServletConfig* config = request_logger_.FindConfig(path);
    if (config != nullptr) return config;
    if (attached_app_server_ != nullptr) {
      return attached_app_server_->FindConfig(path);
    }
    return nullptr;
  };
  proxies_.push_back(std::make_unique<CachingProxy>(
      &page_cache_, upstream, lookup, std::move(shed)));
  return proxies_.back().get();
}

std::string CachePortal::Checkpoint() {
  if (durability_ != nullptr) {
    // Install a fresh snapshot, then trim only through the position the
    // on-disk state durably covers: if the install failed part-way, the
    // old manifest still governs and durable_update_seq() still names a
    // position recovery can actually reach — never trim past it.
    Status installed = durability_->Snapshot();
    if (!installed.ok()) {
      LogMessage(LogLevel::kWarning,
                 StrCat("checkpoint snapshot failed; trimming only to the "
                        "last durable position: ",
                        installed.message()));
    }
    std::string state = invalidator_.Checkpoint();
    database_->update_log().TrimThrough(durability_->durable_update_seq());
    return state;
  }
  std::string state = invalidator_.Checkpoint();
  // The cursor (and un-acked delivery state) is captured in `state`;
  // everything at or below it is now unreachable by any consumer path,
  // including crash+Restore, so the log may drop it.
  database_->update_log().TrimThrough(invalidator_.consumed_update_seq());
  return state;
}

Result<invalidator::CycleReport> CachePortal::RunCycle() {
  mapper_.Run();
  Result<invalidator::CycleReport> cycle =
      durability_ != nullptr ? durability_->RunCycle()
                             : invalidator_.RunCycle();
  CACHEPORTAL_RETURN_NOT_OK(cycle.status());
  if (options_.truncate_update_log) {
    // With durability on, a record past the durable position is still
    // needed by the post-crash replay — the WAL hasn't captured its
    // effects yet.
    database_->update_log().Truncate(
        durability_ != nullptr ? durability_->durable_update_seq()
                               : invalidator_.consumed_update_seq());
  }
  return *std::move(cycle);
}

}  // namespace cacheportal::core
