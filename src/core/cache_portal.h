#ifndef CACHEPORTAL_CORE_CACHE_PORTAL_H_
#define CACHEPORTAL_CORE_CACHE_PORTAL_H_

#include <memory>
#include <string>

#include "cache/page_cache.h"
#include "common/clock.h"
#include "common/status.h"
#include "core/caching_proxy.h"
#include "core/page_cache_sink.h"
#include "db/database.h"
#include "invalidator/durability.h"
#include "invalidator/invalidator.h"
#include "server/app_server.h"
#include "sniffer/mapper.h"
#include "sniffer/qiurl_map.h"
#include "sniffer/query_log.h"
#include "sniffer/query_logger.h"
#include "sniffer/request_log.h"
#include "sniffer/request_logger.h"

namespace cacheportal::core {

/// Construction options for a CachePortal deployment.
struct CachePortalOptions {
  /// Pages the web cache can hold.
  size_t page_cache_capacity = 10000;
  /// Truncate the database's update log after each cycle (safe when this
  /// CachePortal is the log's only consumer, the common deployment).
  bool truncate_update_log = false;
  /// The invalidation cycle CachePortal sustains; used to filter
  /// temporally sensitive servlets from caching.
  Micros invalidation_cycle = kMicrosPerSecond;
  invalidator::InvalidatorOptions invalidator;
  /// Crash-safe metadata. Enabled iff `durability.dir` is non-empty:
  /// the portal then journals registration/cycle state to a WAL in that
  /// directory, snapshots periodically, and RecoverDurableState()
  /// resumes after a crash. Empty dir = in-memory only (the historical
  /// behavior).
  invalidator::DurabilityOptions durability;
};

/// The CachePortal system facade: wires the sniffer (request logger,
/// query logger, request-to-query mapper), the QI/URL map, the dynamic
/// content cache, and the invalidator around an existing site — without
/// modifying the site's servlets or database (the paper's non-invasive
/// deployment, Figure 7).
///
/// Typical deployment:
///
///   db::Database db;
///   server::DriverManager drivers;                      // site's JDBC
///   auto* raw = new server::MemoryDbDriver(); ... bind ...
///   CachePortal portal(&db, &clock, options);
///   drivers.RegisterDriver(portal.WrapDriver(raw));     // query logger
///   ... create pool over "jdbc:cacheportal-log:jdbc:cacheportal:shop" ...
///   server::ApplicationServer app(&pool);
///   portal.AttachTo(&app);                              // request logger
///   portal.RegisterServlet(config);                     // key params
///   auto proxy = portal.CreateProxy(&app);              // config III cache
///   ... serve requests through proxy->Handle(...) ...
///   portal.RunCycle();                                  // each sync point
class CachePortal {
 public:
  /// Observes `database`'s update log; `clock` times everything. Neither
  /// is owned.
  CachePortal(db::Database* database, const Clock* clock,
              CachePortalOptions options = {});

  CachePortal(const CachePortal&) = delete;
  CachePortal& operator=(const CachePortal&) = delete;

  /// Wraps the site's JDBC driver with the sniffer's query logger. The
  /// returned driver accepts URLs of the form
  /// "jdbc:cacheportal-log:<inner-url>". `inner` is not owned.
  std::unique_ptr<server::Driver> WrapDriver(server::Driver* inner);

  /// Wraps a single already-open connection with the query logger.
  std::unique_ptr<server::Connection> WrapConnection(
      server::Connection* inner);

  /// Installs the request logger as `app_server`'s interceptor.
  void AttachTo(server::ApplicationServer* app_server);

  /// Registers servlet metadata with the request logger (key parameters,
  /// temporal sensitivity).
  void RegisterServlet(const server::ServletConfig& config);

  /// Creates the Configuration III caching proxy in front of `upstream`.
  /// Key-parameter narrowing uses the attached application server's
  /// servlet configs. The proxy is owned by the portal. `shed` configures
  /// the proxy's miss-only load shedding (off by default).
  CachingProxy* CreateProxy(server::RequestHandler* upstream,
                            ProxyShedOptions shed = {});

  /// Declares a query type offline (Section 4.1.1).
  Status RegisterQueryType(const std::string& name,
                           const std::string& parameterized_sql) {
    return invalidator_.RegisterQueryType(name, parameterized_sql);
  }

  /// Registers a hard invalidation policy rule.
  void AddPolicyRule(invalidator::PolicyRule rule) {
    invalidator_.AddPolicyRule(std::move(rule));
  }

  /// Maintains a join index inside the invalidator.
  Status CreateJoinIndex(const std::string& table,
                         const std::string& column) {
    return invalidator_.CreateJoinIndex(table, column);
  }

  /// Recovers durable metadata from `options.durability.dir` into the
  /// invalidator and arms journaling. Call after construction (sinks are
  /// wired) and before serving traffic. InvalidArgument when durability
  /// is not configured.
  Status RecoverDurableState();

  /// The durability coordinator, or nullptr when not configured.
  invalidator::DurabilityCoordinator* durability() {
    return durability_.get();
  }

  /// One synchronization point: run the request-to-query mapper, then an
  /// invalidation cycle (durably committed when durability is
  /// configured). Update-log truncation (when enabled) advances only
  /// through the DURABLE position — a record the WAL hasn't captured
  /// yet must survive for the post-crash replay.
  Result<invalidator::CycleReport> RunCycle();

  /// Serializes the invalidator's resumption state (see
  /// Invalidator::Checkpoint; format v4 — update-log cursor, per-shard
  /// QI/URL-map cursors, full registry, sink backlogs) and trims the
  /// update log — the log's bounded-memory story: records at or below
  /// the checkpointed cursor can never be needed again, even across a
  /// crash+Restore. With durability configured this also installs a
  /// fresh on-disk snapshot, and the trim advances only through the
  /// position that snapshot (or the last synced commit) durably covers.
  std::string Checkpoint();

  /// Rebuilds resumption state from Checkpoint() output. Accepts any
  /// checkpoint version (v1+), including one written at a different
  /// metadata-plane shard count.
  Status Restore(const std::string& checkpoint) {
    return invalidator_.Restore(checkpoint);
  }

  // Component access (primarily for tests, benches, and diagnostics).
  cache::PageCache* page_cache() { return &page_cache_; }
  const sniffer::RequestLog& request_log() const { return request_log_; }
  const sniffer::QueryLog& query_log() const { return query_log_; }
  const sniffer::QiUrlMap& qiurl_map() const { return qiurl_map_; }
  invalidator::Invalidator* mutable_invalidator() { return &invalidator_; }
  const invalidator::Invalidator& invalidator() const { return invalidator_; }
  sniffer::RequestLogger* request_logger() { return &request_logger_; }

 private:
  db::Database* database_;
  const Clock* clock_;
  CachePortalOptions options_;

  // Sniffer state.
  sniffer::RequestLog request_log_;
  sniffer::QueryLog query_log_;
  sniffer::QiUrlMap qiurl_map_;
  sniffer::RequestLogger request_logger_;
  sniffer::RequestToQueryMapper mapper_;

  // Cache + invalidator.
  cache::PageCache page_cache_;
  invalidator::Invalidator invalidator_;
  PageCacheSink sink_;
  // Non-null iff options_.durability.dir is non-empty.
  std::unique_ptr<invalidator::DurabilityCoordinator> durability_;

  server::ApplicationServer* attached_app_server_ = nullptr;
  std::vector<std::unique_ptr<CachingProxy>> proxies_;
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_CACHE_PORTAL_H_
