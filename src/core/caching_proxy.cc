#include "core/caching_proxy.h"

#include "common/strings.h"
#include "sniffer/request_logger.h"

namespace cacheportal::core {

namespace {

http::HttpResponse ShedResponse(int retry_after_seconds) {
  http::HttpResponse response(503, "overloaded");
  response.headers.Set("Retry-After", StrCat(retry_after_seconds));
  response.headers.Set("X-Cache", "SHED");
  return response;
}

}  // namespace

http::HttpResponse CachingProxy::Handle(const http::HttpRequest& request) {
  // Invalidation messages are ordinary requests with an eject directive.
  // Never shed: a dropped eject is a stale page.
  std::optional<std::string> cc_header = request.headers.Get("Cache-Control");
  if (cc_header.has_value() && http::CacheControl::Parse(*cc_header).eject) {
    return cache_->HandleInvalidationRequest(request);
  }

  const server::ServletConfig* config =
      config_lookup_ ? config_lookup_(request.path) : nullptr;
  http::PageId page = sniffer::RequestLogger::NarrowToKeys(request, config);

  // Hits are served even under overload: they cost no upstream work.
  if (std::optional<http::HttpResponse> hit = cache_->Lookup(page);
      hit.has_value()) {
    hit->headers.Set("X-Cache", "HIT");
    return *hit;
  }

  if (shed_.shed_check && shed_.shed_check()) {
    requests_shed_.fetch_add(1, std::memory_order_relaxed);
    return ShedResponse(shed_.retry_after_seconds);
  }
  if (shed_.max_concurrent_upstream > 0) {
    // Reserve an upstream slot; concurrent misses beyond the bound are
    // refused rather than queued behind a saturated origin.
    size_t now_in_flight =
        in_flight_upstream_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (now_in_flight > shed_.max_concurrent_upstream) {
      in_flight_upstream_.fetch_sub(1, std::memory_order_acq_rel);
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      return ShedResponse(shed_.retry_after_seconds);
    }
  }
  http::HttpResponse response = upstream_->Handle(request);
  if (shed_.max_concurrent_upstream > 0) {
    in_flight_upstream_.fetch_sub(1, std::memory_order_acq_rel);
  }
  if (response.status_code == 200) {
    cache_->Store(page, response);
  }
  response.headers.Set("X-Cache", "MISS");
  return response;
}

}  // namespace cacheportal::core
