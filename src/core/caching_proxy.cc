#include "core/caching_proxy.h"

#include "sniffer/request_logger.h"

namespace cacheportal::core {

http::HttpResponse CachingProxy::Handle(const http::HttpRequest& request) {
  // Invalidation messages are ordinary requests with an eject directive.
  std::optional<std::string> cc_header = request.headers.Get("Cache-Control");
  if (cc_header.has_value() && http::CacheControl::Parse(*cc_header).eject) {
    return cache_->HandleInvalidationRequest(request);
  }

  const server::ServletConfig* config =
      config_lookup_ ? config_lookup_(request.path) : nullptr;
  http::PageId page = sniffer::RequestLogger::NarrowToKeys(request, config);

  if (std::optional<http::HttpResponse> hit = cache_->Lookup(page);
      hit.has_value()) {
    hit->headers.Set("X-Cache", "HIT");
    return *hit;
  }
  http::HttpResponse response = upstream_->Handle(request);
  if (response.status_code == 200) {
    cache_->Store(page, response);
  }
  response.headers.Set("X-Cache", "MISS");
  return response;
}

}  // namespace cacheportal::core
