#ifndef CACHEPORTAL_CORE_CACHING_PROXY_H_
#define CACHEPORTAL_CORE_CACHING_PROXY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "cache/page_cache.h"
#include "server/handler.h"
#include "server/servlet.h"

namespace cacheportal::core {

/// Load-shedding knobs of the CachingProxy. Shedding applies ONLY to
/// cache misses — the requests that cost upstream work. Cache hits and
/// eject messages are never shed: hits are cheap (shedding them would
/// convert capacity into refusals), and dropping an eject would trade
/// overload for staleness, the one failure mode CachePortal exists to
/// prevent.
struct ProxyShedOptions {
  /// Upper bound on concurrently in-flight upstream (miss) requests;
  /// misses beyond it are answered 503 + Retry-After. 0 = unlimited.
  size_t max_concurrent_upstream = 0;
  /// Extra shed predicate (e.g. the invalidator's overload controller
  /// reporting kEmergency); checked for misses only. May be null. Must
  /// be cheap and thread-safe.
  std::function<bool()> shed_check;
  /// Retry-After value (seconds) attached to shed responses.
  int retry_after_seconds = 1;
};

/// The dynamic-web-content cache of Configuration III, deployed in front
/// of the load balancer: answers repeat requests from the PageCache,
/// forwards misses upstream, stores cacheable responses, and services the
/// invalidator's `Cache-Control: eject` messages. Under overload it
/// sheds misses (503 + Retry-After) while continuing to serve hits and
/// ejects — see ProxyShedOptions.
class CachingProxy : public server::RequestHandler {
 public:
  /// Maps a request path to the servlet's config (for key-parameter
  /// narrowing); may return nullptr (all parameters become keys).
  using ConfigLookup =
      std::function<const server::ServletConfig*(const std::string& path)>;

  /// `cache` and `upstream` are not owned.
  CachingProxy(cache::PageCache* cache, server::RequestHandler* upstream,
               ConfigLookup config_lookup, ProxyShedOptions shed = {})
      : cache_(cache),
        upstream_(upstream),
        config_lookup_(std::move(config_lookup)),
        shed_(std::move(shed)) {}

  http::HttpResponse Handle(const http::HttpRequest& request) override;

  cache::PageCache* cache() { return cache_; }

  /// Misses answered 503 instead of forwarded upstream.
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }

 private:
  cache::PageCache* cache_;
  server::RequestHandler* upstream_;
  ConfigLookup config_lookup_;
  ProxyShedOptions shed_;
  std::atomic<size_t> in_flight_upstream_{0};
  std::atomic<uint64_t> requests_shed_{0};
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_CACHING_PROXY_H_
