#ifndef CACHEPORTAL_CORE_CACHING_PROXY_H_
#define CACHEPORTAL_CORE_CACHING_PROXY_H_

#include <functional>
#include <string>

#include "cache/page_cache.h"
#include "server/handler.h"
#include "server/servlet.h"

namespace cacheportal::core {

/// The dynamic-web-content cache of Configuration III, deployed in front
/// of the load balancer: answers repeat requests from the PageCache,
/// forwards misses upstream, stores cacheable responses, and services the
/// invalidator's `Cache-Control: eject` messages.
class CachingProxy : public server::RequestHandler {
 public:
  /// Maps a request path to the servlet's config (for key-parameter
  /// narrowing); may return nullptr (all parameters become keys).
  using ConfigLookup =
      std::function<const server::ServletConfig*(const std::string& path)>;

  /// `cache` and `upstream` are not owned.
  CachingProxy(cache::PageCache* cache, server::RequestHandler* upstream,
               ConfigLookup config_lookup)
      : cache_(cache),
        upstream_(upstream),
        config_lookup_(std::move(config_lookup)) {}

  http::HttpResponse Handle(const http::HttpRequest& request) override;

  cache::PageCache* cache() { return cache_; }

 private:
  cache::PageCache* cache_;
  server::RequestHandler* upstream_;
  ConfigLookup config_lookup_;
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_CACHING_PROXY_H_
