#include "core/delivery_router.h"

#include "common/strings.h"

namespace cacheportal::core {

uint64_t HashRing::Hash(std::string_view bytes) {
  uint64_t hash = 14695981039346656037ULL;
  for (char c : bytes) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void HashRing::AddNode(const std::string& name) {
  size_t index = names_.size();
  names_.push_back(name);
  for (int i = 0; i < virtual_nodes_; ++i) {
    ring_[Hash(StrCat(name, "#", i))] = index;
  }
}

std::string HashRing::NodeFor(std::string_view key) const {
  if (ring_.empty()) return "";
  auto it = ring_.lower_bound(Hash(key));
  if (it == ring_.end()) it = ring_.begin();  // Wrap around the circle.
  return names_[it->second];
}

void DeliveryRouter::AddPeer(invalidator::InvalidationSink* sink,
                             const std::string& name,
                             ReliableDeliveryQueue::FlushFn flush) {
  ring_.AddNode(name);
  peer_names_.push_back(name);
  queue_->AddSink(sink, name, std::move(flush));
}

Status DeliveryRouter::SendInvalidation(const http::HttpRequest& eject_message,
                                        const std::string& cache_key) {
  std::string peer = ring_.NodeFor(cache_key);
  if (peer.empty()) {
    return Status::InvalidArgument("DeliveryRouter has no peers");
  }
  ++routed_[peer];
  ++routed_total_;
  return queue_->SendInvalidationTo(peer, eject_message, cache_key);
}

uint64_t DeliveryRouter::routed_to(const std::string& name) const {
  auto it = routed_.find(name);
  return it == routed_.end() ? 0 : it->second;
}

std::string DeliveryRouter::HealthReport() const {
  std::string report = StrCat("router: peers=", peer_names_.size(),
                              " routed=", routed_total_);
  for (const std::string& name : peer_names_) {
    report += StrCat(" ", name, "=", routed_to(name));
  }
  report += StrCat("\n", queue_->HealthReport());
  return report;
}

}  // namespace cacheportal::core
