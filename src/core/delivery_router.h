#ifndef CACHEPORTAL_CORE_DELIVERY_ROUTER_H_
#define CACHEPORTAL_CORE_DELIVERY_ROUTER_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/reliable_delivery.h"
#include "invalidator/invalidator.h"

namespace cacheportal::core {

/// Consistent-hash ring over named nodes. Each node is planted at
/// `virtual_nodes` pseudo-random points on a 64-bit circle; a key maps
/// to the first node point at or clockwise after its own hash. Adding or
/// removing one node therefore remaps only ~1/N of the keyspace — the
/// property that lets a cache fleet grow without a global reshuffle.
///
/// Hashing is FNV-1a 64 (not std::hash, whose value is implementation-
/// defined): two processes that build a ring from the same node names in
/// any order agree on every key's owner. That determinism is load-bearing
/// — the multi-process fan-out test recomputes each node's expected key
/// set on the verifying side.
class HashRing {
 public:
  explicit HashRing(int virtual_nodes = 64)
      : virtual_nodes_(virtual_nodes < 1 ? 1 : virtual_nodes) {}

  /// Plants `name` on the ring. Duplicate names collapse onto the same
  /// points (the ring is a set of (point, name) pairs).
  void AddNode(const std::string& name);

  /// The owning node for `key`, or empty if the ring has no nodes.
  std::string NodeFor(std::string_view key) const;

  size_t node_count() const { return names_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  /// FNV-1a 64-bit — deterministic across processes and platforms.
  static uint64_t Hash(std::string_view bytes);

 private:
  int virtual_nodes_;
  std::vector<std::string> names_;
  // point on the circle -> index into names_.
  std::map<uint64_t, size_t> ring_;
};

/// Fans invalidations out across many cache nodes: each cache key is
/// routed by consistent hash to exactly one peer's ReliableDeliveryQueue
/// sink, so N caches each hold (and each invalidate) ~1/N of the
/// keyspace. This is the paper's single-invalidator/many-caches topology
/// (Figure 1 positions A-D) scaled horizontally: the invalidator computes
/// staleness once and the router decides which wire carries each eject.
///
/// The router is itself an InvalidationSink, so it drops into the same
/// slot a single WireCacheSink occupies — the invalidator pipeline does
/// not know the fleet exists. Reliability (retries, breakers, batching)
/// stays in the underlying queue; the router only chooses the lane.
class DeliveryRouter : public invalidator::InvalidationSink,
                       public invalidator::ObservableSink {
 public:
  /// `queue` is not owned and must outlive the router.
  explicit DeliveryRouter(ReliableDeliveryQueue* queue,
                          int virtual_nodes = 64)
      : queue_(queue), ring_(virtual_nodes) {}

  /// Registers a peer: plants `name` on the ring and adds `sink` to the
  /// underlying queue under that name. Call before any SendInvalidation.
  void AddPeer(invalidator::InvalidationSink* sink, const std::string& name,
               ReliableDeliveryQueue::FlushFn flush = nullptr);

  /// The peer that owns `cache_key` (empty if no peers registered).
  std::string PeerFor(const std::string& cache_key) const {
    return ring_.NodeFor(cache_key);
  }

  /// Routes the eject to its owning peer's delivery queue.
  Status SendInvalidation(const http::HttpRequest& eject_message,
                          const std::string& cache_key) override;

  /// Messages routed to `name` so far (0 for unknown names).
  uint64_t routed_to(const std::string& name) const;
  uint64_t routed_total() const { return routed_total_; }

  // ObservableSink: backlog and health delegate to the delivery queue,
  // prefixed with the per-peer routing split.
  size_t PendingBacklog() const override { return queue_->pending(); }
  std::string HealthReport() const override;

 private:
  ReliableDeliveryQueue* queue_;
  HashRing ring_;
  std::vector<std::string> peer_names_;  // AddPeer order.
  std::map<std::string, uint64_t> routed_;
  uint64_t routed_total_ = 0;
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_DELIVERY_ROUTER_H_
