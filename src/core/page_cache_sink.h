#ifndef CACHEPORTAL_CORE_PAGE_CACHE_SINK_H_
#define CACHEPORTAL_CORE_PAGE_CACHE_SINK_H_

#include "cache/page_cache.h"
#include "invalidator/invalidator.h"

namespace cacheportal::core {

/// Delivers the invalidator's eject messages to an in-process PageCache
/// the same way a remote cache would receive them: as HTTP requests run
/// through the cache's invalidation endpoint.
class PageCacheSink : public invalidator::InvalidationSink {
 public:
  /// `cache` is not owned.
  explicit PageCacheSink(cache::PageCache* cache) : cache_(cache) {}

  Status SendInvalidation(const http::HttpRequest& eject_message,
                          const std::string& cache_key) override {
    http::HttpResponse response =
        cache_->HandleInvalidationRequest(eject_message);
    if (response.status_code == 400) {
      // Malformed message (unparseable key): fall back to direct removal
      // so staleness cannot leak.
      cache_->InvalidateKey(cache_key);
    }
    return Status::OK();
  }

 private:
  cache::PageCache* cache_;
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_PAGE_CACHE_SINK_H_
