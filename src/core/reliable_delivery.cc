#include "core/reliable_delivery.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace cacheportal::core {

namespace {

constexpr char kQueueCheckpointMagic[] = "delivery-queue 1";

}  // namespace

ReliableDeliveryQueue::ReliableDeliveryQueue(const Clock* clock,
                                             DeliveryOptions options)
    : clock_(clock), options_(options), jitter_(options.jitter_seed) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

void ReliableDeliveryQueue::AddSink(invalidator::InvalidationSink* sink,
                                    std::string name, FlushFn flush) {
  SinkState state;
  state.sink = sink;
  state.name = std::move(name);
  state.flush = std::move(flush);
  sinks_.push_back(std::move(state));
}

Status ReliableDeliveryQueue::SendInvalidation(
    const http::HttpRequest& eject_message, const std::string& cache_key) {
  Micros now = clock_->NowMicros();
  for (SinkState& state : sinks_) {
    if (state.quarantined) {
      // The serving path bypasses this cache; delivering is pointless
      // until it is reinstated (flushed or repopulated fresh).
      ++stats_.dead_lettered;
      continue;
    }
    ++stats_.enqueued;
    PendingMessage message;
    message.request = eject_message;
    message.cache_key = cache_key;
    message.first_attempt = now;
    if (!state.queue.empty()) {
      // The sink is already backlogged: keep per-sink FIFO order rather
      // than letting a fresh message overtake queued ones. It becomes
      // eligible on the next Pump() after the head clears.
      message.next_retry = now;
      state.queue.push_back(std::move(message));
      continue;
    }
    Attempt(state, std::move(message), /*is_retry=*/false);
  }
  return Status::OK();
}

Micros ReliableDeliveryQueue::BackoffAfter(int attempts) {
  double backoff = static_cast<double>(options_.initial_backoff);
  for (int i = 1; i < attempts; ++i) backoff *= options_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff));
  if (options_.jitter_fraction > 0.0) {
    double jitter =
        (jitter_.NextDouble() * 2.0 - 1.0) * options_.jitter_fraction;
    backoff *= 1.0 + jitter;
  }
  return std::max<Micros>(1, static_cast<Micros>(backoff));
}

bool ReliableDeliveryQueue::Attempt(SinkState& state, PendingMessage message,
                                    bool is_retry) {
  ++stats_.attempts;
  if (is_retry) ++stats_.retries;
  ++message.attempts;
  Status sent = state.sink->SendInvalidation(message.request,
                                             message.cache_key);
  if (sent.ok()) {
    ++stats_.delivered;
    if (message.attempts == 1) ++stats_.delivered_first_try;
    return true;
  }
  Micros now = clock_->NowMicros();
  bool deadline_passed =
      options_.delivery_deadline > 0 &&
      now - message.first_attempt >= options_.delivery_deadline;
  if (message.attempts >= options_.max_attempts || deadline_passed) {
    LogMessage(LogLevel::kWarning,
               StrCat("delivery to sink '", state.name, "' gave up on '",
                      message.cache_key, "' after ", message.attempts,
                      " attempts (", sent.ToString(), ")"));
    ++stats_.dead_lettered;
    Escalate(state);
    return false;
  }
  message.next_retry = now + BackoffAfter(message.attempts);
  // Back to the head: this message stays first in the sink's FIFO.
  state.queue.push_front(std::move(message));
  return false;
}

void ReliableDeliveryQueue::Escalate(SinkState& state) {
  ++stats_.escalations;
  stats_.dead_lettered += state.queue.size();
  state.queue.clear();
  if (options_.escalation == DeliveryOptions::Escalation::kFlush &&
      state.flush != nullptr) {
    // Freshness over hit ratio: emptying the unreachable cache costs
    // misses but cannot serve a stale page. The callback must not use
    // the failing transport.
    LogMessage(LogLevel::kWarning,
               StrCat("sink '", state.name,
                      "' unreachable; flushing its cache wholesale"));
    state.flush();
    return;
  }
  state.quarantined = true;
  LogMessage(LogLevel::kWarning,
             StrCat("sink '", state.name,
                    "' unreachable; quarantined (serving path should "
                    "bypass it until reinstated)"));
}

size_t ReliableDeliveryQueue::Pump() {
  size_t delivered = 0;
  Micros now = clock_->NowMicros();
  for (SinkState& state : sinks_) {
    if (state.quarantined) continue;
    while (!state.queue.empty() && state.queue.front().next_retry <= now) {
      PendingMessage message = std::move(state.queue.front());
      state.queue.pop_front();
      bool is_retry = message.attempts > 0;
      if (!Attempt(state, std::move(message), is_retry)) break;
      ++delivered;
    }
  }
  return delivered;
}

size_t ReliableDeliveryQueue::DrainWith(ManualClock* clock) {
  size_t delivered = Pump();
  while (std::optional<Micros> next = NextRetryAt()) {
    if (*next > clock->NowMicros()) clock->SetTime(*next);
    delivered += Pump();
    // Terminates: every due attempt either delivers (queue shrinks) or
    // raises the message's attempt count toward escalation, which clears
    // the sink's queue.
  }
  return delivered;
}

std::optional<Micros> ReliableDeliveryQueue::NextRetryAt() const {
  std::optional<Micros> next;
  for (const SinkState& state : sinks_) {
    if (state.quarantined || state.queue.empty()) continue;
    Micros head = state.queue.front().next_retry;
    if (!next.has_value() || head < *next) next = head;
  }
  return next;
}

size_t ReliableDeliveryQueue::pending() const {
  size_t total = 0;
  for (const SinkState& state : sinks_) total += state.queue.size();
  return total;
}

size_t ReliableDeliveryQueue::pending_for(const std::string& name) const {
  const SinkState* state = FindSink(name);
  return state == nullptr ? 0 : state->queue.size();
}

bool ReliableDeliveryQueue::IsQuarantined(const std::string& name) const {
  const SinkState* state = FindSink(name);
  return state != nullptr && state->quarantined;
}

void ReliableDeliveryQueue::Reinstate(const std::string& name) {
  SinkState* state = FindSink(name);
  if (state != nullptr) state->quarantined = false;
}

ReliableDeliveryQueue::SinkState* ReliableDeliveryQueue::FindSink(
    const std::string& name) {
  for (SinkState& state : sinks_) {
    if (state.name == name) return &state;
  }
  return nullptr;
}

const ReliableDeliveryQueue::SinkState* ReliableDeliveryQueue::FindSink(
    const std::string& name) const {
  for (const SinkState& state : sinks_) {
    if (state.name == name) return &state;
  }
  return nullptr;
}

std::string ReliableDeliveryQueue::CheckpointState() const {
  // Message payloads are serialized HTTP (they contain CRLFs), so key
  // and wire travel as length-prefixed raw blocks after each msg line.
  std::string out = StrCat(kQueueCheckpointMagic, "\n");
  for (const SinkState& state : sinks_) {
    out += StrCat("sink ", state.quarantined ? 1 : 0, " ",
                  state.queue.size(), " ", state.name.size(), " ",
                  state.name, "\n");
    for (const PendingMessage& message : state.queue) {
      std::string wire = message.request.Serialize();
      out += StrCat("msg ", message.cache_key.size(), " ", wire.size(),
                    "\n");
      out += message.cache_key;
      out += wire;
      out += "\n";
    }
  }
  out += "end\n";
  return out;
}

Status ReliableDeliveryQueue::RestoreState(const std::string& state_bytes) {
  size_t pos = 0;
  auto next_line = [&state_bytes, &pos]() -> std::optional<std::string> {
    if (pos >= state_bytes.size()) return std::nullopt;
    size_t nl = state_bytes.find('\n', pos);
    if (nl == std::string::npos) nl = state_bytes.size();
    std::string line = state_bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::optional<std::string> magic = next_line();
  if (!magic.has_value() || *magic != kQueueCheckpointMagic) {
    return Status::ParseError("not a delivery-queue checkpoint");
  }
  Micros now = clock_->NowMicros();
  SinkState* current = nullptr;
  bool saw_end = false;
  while (std::optional<std::string> line = next_line()) {
    std::vector<std::string> fields = StrSplit(*line, ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    if (fields[0] == "sink" && fields.size() >= 5) {
      size_t name_length = std::strtoull(fields[3].c_str(), nullptr, 10);
      // The name is everything after the fourth space (it may itself
      // contain spaces); the persisted length validates the slice.
      size_t name_offset = fields[0].size() + fields[1].size() +
                           fields[2].size() + fields[3].size() + 4;
      if (name_offset + name_length != line->size()) {
        return Status::ParseError(
            StrCat("corrupt sink record in delivery checkpoint: ", *line));
      }
      std::string name = line->substr(name_offset);
      current = FindSink(name);
      if (current == nullptr) {
        return Status::InvalidArgument(
            StrCat("delivery checkpoint references unknown sink '", name,
                   "'; re-add sinks with their original names before "
                   "restoring"));
      }
      current->quarantined = fields[1] == "1";
      current->queue.clear();
    } else if (fields[0] == "msg" && fields.size() == 3) {
      if (current == nullptr) {
        return Status::ParseError("msg record before any sink record");
      }
      size_t key_length = std::strtoull(fields[1].c_str(), nullptr, 10);
      size_t wire_length = std::strtoull(fields[2].c_str(), nullptr, 10);
      if (pos + key_length + wire_length > state_bytes.size()) {
        return Status::ParseError("truncated delivery checkpoint");
      }
      PendingMessage message;
      message.cache_key = state_bytes.substr(pos, key_length);
      std::string wire = state_bytes.substr(pos + key_length, wire_length);
      pos += key_length + wire_length + 1;  // Skip the trailing '\n'.
      Result<http::HttpRequest> request = http::HttpRequest::Parse(wire);
      if (!request.ok()) {
        return Status::ParseError(
            StrCat("unparseable eject message in delivery checkpoint: ",
                   request.status().ToString()));
      }
      message.request = std::move(request).value();
      // Rebase timing into the new process's clock and grant a full
      // attempt budget: the outage that queued the message has usually
      // passed, and redelivery is idempotent either way.
      message.attempts = 0;
      message.first_attempt = now;
      message.next_retry = now;
      current->queue.push_back(std::move(message));
    } else {
      return Status::ParseError(
          StrCat("unknown delivery checkpoint record: ", *line));
    }
  }
  if (!saw_end) return Status::ParseError("truncated delivery checkpoint");
  return Status::OK();
}

}  // namespace cacheportal::core
