#include "core/reliable_delivery.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "common/strings.h"

namespace cacheportal::core {

namespace {

// v1 checkpoints predate circuit breakers; RestoreState accepts both.
constexpr char kQueueCheckpointMagicV1[] = "delivery-queue 1";
constexpr char kQueueCheckpointMagicV2[] = "delivery-queue 2";

const char* BreakerName(ReliableDeliveryQueue::BreakerState state) {
  switch (state) {
    case ReliableDeliveryQueue::BreakerState::kClosed:
      return "closed";
    case ReliableDeliveryQueue::BreakerState::kOpen:
      return "open";
    case ReliableDeliveryQueue::BreakerState::kHalfOpen:
      return "half-open";
  }
  return "closed";
}

}  // namespace

ReliableDeliveryQueue::ReliableDeliveryQueue(const Clock* clock,
                                             DeliveryOptions options)
    : clock_(clock), options_(options), jitter_(options.jitter_seed) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
}

void ReliableDeliveryQueue::AddSink(invalidator::InvalidationSink* sink,
                                    std::string name, FlushFn flush) {
  SinkState state;
  state.sink = sink;
  state.batch = dynamic_cast<invalidator::BatchInvalidationSink*>(sink);
  if (state.batch != nullptr && !state.batch->BatchingEnabled()) {
    state.batch = nullptr;
  }
  state.name = std::move(name);
  state.flush = std::move(flush);
  sinks_.push_back(std::move(state));
}

void ReliableDeliveryQueue::EnqueueLocked(
    SinkState& state, const http::HttpRequest& eject_message,
    const std::string& cache_key, Micros now) {
  ++stats_.enqueued;
  PendingMessage message;
  message.request = eject_message;
  message.cache_key = cache_key;
  message.first_attempt = now;
  if (!state.queue.empty() || BatchEligible(state)) {
    // Backlogged: keep per-sink FIFO order rather than letting a fresh
    // message overtake queued ones. Batch-eligible sinks always defer to
    // Pump() so consecutive sends coalesce into one flush instead of
    // paying a transport round trip each.
    message.next_retry = now;
    state.queue.push_back(std::move(message));
    return;
  }
  Attempt(state, std::move(message), /*is_retry=*/false);
}

Status ReliableDeliveryQueue::SendInvalidation(
    const http::HttpRequest& eject_message, const std::string& cache_key) {
  Micros now = clock_->NowMicros();
  for (SinkState& state : sinks_) {
    if (state.quarantined) {
      // The serving path bypasses this cache; delivering is pointless
      // until it is reinstated (flushed or repopulated fresh).
      ++stats_.dead_lettered;
      continue;
    }
    MaybeHalfOpen(state, now);
    if (state.breaker == BreakerState::kOpen) {
      // The sink is plainly down: refuse without an attempt. The drop is
      // compensated by the recovery flush when the breaker closes.
      ++stats_.breaker_rejections;
      ++stats_.dead_lettered;
      continue;
    }
    EnqueueLocked(state, eject_message, cache_key, now);
  }
  return Status::OK();
}

Status ReliableDeliveryQueue::SendInvalidationTo(
    const std::string& sink_name, const http::HttpRequest& eject_message,
    const std::string& cache_key) {
  SinkState* state = FindSink(sink_name);
  if (state == nullptr) {
    return Status::InvalidArgument(
        StrCat("SendInvalidationTo: unknown sink '", sink_name, "'"));
  }
  Micros now = clock_->NowMicros();
  if (state->quarantined) {
    ++stats_.dead_lettered;
    return Status::OK();
  }
  MaybeHalfOpen(*state, now);
  if (state->breaker == BreakerState::kOpen) {
    ++stats_.breaker_rejections;
    ++stats_.dead_lettered;
    return Status::OK();
  }
  EnqueueLocked(*state, eject_message, cache_key, now);
  return Status::OK();
}

Micros ReliableDeliveryQueue::BackoffAfter(int attempts) {
  double backoff = static_cast<double>(options_.initial_backoff);
  for (int i = 1; i < attempts; ++i) backoff *= options_.backoff_multiplier;
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff));
  if (options_.jitter_fraction > 0.0) {
    double jitter =
        (jitter_.NextDouble() * 2.0 - 1.0) * options_.jitter_fraction;
    backoff *= 1.0 + jitter;
  }
  return std::max<Micros>(1, static_cast<Micros>(backoff));
}

bool ReliableDeliveryQueue::Attempt(SinkState& state, PendingMessage message,
                                    bool is_retry) {
  ++stats_.attempts;
  if (is_retry) ++stats_.retries;
  bool is_probe = state.breaker == BreakerState::kHalfOpen;
  if (is_probe) ++stats_.breaker_probes;
  ++message.attempts;
  Status sent = state.sink->SendInvalidation(message.request,
                                             message.cache_key);
  if (sent.ok()) {
    ++stats_.delivered;
    if (message.attempts == 1) ++stats_.delivered_first_try;
    if (is_probe) {
      CloseBreakerAfterProbe(state);
    } else {
      state.consecutive_failures = 0;
    }
    return true;
  }
  Micros now = clock_->NowMicros();
  if (IsFatalDeliveryError(sent)) {
    // A version mismatch or corrupt frame fails identically on every
    // retry — burning the attempt budget just delays the escalation the
    // undelivered eject requires (the cache may be serving the stale
    // page right now).
    LogMessage(LogLevel::kWarning,
               StrCat("delivery to sink '", state.name,
                      "' hit a fatal error on '", message.cache_key,
                      "'; dead-lettering without retries (",
                      sent.ToString(), ")"));
    ++stats_.dead_lettered;
    ++stats_.fatal_dead_letters;
    Escalate(state);
    return false;
  }
  if (is_probe) {
    // Failed probe: the sink is still down. Reopen for another full
    // cooldown; the probe message is dead-lettered like any message
    // arriving while open (the pending recovery flush covers it).
    ++stats_.breaker_opens;
    ++stats_.dead_lettered;
    state.breaker = BreakerState::kOpen;
    state.breaker_opened_at = now;
    LogMessage(LogLevel::kWarning,
               StrCat("sink '", state.name,
                      "' failed its half-open probe; breaker reopened"));
    return false;
  }
  if (options_.breaker_failure_threshold > 0) {
    ++state.consecutive_failures;
    if (state.consecutive_failures >= options_.breaker_failure_threshold) {
      ++stats_.dead_lettered;  // The message that tripped the breaker.
      OpenBreaker(state);
      return false;
    }
  }
  bool deadline_passed =
      options_.delivery_deadline > 0 &&
      now - message.first_attempt >= options_.delivery_deadline;
  if (message.attempts >= options_.max_attempts || deadline_passed) {
    LogMessage(LogLevel::kWarning,
               StrCat("delivery to sink '", state.name, "' gave up on '",
                      message.cache_key, "' after ", message.attempts,
                      " attempts (", sent.ToString(), ")"));
    ++stats_.dead_lettered;
    Escalate(state);
    return false;
  }
  message.next_retry = now + BackoffAfter(message.attempts);
  // Back to the head: this message stays first in the sink's FIFO.
  state.queue.push_front(std::move(message));
  return false;
}

void ReliableDeliveryQueue::Escalate(SinkState& state) {
  ++stats_.escalations;
  stats_.dead_lettered += state.queue.size();
  state.queue.clear();
  if (options_.escalation == DeliveryOptions::Escalation::kFlush &&
      state.flush != nullptr) {
    // Freshness over hit ratio: emptying the unreachable cache costs
    // misses but cannot serve a stale page. The callback must not use
    // the failing transport.
    LogMessage(LogLevel::kWarning,
               StrCat("sink '", state.name,
                      "' unreachable; flushing its cache wholesale"));
    state.flush();
    return;
  }
  state.quarantined = true;
  LogMessage(LogLevel::kWarning,
             StrCat("sink '", state.name,
                    "' unreachable; quarantined (serving path should "
                    "bypass it until reinstated)"));
}

void ReliableDeliveryQueue::OpenBreaker(SinkState& state) {
  ++stats_.breaker_opens;
  stats_.dead_lettered += state.queue.size();
  state.queue.clear();
  state.breaker = BreakerState::kOpen;
  state.breaker_opened_at = clock_->NowMicros();
  state.recovery_flush_pending = true;
  if (state.flush == nullptr) {
    // Without an out-of-band flush channel the ejects dropped while open
    // can never be compensated; quarantine so the serving path bypasses
    // the cache until an operator reinstates it.
    ++stats_.escalations;
    state.quarantined = true;
    LogMessage(LogLevel::kWarning,
               StrCat("sink '", state.name, "' breaker opened after ",
                      state.consecutive_failures,
                      " consecutive failures; no flush channel, "
                      "quarantined"));
    return;
  }
  LogMessage(LogLevel::kWarning,
             StrCat("sink '", state.name, "' breaker opened after ",
                    state.consecutive_failures,
                    " consecutive failures; cooling down"));
}

void ReliableDeliveryQueue::MaybeHalfOpen(SinkState& state, Micros now) {
  if (state.breaker != BreakerState::kOpen) return;
  if (now - state.breaker_opened_at < options_.breaker_cooldown) return;
  state.breaker = BreakerState::kHalfOpen;
  LogMessage(LogLevel::kInfo,
             StrCat("sink '", state.name,
                    "' breaker half-open; next message probes"));
}

void ReliableDeliveryQueue::CloseBreakerAfterProbe(SinkState& state) {
  ++stats_.breaker_recoveries;
  state.breaker = BreakerState::kClosed;
  state.consecutive_failures = 0;
  if (!state.recovery_flush_pending) return;
  state.recovery_flush_pending = false;
  // Ejects were dropped while the breaker was open, so the recovered
  // cache may hold pages whose invalidations it never saw: start clean.
  ++stats_.escalations;
  if (state.flush != nullptr) {
    LogMessage(LogLevel::kWarning,
               StrCat("sink '", state.name,
                      "' breaker closed; recovery flush covers ejects "
                      "dropped while open"));
    state.flush();
    return;
  }
  state.quarantined = true;
  LogMessage(LogLevel::kWarning,
             StrCat("sink '", state.name,
                    "' breaker closed but no flush channel; quarantined "
                    "until reinstated"));
}

size_t ReliableDeliveryQueue::FlushBatch(SinkState& state, Micros now,
                                         bool* keep_going) {
  // Pop every due message up to batch_max; the batch is sent as one
  // transport operation and confirmed as a prefix.
  std::vector<PendingMessage> batch;
  size_t cap = static_cast<size_t>(std::max(options_.batch_max, 1));
  while (batch.size() < cap && !state.queue.empty() &&
         state.queue.front().next_retry <= now) {
    batch.push_back(std::move(state.queue.front()));
    state.queue.pop_front();
  }
  if (batch.empty()) {
    *keep_going = false;
    return 0;
  }
  ++stats_.batch_flushes;
  stats_.batched_messages += batch.size();
  std::vector<invalidator::BatchItem> items;
  items.reserve(batch.size());
  for (PendingMessage& message : batch) {
    ++stats_.attempts;
    if (message.attempts > 0) ++stats_.retries;
    ++message.attempts;
    items.push_back({&message.request, &message.cache_key});
  }
  invalidator::BatchSendResult sent =
      state.batch->SendInvalidationBatch(items);
  size_t confirmed = std::min(sent.confirmed, batch.size());
  for (size_t i = 0; i < confirmed; ++i) {
    ++stats_.delivered;
    if (batch[i].attempts == 1) ++stats_.delivered_first_try;
  }
  if (confirmed == batch.size()) {
    state.consecutive_failures = 0;
    *keep_going = true;
    return confirmed;
  }
  *keep_going = false;
  size_t remainder = batch.size() - confirmed;
  // The head of the unconfirmed suffix owns the failure: it is the
  // message the sink stopped at, so the escalation rules that Attempt()
  // applies per message apply to it, and the rest ride along (they were
  // never individually refused).
  Status cause = sent.status.ok()
                     ? Status::Unavailable(
                           "batch sink confirmed only a prefix")
                     : sent.status;
  now = clock_->NowMicros();
  if (IsFatalDeliveryError(cause)) {
    LogMessage(LogLevel::kWarning,
               StrCat("batch delivery to sink '", state.name,
                      "' hit a fatal error at '",
                      batch[confirmed].cache_key,
                      "'; dead-lettering without retries (",
                      cause.ToString(), ")"));
    stats_.dead_lettered += remainder;
    ++stats_.fatal_dead_letters;  // The message the fatal error named.
    Escalate(state);
    return confirmed;
  }
  if (options_.breaker_failure_threshold > 0) {
    ++state.consecutive_failures;
    if (state.consecutive_failures >= options_.breaker_failure_threshold) {
      stats_.dead_lettered += remainder;  // Tripping batch remainder.
      OpenBreaker(state);
      return confirmed;
    }
  }
  PendingMessage& head = batch[confirmed];
  bool deadline_passed =
      options_.delivery_deadline > 0 &&
      now - head.first_attempt >= options_.delivery_deadline;
  if (head.attempts >= options_.max_attempts || deadline_passed) {
    LogMessage(LogLevel::kWarning,
               StrCat("batch delivery to sink '", state.name,
                      "' gave up on '", head.cache_key, "' after ",
                      head.attempts, " attempts (", cause.ToString(), ")"));
    stats_.dead_lettered += remainder;
    Escalate(state);
    return confirmed;
  }
  // Requeue the unconfirmed suffix at the FRONT in original order so the
  // per-sink FIFO holds; the whole suffix shares the head's backoff (it
  // travels in the head's next batch anyway).
  Micros next_retry = now + BackoffAfter(head.attempts);
  for (size_t i = batch.size(); i-- > confirmed;) {
    batch[i].next_retry = next_retry;
    state.queue.push_front(std::move(batch[i]));
  }
  return confirmed;
}

size_t ReliableDeliveryQueue::Pump() {
  size_t delivered = 0;
  Micros now = clock_->NowMicros();
  for (SinkState& state : sinks_) {
    if (state.quarantined) continue;
    // An open breaker holds no queue (it was dead-lettered on trip), but
    // Pump still advances it toward half-open as time passes.
    MaybeHalfOpen(state, now);
    if (state.breaker == BreakerState::kOpen) continue;
    if (BatchEligible(state) && state.breaker != BreakerState::kHalfOpen) {
      // Batched drain: up to batch_max messages per transport operation.
      // Half-open probes stay single-message (below) so a recovering
      // sink is tested with one message, not a whole batch.
      bool keep_going = true;
      while (keep_going) {
        delivered += FlushBatch(state, now, &keep_going);
        if (state.quarantined || state.breaker != BreakerState::kClosed) {
          break;
        }
      }
      continue;
    }
    while (!state.queue.empty() && state.queue.front().next_retry <= now) {
      PendingMessage message = std::move(state.queue.front());
      state.queue.pop_front();
      bool is_retry = message.attempts > 0;
      if (!Attempt(state, std::move(message), is_retry)) break;
      ++delivered;
    }
  }
  return delivered;
}

size_t ReliableDeliveryQueue::DrainWith(ManualClock* clock) {
  size_t delivered = Pump();
  while (std::optional<Micros> next = NextRetryAt()) {
    if (*next > clock->NowMicros()) clock->SetTime(*next);
    delivered += Pump();
    // Terminates: every due attempt either delivers (queue shrinks) or
    // raises the message's attempt count toward escalation, which clears
    // the sink's queue.
  }
  return delivered;
}

std::optional<Micros> ReliableDeliveryQueue::NextRetryAt() const {
  std::optional<Micros> next;
  for (const SinkState& state : sinks_) {
    if (state.quarantined || state.queue.empty()) continue;
    Micros head = state.queue.front().next_retry;
    if (!next.has_value() || head < *next) next = head;
  }
  return next;
}

size_t ReliableDeliveryQueue::pending() const {
  size_t total = 0;
  for (const SinkState& state : sinks_) total += state.queue.size();
  return total;
}

size_t ReliableDeliveryQueue::pending_for(const std::string& name) const {
  const SinkState* state = FindSink(name);
  return state == nullptr ? 0 : state->queue.size();
}

bool ReliableDeliveryQueue::IsQuarantined(const std::string& name) const {
  const SinkState* state = FindSink(name);
  return state != nullptr && state->quarantined;
}

void ReliableDeliveryQueue::Reinstate(const std::string& name) {
  SinkState* state = FindSink(name);
  if (state != nullptr) state->quarantined = false;
}

ReliableDeliveryQueue::BreakerState ReliableDeliveryQueue::breaker_state(
    const std::string& name) const {
  const SinkState* state = FindSink(name);
  if (state == nullptr) return BreakerState::kClosed;
  // Report the effective state: an open breaker whose cooldown has
  // elapsed probes on the next message, so observers see half-open even
  // before that message arrives.
  if (state->breaker == BreakerState::kOpen &&
      clock_->NowMicros() - state->breaker_opened_at >=
          options_.breaker_cooldown) {
    return BreakerState::kHalfOpen;
  }
  return state->breaker;
}

std::string ReliableDeliveryQueue::HealthReport() const {
  std::string report = StrCat(
      "delivery: pending=", pending(), " delivered=", stats_.delivered,
      " dead-letters=", stats_.dead_lettered,
      " fatal-dead-letters=", stats_.fatal_dead_letters,
      " escalations=", stats_.escalations,
      " breaker-opens=", stats_.breaker_opens,
      " breaker-rejections=", stats_.breaker_rejections);
  for (const SinkState& state : sinks_) {
    report += StrCat(" ", state.name, "=",
                     state.quarantined ? "quarantined"
                                       : BreakerName(breaker_state(state.name)));
  }
  // Per-peer connection health travels with the queue's line: the
  // operator reading delivery state sees reconnects/epochs/quarantines
  // of each observable downstream sink in the same place.
  for (const SinkState& state : sinks_) {
    if (auto* observable =
            dynamic_cast<const invalidator::ObservableSink*>(state.sink)) {
      report += StrCat("\n  [", state.name, "] ",
                       observable->HealthReport());
    }
  }
  return report;
}

ReliableDeliveryQueue::SinkState* ReliableDeliveryQueue::FindSink(
    const std::string& name) {
  for (SinkState& state : sinks_) {
    if (state.name == name) return &state;
  }
  return nullptr;
}

const ReliableDeliveryQueue::SinkState* ReliableDeliveryQueue::FindSink(
    const std::string& name) const {
  for (const SinkState& state : sinks_) {
    if (state.name == name) return &state;
  }
  return nullptr;
}

std::string ReliableDeliveryQueue::CheckpointState() const {
  // Message payloads are serialized HTTP (they contain CRLFs), so key
  // and wire travel as length-prefixed raw blocks after each msg line.
  // v2 adds the breaker fields to the sink line; v1 checkpoints (without
  // them) still restore.
  std::string out = StrCat(kQueueCheckpointMagicV2, "\n");
  for (const SinkState& state : sinks_) {
    out += StrCat("sink ", state.quarantined ? 1 : 0, " ",
                  static_cast<int>(state.breaker), " ",
                  state.recovery_flush_pending ? 1 : 0, " ",
                  state.queue.size(), " ", state.name.size(), " ",
                  state.name, "\n");
    for (const PendingMessage& message : state.queue) {
      std::string wire = message.request.Serialize();
      out += StrCat("msg ", message.cache_key.size(), " ", wire.size(),
                    "\n");
      out += message.cache_key;
      out += wire;
      out += "\n";
    }
  }
  out += "end\n";
  return out;
}

Status ReliableDeliveryQueue::RestoreState(const std::string& state_bytes) {
  size_t pos = 0;
  auto next_line = [&state_bytes, &pos]() -> std::optional<std::string> {
    if (pos >= state_bytes.size()) return std::nullopt;
    size_t nl = state_bytes.find('\n', pos);
    if (nl == std::string::npos) nl = state_bytes.size();
    std::string line = state_bytes.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::optional<std::string> magic = next_line();
  if (!magic.has_value() || (*magic != kQueueCheckpointMagicV1 &&
                             *magic != kQueueCheckpointMagicV2)) {
    return Status::ParseError("not a delivery-queue checkpoint");
  }
  const bool v2 = *magic == kQueueCheckpointMagicV2;
  // v1 sink line:  sink <quarantined> <qsize> <namelen> <name>
  // v2 sink line:  sink <quarantined> <breaker> <flush_pending> <qsize>
  //                <namelen> <name>
  const size_t sink_fields = v2 ? 6 : 4;
  Micros now = clock_->NowMicros();
  SinkState* current = nullptr;
  bool saw_end = false;
  while (std::optional<std::string> line = next_line()) {
    std::vector<std::string> fields = StrSplit(*line, ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    if (fields[0] == "sink" && fields.size() >= sink_fields + 1) {
      size_t name_length =
          std::strtoull(fields[sink_fields - 1].c_str(), nullptr, 10);
      // The name is everything after the last counted space (it may
      // itself contain spaces); the persisted length validates the slice.
      size_t name_offset = 0;
      for (size_t i = 0; i < sink_fields; ++i) {
        name_offset += fields[i].size() + 1;
      }
      if (name_offset + name_length != line->size()) {
        return Status::ParseError(
            StrCat("corrupt sink record in delivery checkpoint: ", *line));
      }
      std::string name = line->substr(name_offset);
      current = FindSink(name);
      if (current == nullptr) {
        return Status::InvalidArgument(
            StrCat("delivery checkpoint references unknown sink '", name,
                   "'; re-add sinks with their original names before "
                   "restoring"));
      }
      current->quarantined = fields[1] == "1";
      current->queue.clear();
      // Breaker state rebases into the new process's clock: a breaker
      // that was open (or mid-probe) restarts a full cooldown now, and
      // the failure streak resets — but a pending recovery flush is
      // durable, since the dropped ejects are gone either way.
      current->consecutive_failures = 0;
      if (v2) {
        int breaker = std::atoi(fields[2].c_str());
        current->breaker = breaker == 0 ? BreakerState::kClosed
                                        : BreakerState::kOpen;
        current->breaker_opened_at = now;
        current->recovery_flush_pending = fields[3] == "1";
      } else {
        current->breaker = BreakerState::kClosed;
        current->breaker_opened_at = 0;
        current->recovery_flush_pending = false;
      }
    } else if (fields[0] == "msg" && fields.size() == 3) {
      if (current == nullptr) {
        return Status::ParseError("msg record before any sink record");
      }
      size_t key_length = std::strtoull(fields[1].c_str(), nullptr, 10);
      size_t wire_length = std::strtoull(fields[2].c_str(), nullptr, 10);
      if (pos + key_length + wire_length > state_bytes.size()) {
        return Status::ParseError("truncated delivery checkpoint");
      }
      PendingMessage message;
      message.cache_key = state_bytes.substr(pos, key_length);
      std::string wire = state_bytes.substr(pos + key_length, wire_length);
      pos += key_length + wire_length + 1;  // Skip the trailing '\n'.
      Result<http::HttpRequest> request = http::HttpRequest::Parse(wire);
      if (!request.ok()) {
        return Status::ParseError(
            StrCat("unparseable eject message in delivery checkpoint: ",
                   request.status().ToString()));
      }
      message.request = std::move(request).value();
      // Rebase timing into the new process's clock and grant a full
      // attempt budget: the outage that queued the message has usually
      // passed, and redelivery is idempotent either way.
      message.attempts = 0;
      message.first_attempt = now;
      message.next_retry = now;
      current->queue.push_back(std::move(message));
    } else {
      return Status::ParseError(
          StrCat("unknown delivery checkpoint record: ", *line));
    }
  }
  if (!saw_end) return Status::ParseError("truncated delivery checkpoint");
  return Status::OK();
}

}  // namespace cacheportal::core
