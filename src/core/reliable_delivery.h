#ifndef CACHEPORTAL_CORE_RELIABLE_DELIVERY_H_
#define CACHEPORTAL_CORE_RELIABLE_DELIVERY_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/random.h"
#include "common/status.h"
#include "invalidator/invalidator.h"

namespace cacheportal::core {

/// Tunables of the at-least-once delivery queue.
struct DeliveryOptions {
  /// Delivery attempts per message per sink (including the first) before
  /// the sink is escalated. Must be >= 1.
  int max_attempts = 8;
  /// Backoff before the first retry; doubles (times backoff_multiplier)
  /// per subsequent retry up to max_backoff.
  Micros initial_backoff = 50 * kMicrosPerMilli;
  double backoff_multiplier = 2.0;
  Micros max_backoff = 10 * kMicrosPerSecond;
  /// Uniform jitter applied to each backoff, as a fraction of it
  /// (0.2 = +/-20%). Keeps retry storms from synchronizing across sinks.
  double jitter_fraction = 0.2;
  /// Seed of the deterministic jitter source, so tests replay exactly.
  uint64_t jitter_seed = 0x9e3779b9;
  /// A message still undelivered this long after its first attempt is
  /// dead-lettered even if attempts remain. 0 disables the deadline.
  Micros delivery_deadline = 60 * kMicrosPerSecond;

  /// Most queued messages drained per flush through a batch-capable
  /// sink's SendInvalidationBatch (invalidator::BatchInvalidationSink).
  /// 1 disables batching entirely; sinks without the capability always
  /// use the single-message path. For batch-capable sinks, enqueues
  /// defer to Pump() instead of attempting inline, so consecutive sends
  /// coalesce into one transport operation.
  int batch_max = 64;

  /// Consecutive failed attempts (across messages) that trip the sink's
  /// circuit breaker. While the breaker is open no attempts are made at
  /// all — no retry/backoff churn against a sink that is plainly down —
  /// and arriving messages are dead-lettered immediately. 0 disables
  /// breakers.
  int breaker_failure_threshold = 0;
  /// Open-state cooldown; after it elapses the breaker goes half-open
  /// and the next message is attempted as a probe. A successful probe
  /// closes the breaker and escalates to a recovery flush (ejects were
  /// dropped while open, so the cache must start clean); a failed probe
  /// reopens for another full cooldown.
  Micros breaker_cooldown = 5 * kMicrosPerSecond;

  /// What dead-lettering does to the affected sink.
  enum class Escalation {
    /// Invoke the sink's flush callback (wholesale-drop the unreachable
    /// cache's entries so it cannot serve stale pages), drop its pending
    /// messages, and keep delivering future messages. Falls back to
    /// kQuarantine when the sink has no flush callback.
    kFlush,
    /// Mark the sink quarantined: pending and future messages are
    /// dropped (counted dead-lettered) until Reinstate(). The serving
    /// path should bypass a quarantined cache (IsQuarantined()).
    kQuarantine,
  };
  Escalation escalation = Escalation::kFlush;
};

/// Lifetime counters of a ReliableDeliveryQueue.
struct DeliveryStats {
  uint64_t enqueued = 0;              // (message, sink) pairs accepted.
  uint64_t delivered = 0;             // Acked by the sink, ever.
  uint64_t delivered_first_try = 0;   // Subset of delivered.
  uint64_t attempts = 0;              // SendInvalidation calls made.
  uint64_t retries = 0;               // Attempts after the first.
  uint64_t dead_lettered = 0;         // Given up (escalation/quarantine).
  uint64_t fatal_dead_letters = 0;    // Subset: fatal status, no retries.
  uint64_t escalations = 0;           // Sink flush/quarantine events.
  uint64_t breaker_opens = 0;         // Closed/half-open -> open.
  uint64_t breaker_probes = 0;        // Half-open delivery attempts.
  uint64_t breaker_recoveries = 0;    // Successful probes (-> closed).
  uint64_t breaker_rejections = 0;    // Messages refused while open.
  uint64_t batch_flushes = 0;         // Batch transport operations made.
  uint64_t batched_messages = 0;      // Messages those flushes carried.
};

/// At-least-once delivery in front of fire-and-forget invalidation sinks
/// (the reliability layer the paper's Section 4.2.4 HTTP eject transport
/// lacks). The queue is itself an InvalidationSink: the invalidator
/// sends to it once, and it owns redelivery to every registered
/// downstream sink — per-sink FIFO pending queues, exponential backoff
/// with deterministic jitter, a per-message delivery deadline, and
/// dead-letter escalation that degrades safely (flush the unreachable
/// cache wholesale, or quarantine it) instead of risking staleness.
///
/// Time is read from the injected Clock only; nothing sleeps. Call
/// Pump() whenever time has advanced (e.g. once per invalidation cycle)
/// to perform due retries. Redelivery is safe because ejects are
/// idempotent; a message may therefore be delivered more than once but
/// is never silently lost while its sink is healthy.
///
/// Per-sink circuit breakers (`breaker_failure_threshold` > 0) sit on
/// top of the retry queue: a sink that fails N attempts in a row trips
/// its breaker open — its backlog is dead-lettered, arriving messages
/// are refused without an attempt, and after `breaker_cooldown` the next
/// message probes half-open. Because ejects were dropped while open, a
/// successful probe escalates to a recovery flush (or quarantine when no
/// flush callback exists) before the breaker closes, so the recovered
/// cache can never serve a page whose eject was swallowed.
///
/// The queue implements CheckpointableSink: un-acked messages (and
/// breaker/quarantine state) survive a crash through
/// Invalidator::Checkpoint()/Restore(). It also implements
/// ObservableSink, so Invalidator::StatsReport() shows delivery health.
class ReliableDeliveryQueue : public invalidator::InvalidationSink,
                              public invalidator::CheckpointableSink,
                              public invalidator::ObservableSink {
 public:
  /// Invoked on kFlush escalation; must drop every entry of the sink's
  /// cache through a channel that does not depend on the failing
  /// transport (e.g. cache::PageCache::Clear on a management interface).
  using FlushFn = std::function<void()>;

  /// The retry-vs-give-up split: retrying is for failures time can fix.
  /// kUnavailable (connection refused, reset, timeout, partition) and
  /// kInternal (legacy sinks' transient code) earn retries; a protocol
  /// version mismatch (kNotSupported), frame/stream corruption
  /// (kParseError), or a malformed message (kInvalidArgument) will fail
  /// identically forever, so the queue dead-letters the message on the
  /// spot — and escalates, because an undeliverable eject means the
  /// cache may be serving the stale page right now.
  static bool IsFatalDeliveryError(const Status& status) {
    return status.IsNotSupported() || status.IsParseError() ||
           status.IsInvalidArgument();
  }

  /// `clock` drives backoff and deadlines; not owned.
  explicit ReliableDeliveryQueue(const Clock* clock,
                                 DeliveryOptions options = {});

  ReliableDeliveryQueue(const ReliableDeliveryQueue&) = delete;
  ReliableDeliveryQueue& operator=(const ReliableDeliveryQueue&) = delete;

  /// Registers a downstream sink (not owned). `name` identifies the sink
  /// in diagnostics, quarantine queries, and checkpoints — it must be
  /// unique and stable across restarts. `flush` backs kFlush escalation;
  /// may be null.
  void AddSink(invalidator::InvalidationSink* sink, std::string name,
               FlushFn flush = nullptr);

  /// Attempts immediate delivery to every non-quarantined sink; failures
  /// are queued for retry. Always returns OK — once accepted, a message
  /// is the queue's responsibility until delivered or dead-lettered.
  Status SendInvalidation(const http::HttpRequest& eject_message,
                          const std::string& cache_key) override;

  /// Targeted send: same contract as SendInvalidation but for the one
  /// named sink — the primitive a partitioning router (DeliveryRouter)
  /// builds fan-out on, with each message owed to exactly one peer.
  /// kInvalidArgument for unknown names.
  Status SendInvalidationTo(const std::string& sink_name,
                            const http::HttpRequest& eject_message,
                            const std::string& cache_key);

  /// Retries every message whose backoff has elapsed (per the clock) and
  /// applies deadline/attempt escalation. Returns messages delivered.
  size_t Pump();

  /// Pumps, advancing `clock` (must be the queue's clock) to each next
  /// retry time, until no messages are pending or only quarantined sinks
  /// hold any. For tests and drain-on-shutdown.
  size_t DrainWith(ManualClock* clock);

  /// Earliest scheduled retry time, or nullopt when nothing is pending.
  std::optional<Micros> NextRetryAt() const;

  /// Un-acked (message, sink) pairs currently queued.
  size_t pending() const;
  /// Un-acked messages queued for `name` (0 for unknown names).
  size_t pending_for(const std::string& name) const;

  /// True while `name` is quarantined; the serving path should bypass
  /// that cache (it may hold pages whose ejects were dropped).
  bool IsQuarantined(const std::string& name) const;

  /// Clears `name`'s quarantine once the operator knows the cache is
  /// reachable again and has been flushed or repopulated fresh.
  void Reinstate(const std::string& name);

  /// Circuit-breaker state of one sink.
  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  /// `name`'s breaker state (kClosed for unknown names).
  BreakerState breaker_state(const std::string& name) const;

  const DeliveryStats& stats() const { return stats_; }
  const DeliveryOptions& options() const { return options_; }

  // ObservableSink: un-acked backlog and a one-line health summary
  // (pending, dead-letters, escalations, per-sink breaker/quarantine).
  size_t PendingBacklog() const override { return pending(); }
  std::string HealthReport() const override;

  // CheckpointableSink: un-acked messages (and quarantine flags) as
  // opaque bytes. RestoreState requires the same sinks to have been
  // re-added (matched by name); restored messages retry immediately,
  // with attempt counts rebased so a recovering sink gets a full budget.
  std::string CheckpointState() const override;
  Status RestoreState(const std::string& state) override;

 private:
  struct PendingMessage {
    http::HttpRequest request;
    std::string cache_key;
    int attempts = 0;       // Delivery attempts made so far.
    Micros first_attempt = 0;
    Micros next_retry = 0;
  };

  struct SinkState {
    invalidator::InvalidationSink* sink = nullptr;
    /// Non-null when the sink advertises batch capability (resolved once
    /// at AddSink); Pump() then drains it batch_max messages per flush.
    invalidator::BatchInvalidationSink* batch = nullptr;
    std::string name;
    FlushFn flush;
    bool quarantined = false;
    std::deque<PendingMessage> queue;
    // Circuit breaker.
    BreakerState breaker = BreakerState::kClosed;
    int consecutive_failures = 0;
    Micros breaker_opened_at = 0;
    // Ejects were dropped while the breaker was open: the sink must be
    // flushed (or quarantined) before it can serve again.
    bool recovery_flush_pending = false;
  };

  /// Backoff delay after `attempts` deliveries have failed.
  Micros BackoffAfter(int attempts);

  /// One delivery attempt; queues/escalates on failure. Returns true if
  /// the sink acked.
  bool Attempt(SinkState& state, PendingMessage message, bool is_retry);

  /// True when `state` should coalesce queued messages into batch sends.
  bool BatchEligible(const SinkState& state) const {
    return state.batch != nullptr && options_.batch_max > 1;
  }

  /// Enqueues one message for `state` (the per-sink body of the Send*
  /// entry points): immediate attempt when the sink is idle and not
  /// batch-eligible, FIFO append otherwise.
  void EnqueueLocked(SinkState& state, const http::HttpRequest& eject_message,
                     const std::string& cache_key, Micros now);

  /// Drains up to batch_max due messages from `state`'s queue head
  /// through its batch sink. Returns messages confirmed; *keep_going is
  /// false when the flush did not fully succeed (the caller stops
  /// draining this sink).
  size_t FlushBatch(SinkState& state, Micros now, bool* keep_going);

  /// Dead-letters `state`'s entire queue and applies the configured
  /// escalation.
  void Escalate(SinkState& state);

  /// Trips `state`'s breaker open: dead-letters its backlog and stops
  /// attempting until the cooldown elapses.
  void OpenBreaker(SinkState& state);

  /// Moves an open breaker to half-open once the cooldown has elapsed.
  void MaybeHalfOpen(SinkState& state, Micros now);

  /// Closes the breaker after a successful probe; applies the recovery
  /// flush (or quarantine) covering the ejects dropped while open.
  void CloseBreakerAfterProbe(SinkState& state);

  SinkState* FindSink(const std::string& name);
  const SinkState* FindSink(const std::string& name) const;

  const Clock* clock_;
  DeliveryOptions options_;
  Random jitter_;
  std::vector<SinkState> sinks_;
  DeliveryStats stats_;
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_RELIABLE_DELIVERY_H_
