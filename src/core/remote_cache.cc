#include "core/remote_cache.h"

#include "common/logging.h"
#include "common/strings.h"
#include "sniffer/request_logger.h"

namespace cacheportal::core {

std::string RemoteCacheEndpoint::HandleWire(
    const std::string& request_bytes) {
  ++wire_requests_;
  Result<http::HttpRequest> request = http::HttpRequest::Parse(request_bytes);
  if (!request.ok()) {
    ++parse_errors_;
    return http::HttpResponse(400, request.status().ToString()).Serialize();
  }

  std::optional<std::string> cc_header =
      request->headers.Get("Cache-Control");
  if (cc_header.has_value() && http::CacheControl::Parse(*cc_header).eject) {
    return cache_->HandleInvalidationRequest(*request).Serialize();
  }

  const server::ServletConfig* config =
      config_lookup_ ? config_lookup_(request->path) : nullptr;
  http::PageId page = sniffer::RequestLogger::NarrowToKeys(*request, config);
  if (std::optional<http::HttpResponse> hit = cache_->Lookup(page);
      hit.has_value()) {
    hit->headers.Set("X-Cache", "HIT");
    return hit->Serialize();
  }
  if (upstream_ == nullptr) {
    return http::HttpResponse(503, "no upstream").Serialize();
  }
  http::HttpResponse response = upstream_->Handle(*request);
  if (response.status_code == 200) {
    cache_->Store(page, response);
  }
  response.headers.Set("X-Cache", "MISS");
  return response.Serialize();
}

Status WireCacheSink::SendInvalidation(const http::HttpRequest& eject_message,
                                       const std::string& cache_key) {
  ++messages_sent_;
  if (framed_transport_) {
    // The framed wire acks explicitly and classifies its own failures;
    // pass the taxonomy through untranslated so the delivery queue can
    // tell retryable (kUnavailable) from fatal (kNotSupported,
    // kParseError).
    Status sent = framed_transport_(eject_message.Serialize(), cache_key);
    if (sent.ok()) {
      ++ejections_confirmed_;
      return sent;
    }
    ++ejections_failed_;
    if (sent.IsNotSupported() || sent.IsParseError() ||
        sent.IsInvalidArgument()) {
      ++ejections_fatal_;
    }
    LogMessage(LogLevel::kWarning,
               StrCat("framed eject for '", cache_key,
                      "' failed: ", sent.ToString()));
    return sent;
  }
  std::string response_bytes = transport_(eject_message.Serialize());
  if (response_bytes.empty()) {
    ++ejections_failed_;
    LogMessage(LogLevel::kWarning,
               StrCat("eject for '", cache_key,
                      "' got no response (message lost?)"));
    return Status::Unavailable("eject message got no response");
  }
  Result<http::HttpResponse> response =
      http::HttpResponse::Parse(response_bytes);
  if (!response.ok()) {
    ++ejections_failed_;
    LogMessage(LogLevel::kWarning,
               StrCat("unparseable eject response for '", cache_key,
                      "': ", response.status().ToString()));
    // Retryable, not fatal: a malformed HTTP ack usually means the bytes
    // were damaged in flight this once, not that the peer speaks a
    // different protocol (the framed wire makes that distinction; plain
    // HTTP cannot).
    return Status::Unavailable(
        StrCat("unparseable eject response: ", response.status().ToString()));
  }
  if (response->status_code == 204) {
    ++ejections_confirmed_;
    return Status::OK();
  }
  if (response->status_code == 404) {
    // The page is not in the cache — either never stored or already
    // ejected by an earlier delivery of this message. Both mean "not
    // stale": success, but not a confirmed ejection.
    return Status::OK();
  }
  ++ejections_failed_;
  LogMessage(LogLevel::kWarning,
             StrCat("eject for '", cache_key, "' answered ",
                    response->status_code, " (expected 204/404)"));
  return Status::Unavailable(
      StrCat("eject answered status ", response->status_code));
}

invalidator::BatchSendResult WireCacheSink::SendInvalidationBatch(
    const std::vector<invalidator::BatchItem>& items) {
  if (!framed_batch_transport_) {
    // Fallback for completeness: sequential sends, stopping at the
    // first failure so the confirmation stays a prefix. (The delivery
    // queue never takes this path — BatchingEnabled() is false.)
    invalidator::BatchSendResult result;
    for (const invalidator::BatchItem& item : items) {
      Status sent = SendInvalidation(*item.eject_message, *item.cache_key);
      if (!sent.ok()) {
        result.status = sent;
        return result;
      }
      ++result.confirmed;
    }
    return result;
  }
  ++batch_sends_;
  messages_sent_ += items.size();
  std::vector<std::pair<std::string, std::string>> entries;
  entries.reserve(items.size());
  for (const invalidator::BatchItem& item : items) {
    entries.emplace_back(*item.cache_key, item.eject_message->Serialize());
  }
  invalidator::BatchSendResult result = framed_batch_transport_(entries);
  if (result.confirmed > items.size()) result.confirmed = items.size();
  ejections_confirmed_ += result.confirmed;
  size_t unconfirmed = items.size() - result.confirmed;
  if (unconfirmed > 0) {
    ejections_failed_ += unconfirmed;
    if (result.status.IsNotSupported() || result.status.IsParseError() ||
        result.status.IsInvalidArgument()) {
      ejections_fatal_ += unconfirmed;
    }
    LogMessage(LogLevel::kWarning,
               StrCat("framed batch of ", items.size(), " confirmed only ",
                      result.confirmed, ": ", result.status.ToString()));
  }
  return result;
}

std::string WireCacheSink::HealthReport() const {
  std::string report =
      StrCat("wire-sink: sent=", messages_sent_,
             " confirmed=", ejections_confirmed_,
             " failed=", ejections_failed_, " fatal=", ejections_fatal_,
             " batch-sends=", batch_sends_);
  if (health_) report += StrCat(" | ", health_());
  return report;
}

}  // namespace cacheportal::core
