#include "core/remote_cache.h"

#include "sniffer/request_logger.h"

namespace cacheportal::core {

std::string RemoteCacheEndpoint::HandleWire(
    const std::string& request_bytes) {
  ++wire_requests_;
  Result<http::HttpRequest> request = http::HttpRequest::Parse(request_bytes);
  if (!request.ok()) {
    ++parse_errors_;
    return http::HttpResponse(400, request.status().ToString()).Serialize();
  }

  std::optional<std::string> cc_header =
      request->headers.Get("Cache-Control");
  if (cc_header.has_value() && http::CacheControl::Parse(*cc_header).eject) {
    return cache_->HandleInvalidationRequest(*request).Serialize();
  }

  const server::ServletConfig* config =
      config_lookup_ ? config_lookup_(request->path) : nullptr;
  http::PageId page = sniffer::RequestLogger::NarrowToKeys(*request, config);
  if (std::optional<http::HttpResponse> hit = cache_->Lookup(page);
      hit.has_value()) {
    hit->headers.Set("X-Cache", "HIT");
    return hit->Serialize();
  }
  if (upstream_ == nullptr) {
    return http::HttpResponse(503, "no upstream").Serialize();
  }
  http::HttpResponse response = upstream_->Handle(*request);
  if (response.status_code == 200) {
    cache_->Store(page, response);
  }
  response.headers.Set("X-Cache", "MISS");
  return response.Serialize();
}

void WireCacheSink::SendInvalidation(const http::HttpRequest& eject_message,
                                     const std::string& /*cache_key*/) {
  ++messages_sent_;
  std::string response_bytes =
      endpoint_->HandleWire(eject_message.Serialize());
  Result<http::HttpResponse> response =
      http::HttpResponse::Parse(response_bytes);
  if (response.ok() && response->status_code == 204) {
    ++ejections_confirmed_;
  }
}

}  // namespace cacheportal::core
