#ifndef CACHEPORTAL_CORE_REMOTE_CACHE_H_
#define CACHEPORTAL_CORE_REMOTE_CACHE_H_

#include <cstdint>
#include <string>

#include "cache/page_cache.h"
#include "core/caching_proxy.h"
#include "invalidator/invalidator.h"

namespace cacheportal::core {

/// The remote side of a CachePortal-compliant cache (an edge or proxy
/// cache in Figure 1's positions A-D): receives HTTP requests as wire
/// bytes, answers from its PageCache, and services eject messages. In the
/// paper these caches live on other machines; here the "network" is a
/// pair of strings, which still exercises the full serialize/parse path
/// the real deployment uses.
class RemoteCacheEndpoint {
 public:
  /// `cache` and `upstream` are not owned. `upstream` handles misses
  /// (e.g. the origin site's load balancer); it may be null, in which
  /// case misses answer 503. `config_lookup` must narrow requests with
  /// the same key parameters the origin uses, or the invalidator's eject
  /// messages (addressed by narrowed identity) would miss this cache's
  /// entries; pass nullptr to key on all parameters.
  RemoteCacheEndpoint(cache::PageCache* cache,
                      server::RequestHandler* upstream,
                      CachingProxy::ConfigLookup config_lookup = nullptr)
      : cache_(cache),
        upstream_(upstream),
        config_lookup_(std::move(config_lookup)) {}

  /// Processes one HTTP request in wire format, returning the response in
  /// wire format. Malformed requests produce a 400 response.
  std::string HandleWire(const std::string& request_bytes);

  uint64_t wire_requests() const { return wire_requests_; }
  uint64_t parse_errors() const { return parse_errors_; }

 private:
  cache::PageCache* cache_;
  server::RequestHandler* upstream_;
  CachingProxy::ConfigLookup config_lookup_;
  uint64_t wire_requests_ = 0;
  uint64_t parse_errors_ = 0;
};

/// Invalidation sink that delivers eject messages to a remote cache as
/// serialized HTTP — the paper's actual invalidation transport
/// (Section 4.2.4: "an HTTP message which contains the invalidation
/// requests").
class WireCacheSink : public invalidator::InvalidationSink {
 public:
  /// `endpoint` is not owned.
  explicit WireCacheSink(RemoteCacheEndpoint* endpoint)
      : endpoint_(endpoint) {}

  void SendInvalidation(const http::HttpRequest& eject_message,
                        const std::string& cache_key) override;

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t ejections_confirmed() const { return ejections_confirmed_; }

 private:
  RemoteCacheEndpoint* endpoint_;
  uint64_t messages_sent_ = 0;
  uint64_t ejections_confirmed_ = 0;
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_REMOTE_CACHE_H_
