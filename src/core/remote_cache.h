#ifndef CACHEPORTAL_CORE_REMOTE_CACHE_H_
#define CACHEPORTAL_CORE_REMOTE_CACHE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cache/page_cache.h"
#include "core/caching_proxy.h"
#include "invalidator/invalidator.h"

namespace cacheportal::core {

/// The remote side of a CachePortal-compliant cache (an edge or proxy
/// cache in Figure 1's positions A-D): receives HTTP requests as wire
/// bytes, answers from its PageCache, and services eject messages. In the
/// paper these caches live on other machines; here the "network" is a
/// pair of strings, which still exercises the full serialize/parse path
/// the real deployment uses.
class RemoteCacheEndpoint {
 public:
  /// `cache` and `upstream` are not owned. `upstream` handles misses
  /// (e.g. the origin site's load balancer); it may be null, in which
  /// case misses answer 503. `config_lookup` must narrow requests with
  /// the same key parameters the origin uses, or the invalidator's eject
  /// messages (addressed by narrowed identity) would miss this cache's
  /// entries; pass nullptr to key on all parameters.
  RemoteCacheEndpoint(cache::PageCache* cache,
                      server::RequestHandler* upstream,
                      CachingProxy::ConfigLookup config_lookup = nullptr)
      : cache_(cache),
        upstream_(upstream),
        config_lookup_(std::move(config_lookup)) {}

  /// Processes one HTTP request in wire format, returning the response in
  /// wire format. Malformed requests produce a 400 response.
  std::string HandleWire(const std::string& request_bytes);

  uint64_t wire_requests() const { return wire_requests_; }
  uint64_t parse_errors() const { return parse_errors_; }

 private:
  cache::PageCache* cache_;
  server::RequestHandler* upstream_;
  CachingProxy::ConfigLookup config_lookup_;
  uint64_t wire_requests_ = 0;
  uint64_t parse_errors_ = 0;
};

/// Invalidation sink that delivers eject messages to a remote cache as
/// serialized HTTP — the paper's actual invalidation transport
/// (Section 4.2.4: "an HTTP message which contains the invalidation
/// requests").
///
/// SendInvalidation's status carries the retry-vs-give-up split a
/// core::ReliableDeliveryQueue keys off: a transient failure (empty or
/// unparseable response, connection lost, unexpected status) returns
/// kUnavailable so the queue retries it, while a framed transport may
/// return a fatal code — kNotSupported (protocol version mismatch) or
/// kParseError (frame corruption) — that no retry can fix, which the
/// queue dead-letters immediately. 404 counts as success (the page is
/// not cached — the idempotent-redelivery case).
class WireCacheSink : public invalidator::InvalidationSink,
                      public invalidator::ObservableSink,
                      public invalidator::BatchInvalidationSink {
 public:
  /// Raw request bytes in, raw response bytes out. An empty response
  /// means the message was lost (dropped connection).
  using Transport = std::function<std::string(const std::string&)>;

  /// Status-bearing transport for the framed invalidation wire: the
  /// serialized eject plus its stable cache key (the redelivery identity
  /// a session-resume transport deduplicates on) go down, and the
  /// transport's own taxonomy — OK / retryable kUnavailable / fatal
  /// kNotSupported, kParseError — comes back untranslated. Typically a
  /// closure over a net::WireInvalidationClient (the layer DAG keeps
  /// core from naming net types, so the wiring happens in tools/tests).
  using FramedTransport = std::function<Status(
      const std::string& eject_bytes, const std::string& cache_key)>;

  /// Batch counterpart of FramedTransport: (key, serialized eject)
  /// pairs in FIFO order, confirmed-prefix-plus-status back — typically
  /// a closure over net::WireInvalidationClient::DeliverBatch. Only
  /// sinks constructed with one advertise BatchingEnabled(), so legacy
  /// wirings keep the exact single-message delivery path.
  using FramedBatchTransport = std::function<invalidator::BatchSendResult(
      const std::vector<std::pair<std::string, std::string>>&
          keys_and_ejects)>;

  /// One diagnostic line describing the peer connection (e.g. the wire
  /// client's HealthReport); optional, surfaces in StatsReport().
  using HealthFn = std::function<std::string()>;

  /// Delivers through an in-process endpoint (not owned).
  explicit WireCacheSink(RemoteCacheEndpoint* endpoint)
      : transport_([endpoint](const std::string& bytes) {
          return endpoint->HandleWire(bytes);
        }) {}

  /// Delivers through an arbitrary transport — a net::FetchWire closure
  /// for a cache across a real socket, or a fault-injecting wrapper.
  explicit WireCacheSink(Transport transport)
      : transport_(std::move(transport)) {}

  /// Delivers through a framed, ack-based transport that reports its own
  /// status taxonomy.
  explicit WireCacheSink(FramedTransport transport, HealthFn health = nullptr)
      : framed_transport_(std::move(transport)), health_(std::move(health)) {}

  /// Same, plus a batch path: the delivery queue's batch drain goes
  /// through `batch` while single probes/sends still use `transport`.
  WireCacheSink(FramedTransport transport, FramedBatchTransport batch,
                HealthFn health = nullptr)
      : framed_transport_(std::move(transport)),
        framed_batch_transport_(std::move(batch)),
        health_(std::move(health)) {}

  Status SendInvalidation(const http::HttpRequest& eject_message,
                          const std::string& cache_key) override;

  // BatchInvalidationSink: delegates to the batch transport when one was
  // provided, otherwise falls back to sequential SendInvalidation calls
  // (stopping at the first failure, so confirmation stays a prefix).
  invalidator::BatchSendResult SendInvalidationBatch(
      const std::vector<invalidator::BatchItem>& items) override;
  bool BatchingEnabled() const override {
    return framed_batch_transport_ != nullptr;
  }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t ejections_confirmed() const { return ejections_confirmed_; }
  /// Batch transport operations performed (each covering many messages).
  uint64_t batch_sends() const { return batch_sends_; }
  /// Ejects whose response was missing, unparseable, or an unexpected
  /// status — deliveries that must be retried or escalated.
  uint64_t ejections_failed() const { return ejections_failed_; }
  /// Subset of ejections_failed: fatal statuses (version mismatch, frame
  /// corruption) that retrying cannot fix.
  uint64_t ejections_fatal() const { return ejections_fatal_; }

  // ObservableSink: this sink holds no queue of its own (retry backlog
  // lives in the delivery queue in front of it); HealthReport surfaces
  // the peer connection's health line plus delivery counters.
  size_t PendingBacklog() const override { return 0; }
  std::string HealthReport() const override;

 private:
  Transport transport_;
  FramedTransport framed_transport_;
  FramedBatchTransport framed_batch_transport_;
  HealthFn health_;
  uint64_t messages_sent_ = 0;
  uint64_t ejections_confirmed_ = 0;
  uint64_t ejections_failed_ = 0;
  uint64_t ejections_fatal_ = 0;
  uint64_t batch_sends_ = 0;
};

}  // namespace cacheportal::core

#endif  // CACHEPORTAL_CORE_REMOTE_CACHE_H_
