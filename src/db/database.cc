#include "db/database.h"

#include <algorithm>

#include "common/strings.h"
#include "db/executor.h"
#include "sql/analyzer.h"
#include "sql/eval.h"
#include "sql/parser.h"

namespace cacheportal::db {

namespace {

/// Resolves columns of a single table row (for DML WHERE clauses and
/// value expressions).
class SingleTableResolver : public sql::ColumnResolver {
 public:
  SingleTableResolver(const TableSchema& schema, const Row& row)
      : schema_(schema), row_(row) {}

  std::optional<sql::Value> Resolve(const std::string& table,
                                    const std::string& column) const override {
    if (!table.empty() && !EqualsIgnoreCase(table, schema_.name())) {
      return std::nullopt;
    }
    std::optional<size_t> idx = schema_.ColumnIndex(column);
    if (!idx.has_value()) return std::nullopt;
    return row_[*idx];
  }

 private:
  const TableSchema& schema_;
  const Row& row_;
};

}  // namespace

std::string QueryResult::ToString() const {
  std::vector<size_t> widths(columns.size(), 0);
  auto cell = [](const sql::Value& v) { return v.ToString(); };
  for (size_t i = 0; i < columns.size(); ++i) widths[i] = columns[i].size();
  for (const Row& row : rows) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], cell(row[i]).size());
    }
  }
  std::string out;
  auto append_row = [&](const std::vector<std::string>& cells) {
    out += "|";
    for (size_t i = 0; i < cells.size(); ++i) {
      out += " ";
      out += cells[i];
      out.append(widths[i] > cells[i].size() ? widths[i] - cells[i].size() : 0,
                 ' ');
      out += " |";
    }
    out += "\n";
  };
  append_row(columns);
  out += "|";
  for (size_t i = 0; i < columns.size(); ++i) {
    out.append(widths[i] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const sql::Value& v : row) cells.push_back(cell(v));
    append_row(cells);
  }
  return out;
}

Database::Database(const Clock* clock) : clock_(clock) {
  if (clock_ == nullptr) {
    owned_clock_ = std::make_unique<SystemClock>();
    clock_ = owned_clock_.get();
  }
}

Status Database::CreateTable(TableSchema schema) {
  std::string key = AsciiToLower(schema.name());
  if (tables_.contains(key)) {
    return Status::AlreadyExists(StrCat("table ", schema.name()));
  }
  order_.push_back(schema.name());
  tables_.emplace(std::move(key), std::make_unique<Table>(std::move(schema)));
  return Status::OK();
}

Table* Database::FindTable(const std::string& name) {
  auto it = tables_.find(AsciiToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

const Table* Database::FindTable(const std::string& name) const {
  auto it = tables_.find(AsciiToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Database::TableNames() const { return order_; }

Status Database::CreateIndex(const std::string& table,
                             const std::string& column) {
  Table* t = FindTable(table);
  if (t == nullptr) return Status::NotFound(StrCat("table ", table));
  return t->CreateIndex(column);
}

Result<QueryResult> Database::ExecuteSql(const std::string& sql_text) {
  CACHEPORTAL_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                               sql::Parser::Parse(sql_text));
  switch (stmt->kind()) {
    case sql::StatementKind::kSelect:
      return ExecuteQuery(static_cast<const sql::SelectStatement&>(*stmt));
    case sql::StatementKind::kInsert: {
      CACHEPORTAL_ASSIGN_OR_RETURN(
          int64_t n,
          ExecuteInsert(static_cast<const sql::InsertStatement&>(*stmt)));
      QueryResult r;
      r.columns = {"affected"};
      r.rows = {{sql::Value::Int(n)}};
      return r;
    }
    case sql::StatementKind::kDelete: {
      CACHEPORTAL_ASSIGN_OR_RETURN(
          int64_t n,
          ExecuteDelete(static_cast<const sql::DeleteStatement&>(*stmt)));
      QueryResult r;
      r.columns = {"affected"};
      r.rows = {{sql::Value::Int(n)}};
      return r;
    }
    case sql::StatementKind::kUpdate: {
      CACHEPORTAL_ASSIGN_OR_RETURN(
          int64_t n,
          ExecuteUpdate(static_cast<const sql::UpdateStatement&>(*stmt)));
      QueryResult r;
      r.columns = {"affected"};
      r.rows = {{sql::Value::Int(n)}};
      return r;
    }
    case sql::StatementKind::kCreateTable: {
      const auto& create =
          static_cast<const sql::CreateTableStatement&>(*stmt);
      std::vector<ColumnDef> columns;
      columns.reserve(create.columns.size());
      for (const sql::ColumnSpec& spec : create.columns) {
        ColumnType type = spec.type == "INT"      ? ColumnType::kInt
                          : spec.type == "DOUBLE" ? ColumnType::kDouble
                                                  : ColumnType::kString;
        columns.push_back(ColumnDef{spec.name, type});
      }
      CACHEPORTAL_RETURN_NOT_OK(
          CreateTable(TableSchema(create.table, std::move(columns))));
      QueryResult r;
      r.columns = {"created"};
      r.rows = {{sql::Value::String(create.table)}};
      return r;
    }
    case sql::StatementKind::kCreateIndex: {
      const auto& create =
          static_cast<const sql::CreateIndexStatement&>(*stmt);
      CACHEPORTAL_RETURN_NOT_OK(CreateIndex(create.table, create.column));
      QueryResult r;
      r.columns = {"indexed"};
      r.rows = {{sql::Value::String(create.table + "." + create.column)}};
      return r;
    }
  }
  return Status::Internal("unhandled statement kind");
}

Result<QueryResult> Database::ExecuteQuery(
    const sql::SelectStatement& stmt) const {
  queries_executed_.fetch_add(1, std::memory_order_relaxed);
  Executor executor(this);
  return executor.Execute(stmt);
}

Result<int64_t> Database::ExecuteInsert(const sql::InsertStatement& stmt) {
  Table* table = FindTable(stmt.table);
  if (table == nullptr) return Status::NotFound(StrCat("table ", stmt.table));
  const TableSchema& schema = table->schema();

  // Evaluate value expressions (must be constant).
  sql::EmptyResolver no_columns;
  std::vector<sql::Value> values;
  values.reserve(stmt.values.size());
  for (const auto& expr : stmt.values) {
    CACHEPORTAL_ASSIGN_OR_RETURN(sql::Value v,
                                 sql::EvalExpr(*expr, no_columns));
    values.push_back(std::move(v));
  }

  Row row;
  if (stmt.columns.empty()) {
    row = std::move(values);
  } else {
    if (stmt.columns.size() != values.size()) {
      return Status::InvalidArgument(
          "INSERT column list and VALUES arity differ");
    }
    row.assign(schema.num_columns(), sql::Value::Null());
    for (size_t i = 0; i < stmt.columns.size(); ++i) {
      std::optional<size_t> idx = schema.ColumnIndex(stmt.columns[i]);
      if (!idx.has_value()) {
        return Status::NotFound(StrCat("column ", stmt.columns[i],
                                       " in table ", stmt.table));
      }
      row[*idx] = std::move(values[i]);
    }
  }
  Row logged = row;
  CACHEPORTAL_ASSIGN_OR_RETURN(RowId id, table->Insert(std::move(row)));
  (void)id;
  update_log_.Append(clock_->NowMicros(), schema.name(), UpdateOp::kInsert,
                     std::move(logged));
  ++dml_executed_;
  return 1;
}

Result<int64_t> Database::ExecuteDelete(const sql::DeleteStatement& stmt) {
  Table* table = FindTable(stmt.table);
  if (table == nullptr) return Status::NotFound(StrCat("table ", stmt.table));
  const TableSchema& schema = table->schema();

  std::vector<RowId> to_delete;
  table->BumpScanned(table->size());
  for (const auto& [id, row] : table->rows()) {
    if (stmt.where != nullptr) {
      SingleTableResolver resolver(schema, row);
      CACHEPORTAL_ASSIGN_OR_RETURN(
          std::optional<bool> pass,
          sql::EvalPredicate(*stmt.where, resolver));
      if (!pass.has_value() || !*pass) continue;
    }
    to_delete.push_back(id);
  }
  Micros now = clock_->NowMicros();
  for (RowId id : to_delete) {
    CACHEPORTAL_ASSIGN_OR_RETURN(Row row, table->Get(id));
    CACHEPORTAL_RETURN_NOT_OK(table->Delete(id));
    update_log_.Append(now, schema.name(), UpdateOp::kDelete, std::move(row));
  }
  ++dml_executed_;
  return static_cast<int64_t>(to_delete.size());
}

Result<int64_t> Database::ExecuteUpdate(const sql::UpdateStatement& stmt) {
  Table* table = FindTable(stmt.table);
  if (table == nullptr) return Status::NotFound(StrCat("table ", stmt.table));
  const TableSchema& schema = table->schema();

  // Pre-resolve assignment targets.
  std::vector<size_t> target_cols;
  target_cols.reserve(stmt.assignments.size());
  for (const auto& [col, expr] : stmt.assignments) {
    std::optional<size_t> idx = schema.ColumnIndex(col);
    if (!idx.has_value()) {
      return Status::NotFound(StrCat("column ", col, " in table ",
                                     stmt.table));
    }
    target_cols.push_back(*idx);
  }

  std::vector<std::pair<RowId, Row>> changes;  // id -> new image.
  table->BumpScanned(table->size());
  for (const auto& [id, row] : table->rows()) {
    SingleTableResolver resolver(schema, row);
    if (stmt.where != nullptr) {
      CACHEPORTAL_ASSIGN_OR_RETURN(
          std::optional<bool> pass,
          sql::EvalPredicate(*stmt.where, resolver));
      if (!pass.has_value() || !*pass) continue;
    }
    Row updated = row;
    for (size_t i = 0; i < stmt.assignments.size(); ++i) {
      CACHEPORTAL_ASSIGN_OR_RETURN(
          sql::Value v,
          sql::EvalExpr(*stmt.assignments[i].second, resolver));
      updated[target_cols[i]] = std::move(v);
    }
    changes.emplace_back(id, std::move(updated));
  }
  Micros now = clock_->NowMicros();
  for (auto& [id, new_row] : changes) {
    CACHEPORTAL_ASSIGN_OR_RETURN(Row old_row, table->Get(id));
    CACHEPORTAL_RETURN_NOT_OK(table->Update(id, new_row));
    // Logged as delete(old) + insert(new), the paper's Δ⁻/Δ⁺ formulation,
    // pair-stamped because the row was updated in place (RowId stable).
    update_log_.AppendUpdate(now, schema.name(), std::move(old_row),
                             std::move(new_row));
  }
  ++dml_executed_;
  return static_cast<int64_t>(changes.size());
}

}  // namespace cacheportal::db
