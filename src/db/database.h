#ifndef CACHEPORTAL_DB_DATABASE_H_
#define CACHEPORTAL_DB_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "db/table.h"
#include "db/update_log.h"
#include "sql/ast.h"

namespace cacheportal::db {

/// Result of a SELECT: output column names and rows. DML statements
/// report their affected-row count instead.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  /// Renders an aligned ASCII table (examples, debugging).
  std::string ToString() const;
};

/// An in-memory relational database: a catalog of named tables, a SQL
/// executor, and an update log that external observers (the CachePortal
/// invalidator) can poll. Stands in for the paper's Oracle 8i instance.
///
/// Thread-compatibility: mutations (DML, DDL) confine themselves to one
/// thread; the simulation and server layers serialize access. Read-only
/// queries (ExecuteQuery / SELECT through ExecuteSql) may run
/// concurrently with each other — the invalidator's parallel polling
/// phase relies on this — as long as no mutation is in flight; the only
/// state they touch are atomic accounting counters.
class Database {
 public:
  /// `clock` supplies update-log timestamps; pass nullptr to use an
  /// internal SystemClock. The clock must outlive the database.
  explicit Database(const Clock* clock = nullptr);

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Registers a new table. AlreadyExists if the name (case-insensitive)
  /// is taken.
  Status CreateTable(TableSchema schema);

  /// Case-insensitive table lookup; nullptr when absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;

  /// Names of all tables in creation order.
  std::vector<std::string> TableNames() const;

  /// Creates a hash index on `table`.`column`.
  Status CreateIndex(const std::string& table, const std::string& column);

  /// Parses and executes any supported statement. SELECTs return their
  /// result set; DML returns a one-cell result ("affected") and appends
  /// to the update log.
  Result<QueryResult> ExecuteSql(const std::string& sql);

  /// Executes a parsed SELECT.
  Result<QueryResult> ExecuteQuery(const sql::SelectStatement& stmt) const;

  /// Executes parsed DML; returns affected-row counts.
  Result<int64_t> ExecuteInsert(const sql::InsertStatement& stmt);
  Result<int64_t> ExecuteDelete(const sql::DeleteStatement& stmt);
  Result<int64_t> ExecuteUpdate(const sql::UpdateStatement& stmt);

  /// The database's modification log (the invalidator reads this).
  const UpdateLog& update_log() const { return update_log_; }
  UpdateLog& update_log() { return update_log_; }

  /// Total queries executed (SELECTs), for load accounting.
  uint64_t queries_executed() const {
    return queries_executed_.load(std::memory_order_relaxed);
  }
  /// Total DML statements executed.
  uint64_t dml_executed() const { return dml_executed_; }

 private:
  const Clock* clock_;
  std::unique_ptr<Clock> owned_clock_;
  // Lower-cased name -> table. `order_` keeps creation order.
  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<std::string> order_;
  UpdateLog update_log_;
  // Atomic so concurrent read-only queries stay race-free.
  mutable std::atomic<uint64_t> queries_executed_{0};
  uint64_t dml_executed_ = 0;
};

}  // namespace cacheportal::db

#endif  // CACHEPORTAL_DB_DATABASE_H_
