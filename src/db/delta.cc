#include "db/delta.h"

#include "common/strings.h"

namespace cacheportal::db {

namespace {
const TableDelta& EmptyDelta() {
  static const TableDelta& kEmpty = *new TableDelta();
  return kEmpty;
}
}  // namespace

std::vector<const Row*> TableDelta::MergedRows() const {
  std::vector<const Row*> rows;
  rows.reserve(inserts.size() + deletes.size());
  for (const Row& row : inserts) rows.push_back(&row);
  for (const Row& row : deletes) rows.push_back(&row);
  return rows;
}

DeltaSet DeltaSet::FromRecords(const std::vector<UpdateRecord>& records) {
  DeltaSet set;
  for (const UpdateRecord& record : records) set.Add(record);
  return set;
}

void DeltaSet::Add(const UpdateRecord& record) {
  std::string key = AsciiToLower(record.table);
  TableDelta& delta = deltas_[key];
  if (record.op == UpdateOp::kInsert) {
    delta.inserts.push_back(record.row);
    if (record.pair != 0) {
      auto& pending = pending_pairs_[key];
      auto it = pending.find(record.pair);
      if (it != pending.end()) {
        delta.update_pairs.emplace_back(
            it->second, static_cast<uint32_t>(delta.inserts.size() - 1));
        pending.erase(it);
      }
    }
  } else {
    delta.deletes.push_back(record.row);
    if (record.pair != 0) {
      pending_pairs_[key][record.pair] =
          static_cast<uint32_t>(delta.deletes.size() - 1);
    }
  }
}

std::vector<std::string> DeltaSet::Tables() const {
  std::vector<std::string> names;
  names.reserve(deltas_.size());
  for (const auto& [name, delta] : deltas_) {
    if (!delta.empty()) names.push_back(name);
  }
  return names;
}

const TableDelta& DeltaSet::ForTable(const std::string& table) const {
  auto it = deltas_.find(AsciiToLower(table));
  if (it == deltas_.end()) return EmptyDelta();
  return it->second;
}

size_t DeltaSet::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, delta] : deltas_) total += delta.size();
  return total;
}

}  // namespace cacheportal::db
