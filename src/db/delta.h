#ifndef CACHEPORTAL_DB_DELTA_H_
#define CACHEPORTAL_DB_DELTA_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "db/update_log.h"

namespace cacheportal::db {

/// Per-relation delta tables for one synchronization interval: Δ⁺R holds
/// rows inserted into R, Δ⁻R rows deleted from R (Section 4.2.1). UPDATEs
/// appear as one row in each.
struct TableDelta {
  std::vector<Row> inserts;  // Δ⁺R
  std::vector<Row> deletes;  // Δ⁻R

  /// (index into `deletes`, index into `inserts`) for each in-place
  /// UPDATE whose two halves both landed in this interval, reassociated
  /// via UpdateRecord::pair tokens. A pair split across two intervals
  /// stays unpaired in both, which only costs precision (the exact
  /// strategy falls back to the insert/delete rule), never correctness.
  std::vector<std::pair<uint32_t, uint32_t>> update_pairs;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  size_t size() const { return inserts.size() + deletes.size(); }

  /// Borrowed pointers to every delta row, inserts first then deletes —
  /// the merged-view order the invalidator's group analysis processes.
  /// Valid until the delta's row vectors are mutated.
  std::vector<const Row*> MergedRows() const;
};

/// Groups a batch of update records by table into TableDeltas. This is the
/// invalidator's update-processing step: instead of treating each update
/// individually, related updates are processed as a group.
class DeltaSet {
 public:
  DeltaSet() = default;

  /// Builds the delta set of `records`.
  static DeltaSet FromRecords(const std::vector<UpdateRecord>& records);

  void Add(const UpdateRecord& record);

  bool empty() const { return deltas_.empty(); }

  /// Names of tables with a non-empty delta, lower-cased and sorted.
  std::vector<std::string> Tables() const;

  /// Delta of `table` (case-insensitive); an empty delta when the table
  /// saw no updates.
  const TableDelta& ForTable(const std::string& table) const;

  /// Total number of delta rows across all tables.
  size_t TotalRows() const;

 private:
  std::map<std::string, TableDelta> deltas_;
  // pair token -> index into that table's `deletes`, for kDelete halves
  // whose kInsert partner has not arrived yet. Keyed per table because
  // tokens are global log sequence numbers but indices are per delta.
  std::map<std::string, std::map<uint64_t, uint32_t>> pending_pairs_;
};

}  // namespace cacheportal::db

#endif  // CACHEPORTAL_DB_DELTA_H_
