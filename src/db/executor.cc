#include "db/executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/strings.h"
#include "sql/analyzer.h"
#include "sql/eval.h"
#include "sql/printer.h"

namespace cacheportal::db {

namespace {

using sql::ColumnRefExpr;
using sql::Expression;
using sql::ExpressionPtr;
using sql::ExprKind;
using sql::Value;

/// One table bound into the FROM clause.
struct BoundTable {
  std::string effective_name;  // Alias if present, else table name.
  const Table* table = nullptr;
  size_t offset = 0;  // First column's slot in the composite row.
};

/// Composite rows concatenate the columns of all FROM tables in order.
using CompositeRow = std::vector<Value>;

/// Resolves column references against a composite row.
class CompositeResolver : public sql::ColumnResolver {
 public:
  CompositeResolver(const std::vector<BoundTable>& tables,
                    const CompositeRow& row)
      : tables_(tables), row_(row) {}

  std::optional<Value> Resolve(const std::string& table,
                               const std::string& column) const override {
    if (!table.empty()) {
      for (const BoundTable& bt : tables_) {
        if (EqualsIgnoreCase(bt.effective_name, table)) {
          std::optional<size_t> idx = bt.table->schema().ColumnIndex(column);
          if (!idx.has_value()) return std::nullopt;
          size_t slot = bt.offset + *idx;
          if (slot >= row_.size()) return std::nullopt;  // Partial row.
          return row_[slot];
        }
      }
      return std::nullopt;
    }
    // Unqualified: must be unique across tables.
    std::optional<Value> found;
    for (const BoundTable& bt : tables_) {
      std::optional<size_t> idx = bt.table->schema().ColumnIndex(column);
      if (idx.has_value()) {
        size_t slot = bt.offset + *idx;
        if (slot >= row_.size()) continue;
        if (found.has_value()) return std::nullopt;  // Ambiguous.
        found = row_[slot];
      }
    }
    return found;
  }

 private:
  const std::vector<BoundTable>& tables_;
  const CompositeRow& row_;
};

/// The set of bound-table positions a conjunct references. Unqualified
/// columns are attributed to the unique owning table (error if ambiguous).
Result<std::vector<size_t>> ConjunctTables(
    const Expression& conjunct, const std::vector<BoundTable>& tables) {
  std::vector<size_t> used;
  for (const ColumnRefExpr* ref : sql::CollectColumnRefs(conjunct)) {
    int found = -1;
    if (!ref->table().empty()) {
      for (size_t i = 0; i < tables.size(); ++i) {
        if (EqualsIgnoreCase(tables[i].effective_name, ref->table())) {
          found = static_cast<int>(i);
          break;
        }
      }
      if (found < 0) {
        return Status::InvalidArgument(
            StrCat("unknown table in reference ", ref->FullName()));
      }
    } else {
      for (size_t i = 0; i < tables.size(); ++i) {
        if (tables[i].table->schema().ColumnIndex(ref->column()).has_value()) {
          if (found >= 0) {
            return Status::InvalidArgument(
                StrCat("ambiguous column ", ref->column()));
          }
          found = static_cast<int>(i);
        }
      }
      if (found < 0) {
        return Status::InvalidArgument(
            StrCat("unknown column ", ref->column()));
      }
    }
    if (std::find(used.begin(), used.end(), static_cast<size_t>(found)) ==
        used.end()) {
      used.push_back(static_cast<size_t>(found));
    }
  }
  return used;
}

/// Detects `tables[i].col = literal` (either side) for index lookups.
struct IndexablePredicate {
  std::string column;
  Value key;
};

std::optional<IndexablePredicate> AsIndexable(const Expression& conjunct,
                                              const BoundTable& bt) {
  if (conjunct.kind() != ExprKind::kBinary) return std::nullopt;
  const auto& bin = static_cast<const sql::BinaryExpr&>(conjunct);
  if (bin.op() != sql::BinaryOp::kEq) return std::nullopt;
  const Expression* col = nullptr;
  const Expression* lit = nullptr;
  if (bin.left().kind() == ExprKind::kColumnRef &&
      bin.right().kind() == ExprKind::kLiteral) {
    col = &bin.left();
    lit = &bin.right();
  } else if (bin.right().kind() == ExprKind::kColumnRef &&
             bin.left().kind() == ExprKind::kLiteral) {
    col = &bin.right();
    lit = &bin.left();
  } else {
    return std::nullopt;
  }
  const auto& ref = static_cast<const ColumnRefExpr&>(*col);
  if (!ref.table().empty() &&
      !EqualsIgnoreCase(ref.table(), bt.effective_name)) {
    return std::nullopt;
  }
  if (!bt.table->schema().ColumnIndex(ref.column()).has_value()) {
    return std::nullopt;
  }
  if (!bt.table->HasIndex(ref.column())) return std::nullopt;
  return IndexablePredicate{
      ref.column(), static_cast<const sql::LiteralExpr&>(*lit).value()};
}

/// Detects an equi-join conjunct `a.x = b.y` between the table being added
/// (`added`) and any already-joined table.
struct EquiJoin {
  // Slot in the composite prefix (already-joined side).
  size_t left_slot = 0;
  // Column index within the added table.
  size_t right_col = 0;
};

std::optional<EquiJoin> AsEquiJoin(const Expression& conjunct,
                                   const std::vector<BoundTable>& tables,
                                   size_t added,
                                   const std::vector<bool>& joined) {
  if (conjunct.kind() != ExprKind::kBinary) return std::nullopt;
  const auto& bin = static_cast<const sql::BinaryExpr&>(conjunct);
  if (bin.op() != sql::BinaryOp::kEq) return std::nullopt;
  if (bin.left().kind() != ExprKind::kColumnRef ||
      bin.right().kind() != ExprKind::kColumnRef) {
    return std::nullopt;
  }
  auto locate = [&](const ColumnRefExpr& ref)
      -> std::optional<std::pair<size_t, size_t>> {  // (table pos, col idx)
    for (size_t i = 0; i < tables.size(); ++i) {
      if (!ref.table().empty() &&
          !EqualsIgnoreCase(tables[i].effective_name, ref.table())) {
        continue;
      }
      std::optional<size_t> idx =
          tables[i].table->schema().ColumnIndex(ref.column());
      if (idx.has_value()) return std::make_pair(i, *idx);
      if (!ref.table().empty()) return std::nullopt;
    }
    return std::nullopt;
  };
  auto l = locate(static_cast<const ColumnRefExpr&>(bin.left()));
  auto r = locate(static_cast<const ColumnRefExpr&>(bin.right()));
  if (!l.has_value() || !r.has_value()) return std::nullopt;
  // Want one side == added, other side already joined.
  if (l->first == added && joined[r->first]) {
    return EquiJoin{tables[r->first].offset + r->second, l->second};
  }
  if (r->first == added && joined[l->first]) {
    return EquiJoin{tables[l->first].offset + l->second, r->second};
  }
  return std::nullopt;
}

/// Accumulator for one aggregate function instance.
struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool all_int = true;
  int64_t isum = 0;
  std::optional<Value> min;
  std::optional<Value> max;

  void Accumulate(const Value& v) {
    if (v.is_null()) return;
    ++count;
    if (v.is_numeric()) {
      sum += v.NumericAsDouble();
      if (v.is_int()) {
        isum += v.AsInt();
      } else {
        all_int = false;
      }
    } else {
      all_int = false;
    }
    if (!min.has_value() || v.Compare(*min).value_or(1) < 0) min = v;
    if (!max.has_value() || v.Compare(*max).value_or(-1) > 0) max = v;
  }

  Value Finish(const std::string& fn) const {
    if (fn == "COUNT") return Value::Int(count);
    if (count == 0) return Value::Null();
    if (fn == "SUM") return all_int ? Value::Int(isum) : Value::Double(sum);
    if (fn == "AVG") return Value::Double(sum / static_cast<double>(count));
    if (fn == "MIN") return *min;
    if (fn == "MAX") return *max;
    return Value::Null();
  }
};

/// Output column name for a select item.
std::string ItemName(const sql::SelectItem& item, size_t index) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr != nullptr) {
    if (item.expr->kind() == ExprKind::kColumnRef) {
      return static_cast<const ColumnRefExpr&>(*item.expr).column();
    }
    return sql::ExprToSql(*item.expr);
  }
  return StrCat("col", index);
}

/// Collects aggregate function calls in `expr` (for HAVING evaluation);
/// does not descend into aggregate arguments.
void CollectAggregates(const Expression& expr,
                       std::vector<const sql::FunctionCallExpr*>* out) {
  switch (expr.kind()) {
    case ExprKind::kFunctionCall: {
      const auto& f = static_cast<const sql::FunctionCallExpr&>(expr);
      if (f.IsAggregate()) {
        out->push_back(&f);
        return;
      }
      for (const auto& a : f.args()) CollectAggregates(*a, out);
      return;
    }
    case ExprKind::kUnary:
      CollectAggregates(static_cast<const sql::UnaryExpr&>(expr).operand(),
                        out);
      return;
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      CollectAggregates(b.left(), out);
      CollectAggregates(b.right(), out);
      return;
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      CollectAggregates(in.operand(), out);
      for (const auto& item : in.items()) CollectAggregates(*item, out);
      return;
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const sql::BetweenExpr&>(expr);
      CollectAggregates(bt.operand(), out);
      CollectAggregates(bt.low(), out);
      CollectAggregates(bt.high(), out);
      return;
    }
    case ExprKind::kIsNull:
      CollectAggregates(static_cast<const sql::IsNullExpr&>(expr).operand(),
                        out);
      return;
    default:
      return;
  }
}

/// Rewrites `expr` with each aggregate call replaced by its computed
/// value (`values[i]` corresponds to `aggs[i]`), so HAVING can be
/// evaluated as a scalar predicate per group.
ExpressionPtr RewriteAggregatesToValues(
    const Expression& expr,
    const std::vector<const sql::FunctionCallExpr*>& aggs,
    const std::vector<Value>& values) {
  if (expr.kind() == ExprKind::kFunctionCall) {
    const auto& f = static_cast<const sql::FunctionCallExpr&>(expr);
    if (f.IsAggregate()) {
      for (size_t i = 0; i < aggs.size(); ++i) {
        if (aggs[i]->Equals(f)) {
          return std::make_unique<sql::LiteralExpr>(values[i]);
        }
      }
    }
  }
  switch (expr.kind()) {
    case ExprKind::kUnary: {
      const auto& u = static_cast<const sql::UnaryExpr&>(expr);
      return std::make_unique<sql::UnaryExpr>(
          u.op(), RewriteAggregatesToValues(u.operand(), aggs, values));
    }
    case ExprKind::kBinary: {
      const auto& b = static_cast<const sql::BinaryExpr&>(expr);
      return std::make_unique<sql::BinaryExpr>(
          b.op(), RewriteAggregatesToValues(b.left(), aggs, values),
          RewriteAggregatesToValues(b.right(), aggs, values));
    }
    case ExprKind::kInList: {
      const auto& in = static_cast<const sql::InListExpr&>(expr);
      std::vector<ExpressionPtr> items;
      items.reserve(in.items().size());
      for (const auto& item : in.items()) {
        items.push_back(RewriteAggregatesToValues(*item, aggs, values));
      }
      return std::make_unique<sql::InListExpr>(
          RewriteAggregatesToValues(in.operand(), aggs, values),
          std::move(items), in.negated());
    }
    case ExprKind::kBetween: {
      const auto& bt = static_cast<const sql::BetweenExpr&>(expr);
      return std::make_unique<sql::BetweenExpr>(
          RewriteAggregatesToValues(bt.operand(), aggs, values),
          RewriteAggregatesToValues(bt.low(), aggs, values),
          RewriteAggregatesToValues(bt.high(), aggs, values), bt.negated());
    }
    case ExprKind::kIsNull: {
      const auto& n = static_cast<const sql::IsNullExpr&>(expr);
      return std::make_unique<sql::IsNullExpr>(
          RewriteAggregatesToValues(n.operand(), aggs, values), n.negated());
    }
    default:
      return expr.Clone();
  }
}

bool RowLess(const Row& a, const Row& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    std::optional<int> c = a[i].Compare(b[i]);
    if (c.has_value() && *c != 0) return *c < 0;
    if (!c.has_value()) {
      // Order NULLs/mixed types by hash for determinism.
      size_t ha = a[i].Hash(), hb = b[i].Hash();
      if (ha != hb) return ha < hb;
    }
  }
  return a.size() < b.size();
}

}  // namespace

Result<QueryResult> Executor::Execute(const sql::SelectStatement& stmt) const {
  // ---- Bind FROM tables. ----
  if (stmt.from.empty()) {
    return Status::InvalidArgument("SELECT requires a FROM clause");
  }
  std::vector<BoundTable> tables;
  size_t offset = 0;
  for (const sql::TableRef& ref : stmt.from) {
    const Table* table = db_->FindTable(ref.table);
    if (table == nullptr) {
      return Status::NotFound(StrCat("table ", ref.table));
    }
    tables.push_back(BoundTable{ref.EffectiveName(), table, offset});
    offset += table->schema().num_columns();
  }
  const size_t total_cols = offset;

  // ---- Classify WHERE conjuncts. ----
  std::vector<const Expression*> conjuncts;
  if (stmt.where != nullptr) conjuncts = sql::SplitConjuncts(*stmt.where);
  // Per-table single-table conjuncts; the rest apply once their last table
  // has been joined.
  std::vector<std::vector<const Expression*>> single(tables.size());
  struct MultiConjunct {
    const Expression* expr;
    std::vector<size_t> tables;
  };
  std::vector<MultiConjunct> multi;
  for (const Expression* c : conjuncts) {
    CACHEPORTAL_ASSIGN_OR_RETURN(std::vector<size_t> used,
                                 ConjunctTables(*c, tables));
    if (used.empty()) {
      // Constant conjunct: fold it now.
      sql::FoldResult fr = sql::FoldConstants(*c);
      if (fr.outcome == sql::FoldOutcome::kFalse ||
          fr.outcome == sql::FoldOutcome::kNull) {
        QueryResult empty;
        for (size_t i = 0; i < stmt.items.size(); ++i) {
          empty.columns.push_back(ItemName(stmt.items[i], i));
        }
        return empty;
      }
      if (fr.outcome == sql::FoldOutcome::kTrue) continue;
      return Status::InvalidArgument(
          "non-constant parameter in WHERE (bind parameters first)");
    }
    if (used.size() == 1) {
      single[used[0]].push_back(c);
    } else {
      multi.push_back(MultiConjunct{c, std::move(used)});
    }
  }

  // ---- Scan the first table with pushed-down filters. ----
  auto scan_table = [&](size_t pos) -> Result<std::vector<CompositeRow>> {
    const BoundTable& bt = tables[pos];
    std::vector<CompositeRow> out;
    // Try an index for one of the single-table conjuncts.
    std::optional<IndexablePredicate> indexed;
    for (const Expression* c : single[pos]) {
      indexed = AsIndexable(*c, bt);
      if (indexed.has_value()) break;
    }
    std::vector<const Row*> candidates;
    std::vector<Row> fetched;
    if (indexed.has_value()) {
      CACHEPORTAL_ASSIGN_OR_RETURN(
          std::vector<RowId> ids,
          bt.table->IndexLookup(indexed->column, indexed->key));
      fetched.reserve(ids.size());
      for (RowId id : ids) {
        CACHEPORTAL_ASSIGN_OR_RETURN(Row row, bt.table->Get(id));
        fetched.push_back(std::move(row));
      }
      for (const Row& r : fetched) candidates.push_back(&r);
    } else {
      bt.table->BumpScanned(bt.table->size());
      for (const auto& [id, row] : bt.table->rows()) {
        candidates.push_back(&row);
      }
    }
    for (const Row* row : candidates) {
      // Evaluate single-table conjuncts on a composite row holding just
      // this table's slice (resolver treats shorter rows as partial).
      CompositeRow composite(bt.offset + row->size(), Value::Null());
      std::copy(row->begin(), row->end(), composite.begin() + bt.offset);
      CompositeResolver resolver(tables, composite);
      bool pass = true;
      for (const Expression* c : single[pos]) {
        CACHEPORTAL_ASSIGN_OR_RETURN(std::optional<bool> t,
                                     sql::EvalPredicate(*c, resolver));
        if (!t.has_value() || !*t) {
          pass = false;
          break;
        }
      }
      if (pass) out.push_back(std::move(composite));
    }
    return out;
  };

  std::vector<bool> joined(tables.size(), false);
  CACHEPORTAL_ASSIGN_OR_RETURN(std::vector<CompositeRow> current,
                               scan_table(0));
  joined[0] = true;

  // ---- Join remaining tables in FROM order. ----
  for (size_t pos = 1; pos < tables.size(); ++pos) {
    CACHEPORTAL_ASSIGN_OR_RETURN(std::vector<CompositeRow> right,
                                 scan_table(pos));
    const BoundTable& bt = tables[pos];

    // Find a usable equi-join conjunct.
    std::optional<EquiJoin> equi;
    for (const MultiConjunct& mc : multi) {
      equi = AsEquiJoin(*mc.expr, tables, pos, joined);
      if (equi.has_value()) break;
    }

    std::vector<CompositeRow> next;
    if (equi.has_value()) {
      // Hash join: build on the added table's rows.
      std::unordered_multimap<size_t, const CompositeRow*> build;
      build.reserve(right.size());
      for (const CompositeRow& r : right) {
        build.emplace(r[bt.offset + equi->right_col].Hash(), &r);
      }
      for (const CompositeRow& left : current) {
        const Value& key = left[equi->left_slot];
        auto [lo, hi] = build.equal_range(key.Hash());
        for (auto it = lo; it != hi; ++it) {
          const CompositeRow& r = *it->second;
          std::optional<int> cmp =
              key.Compare(r[bt.offset + equi->right_col]);
          if (!cmp.has_value() || *cmp != 0) continue;
          // `left` covers only tables before `pos`, so its size is at most
          // bt.offset; pad to the added table's offset and append its slice.
          CompositeRow merged(left);
          merged.resize(bt.offset, Value::Null());
          merged.insert(merged.end(), r.begin() + bt.offset, r.end());
          next.push_back(std::move(merged));
        }
      }
    } else {
      // Nested loop.
      for (const CompositeRow& left : current) {
        for (const CompositeRow& r : right) {
          CompositeRow merged(left);
          merged.resize(bt.offset, Value::Null());
          merged.insert(merged.end(), r.begin() + bt.offset, r.end());
          next.push_back(std::move(merged));
        }
      }
    }
    joined[pos] = true;
    current = std::move(next);

    // Apply multi-table conjuncts whose tables are now all joined.
    std::vector<CompositeRow> filtered;
    filtered.reserve(current.size());
    for (CompositeRow& row : current) {
      CompositeResolver resolver(tables, row);
      bool pass = true;
      for (const MultiConjunct& mc : multi) {
        bool ready = std::all_of(mc.tables.begin(), mc.tables.end(),
                                 [&](size_t t) { return joined[t]; });
        bool newly = std::any_of(mc.tables.begin(), mc.tables.end(),
                                 [&](size_t t) { return t == pos; });
        if (!ready || !newly) continue;
        CACHEPORTAL_ASSIGN_OR_RETURN(std::optional<bool> t,
                                     sql::EvalPredicate(*mc.expr, resolver));
        if (!t.has_value() || !*t) {
          pass = false;
          break;
        }
      }
      if (pass) filtered.push_back(std::move(row));
    }
    current = std::move(filtered);
  }

  // Pad rows to full width (single-table case leaves them short).
  for (CompositeRow& row : current) {
    row.resize(total_cols, Value::Null());
  }

  // ---- Projection / aggregation. ----
  QueryResult result;
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    const sql::SelectItem& item = stmt.items[i];
    if (item.star) {
      for (const BoundTable& bt : tables) {
        if (!item.star_table.empty() &&
            !EqualsIgnoreCase(bt.effective_name, item.star_table)) {
          continue;
        }
        for (const ColumnDef& col : bt.table->schema().columns()) {
          result.columns.push_back(col.name);
        }
      }
    } else {
      result.columns.push_back(ItemName(item, i));
    }
  }

  bool has_aggregate =
      !stmt.group_by.empty() ||
      std::any_of(stmt.items.begin(), stmt.items.end(), [](const auto& item) {
        return item.expr != nullptr &&
               item.expr->kind() == ExprKind::kFunctionCall &&
               static_cast<const sql::FunctionCallExpr&>(*item.expr)
                   .IsAggregate();
      });

  if (has_aggregate) {
    // Group rows by the GROUP BY key (single global group when empty).
    struct Group {
      Row key;
      std::vector<AggState> states;
      CompositeRow representative;
    };
    std::map<std::string, Group> groups;
    size_t num_aggs = 0;
    for (const auto& item : stmt.items) {
      if (item.expr != nullptr &&
          item.expr->kind() == ExprKind::kFunctionCall) {
        ++num_aggs;
      }
    }
    // HAVING may reference aggregates beyond the select list; they get
    // their own accumulator slots after the select-list ones.
    std::vector<const sql::FunctionCallExpr*> having_aggs;
    if (stmt.having != nullptr) {
      CollectAggregates(*stmt.having, &having_aggs);
    }
    const size_t total_aggs = num_aggs + having_aggs.size();
    for (const CompositeRow& row : current) {
      CompositeResolver resolver(tables, row);
      Row key;
      std::string key_str;
      for (const auto& g : stmt.group_by) {
        CACHEPORTAL_ASSIGN_OR_RETURN(Value v, sql::EvalExpr(*g, resolver));
        key_str += v.ToSqlLiteral();
        key_str += '\x1f';
        key.push_back(std::move(v));
      }
      auto [it, inserted] = groups.try_emplace(key_str);
      Group& group = it->second;
      if (inserted) {
        group.key = std::move(key);
        group.states.resize(total_aggs);
        group.representative = row;
      }
      size_t agg_index = 0;
      for (const auto& item : stmt.items) {
        if (item.expr == nullptr ||
            item.expr->kind() != ExprKind::kFunctionCall) {
          continue;
        }
        const auto& fn =
            static_cast<const sql::FunctionCallExpr&>(*item.expr);
        AggState& state = group.states[agg_index++];
        if (fn.star()) {
          state.Accumulate(Value::Int(1));
        } else if (!fn.args().empty()) {
          CACHEPORTAL_ASSIGN_OR_RETURN(Value v,
                                       sql::EvalExpr(*fn.args()[0], resolver));
          state.Accumulate(v);
        }
      }
      for (size_t h = 0; h < having_aggs.size(); ++h) {
        AggState& state = group.states[num_aggs + h];
        if (having_aggs[h]->star()) {
          state.Accumulate(Value::Int(1));
        } else if (!having_aggs[h]->args().empty()) {
          CACHEPORTAL_ASSIGN_OR_RETURN(
              Value v,
              sql::EvalExpr(*having_aggs[h]->args()[0], resolver));
          state.Accumulate(v);
        }
      }
    }
    // Empty input with no GROUP BY still yields one row of aggregates.
    if (groups.empty() && stmt.group_by.empty()) {
      Group& g = groups[""];
      g.states.resize(total_aggs);
      g.representative.assign(total_cols, Value::Null());
    }
    for (auto& [key_str, group] : groups) {
      CompositeResolver resolver(tables, group.representative);
      if (stmt.having != nullptr) {
        std::vector<Value> agg_values;
        agg_values.reserve(having_aggs.size());
        for (size_t h = 0; h < having_aggs.size(); ++h) {
          agg_values.push_back(
              group.states[num_aggs + h].Finish(having_aggs[h]->name()));
        }
        ExpressionPtr predicate = RewriteAggregatesToValues(
            *stmt.having, having_aggs, agg_values);
        CACHEPORTAL_ASSIGN_OR_RETURN(
            std::optional<bool> keep,
            sql::EvalPredicate(*predicate, resolver));
        if (!keep.has_value() || !*keep) continue;
      }
      Row out;
      size_t agg_index = 0;
      for (const auto& item : stmt.items) {
        if (item.star) {
          return Status::InvalidArgument("'*' not allowed with aggregates");
        }
        if (item.expr->kind() == ExprKind::kFunctionCall) {
          const auto& fn =
              static_cast<const sql::FunctionCallExpr&>(*item.expr);
          out.push_back(group.states[agg_index++].Finish(fn.name()));
        } else {
          CACHEPORTAL_ASSIGN_OR_RETURN(Value v,
                                       sql::EvalExpr(*item.expr, resolver));
          out.push_back(std::move(v));
        }
      }
      result.rows.push_back(std::move(out));
    }
  } else {
    result.rows.reserve(current.size());
    for (const CompositeRow& row : current) {
      CompositeResolver resolver(tables, row);
      Row out;
      for (const auto& item : stmt.items) {
        if (item.star) {
          for (const BoundTable& bt : tables) {
            if (!item.star_table.empty() &&
                !EqualsIgnoreCase(bt.effective_name, item.star_table)) {
              continue;
            }
            size_t n = bt.table->schema().num_columns();
            for (size_t i = 0; i < n; ++i) {
              out.push_back(row[bt.offset + i]);
            }
          }
        } else {
          CACHEPORTAL_ASSIGN_OR_RETURN(Value v,
                                       sql::EvalExpr(*item.expr, resolver));
          out.push_back(std::move(v));
        }
      }
      result.rows.push_back(std::move(out));
    }
  }

  // ---- DISTINCT. ----
  if (stmt.distinct) {
    std::sort(result.rows.begin(), result.rows.end(), RowLess);
    result.rows.erase(std::unique(result.rows.begin(), result.rows.end()),
                      result.rows.end());
  }

  // ---- ORDER BY. ----
  if (!stmt.order_by.empty()) {
    struct Keyed {
      Row keys;
      Row row;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(result.rows.size());
    bool rows_track_composites = !stmt.distinct && !has_aggregate;
    // Pre-resolve order-by expressions to output-column positions (by
    // alias or column name); used when projected rows no longer line up
    // with the composite rows (DISTINCT / aggregates).
    std::vector<int> out_positions(stmt.order_by.size(), -1);
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      const Expression& e = *stmt.order_by[i].expr;
      std::string name;
      if (e.kind() == ExprKind::kColumnRef) {
        name = static_cast<const ColumnRefExpr&>(e).column();
      } else {
        name = sql::ExprToSql(e);
      }
      for (size_t c = 0; c < result.columns.size(); ++c) {
        if (EqualsIgnoreCase(result.columns[c], name)) {
          out_positions[i] = static_cast<int>(c);
          break;
        }
      }
      if (!rows_track_composites && out_positions[i] < 0) {
        return Status::NotSupported(
            StrCat("ORDER BY expression '", name,
                   "' must name an output column when used with DISTINCT "
                   "or aggregates"));
      }
    }
    for (size_t r = 0; r < result.rows.size(); ++r) {
      Keyed k;
      k.row = result.rows[r];
      for (size_t i = 0; i < stmt.order_by.size(); ++i) {
        if (out_positions[i] >= 0) {
          k.keys.push_back(k.row[static_cast<size_t>(out_positions[i])]);
        } else {
          CompositeResolver resolver(tables, current[r]);
          Result<Value> v = sql::EvalExpr(*stmt.order_by[i].expr, resolver);
          k.keys.push_back(v.ok() ? std::move(v).value() : Value::Null());
        }
      }
      keyed.push_back(std::move(k));
    }
    std::stable_sort(keyed.begin(), keyed.end(),
                     [&](const Keyed& a, const Keyed& b) {
                       for (size_t i = 0; i < stmt.order_by.size(); ++i) {
                         std::optional<int> c = a.keys[i].Compare(b.keys[i]);
                         if (c.has_value() && *c != 0) {
                           return stmt.order_by[i].ascending ? *c < 0 : *c > 0;
                         }
                       }
                       return false;
                     });
    for (size_t r = 0; r < keyed.size(); ++r) {
      result.rows[r] = std::move(keyed[r].row);
    }
  }

  // ---- LIMIT. ----
  if (stmt.limit.has_value() &&
      result.rows.size() > static_cast<size_t>(*stmt.limit)) {
    result.rows.resize(static_cast<size_t>(*stmt.limit));
  }

  return result;
}

}  // namespace cacheportal::db
