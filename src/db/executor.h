#ifndef CACHEPORTAL_DB_EXECUTOR_H_
#define CACHEPORTAL_DB_EXECUTOR_H_

#include "common/status.h"
#include "db/database.h"
#include "sql/ast.h"

namespace cacheportal::db {

/// Evaluates SELECT statements against a Database. Planning is simple but
/// real: single-table conjuncts are pushed below the join (using hash
/// indexes for `col = literal` when available), equi-join conjuncts drive
/// hash joins, and remaining tables fall back to filtered nested loops.
/// Aggregates (COUNT/SUM/MIN/MAX/AVG) with optional GROUP BY, DISTINCT,
/// ORDER BY, and LIMIT are applied on top.
class Executor {
 public:
  explicit Executor(const Database* db) : db_(db) {}

  Result<QueryResult> Execute(const sql::SelectStatement& stmt) const;

 private:
  const Database* db_;
};

}  // namespace cacheportal::db

#endif  // CACHEPORTAL_DB_EXECUTOR_H_
