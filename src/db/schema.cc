#include "db/schema.h"

#include "common/strings.h"

namespace cacheportal::db {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt:
      return "int";
    case ColumnType::kDouble:
      return "double";
    case ColumnType::kString:
      return "string";
  }
  return "?";
}

bool ValueMatchesType(const sql::Value& value, ColumnType type) {
  if (value.is_null()) return true;
  switch (type) {
    case ColumnType::kInt:
      return value.is_int();
    case ColumnType::kDouble:
      return value.is_numeric();
    case ColumnType::kString:
      return value.is_string();
  }
  return false;
}

std::optional<size_t> TableSchema::ColumnIndex(
    const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, column)) return i;
  }
  return std::nullopt;
}

Status TableSchema::ValidateRow(const std::vector<sql::Value>& row) const {
  if (row.size() != columns_.size()) {
    return Status::InvalidArgument(
        StrCat("row has ", row.size(), " values; table ", name_, " has ",
               columns_.size(), " columns"));
  }
  for (size_t i = 0; i < row.size(); ++i) {
    if (!ValueMatchesType(row[i], columns_[i].type)) {
      return Status::InvalidArgument(
          StrCat("value for column ", columns_[i].name, " of table ", name_,
                 " has wrong type (expected ", ColumnTypeName(columns_[i].type),
                 ", got ", row[i].ToSqlLiteral(), ")"));
    }
  }
  return Status::OK();
}

}  // namespace cacheportal::db
