#ifndef CACHEPORTAL_DB_SCHEMA_H_
#define CACHEPORTAL_DB_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace cacheportal::db {

/// Declared type of a table column.
enum class ColumnType { kInt, kDouble, kString };

/// Returns the lower-case SQL-ish name of a column type ("int", ...).
const char* ColumnTypeName(ColumnType type);

/// True if `value` is storable in a column of `type` (NULL always is;
/// ints are storable in double columns).
bool ValueMatchesType(const sql::Value& value, ColumnType type);

/// A column definition.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kInt;

  bool operator==(const ColumnDef&) const = default;
};

/// An ordered list of columns with a table name.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string name, std::vector<ColumnDef> columns)
      : name_(std::move(name)), columns_(std::move(columns)) {}

  const std::string& name() const { return name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t num_columns() const { return columns_.size(); }

  /// Index of `column` or std::nullopt.
  std::optional<size_t> ColumnIndex(const std::string& column) const;

  /// Validates a row against this schema (arity and per-column types).
  Status ValidateRow(const std::vector<sql::Value>& row) const;

  bool operator==(const TableSchema&) const = default;

 private:
  std::string name_;
  std::vector<ColumnDef> columns_;
};

}  // namespace cacheportal::db

#endif  // CACHEPORTAL_DB_SCHEMA_H_
