#include "db/table.h"

#include "common/strings.h"

namespace cacheportal::db {

Result<RowId> Table::Insert(Row row) {
  CACHEPORTAL_RETURN_NOT_OK(schema_.ValidateRow(row));
  RowId id = next_id_++;
  IndexInsert(id, row);
  rows_.emplace(id, std::move(row));
  return id;
}

Status Table::Delete(RowId id) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound(StrCat("row ", id, " in table ", schema_.name()));
  }
  IndexRemove(id, it->second);
  rows_.erase(it);
  return Status::OK();
}

Status Table::Update(RowId id, Row row) {
  CACHEPORTAL_RETURN_NOT_OK(schema_.ValidateRow(row));
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound(StrCat("row ", id, " in table ", schema_.name()));
  }
  IndexRemove(id, it->second);
  it->second = std::move(row);
  IndexInsert(id, it->second);
  return Status::OK();
}

Result<Row> Table::Get(RowId id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound(StrCat("row ", id, " in table ", schema_.name()));
  }
  return it->second;
}

Status Table::CreateIndex(const std::string& column) {
  std::optional<size_t> idx = schema_.ColumnIndex(column);
  if (!idx.has_value()) {
    return Status::NotFound(
        StrCat("column ", column, " in table ", schema_.name()));
  }
  if (indexes_.contains(*idx)) {
    return Status::AlreadyExists(StrCat("index on ", column));
  }
  IndexMap& map = indexes_[*idx];
  for (const auto& [id, row] : rows_) {
    map[row[*idx]].insert(id);
  }
  return Status::OK();
}

bool Table::HasIndex(const std::string& column) const {
  std::optional<size_t> idx = schema_.ColumnIndex(column);
  return idx.has_value() && indexes_.contains(*idx);
}

Result<std::vector<RowId>> Table::IndexLookup(const std::string& column,
                                              const sql::Value& key) const {
  std::optional<size_t> idx = schema_.ColumnIndex(column);
  if (!idx.has_value() || !indexes_.contains(*idx)) {
    return Status::NotFound(StrCat("no index on ", column));
  }
  const IndexMap& map = indexes_.at(*idx);
  auto it = map.find(key);
  std::vector<RowId> ids;
  if (it != map.end()) {
    ids.assign(it->second.begin(), it->second.end());
  }
  BumpScanned(ids.size());
  return ids;
}

void Table::IndexInsert(RowId id, const Row& row) {
  for (auto& [col, map] : indexes_) {
    map[row[col]].insert(id);
  }
}

void Table::IndexRemove(RowId id, const Row& row) {
  for (auto& [col, map] : indexes_) {
    auto it = map.find(row[col]);
    if (it != map.end()) {
      it->second.erase(id);
      if (it->second.empty()) map.erase(it);
    }
  }
}

}  // namespace cacheportal::db
