#ifndef CACHEPORTAL_DB_TABLE_H_
#define CACHEPORTAL_DB_TABLE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/schema.h"
#include "sql/value.h"

namespace cacheportal::db {

/// Stable identifier of a stored row within one table.
using RowId = uint64_t;

/// A tuple; values are positional per the table schema.
using Row = std::vector<sql::Value>;

/// An in-memory heap table with optional single-column hash indexes.
/// Rows keep a stable RowId; scans iterate in insertion order.
class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Inserts a row (validated against the schema). Returns its RowId.
  Result<RowId> Insert(Row row);

  /// Deletes by RowId. NotFound if absent.
  Status Delete(RowId id);

  /// Replaces the row stored under `id`. NotFound if absent.
  Status Update(RowId id, Row row);

  /// Row lookup. NotFound if absent.
  Result<Row> Get(RowId id) const;

  /// Creates a hash index over `column`. AlreadyExists / NotFound errors.
  Status CreateIndex(const std::string& column);

  bool HasIndex(const std::string& column) const;

  /// RowIds whose `column` equals `key`, via the index. Requires an index.
  Result<std::vector<RowId>> IndexLookup(const std::string& column,
                                         const sql::Value& key) const;

  /// Full scan in insertion (RowId) order.
  const std::map<RowId, Row>& rows() const { return rows_; }

  /// Cumulative count of rows touched by scans/lookups (cost accounting
  /// for the benchmarks). Atomic: concurrent read-only queries bump it.
  uint64_t rows_scanned() const {
    return rows_scanned_.load(std::memory_order_relaxed);
  }
  void BumpScanned(uint64_t n) const {
    rows_scanned_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  using IndexMap =
      std::unordered_map<sql::Value, std::set<RowId>, sql::ValueHash>;

  void IndexInsert(RowId id, const Row& row);
  void IndexRemove(RowId id, const Row& row);

  TableSchema schema_;
  std::map<RowId, Row> rows_;
  RowId next_id_ = 1;
  // column index in schema -> value -> row ids.
  std::map<size_t, IndexMap> indexes_;
  mutable std::atomic<uint64_t> rows_scanned_{0};
};

}  // namespace cacheportal::db

#endif  // CACHEPORTAL_DB_TABLE_H_
