#include "db/update_log.h"

#include <algorithm>

namespace cacheportal::db {

uint64_t UpdateLog::Append(Micros timestamp, const std::string& table,
                           UpdateOp op, Row row) {
  UpdateRecord record;
  record.seq = next_seq_++;
  record.timestamp = timestamp;
  record.table = table;
  record.op = op;
  record.row = std::move(row);
  records_.push_back(std::move(record));
  return records_.back().seq;
}

uint64_t UpdateLog::AppendUpdate(Micros timestamp, const std::string& table,
                                 Row old_row, Row new_row) {
  uint64_t token = Append(timestamp, table, UpdateOp::kDelete,
                          std::move(old_row));
  records_.back().pair = token;
  uint64_t insert_seq = Append(timestamp, table, UpdateOp::kInsert,
                               std::move(new_row));
  records_.back().pair = token;
  return insert_seq;
}

std::vector<UpdateRecord> UpdateLog::ReadSince(uint64_t after_seq) const {
  std::vector<UpdateRecord> out;
  if (records_.empty() || after_seq >= records_.back().seq) return out;
  // Records are dense in seq: seq = first_seq_ + offset.
  size_t begin = 0;
  if (after_seq >= first_seq_) begin = after_seq - first_seq_ + 1;
  out.assign(records_.begin() + static_cast<ptrdiff_t>(begin),
             records_.end());
  return out;
}

std::optional<Micros> UpdateLog::OldestTimestampSince(
    uint64_t after_seq) const {
  if (records_.empty() || after_seq >= records_.back().seq) {
    return std::nullopt;
  }
  size_t begin = 0;
  if (after_seq >= first_seq_) begin = after_seq - first_seq_ + 1;
  return records_[begin].timestamp;
}

size_t UpdateLog::TrimThrough(uint64_t up_to_seq) {
  if (records_.empty() || up_to_seq < first_seq_) return 0;
  size_t drop = std::min(records_.size(),
                         static_cast<size_t>(up_to_seq - first_seq_ + 1));
  records_.erase(records_.begin(),
                 records_.begin() + static_cast<ptrdiff_t>(drop));
  first_seq_ += drop;
  return drop;
}

void UpdateLog::Truncate(uint64_t up_to_seq) { TrimThrough(up_to_seq); }

}  // namespace cacheportal::db
