#ifndef CACHEPORTAL_DB_UPDATE_LOG_H_
#define CACHEPORTAL_DB_UPDATE_LOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "db/table.h"

namespace cacheportal::db {

/// Kind of a logged modification. SQL UPDATE statements are logged as a
/// kDelete of the old image followed by a kInsert of the new image, which
/// matches the paper's Δ⁻R / Δ⁺R formulation (Section 4.2.1).
enum class UpdateOp { kInsert, kDelete };

/// One entry of the database update log.
struct UpdateRecord {
  uint64_t seq = 0;       // Monotonic sequence number, 1-based.
  Micros timestamp = 0;   // When the modification committed.
  std::string table;
  UpdateOp op = UpdateOp::kInsert;
  Row row;                // Full row image (inserted or deleted).

  /// Non-zero iff this record is one half of an in-place UPDATE of a
  /// single physical row: the kDelete carries the old image, the kInsert
  /// with the same token the new image, and the row's identity (RowId,
  /// hence unqualified scan position) is unchanged. Only Database's
  /// UPDATE path stamps this — a coincidentally adjacent DELETE + INSERT
  /// pair is NOT an update (the re-inserted row gets a fresh RowId and
  /// may surface at a different scan position), and treating it as one
  /// would let the exact invalidation strategy retain a stale page.
  uint64_t pair = 0;
};

/// Append-only log of modifications, the invalidator's observation point.
/// The invalidator pulls records since its last synchronization sequence.
class UpdateLog {
 public:
  UpdateLog() = default;

  UpdateLog(const UpdateLog&) = delete;
  UpdateLog& operator=(const UpdateLog&) = delete;

  /// Appends a record; assigns and returns its sequence number.
  uint64_t Append(Micros timestamp, const std::string& table, UpdateOp op,
                  Row row);

  /// Appends an in-place UPDATE of one row as the paper's Δ⁻/Δ⁺ pair —
  /// kDelete(old image) then kInsert(new image), adjacent, same
  /// timestamp — with both records stamped with a shared `pair` token so
  /// consumers can reassociate them. Returns the kInsert's sequence
  /// number (the pair's upper bound).
  uint64_t AppendUpdate(Micros timestamp, const std::string& table,
                        Row old_row, Row new_row);

  /// Records with seq > `after_seq`, in order.
  std::vector<UpdateRecord> ReadSince(uint64_t after_seq) const;

  /// Sequence number of the newest record (0 when empty).
  uint64_t LastSeq() const { return records_.empty() ? 0 : records_.back().seq; }

  size_t size() const { return records_.size(); }

  /// Commit timestamp of the oldest record with seq > `after_seq`, or
  /// nullopt when no such record exists. The invalidator's overload
  /// controller reads its backlog age from this.
  std::optional<Micros> OldestTimestampSince(uint64_t after_seq) const;

  /// Drops records with seq <= `up_to_seq` and returns how many were
  /// dropped. Records above `up_to_seq` are always retained, so trimming
  /// through a consumer's consumed watermark can never drop a record
  /// that consumer has not yet read. Call after a successful
  /// Invalidator::Checkpoint (the checkpoint makes everything at or
  /// below the consumed position recoverable without replaying the log),
  /// so the log no longer grows without bound.
  size_t TrimThrough(uint64_t up_to_seq);

  /// Drops records with seq <= `up_to_seq` (log truncation after all
  /// consumers have synchronized). Same operation as TrimThrough, kept
  /// for callers that do not need the count.
  void Truncate(uint64_t up_to_seq);

 private:
  std::vector<UpdateRecord> records_;
  uint64_t next_seq_ = 1;
  uint64_t first_seq_ = 1;  // Seq of records_.front() when non-empty.
};

}  // namespace cacheportal::db

#endif  // CACHEPORTAL_DB_UPDATE_LOG_H_
