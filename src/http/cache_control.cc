#include "http/cache_control.h"

#include <cstdlib>

#include "common/strings.h"

namespace cacheportal::http {

CacheControl CacheControl::Parse(const std::string& header_value) {
  CacheControl cc;
  for (const std::string& piece : StrSplit(header_value, ',')) {
    std::string directive(StripWhitespace(piece));
    std::string lower = AsciiToLower(directive);
    if (lower == "no-cache") {
      cc.no_cache = true;
    } else if (lower == "no-store") {
      cc.no_store = true;
    } else if (lower == "private") {
      cc.is_private = true;
    } else if (lower == "public") {
      cc.is_public = true;
    } else if (lower == "eject") {
      cc.eject = true;
    } else if (StartsWith(lower, "max-age=")) {
      cc.max_age_seconds = std::strtoll(directive.c_str() + 8, nullptr, 10);
    } else if (StartsWith(lower, "owner=")) {
      std::string value = directive.substr(6);
      if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
        value = value.substr(1, value.size() - 2);
      }
      cc.owner = value;
    }
  }
  return cc;
}

std::string CacheControl::ToHeaderValue() const {
  std::vector<std::string> parts;
  if (no_cache) parts.push_back("no-cache");
  if (no_store) parts.push_back("no-store");
  if (is_public) parts.push_back("public");
  if (is_private) parts.push_back("private");
  if (eject) parts.push_back("eject");
  if (max_age_seconds.has_value()) {
    parts.push_back(StrCat("max-age=", *max_age_seconds));
  }
  if (!owner.empty()) {
    parts.push_back(StrCat("owner=\"", owner, "\""));
  }
  return StrJoin(parts, ", ");
}

bool CacheControl::CacheableByCachePortal() const {
  if (no_store || no_cache) return false;
  if (is_private) return owner == kCachePortalOwner;
  return true;
}

bool CacheControl::CacheableByGenericCache() const {
  if (no_store || no_cache || is_private) return false;
  return true;
}

}  // namespace cacheportal::http
