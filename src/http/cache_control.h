#ifndef CACHEPORTAL_HTTP_CACHE_CONTROL_H_
#define CACHEPORTAL_HTTP_CACHE_CONTROL_H_

#include <cstdint>
#include <optional>
#include <string>

namespace cacheportal::http {

/// Parsed Cache-Control header, covering the standard directives the
/// library needs plus the two extensions from the paper:
///  - `private, owner="cacheportal"` — the sniffer's servlet wrapper
///    rewrites `no-cache` into this so that CachePortal-compliant caches
///    may cache the page while generic caches must not (Section 3.1);
///  - `eject` — NetCache 4.0's demand-ejection directive, carried by the
///    invalidator's invalidation messages (Section 4.2.4).
struct CacheControl {
  bool no_cache = false;
  bool no_store = false;
  bool is_private = false;
  bool is_public = false;
  bool eject = false;
  std::optional<int64_t> max_age_seconds;
  /// Value of the owner="..." extension, empty when absent.
  std::string owner;

  /// Parses a Cache-Control header value. Unknown directives are ignored.
  static CacheControl Parse(const std::string& header_value);

  /// Serializes back to a header value ("" when nothing is set).
  std::string ToHeaderValue() const;

  /// True if a CachePortal-compliant cache may store the response:
  /// not no-store/no-cache, and if private, only when owned by us.
  bool CacheableByCachePortal() const;

  /// True if a generic (non-CachePortal) shared cache may store it.
  bool CacheableByGenericCache() const;

  bool operator==(const CacheControl&) const = default;
};

/// The owner token CachePortal uses in rewritten headers.
inline constexpr char kCachePortalOwner[] = "cacheportal";

}  // namespace cacheportal::http

#endif  // CACHEPORTAL_HTTP_CACHE_CONTROL_H_
