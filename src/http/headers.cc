#include "http/headers.h"

#include <algorithm>

#include "common/strings.h"

namespace cacheportal::http {

void HeaderMap::Add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::Set(const std::string& name, std::string value) {
  Remove(name);
  Add(name, std::move(value));
}

std::optional<std::string> HeaderMap::Get(const std::string& name) const {
  for (const auto& [n, v] : entries_) {
    if (EqualsIgnoreCase(n, name)) return v;
  }
  return std::nullopt;
}

std::vector<std::string> HeaderMap::GetAll(const std::string& name) const {
  std::vector<std::string> values;
  for (const auto& [n, v] : entries_) {
    if (EqualsIgnoreCase(n, name)) values.push_back(v);
  }
  return values;
}

size_t HeaderMap::Remove(const std::string& name) {
  size_t before = entries_.size();
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&name](const auto& entry) {
                                  return EqualsIgnoreCase(entry.first, name);
                                }),
                 entries_.end());
  return before - entries_.size();
}

}  // namespace cacheportal::http
