#ifndef CACHEPORTAL_HTTP_HEADERS_H_
#define CACHEPORTAL_HTTP_HEADERS_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cacheportal::http {

/// HTTP header collection with case-insensitive names. Insertion order is
/// preserved for serialization; Get returns the first match.
class HeaderMap {
 public:
  HeaderMap() = default;

  /// Appends a header (does not replace existing ones of the same name).
  void Add(std::string name, std::string value);

  /// Replaces all headers of `name` with a single value.
  void Set(const std::string& name, std::string value);

  /// First value of `name` (case-insensitive), if present.
  std::optional<std::string> Get(const std::string& name) const;

  /// All values of `name`.
  std::vector<std::string> GetAll(const std::string& name) const;

  bool Has(const std::string& name) const { return Get(name).has_value(); }

  /// Removes all headers of `name`; returns how many were removed.
  size_t Remove(const std::string& name);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace cacheportal::http

#endif  // CACHEPORTAL_HTTP_HEADERS_H_
