#include "http/message.h"

#include <cstdlib>

#include "common/strings.h"

namespace cacheportal::http {

const char* MethodName(Method method) {
  switch (method) {
    case Method::kGet:
      return "GET";
    case Method::kPost:
      return "POST";
  }
  return "?";
}

const char* ReasonPhrase(int status_code) {
  switch (status_code) {
    case 200:
      return "OK";
    case 204:
      return "No Content";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

Result<HttpRequest> HttpRequest::Get(const std::string& url) {
  CACHEPORTAL_ASSIGN_OR_RETURN(PageId id, PageId::FromUrl(url));
  HttpRequest req;
  req.method = Method::kGet;
  req.host = id.host();
  req.path = id.path();
  req.get_params = id.get_params();
  return req;
}

Result<HttpRequest> HttpRequest::Post(const std::string& url,
                                      const ParamMap& form) {
  CACHEPORTAL_ASSIGN_OR_RETURN(HttpRequest req, Get(url));
  req.method = Method::kPost;
  req.post_params = form;
  return req;
}

PageId HttpRequest::ToPageId() const {
  PageId id(host, path);
  id.get_params() = get_params;
  id.post_params() = post_params;
  id.cookie_params() = cookies;
  return id;
}

std::string HttpRequest::Serialize() const {
  // Single-buffer append: one serialization per eject per delivery
  // attempt makes this the invalidation wire's hottest function, so
  // everything goes into one reserved string — no StrCat temporaries.
  std::string query = BuildQueryString(get_params);
  const bool form_post = method == Method::kPost && !post_params.empty();
  std::string payload = form_post ? BuildQueryString(post_params) : body;
  std::string cookie_line =
      cookies.empty() ? std::string() : BuildCookieString(cookies);

  std::string out;
  size_t size = 96 + path.size() + query.size() + host.size() +
                cookie_line.size() + payload.size();
  for (const auto& [name, value] : headers.entries()) {
    size += name.size() + value.size() + 4;
  }
  out.reserve(size);
  out += MethodName(method);
  out += ' ';
  out += path;
  if (!query.empty()) {
    out += '?';
    out += query;
  }
  out += " HTTP/1.1\r\nHost: ";
  out += host;
  out += "\r\n";
  if (!cookie_line.empty()) {
    out += "Cookie: ";
    out += cookie_line;
    out += "\r\n";
  }
  if (form_post) {
    out += "Content-Type: application/x-www-form-urlencoded\r\n";
  }
  for (const auto& [name, value] : headers.entries()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  if (!payload.empty()) {
    out += "Content-Length: ";
    out += std::to_string(payload.size());
    out += "\r\n";
  }
  out += "\r\n";
  out += payload;
  return out;
}

namespace {

/// Splits wire format into (start line, headers, body).
Status SplitMessage(const std::string& wire, std::string* start_line,
                    HeaderMap* headers, std::string* body) {
  size_t pos = wire.find("\r\n");
  if (pos == std::string::npos) {
    return Status::ParseError("missing start line terminator");
  }
  *start_line = wire.substr(0, pos);
  pos += 2;
  while (true) {
    size_t eol = wire.find("\r\n", pos);
    if (eol == std::string::npos) {
      return Status::ParseError("missing header terminator");
    }
    if (eol == pos) {  // Blank line: end of headers.
      pos += 2;
      break;
    }
    std::string line = wire.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError(StrCat("malformed header line: ", line));
    }
    headers->Add(std::string(StripWhitespace(line.substr(0, colon))),
                 std::string(StripWhitespace(line.substr(colon + 1))));
    pos = eol + 2;
  }
  *body = wire.substr(pos);
  return Status::OK();
}

}  // namespace

Result<HttpRequest> HttpRequest::Parse(const std::string& wire) {
  std::string start_line;
  HeaderMap headers;
  std::string body;
  CACHEPORTAL_RETURN_NOT_OK(SplitMessage(wire, &start_line, &headers, &body));

  std::vector<std::string> parts = StrSplit(start_line, ' ');
  if (parts.size() != 3) {
    return Status::ParseError(StrCat("malformed request line: ", start_line));
  }
  HttpRequest req;
  if (parts[0] == "GET") {
    req.method = Method::kGet;
  } else if (parts[0] == "POST") {
    req.method = Method::kPost;
  } else {
    return Status::ParseError(StrCat("unsupported method: ", parts[0]));
  }
  const std::string& target = parts[1];
  size_t q = target.find('?');
  req.path = q == std::string::npos ? target : target.substr(0, q);
  if (q != std::string::npos) {
    req.get_params = ParseQueryString(target.substr(q + 1));
  }
  req.host = headers.Get("Host").value_or("");
  headers.Remove("Host");
  if (auto cookie = headers.Get("Cookie"); cookie.has_value()) {
    req.cookies = ParseCookieString(*cookie);
    headers.Remove("Cookie");
  }
  std::optional<std::string> ctype = headers.Get("Content-Type");
  headers.Remove("Content-Length");
  if (req.method == Method::kPost && ctype.has_value() &&
      StartsWith(AsciiToLower(*ctype),
                 "application/x-www-form-urlencoded")) {
    req.post_params = ParseQueryString(body);
    headers.Remove("Content-Type");
  } else {
    req.body = body;
  }
  req.headers = std::move(headers);
  return req;
}

CacheControl HttpResponse::GetCacheControl() const {
  std::optional<std::string> value = headers.Get("Cache-Control");
  if (!value.has_value()) return CacheControl();
  return CacheControl::Parse(*value);
}

void HttpResponse::SetCacheControl(const CacheControl& cc) {
  std::string value = cc.ToHeaderValue();
  if (value.empty()) {
    headers.Remove("Cache-Control");
  } else {
    headers.Set("Cache-Control", value);
  }
}

std::string HttpResponse::Serialize() const {
  std::string out =
      StrCat("HTTP/1.1 ", status_code, " ", ReasonPhrase(status_code),
             "\r\n");
  for (const auto& [name, value] : headers.entries()) {
    out += StrCat(name, ": ", value, "\r\n");
  }
  out += StrCat("Content-Length: ", body.size(), "\r\n");
  out += "\r\n";
  out += body;
  return out;
}

Result<HttpResponse> HttpResponse::Parse(const std::string& wire) {
  std::string start_line;
  HeaderMap headers;
  std::string body;
  CACHEPORTAL_RETURN_NOT_OK(SplitMessage(wire, &start_line, &headers, &body));
  if (!StartsWith(start_line, "HTTP/1.1 ") &&
      !StartsWith(start_line, "HTTP/1.0 ")) {
    return Status::ParseError(StrCat("malformed status line: ", start_line));
  }
  HttpResponse resp;
  resp.status_code =
      static_cast<int>(std::strtol(start_line.c_str() + 9, nullptr, 10));
  headers.Remove("Content-Length");
  resp.headers = std::move(headers);
  resp.body = std::move(body);
  return resp;
}

}  // namespace cacheportal::http
