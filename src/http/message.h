#ifndef CACHEPORTAL_HTTP_MESSAGE_H_
#define CACHEPORTAL_HTTP_MESSAGE_H_

#include <string>

#include "common/status.h"
#include "http/cache_control.h"
#include "http/headers.h"
#include "http/url.h"

namespace cacheportal::http {

/// HTTP request methods used by the library.
enum class Method { kGet, kPost };

const char* MethodName(Method method);

/// An HTTP request. POST parameters live in the body
/// (application/x-www-form-urlencoded); cookies in the Cookie header.
class HttpRequest {
 public:
  HttpRequest() = default;

  /// Builds a GET request for the URL "http://host/path?query".
  static Result<HttpRequest> Get(const std::string& url);

  /// Builds a POST request with form parameters.
  static Result<HttpRequest> Post(const std::string& url,
                                  const ParamMap& form);

  Method method = Method::kGet;
  std::string host;
  std::string path = "/";  // Without the query string.
  ParamMap get_params;
  ParamMap post_params;
  ParamMap cookies;
  HeaderMap headers;
  std::string body;  // Raw body; POST params are serialized into it.

  /// The request's page identity (host, path, and all parameters); the
  /// sniffer narrows this to key parameters per servlet.
  PageId ToPageId() const;

  /// Serializes to HTTP/1.1 wire format.
  std::string Serialize() const;

  /// Parses wire format produced by Serialize (or any conforming request).
  static Result<HttpRequest> Parse(const std::string& wire);
};

/// An HTTP response.
class HttpResponse {
 public:
  HttpResponse() = default;
  HttpResponse(int status, std::string body_text)
      : status_code(status), body(std::move(body_text)) {}

  static HttpResponse Ok(std::string body_text) {
    return HttpResponse(200, std::move(body_text));
  }
  static HttpResponse NotFound(std::string body_text = "not found") {
    return HttpResponse(404, std::move(body_text));
  }
  static HttpResponse ServerError(std::string body_text = "internal error") {
    return HttpResponse(500, std::move(body_text));
  }

  int status_code = 200;
  HeaderMap headers;
  std::string body;

  /// Parses the Cache-Control header (empty defaults when absent).
  CacheControl GetCacheControl() const;

  /// Sets the Cache-Control header from a parsed structure.
  void SetCacheControl(const CacheControl& cc);

  /// Serializes to HTTP/1.1 wire format.
  std::string Serialize() const;

  /// Parses wire format.
  static Result<HttpResponse> Parse(const std::string& wire);
};

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
const char* ReasonPhrase(int status_code);

}  // namespace cacheportal::http

#endif  // CACHEPORTAL_HTTP_MESSAGE_H_
