#include "http/url.h"

#include <cctype>

#include "common/strings.h"

namespace cacheportal::http {

namespace {

bool IsUnreserved(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
         c == '_' || c == '.' || c == '~';
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string UrlEncode(const std::string& text) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (IsUnreserved(c)) {
      out += c;
    } else {
      unsigned char u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    }
  }
  return out;
}

std::string UrlDecode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexDigit(text[i + 1]) >= 0 && HexDigit(text[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(text[i + 1]) * 16 +
                               HexDigit(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

ParamMap ParseQueryString(const std::string& query) {
  ParamMap params;
  if (query.empty()) return params;
  for (const std::string& pair : StrSplit(query, '&')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      params[UrlDecode(pair)] = "";
    } else {
      params[UrlDecode(pair.substr(0, eq))] = UrlDecode(pair.substr(eq + 1));
    }
  }
  return params;
}

std::string BuildQueryString(const ParamMap& params) {
  std::string out;
  for (const auto& [name, value] : params) {
    if (!out.empty()) out += '&';
    out += UrlEncode(name);
    out += '=';
    out += UrlEncode(value);
  }
  return out;
}

ParamMap ParseCookieString(const std::string& cookies) {
  ParamMap params;
  for (const std::string& piece : StrSplit(cookies, ';')) {
    std::string_view item = StripWhitespace(piece);
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      params[std::string(item)] = "";
    } else {
      params[std::string(item.substr(0, eq))] =
          std::string(item.substr(eq + 1));
    }
  }
  return params;
}

std::string BuildCookieString(const ParamMap& cookies) {
  std::string out;
  for (const auto& [name, value] : cookies) {
    if (!out.empty()) out += "; ";
    out += name;
    out += '=';
    out += value;
  }
  return out;
}

std::string PageId::CacheKey() const {
  std::string out = host_;
  out += path_;
  out += '?';
  out += BuildQueryString(get_params_);
  out += '#';
  out += BuildQueryString(post_params_);
  out += '#';
  out += BuildQueryString(cookie_params_);
  return out;
}

Result<PageId> PageId::FromUrl(const std::string& url) {
  std::string rest = url;
  size_t scheme = rest.find("://");
  if (scheme != std::string::npos) rest = rest.substr(scheme + 3);
  if (rest.empty()) return Status::InvalidArgument("empty URL");
  size_t slash = rest.find('/');
  std::string host = slash == std::string::npos ? rest : rest.substr(0, slash);
  std::string path_query =
      slash == std::string::npos ? "/" : rest.substr(slash);
  size_t q = path_query.find('?');
  PageId id(std::move(host),
            q == std::string::npos ? path_query : path_query.substr(0, q));
  if (q != std::string::npos) {
    id.get_params() = ParseQueryString(path_query.substr(q + 1));
  }
  return id;
}

Result<PageId> PageId::FromCacheKey(const std::string& cache_key) {
  size_t slash = cache_key.find('/');
  if (slash == std::string::npos) {
    return Status::ParseError("cache key has no path");
  }
  std::string host = cache_key.substr(0, slash);
  size_t q = cache_key.find('?', slash);
  if (q == std::string::npos) {
    return Status::ParseError("cache key has no '?' separator");
  }
  size_t h1 = cache_key.find('#', q);
  size_t h2 = h1 == std::string::npos ? std::string::npos
                                      : cache_key.find('#', h1 + 1);
  if (h1 == std::string::npos || h2 == std::string::npos) {
    return Status::ParseError("cache key is missing '#' separators");
  }
  PageId id(std::move(host), cache_key.substr(slash, q - slash));
  id.get_params() = ParseQueryString(cache_key.substr(q + 1, h1 - q - 1));
  id.post_params() = ParseQueryString(cache_key.substr(h1 + 1, h2 - h1 - 1));
  id.cookie_params() = ParseQueryString(cache_key.substr(h2 + 1));
  return id;
}

}  // namespace cacheportal::http
