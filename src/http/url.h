#ifndef CACHEPORTAL_HTTP_URL_H_
#define CACHEPORTAL_HTTP_URL_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace cacheportal::http {

/// An ordered name -> value parameter map (GET query string, POST form
/// body, or cookies). Ordering is lexicographic by name so canonical forms
/// are stable.
using ParamMap = std::map<std::string, std::string>;

/// Percent-encodes `text` for use in a query string (RFC 3986 unreserved
/// characters pass through; space becomes %20).
std::string UrlEncode(const std::string& text);

/// Decodes percent-escapes and '+' (as space). Invalid escapes are passed
/// through verbatim.
std::string UrlDecode(const std::string& text);

/// Parses "a=1&b=2" into a ParamMap (later duplicates win).
ParamMap ParseQueryString(const std::string& query);

/// Serializes a ParamMap back to "a=1&b=2" with percent-encoding.
std::string BuildQueryString(const ParamMap& params);

/// Parses a "k1=v1; k2=v2" cookie header.
ParamMap ParseCookieString(const std::string& cookies);

/// Serializes cookies to "k1=v1; k2=v2".
std::string BuildCookieString(const ParamMap& cookies);

/// The paper's notion of a URL (Section 2.3.1): the identity of a cached
/// page is the host, the path, and the *key* subset of its GET, POST, and
/// cookie parameters. Two requests with equal PageIds are served the same
/// cached page.
class PageId {
 public:
  PageId() = default;
  PageId(std::string host, std::string path)
      : host_(std::move(host)), path_(std::move(path)) {}

  const std::string& host() const { return host_; }
  const std::string& path() const { return path_; }

  ParamMap& get_params() { return get_params_; }
  const ParamMap& get_params() const { return get_params_; }
  ParamMap& post_params() { return post_params_; }
  const ParamMap& post_params() const { return post_params_; }
  ParamMap& cookie_params() { return cookie_params_; }
  const ParamMap& cookie_params() const { return cookie_params_; }

  /// Canonical cache-key string:
  /// host "/" path "?" get "#" post "#" cookies, all percent-encoded and
  /// sorted by parameter name.
  std::string CacheKey() const;

  /// Parses a full URL "http://host/path?query" (scheme optional).
  static Result<PageId> FromUrl(const std::string& url);

  /// Inverse of CacheKey(): reconstructs the page identity from its
  /// canonical cache-key string (used by the invalidator to address
  /// eject messages).
  static Result<PageId> FromCacheKey(const std::string& cache_key);

  bool operator==(const PageId& other) const = default;

 private:
  std::string host_;
  std::string path_;  // Always begins with '/'.
  ParamMap get_params_;
  ParamMap post_params_;
  ParamMap cookie_params_;
};

}  // namespace cacheportal::http

#endif  // CACHEPORTAL_HTTP_URL_H_
