#include "invalidator/baseline.h"

#include <algorithm>

#include "sql/parser.h"

namespace cacheportal::invalidator {

namespace {

/// Order-insensitive fingerprint of a result set (a multiset digest):
/// per-row strings are hashed and the sorted hash list is combined, so
/// physical row order does not produce false "changes".
std::string Fingerprint(const db::QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const db::Row& row : result.rows) {
    std::string r;
    for (const sql::Value& v : row) {
      r += v.ToSqlLiteral();
      r += '\x1f';
    }
    rows.push_back(std::move(r));
  }
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const std::string& r : rows) {
    out += r;
    out += '\x1e';
  }
  return out;
}

}  // namespace

Result<BaselineInvalidator::CycleResult> BaselineInvalidator::RunCycle() {
  CycleResult cycle;

  // Register new instances from the QI/URL map.
  for (const sniffer::QiUrlEntry& entry : map_->ReadSince(last_map_id_)) {
    last_map_id_ = std::max(last_map_id_, entry.id);
    if (snapshots_.contains(entry.query_sql)) continue;
    Result<std::unique_ptr<sql::SelectStatement>> parsed =
        sql::Parser::ParseSelect(entry.query_sql);
    if (!parsed.ok()) continue;  // Untrackable; CachePortal logs the same.
    Tracked tracked;
    tracked.statement = std::move(parsed).value();
    // Snapshot the instance's result as of registration.
    CACHEPORTAL_ASSIGN_OR_RETURN(db::QueryResult result,
                                 database_->ExecuteQuery(*tracked.statement));
    ++cycle.queries_executed;
    tracked.result_fingerprint = Fingerprint(result);
    snapshots_.emplace(entry.query_sql, std::move(tracked));
  }

  // Re-execute everything and diff.
  for (auto& [sql_text, tracked] : snapshots_) {
    CACHEPORTAL_ASSIGN_OR_RETURN(db::QueryResult result,
                                 database_->ExecuteQuery(*tracked.statement));
    ++cycle.queries_executed;
    std::string fingerprint = Fingerprint(result);
    if (fingerprint != tracked.result_fingerprint) {
      tracked.result_fingerprint = std::move(fingerprint);
      cycle.changed_instances.insert(sql_text);
      for (const std::string& page : map_->PagesForQuery(sql_text)) {
        cycle.stale_pages.insert(page);
      }
    }
  }
  return cycle;
}

}  // namespace cacheportal::invalidator
