#ifndef CACHEPORTAL_INVALIDATOR_BASELINE_H_
#define CACHEPORTAL_INVALIDATOR_BASELINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "common/status.h"
#include "db/database.h"
#include "sniffer/qiurl_map.h"
#include "sql/ast.h"

namespace cacheportal::invalidator {

/// The exact (but expensive) alternative the paper's Section 4 argues
/// against: re-execute every registered query instance on every
/// synchronization point and invalidate the pages of instances whose
/// results changed — equivalent in effect to per-instance materialized
/// views refreshed inside the DBMS.
///
/// It never over- and never under-invalidates, which makes it both the
/// baseline of the ablation benchmarks and the oracle of the differential
/// tests: CachePortal's invalidation set must always be a superset of
/// this one.
class BaselineInvalidator {
 public:
  /// Observes `database` and the sniffer-maintained `map` (not owned).
  BaselineInvalidator(db::Database* database, sniffer::QiUrlMap* map)
      : database_(database), map_(map) {}

  BaselineInvalidator(const BaselineInvalidator&) = delete;
  BaselineInvalidator& operator=(const BaselineInvalidator&) = delete;

  struct CycleResult {
    /// Instances whose result sets changed since the last cycle.
    std::set<std::string> changed_instances;
    /// Cache keys of pages built from those instances.
    std::set<std::string> stale_pages;
    /// Queries re-executed this cycle (the DBMS burden).
    uint64_t queries_executed = 0;
  };

  /// One cycle: registers new instances from the map, re-executes every
  /// instance, diffs against the previous snapshot. Does not modify the
  /// map or any cache — callers act on the result.
  Result<CycleResult> RunCycle();

  /// Forgets an instance (its pages left the cache).
  void Forget(const std::string& instance_sql) {
    snapshots_.erase(instance_sql);
  }

  size_t tracked_instances() const { return snapshots_.size(); }

 private:
  struct Tracked {
    std::unique_ptr<sql::SelectStatement> statement;
    std::string result_fingerprint;
  };

  db::Database* database_;
  sniffer::QiUrlMap* map_;
  uint64_t last_map_id_ = 0;
  std::map<std::string, Tracked> snapshots_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_BASELINE_H_
