#include "invalidator/bind_index.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace cacheportal::invalidator {

namespace {

/// Numeric index key, mirroring Value::Compare's widening (and folding
/// -0.0 into +0.0, which compares equal but would hash apart).
double NumKey(const sql::Value& v) {
  double d = v.NumericAsDouble();
  return d == 0.0 ? 0.0 : d;
}

/// A numeric bind usable as a map key: ±inf orders and hashes fine; a
/// NaN key would break the sorted maps' strict weak ordering (and never
/// match its own hash bucket), so NaN binds take the always-candidate
/// route instead. Exclusion on NaN would also be unsound:
/// Value::Compare folds NaN comparisons to "equal", never to a definite
/// FALSE.
bool IndexableNum(const sql::Value& v) {
  return v.is_numeric() && !std::isnan(v.NumericAsDouble());
}

template <typename Map, typename Key>
void EraseEntry(Map& map, const Key& key, uint64_t id) {
  auto [begin, end] = map.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == id) {
      map.erase(it);
      return;
    }
  }
}

template <typename Map, typename Key>
void ErasePairEntry(Map& map, const Key& key, uint64_t id) {
  auto [begin, end] = map.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second.second == id) {
      map.erase(it);
      return;
    }
  }
}

}  // namespace

void BindIndex::AddInstance(const TypeMatcher& matcher,
                            const QueryInstance& instance) {
  if (postings_.contains(instance.instance_id)) return;
  const uint64_t id = instance.instance_id;
  std::vector<Posting> posts;

  for (const auto& [table_lower, anchor] : matcher.anchors()) {
    std::pair<uint64_t, std::string> key(instance.type_id, table_lower);
    AnchorIndex& index = indexes_[key];

    auto post = [&](Posting::Container container, double num_key,
                    std::string str_key) {
      Posting posting;
      posting.index_key = key;
      posting.container = container;
      posting.num_key = num_key;
      posting.str_key = std::move(str_key);
      posts.push_back(std::move(posting));
    };
    auto always_num = [&] {
      index.always_num.push_back(id);
      post(Posting::Container::kAlwaysNum, 0, "");
    };
    auto always_str = [&] {
      index.always_str.push_back(id);
      post(Posting::Container::kAlwaysStr, 0, "");
    };

    switch (anchor.rel) {
      case AnchorRel::kEq:
      case AnchorRel::kLt:
      case AnchorRel::kLtEq:
      case AnchorRel::kGt:
      case AnchorRel::kGtEq: {
        sql::Value v =
            TypeMatcher::OperandValue(anchor.operands[0], instance.bindings);
        bool equality = anchor.rel == AnchorRel::kEq;
        if (IndexableNum(v)) {
          double k = NumKey(v);
          if (equality) {
            index.eq_num.emplace(k, id);
            post(Posting::Container::kEqNum, k, "");
          } else {
            index.range_num.emplace(k, id);
            post(Posting::Container::kRangeNum, k, "");
          }
          always_str();  // String tuple vs numeric bind folds NULL.
        } else if (v.is_string()) {
          if (equality) {
            index.eq_str.emplace(v.AsString(), id);
            post(Posting::Container::kEqStr, 0, v.AsString());
          } else {
            index.range_str.emplace(v.AsString(), id);
            post(Posting::Container::kRangeStr, 0, v.AsString());
          }
          always_num();
        } else {
          // NULL / boolean / NaN bind: no comparable probe can reach a
          // definite FALSE.
          always_num();
          always_str();
        }
        break;
      }
      case AnchorRel::kIn: {
        // Any NULL item makes a missed lookup fold NULL, not FALSE —
        // the instance is a candidate for every tuple, and inserting its
        // other items too would double-report it. A NaN item compares
        // "equal" to every numeric tuple under Value::Compare, so it
        // forces the always route too.
        bool has_null = false;
        for (const AnchorOperand& operand : anchor.operands) {
          sql::Value item =
              TypeMatcher::OperandValue(operand, instance.bindings);
          if (item.is_null() ||
              (item.is_numeric() && !IndexableNum(item))) {
            has_null = true;
            break;
          }
        }
        if (has_null) {
          always_num();
          always_str();
          break;
        }
        // Incomparable non-NULL items evaluate as plain misses, so a
        // same-class probe that matches no item folds FALSE even in a
        // mixed-class list: index each item under its own class, nothing
        // else. Duplicates are skipped so one tuple never yields the same
        // instance twice. Boolean items could only match boolean tuples,
        // which return all candidates anyway.
        std::set<double> nums;
        std::set<std::string> strs;
        for (const AnchorOperand& operand : anchor.operands) {
          sql::Value v = TypeMatcher::OperandValue(operand, instance.bindings);
          if (IndexableNum(v)) {
            double k = NumKey(v);
            if (!nums.insert(k).second) continue;
            index.eq_num.emplace(k, id);
            post(Posting::Container::kEqNum, k, "");
          } else if (v.is_string()) {
            if (!strs.insert(v.AsString()).second) continue;
            index.eq_str.emplace(v.AsString(), id);
            post(Posting::Container::kEqStr, 0, v.AsString());
          }
        }
        break;
      }
      case AnchorRel::kBetween: {
        sql::Value low =
            TypeMatcher::OperandValue(anchor.operands[0], instance.bindings);
        sql::Value high =
            TypeMatcher::OperandValue(anchor.operands[1], instance.bindings);
        // BETWEEN folds NULL when EITHER bound is incomparable with the
        // operand (even if the other bound is definitively violated), so
        // only same-class bound pairs may exclude (and NaN bounds never
        // may — see IndexableNum).
        if (IndexableNum(low) && IndexableNum(high)) {
          double lo = NumKey(low);
          index.between_num.emplace(lo, std::make_pair(NumKey(high), id));
          post(Posting::Container::kBetweenNum, lo, "");
          always_str();
        } else if (low.is_string() && high.is_string()) {
          index.between_str.emplace(low.AsString(),
                                    std::make_pair(high.AsString(), id));
          post(Posting::Container::kBetweenStr, 0, low.AsString());
          always_num();
        } else {
          always_num();
          always_str();
        }
        break;
      }
    }
  }

  postings_.emplace(id, std::move(posts));
  type_of_instance_.emplace(id, instance.type_id);
  ++count_by_type_[instance.type_id];
}

void BindIndex::RemoveInstance(uint64_t instance_id) {
  auto posting_it = postings_.find(instance_id);
  if (posting_it == postings_.end()) return;
  for (const Posting& posting : posting_it->second) {
    auto index_it = indexes_.find(posting.index_key);
    if (index_it == indexes_.end()) continue;
    AnchorIndex& index = index_it->second;
    switch (posting.container) {
      case Posting::Container::kEqNum:
        EraseEntry(index.eq_num, posting.num_key, instance_id);
        break;
      case Posting::Container::kEqStr:
        EraseEntry(index.eq_str, posting.str_key, instance_id);
        break;
      case Posting::Container::kRangeNum:
        EraseEntry(index.range_num, posting.num_key, instance_id);
        break;
      case Posting::Container::kRangeStr:
        EraseEntry(index.range_str, posting.str_key, instance_id);
        break;
      case Posting::Container::kBetweenNum:
        ErasePairEntry(index.between_num, posting.num_key, instance_id);
        break;
      case Posting::Container::kBetweenStr:
        ErasePairEntry(index.between_str, posting.str_key, instance_id);
        break;
      case Posting::Container::kAlwaysNum:
        std::erase(index.always_num, instance_id);
        break;
      case Posting::Container::kAlwaysStr:
        std::erase(index.always_str, instance_id);
        break;
    }
  }
  postings_.erase(posting_it);
  auto type_it = type_of_instance_.find(instance_id);
  if (type_it != type_of_instance_.end()) {
    auto count_it = count_by_type_.find(type_it->second);
    if (count_it != count_by_type_.end() && --count_it->second == 0) {
      count_by_type_.erase(count_it);
    }
    type_of_instance_.erase(type_it);
  }
}

size_t BindIndex::IndexedCountOfType(uint64_t type_id) const {
  auto it = count_by_type_.find(type_id);
  return it == count_by_type_.end() ? 0 : it->second;
}

BindIndex::Candidates BindIndex::Probe(uint64_t type_id,
                                       const std::string& table_lower,
                                       const CompiledAnchor& anchor,
                                       const sql::Value& tuple_value) const {
  Candidates candidates;
  // NULL makes every comparison NULL (candidate); booleans are outside
  // the indexed classes.
  if (tuple_value.is_null() || tuple_value.is_bool()) {
    candidates.all = true;
    return candidates;
  }
  auto index_it = indexes_.find(std::make_pair(type_id, table_lower));
  if (index_it == indexes_.end()) return candidates;
  const AnchorIndex& index = index_it->second;

  if (tuple_value.is_numeric()) {
    double t = NumKey(tuple_value);
    if (std::isnan(t)) {
      // NaN is unordered against every comparand, so no probe can prove
      // a definite FALSE — and feeding NaN to the sorted maps would
      // invoke inconsistent-ordering behavior. Everyone looks.
      candidates.all = true;
      return candidates;
    }
    switch (anchor.rel) {
      case AnchorRel::kEq:
      case AnchorRel::kIn: {
        auto [begin, end] = index.eq_num.equal_range(t);
        for (auto it = begin; it != end; ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      }
      case AnchorRel::kLt:  // col < c is satisfiable iff c > t.
        for (auto it = index.range_num.upper_bound(t);
             it != index.range_num.end(); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kLtEq:  // c >= t.
        for (auto it = index.range_num.lower_bound(t);
             it != index.range_num.end(); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kGt:  // c < t.
        for (auto it = index.range_num.begin();
             it != index.range_num.lower_bound(t); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kGtEq:  // c <= t.
        for (auto it = index.range_num.begin();
             it != index.range_num.upper_bound(t); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kBetween:  // low <= t AND high >= t.
        for (auto it = index.between_num.begin();
             it != index.between_num.upper_bound(t); ++it) {
          if (it->second.first >= t) candidates.ids.push_back(it->second.second);
        }
        break;
    }
    candidates.ids.insert(candidates.ids.end(), index.always_num.begin(),
                          index.always_num.end());
    return candidates;
  }

  const std::string& t = tuple_value.AsString();
  switch (anchor.rel) {
    case AnchorRel::kEq:
    case AnchorRel::kIn: {
      auto [begin, end] = index.eq_str.equal_range(t);
      for (auto it = begin; it != end; ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    }
    case AnchorRel::kLt:
      for (auto it = index.range_str.upper_bound(t);
           it != index.range_str.end(); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kLtEq:
      for (auto it = index.range_str.lower_bound(t);
           it != index.range_str.end(); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kGt:
      for (auto it = index.range_str.begin();
           it != index.range_str.lower_bound(t); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kGtEq:
      for (auto it = index.range_str.begin();
           it != index.range_str.upper_bound(t); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kBetween:
      for (auto it = index.between_str.begin();
           it != index.between_str.upper_bound(t); ++it) {
        if (it->second.first >= t) candidates.ids.push_back(it->second.second);
      }
      break;
  }
  candidates.ids.insert(candidates.ids.end(), index.always_str.begin(),
                        index.always_str.end());
  return candidates;
}

void BindIndex::ProbeBatch(uint64_t type_id, const std::string& table_lower,
                           const CompiledAnchor& anchor,
                           const sql::ColumnVector& column, BatchProbe* out,
                           MatcherStats* stats) const {
  const size_t n = column.size();
  // Rows no probe can exclude for anyone (NULL/boolean/NaN/missing
  // cells) — ascending, exactly the rows per-tuple Probe answers with
  // `all`.
  for (uint32_t i = 0; i < n; ++i) {
    if (column.klass[i] == sql::CellClass::kAlways) {
      out->all_rows.push_back(i);
    }
  }
  auto index_it = indexes_.find(std::make_pair(type_id, table_lower));
  if (index_it == indexes_.end()) return;
  const AnchorIndex& index = index_it->second;

  // Per-candidate row bitmaps, created lazily: OR-ing each entry's
  // satisfying rows dedups IN-anchor multi-matches and keeps the final
  // lists ascending; instances no entry matches cost nothing.
  std::unordered_map<uint64_t, sql::RowBitmap> bits;
  auto bitmap_of = [&](uint64_t id) -> sql::RowBitmap& {
    return bits.try_emplace(id, n).first->second;
  };

  // Below this many entries a per-entry kernel pass over the column
  // beats sorting the batch's probe keys.
  constexpr size_t kKernelEntryLimit = 8;

  bool sorted_ready = false;
  sql::SortedColumnKeys sorted;
  auto sorted_keys = [&]() -> const sql::SortedColumnKeys& {
    if (!sorted_ready) {
      sorted = sql::SortColumnKeys(column);
      sorted_ready = true;
    }
    return sorted;
  };
  auto count_kernels = [&](size_t entries) {
    if (stats != nullptr) stats->batch_kernel_evals += entries;
  };
  auto count_merge = [&] {
    if (stats != nullptr) ++stats->batch_merge_probes;
  };

  const bool equality =
      anchor.rel == AnchorRel::kEq || anchor.rel == AnchorRel::kIn;

  // ---- Numeric rows vs the numeric-keyed containers. ----
  // Skipped wholesale (always lists included) when the batch has no
  // numeric rows — a per-tuple probe of a non-numeric value never
  // touches them either.
  if (column.num_count > 0) {
    if (equality) {
      if (index.eq_num.size() <= kKernelEntryLimit) {
        count_kernels(index.eq_num.size());
        for (const auto& [k, id] : index.eq_num) {
          sql::OrSatisfyingRows(column, sql::BatchRel::kEq, k, 0,
                                &bitmap_of(id));
        }
      } else {
        // One hash probe per distinct batch key; its sorted row group
        // lands on every matching entry at once.
        const auto& keys = sorted_keys().num;
        for (size_t p = 0; p < keys.size();) {
          size_t q = p;
          const double k = keys[p].first;
          while (q < keys.size() && keys[q].first == k) ++q;
          count_merge();
          auto [begin, end] = index.eq_num.equal_range(k);
          for (auto it = begin; it != end; ++it) {
            sql::RowBitmap& bitmap = bitmap_of(it->second);
            for (size_t r = p; r < q; ++r) bitmap.Set(keys[r].second);
          }
          p = q;
        }
      }
    } else if (anchor.rel == AnchorRel::kBetween) {
      if (index.between_num.size() <= kKernelEntryLimit) {
        count_kernels(index.between_num.size());
        for (const auto& [lo, hi_id] : index.between_num) {
          sql::OrSatisfyingRows(column, sql::BatchRel::kBetween, lo,
                                hi_id.first, &bitmap_of(hi_id.second));
        }
      } else {
        // Same entry window a per-tuple probe scans (lo <= max key),
        // with each entry's [lo, hi] row span found by binary search.
        const auto& keys = sorted_keys().num;
        auto stop = index.between_num.upper_bound(keys.back().first);
        for (auto it = index.between_num.begin(); it != stop; ++it) {
          count_merge();
          auto b = std::lower_bound(
              keys.begin(), keys.end(), it->first,
              [](const std::pair<double, uint32_t>& pr, double v) {
                return pr.first < v;
              });
          auto e = std::upper_bound(
              keys.begin(), keys.end(), it->second.first,
              [](double v, const std::pair<double, uint32_t>& pr) {
                return v < pr.first;
              });
          if (b == e) continue;
          sql::RowBitmap& bitmap = bitmap_of(it->second.second);
          for (auto r = b; r != e; ++r) bitmap.Set(r->second);
        }
      }
    } else {
      if (index.range_num.size() <= kKernelEntryLimit) {
        sql::BatchRel rel = anchor.rel == AnchorRel::kLt ? sql::BatchRel::kLt
                            : anchor.rel == AnchorRel::kLtEq
                                ? sql::BatchRel::kLtEq
                            : anchor.rel == AnchorRel::kGt ? sql::BatchRel::kGt
                                                           : sql::BatchRel::kGtEq;
        count_kernels(index.range_num.size());
        for (const auto& [c, id] : index.range_num) {
          sql::OrSatisfyingRows(column, rel, c, 0, &bitmap_of(id));
        }
      } else {
        // Sorted merge: entries ascend by comparand, batch keys ascend,
        // so one monotone pointer finds each entry's matching prefix
        // (col < c / <= c) or suffix (col > c / >= c). The entry window
        // is the union of the windows per-tuple probes scan, so cost
        // stays output-sensitive.
        const auto& keys = sorted_keys().num;
        const double min_key = keys.front().first;
        const double max_key = keys.back().first;
        size_t p = 0;
        switch (anchor.rel) {
          case AnchorRel::kLt:
            for (auto it = index.range_num.upper_bound(min_key);
                 it != index.range_num.end(); ++it) {
              while (p < keys.size() && keys[p].first < it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = 0; r < p; ++r) bitmap.Set(keys[r].second);
            }
            break;
          case AnchorRel::kLtEq:
            for (auto it = index.range_num.lower_bound(min_key);
                 it != index.range_num.end(); ++it) {
              while (p < keys.size() && keys[p].first <= it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = 0; r < p; ++r) bitmap.Set(keys[r].second);
            }
            break;
          case AnchorRel::kGt: {
            auto stop = index.range_num.lower_bound(max_key);
            for (auto it = index.range_num.begin(); it != stop; ++it) {
              while (p < keys.size() && keys[p].first <= it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = p; r < keys.size(); ++r) {
                bitmap.Set(keys[r].second);
              }
            }
            break;
          }
          case AnchorRel::kGtEq: {
            auto stop = index.range_num.upper_bound(max_key);
            for (auto it = index.range_num.begin(); it != stop; ++it) {
              while (p < keys.size() && keys[p].first < it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = p; r < keys.size(); ++r) {
                bitmap.Set(keys[r].second);
              }
            }
            break;
          }
          default:
            break;
        }
      }
    }
    // Always-candidate instances of the numeric class get every numeric
    // row — what each per-tuple probe appends after its lookup.
    for (uint64_t id : index.always_num) {
      sql::OrRowsOfClass(column, sql::CellClass::kNumeric, &bitmap_of(id));
    }
  }

  // ---- String rows vs the string-keyed containers (symmetric). ----
  if (column.str_count > 0) {
    if (equality) {
      if (index.eq_str.size() <= kKernelEntryLimit) {
        count_kernels(index.eq_str.size());
        for (const auto& [k, id] : index.eq_str) {
          sql::OrSatisfyingRows(column, sql::BatchRel::kEq, k, k,
                                &bitmap_of(id));
        }
      } else {
        const auto& keys = sorted_keys().str;
        for (size_t p = 0; p < keys.size();) {
          size_t q = p;
          const std::string& k = *keys[p].first;
          while (q < keys.size() && *keys[q].first == k) ++q;
          count_merge();
          auto [begin, end] = index.eq_str.equal_range(k);
          for (auto it = begin; it != end; ++it) {
            sql::RowBitmap& bitmap = bitmap_of(it->second);
            for (size_t r = p; r < q; ++r) bitmap.Set(keys[r].second);
          }
          p = q;
        }
      }
    } else if (anchor.rel == AnchorRel::kBetween) {
      if (index.between_str.size() <= kKernelEntryLimit) {
        count_kernels(index.between_str.size());
        for (const auto& [lo, hi_id] : index.between_str) {
          sql::OrSatisfyingRows(column, sql::BatchRel::kBetween, lo,
                                hi_id.first, &bitmap_of(hi_id.second));
        }
      } else {
        const auto& keys = sorted_keys().str;
        auto stop = index.between_str.upper_bound(*keys.back().first);
        for (auto it = index.between_str.begin(); it != stop; ++it) {
          count_merge();
          auto b = std::lower_bound(
              keys.begin(), keys.end(), it->first,
              [](const std::pair<const std::string*, uint32_t>& pr,
                 const std::string& v) { return *pr.first < v; });
          auto e = std::upper_bound(
              keys.begin(), keys.end(), it->second.first,
              [](const std::string& v,
                 const std::pair<const std::string*, uint32_t>& pr) {
                return v < *pr.first;
              });
          if (b == e) continue;
          sql::RowBitmap& bitmap = bitmap_of(it->second.second);
          for (auto r = b; r != e; ++r) bitmap.Set(r->second);
        }
      }
    } else {
      if (index.range_str.size() <= kKernelEntryLimit) {
        sql::BatchRel rel = anchor.rel == AnchorRel::kLt ? sql::BatchRel::kLt
                            : anchor.rel == AnchorRel::kLtEq
                                ? sql::BatchRel::kLtEq
                            : anchor.rel == AnchorRel::kGt ? sql::BatchRel::kGt
                                                           : sql::BatchRel::kGtEq;
        count_kernels(index.range_str.size());
        for (const auto& [c, id] : index.range_str) {
          sql::OrSatisfyingRows(column, rel, c, c, &bitmap_of(id));
        }
      } else {
        const auto& keys = sorted_keys().str;
        const std::string& min_key = *keys.front().first;
        const std::string& max_key = *keys.back().first;
        size_t p = 0;
        switch (anchor.rel) {
          case AnchorRel::kLt:
            for (auto it = index.range_str.upper_bound(min_key);
                 it != index.range_str.end(); ++it) {
              while (p < keys.size() && *keys[p].first < it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = 0; r < p; ++r) bitmap.Set(keys[r].second);
            }
            break;
          case AnchorRel::kLtEq:
            for (auto it = index.range_str.lower_bound(min_key);
                 it != index.range_str.end(); ++it) {
              while (p < keys.size() && *keys[p].first <= it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = 0; r < p; ++r) bitmap.Set(keys[r].second);
            }
            break;
          case AnchorRel::kGt: {
            auto stop = index.range_str.lower_bound(max_key);
            for (auto it = index.range_str.begin(); it != stop; ++it) {
              while (p < keys.size() && *keys[p].first <= it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = p; r < keys.size(); ++r) {
                bitmap.Set(keys[r].second);
              }
            }
            break;
          }
          case AnchorRel::kGtEq: {
            auto stop = index.range_str.upper_bound(max_key);
            for (auto it = index.range_str.begin(); it != stop; ++it) {
              while (p < keys.size() && *keys[p].first < it->first) ++p;
              count_merge();
              sql::RowBitmap& bitmap = bitmap_of(it->second);
              for (size_t r = p; r < keys.size(); ++r) {
                bitmap.Set(keys[r].second);
              }
            }
            break;
          }
          default:
            break;
        }
      }
    }
    for (uint64_t id : index.always_str) {
      sql::OrRowsOfClass(column, sql::CellClass::kString, &bitmap_of(id));
    }
  }

  for (auto& [id, bitmap] : bits) {
    std::vector<uint32_t> rows;
    bitmap.AppendSetRows(&rows);
    // An empty list would make the instance look like a candidate
    // downstream; per-tuple probes never emit one.
    if (rows.empty()) continue;
    out->per_id.emplace(id, std::move(rows));
  }
}

}  // namespace cacheportal::invalidator
