#include "invalidator/bind_index.h"

#include <algorithm>
#include <set>

namespace cacheportal::invalidator {

namespace {

/// Numeric index key, mirroring Value::Compare's widening (and folding
/// -0.0 into +0.0, which compares equal but would hash apart).
double NumKey(const sql::Value& v) {
  double d = v.NumericAsDouble();
  return d == 0.0 ? 0.0 : d;
}

template <typename Map, typename Key>
void EraseEntry(Map& map, const Key& key, uint64_t id) {
  auto [begin, end] = map.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second == id) {
      map.erase(it);
      return;
    }
  }
}

template <typename Map, typename Key>
void ErasePairEntry(Map& map, const Key& key, uint64_t id) {
  auto [begin, end] = map.equal_range(key);
  for (auto it = begin; it != end; ++it) {
    if (it->second.second == id) {
      map.erase(it);
      return;
    }
  }
}

}  // namespace

void BindIndex::AddInstance(const TypeMatcher& matcher,
                            const QueryInstance& instance) {
  if (postings_.contains(instance.instance_id)) return;
  const uint64_t id = instance.instance_id;
  std::vector<Posting> posts;

  for (const auto& [table_lower, anchor] : matcher.anchors()) {
    std::pair<uint64_t, std::string> key(instance.type_id, table_lower);
    AnchorIndex& index = indexes_[key];

    auto post = [&](Posting::Container container, double num_key,
                    std::string str_key) {
      Posting posting;
      posting.index_key = key;
      posting.container = container;
      posting.num_key = num_key;
      posting.str_key = std::move(str_key);
      posts.push_back(std::move(posting));
    };
    auto always_num = [&] {
      index.always_num.push_back(id);
      post(Posting::Container::kAlwaysNum, 0, "");
    };
    auto always_str = [&] {
      index.always_str.push_back(id);
      post(Posting::Container::kAlwaysStr, 0, "");
    };

    switch (anchor.rel) {
      case AnchorRel::kEq:
      case AnchorRel::kLt:
      case AnchorRel::kLtEq:
      case AnchorRel::kGt:
      case AnchorRel::kGtEq: {
        sql::Value v =
            TypeMatcher::OperandValue(anchor.operands[0], instance.bindings);
        bool equality = anchor.rel == AnchorRel::kEq;
        if (v.is_numeric()) {
          double k = NumKey(v);
          if (equality) {
            index.eq_num.emplace(k, id);
            post(Posting::Container::kEqNum, k, "");
          } else {
            index.range_num.emplace(k, id);
            post(Posting::Container::kRangeNum, k, "");
          }
          always_str();  // String tuple vs numeric bind folds NULL.
        } else if (v.is_string()) {
          if (equality) {
            index.eq_str.emplace(v.AsString(), id);
            post(Posting::Container::kEqStr, 0, v.AsString());
          } else {
            index.range_str.emplace(v.AsString(), id);
            post(Posting::Container::kRangeStr, 0, v.AsString());
          }
          always_num();
        } else {
          // NULL / boolean bind: no comparable probe can reach FALSE.
          always_num();
          always_str();
        }
        break;
      }
      case AnchorRel::kIn: {
        // Any NULL item makes a missed lookup fold NULL, not FALSE —
        // the instance is a candidate for every tuple, and inserting its
        // other items too would double-report it.
        bool has_null = false;
        for (const AnchorOperand& operand : anchor.operands) {
          if (TypeMatcher::OperandValue(operand, instance.bindings)
                  .is_null()) {
            has_null = true;
            break;
          }
        }
        if (has_null) {
          always_num();
          always_str();
          break;
        }
        // Incomparable non-NULL items evaluate as plain misses, so a
        // same-class probe that matches no item folds FALSE even in a
        // mixed-class list: index each item under its own class, nothing
        // else. Duplicates are skipped so one tuple never yields the same
        // instance twice. Boolean items could only match boolean tuples,
        // which return all candidates anyway.
        std::set<double> nums;
        std::set<std::string> strs;
        for (const AnchorOperand& operand : anchor.operands) {
          sql::Value v = TypeMatcher::OperandValue(operand, instance.bindings);
          if (v.is_numeric()) {
            double k = NumKey(v);
            if (!nums.insert(k).second) continue;
            index.eq_num.emplace(k, id);
            post(Posting::Container::kEqNum, k, "");
          } else if (v.is_string()) {
            if (!strs.insert(v.AsString()).second) continue;
            index.eq_str.emplace(v.AsString(), id);
            post(Posting::Container::kEqStr, 0, v.AsString());
          }
        }
        break;
      }
      case AnchorRel::kBetween: {
        sql::Value low =
            TypeMatcher::OperandValue(anchor.operands[0], instance.bindings);
        sql::Value high =
            TypeMatcher::OperandValue(anchor.operands[1], instance.bindings);
        // BETWEEN folds NULL when EITHER bound is incomparable with the
        // operand (even if the other bound is definitively violated), so
        // only same-class bound pairs may exclude.
        if (low.is_numeric() && high.is_numeric()) {
          double lo = NumKey(low);
          index.between_num.emplace(lo, std::make_pair(NumKey(high), id));
          post(Posting::Container::kBetweenNum, lo, "");
          always_str();
        } else if (low.is_string() && high.is_string()) {
          index.between_str.emplace(low.AsString(),
                                    std::make_pair(high.AsString(), id));
          post(Posting::Container::kBetweenStr, 0, low.AsString());
          always_num();
        } else {
          always_num();
          always_str();
        }
        break;
      }
    }
  }

  postings_.emplace(id, std::move(posts));
  type_of_instance_.emplace(id, instance.type_id);
  ++count_by_type_[instance.type_id];
}

void BindIndex::RemoveInstance(uint64_t instance_id) {
  auto posting_it = postings_.find(instance_id);
  if (posting_it == postings_.end()) return;
  for (const Posting& posting : posting_it->second) {
    auto index_it = indexes_.find(posting.index_key);
    if (index_it == indexes_.end()) continue;
    AnchorIndex& index = index_it->second;
    switch (posting.container) {
      case Posting::Container::kEqNum:
        EraseEntry(index.eq_num, posting.num_key, instance_id);
        break;
      case Posting::Container::kEqStr:
        EraseEntry(index.eq_str, posting.str_key, instance_id);
        break;
      case Posting::Container::kRangeNum:
        EraseEntry(index.range_num, posting.num_key, instance_id);
        break;
      case Posting::Container::kRangeStr:
        EraseEntry(index.range_str, posting.str_key, instance_id);
        break;
      case Posting::Container::kBetweenNum:
        ErasePairEntry(index.between_num, posting.num_key, instance_id);
        break;
      case Posting::Container::kBetweenStr:
        ErasePairEntry(index.between_str, posting.str_key, instance_id);
        break;
      case Posting::Container::kAlwaysNum:
        std::erase(index.always_num, instance_id);
        break;
      case Posting::Container::kAlwaysStr:
        std::erase(index.always_str, instance_id);
        break;
    }
  }
  postings_.erase(posting_it);
  auto type_it = type_of_instance_.find(instance_id);
  if (type_it != type_of_instance_.end()) {
    auto count_it = count_by_type_.find(type_it->second);
    if (count_it != count_by_type_.end() && --count_it->second == 0) {
      count_by_type_.erase(count_it);
    }
    type_of_instance_.erase(type_it);
  }
}

size_t BindIndex::IndexedCountOfType(uint64_t type_id) const {
  auto it = count_by_type_.find(type_id);
  return it == count_by_type_.end() ? 0 : it->second;
}

BindIndex::Candidates BindIndex::Probe(uint64_t type_id,
                                       const std::string& table_lower,
                                       const CompiledAnchor& anchor,
                                       const sql::Value& tuple_value) const {
  Candidates candidates;
  // NULL makes every comparison NULL (candidate); booleans are outside
  // the indexed classes.
  if (tuple_value.is_null() || tuple_value.is_bool()) {
    candidates.all = true;
    return candidates;
  }
  auto index_it = indexes_.find(std::make_pair(type_id, table_lower));
  if (index_it == indexes_.end()) return candidates;
  const AnchorIndex& index = index_it->second;

  if (tuple_value.is_numeric()) {
    double t = NumKey(tuple_value);
    switch (anchor.rel) {
      case AnchorRel::kEq:
      case AnchorRel::kIn: {
        auto [begin, end] = index.eq_num.equal_range(t);
        for (auto it = begin; it != end; ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      }
      case AnchorRel::kLt:  // col < c is satisfiable iff c > t.
        for (auto it = index.range_num.upper_bound(t);
             it != index.range_num.end(); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kLtEq:  // c >= t.
        for (auto it = index.range_num.lower_bound(t);
             it != index.range_num.end(); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kGt:  // c < t.
        for (auto it = index.range_num.begin();
             it != index.range_num.lower_bound(t); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kGtEq:  // c <= t.
        for (auto it = index.range_num.begin();
             it != index.range_num.upper_bound(t); ++it) {
          candidates.ids.push_back(it->second);
        }
        break;
      case AnchorRel::kBetween:  // low <= t AND high >= t.
        for (auto it = index.between_num.begin();
             it != index.between_num.upper_bound(t); ++it) {
          if (it->second.first >= t) candidates.ids.push_back(it->second.second);
        }
        break;
    }
    candidates.ids.insert(candidates.ids.end(), index.always_num.begin(),
                          index.always_num.end());
    return candidates;
  }

  const std::string& t = tuple_value.AsString();
  switch (anchor.rel) {
    case AnchorRel::kEq:
    case AnchorRel::kIn: {
      auto [begin, end] = index.eq_str.equal_range(t);
      for (auto it = begin; it != end; ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    }
    case AnchorRel::kLt:
      for (auto it = index.range_str.upper_bound(t);
           it != index.range_str.end(); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kLtEq:
      for (auto it = index.range_str.lower_bound(t);
           it != index.range_str.end(); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kGt:
      for (auto it = index.range_str.begin();
           it != index.range_str.lower_bound(t); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kGtEq:
      for (auto it = index.range_str.begin();
           it != index.range_str.upper_bound(t); ++it) {
        candidates.ids.push_back(it->second);
      }
      break;
    case AnchorRel::kBetween:
      for (auto it = index.between_str.begin();
           it != index.between_str.upper_bound(t); ++it) {
        if (it->second.first >= t) candidates.ids.push_back(it->second.second);
      }
      break;
  }
  candidates.ids.insert(candidates.ids.end(), index.always_str.begin(),
                        index.always_str.end());
  return candidates;
}

}  // namespace cacheportal::invalidator
