#ifndef CACHEPORTAL_INVALIDATOR_BIND_INDEX_H_
#define CACHEPORTAL_INVALIDATOR_BIND_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "invalidator/options.h"
#include "invalidator/registry.h"
#include "invalidator/type_matcher.h"
#include "sql/column_batch.h"
#include "sql/value.h"

namespace cacheportal::invalidator {

/// Per-(type, table) indexes over the bind values of all live instances
/// of a type: equality hash maps and sorted interval maps, keyed by the
/// comparand of the type's compiled anchor. A delta tuple's column value
/// probes the index and gets back exactly the instances whose anchor
/// conjunct could still be TRUE or NULL for that tuple — every other
/// instance's WHERE provably folds to FALSE, so it is unaffected with
/// zero per-instance AST work.
///
/// The probe mirrors sql::EvalExpression's three-valued semantics
/// exactly, because exclusion is only sound on a definite FALSE
/// (`NULL AND residual` stays residual in the fold):
///  - Comparisons (=, <, <=, >, >=, BETWEEN) on incomparable classes
///    (string vs numeric, bool, NULL binds) yield NULL, never FALSE, so
///    such instances live on per-class always-candidate lists.
///  - Numeric comparands compare after widening to double, so numeric
///    keys are NumericAsDouble (with -0.0 normalized) — Int(5) and
///    Double(5.0) must collide exactly as Value::Compare says they do.
///  - IN evaluates incomparable non-NULL items as plain misses (FALSE is
///    reachable across mixed classes), but any NULL item forces the miss
///    result to NULL — those instances are always candidates.
///  - BETWEEN yields NULL unless BOTH bounds share the probe's class, so
///    only same-class (low, high) pairs are interval-indexed.
///  - NULL or boolean tuple values return everything (bool = bool can
///    fold FALSE, but template extraction keeps booleans structural, so
///    they are rare; returning all candidates is always sound).
///  - Non-finite numerics: ±inf keys are totally ordered and hash
///    cleanly, so they index normally. NaN does neither — a NaN key
///    would silently break the sorted maps' strict weak ordering and
///    never match its own hash lookup — so NaN binds go to the
///    always-candidate lists (Value::Compare treats NaN as equal to
///    every numeric, so NaN comparisons never definitely fold FALSE and
///    exclusion would be unsound anyway) and a NaN tuple value probes
///    as "all candidates".
class BindIndex {
 public:
  struct Candidates {
    bool all = false;           // Every instance of the type is a candidate.
    std::vector<uint64_t> ids;  // Otherwise: candidate instance IDs (unique).
  };

  /// Indexes `instance` under every anchored table of its type's matcher.
  /// Idempotent per instance_id.
  void AddInstance(const TypeMatcher& matcher, const QueryInstance& instance);

  /// Removes every posting of `instance_id`. No-op when absent.
  void RemoveInstance(uint64_t instance_id);

  bool ContainsInstance(uint64_t instance_id) const {
    return postings_.contains(instance_id);
  }

  /// Live instances indexed under `type_id`; the cycle cross-checks this
  /// against the registry before trusting probe exclusions.
  size_t IndexedCountOfType(uint64_t type_id) const;

  /// Candidate instances of `type_id` for a delta tuple of `table_lower`
  /// whose anchored column holds `tuple_value`.
  Candidates Probe(uint64_t type_id, const std::string& table_lower,
                   const CompiledAnchor& anchor,
                   const sql::Value& tuple_value) const;

  /// Columnar probe result for a whole (type, table) batch: the rows
  /// every instance must consider (NULL/boolean/NaN/missing cells) plus
  /// each candidate instance's row list. Both ascending and
  /// duplicate-free — element-for-element what per-tuple Probe calls
  /// would have accumulated, so the two paths are interchangeable.
  struct BatchProbe {
    std::vector<uint32_t> all_rows;
    std::unordered_map<uint64_t, std::vector<uint32_t>> per_id;
  };

  /// Probes an entire column batch in one call. Strategy is picked per
  /// value class by entry count: few entries run the tight per-column
  /// evaluation kernels (sql/column_batch.h) once per entry; many
  /// entries sort the batch's probe keys once and merge them against
  /// the index's sorted maps (equality keys hash-probe once per
  /// distinct key), touching only matching entries. `stats` (may be
  /// null) accumulates batch_kernel_evals / batch_merge_probes.
  void ProbeBatch(uint64_t type_id, const std::string& table_lower,
                  const CompiledAnchor& anchor,
                  const sql::ColumnVector& column, BatchProbe* out,
                  MatcherStats* stats) const;

  size_t NumIndexedInstances() const { return postings_.size(); }

 private:
  struct AnchorIndex {
    // Equality probes (anchors kEq and kIn).
    std::unordered_multimap<double, uint64_t> eq_num;
    std::unordered_multimap<std::string, uint64_t> eq_str;
    // Interval probes; the key is the anchor's comparand.
    std::multimap<double, uint64_t> range_num;
    std::multimap<std::string, uint64_t> range_str;
    // BETWEEN: low -> (high, id), both bounds same-class.
    std::multimap<double, std::pair<double, uint64_t>> between_num;
    std::multimap<std::string, std::pair<std::string, uint64_t>> between_str;
    // Instances no probe of the given class can exclude.
    std::vector<uint64_t> always_num;
    std::vector<uint64_t> always_str;
  };

  /// Reverse record of one container entry, for O(log + k) removal.
  struct Posting {
    std::pair<uint64_t, std::string> index_key;  // (type_id, table_lower)
    enum class Container {
      kEqNum,
      kEqStr,
      kRangeNum,
      kRangeStr,
      kBetweenNum,
      kBetweenStr,
      kAlwaysNum,
      kAlwaysStr,
    } container = Container::kAlwaysNum;
    double num_key = 0;
    std::string str_key;
  };

  std::map<std::pair<uint64_t, std::string>, AnchorIndex> indexes_;
  std::map<uint64_t, std::vector<Posting>> postings_;  // By instance_id.
  std::map<uint64_t, uint64_t> type_of_instance_;
  std::map<uint64_t, size_t> count_by_type_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_BIND_INDEX_H_
