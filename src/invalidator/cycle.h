#ifndef CACHEPORTAL_INVALIDATOR_CYCLE_H_
#define CACHEPORTAL_INVALIDATOR_CYCLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "db/delta.h"
#include "invalidator/info_manager.h"
#include "invalidator/metadata_plane.h"
#include "invalidator/options.h"
#include "invalidator/overload.h"
#include "invalidator/polling_cache.h"
#include "invalidator/scheduler.h"
#include "invalidator/sinks.h"
#include "sniffer/qiurl_map.h"
#include "sql/ast.h"
#include "sql/column_batch.h"

namespace cacheportal::invalidator {

/// The degradation rung, resolved into the concrete knobs each stage
/// reads — overload behavior is a policy OBJECT the stages consume, not
/// inline mode branches scattered through the cycle.
struct StagePolicy {
  DegradationMode mode = DegradationMode::kNormal;
  /// This cycle's polling budget (0 = unlimited). Already shrunk when
  /// the rung is kEconomy.
  size_t poll_budget = 0;
  /// Skip polling entirely; every undecided instance is condemned
  /// (kConservative, or kEconomy with a zero economy budget).
  bool skip_polls = false;
  /// Skip analysis too: table-scoped flush of every instance reading a
  /// backlogged table (kEmergency).
  bool flush_only = false;
  /// Exact-tier types keep their precise row-image analysis under this
  /// rung. True on every rung but kEmergency: the exact tier issues no
  /// polls, so the economy/conservative poll-budget rungs have nothing
  /// to take from it; only a flush-everything emergency overrides its
  /// verdicts (DESIGN.md §16).
  bool exact_exempt = true;
};

/// Resolves a rung into the stage knobs, using the configured budgets.
StagePolicy MakeStagePolicy(DegradationMode mode,
                            const InvalidatorOptions& options);

/// One instance's slot in the parallel analysis fan-out: read-only inputs
/// set up serially, verdict written by exactly one worker, stats merged
/// serially afterwards — in instance order, so cycle results are
/// identical at every worker count.
struct InstanceAnalysis {
  // Inputs.
  uint64_t type_id = 0;
  uint64_t instance_id = 0;
  const QueryInstance* instance = nullptr;
  /// The type's strategy tier is kExact (and the policy honors it):
  /// decided by ExactInstanceAffected from row images — no impact
  /// fan-out, no polling, never condemned conservatively.
  bool exact = false;

  // Verdict.
  Status status;                   // Analysis error, reported at merge.
  bool multi_table_guard = false;  // >= 2 FROM tables updated together.
  bool checked = false;
  bool affected = false;           // Decided by condition analysis.
  bool index_affected = false;     // Decided by a join-index answer.
  uint64_t index_answers = 0;      // Polls answered without the DBMS.
  std::vector<std::unique_ptr<sql::SelectStatement>> remaining_polls;
  size_t affected_pages = 0;       // Cached pages riding on the verdict.
  Micros check_time = 0;
  // Matcher bookkeeping (merged serially into MatcherStats).
  uint64_t matcher_excluded = 0;        // Tuples pruned before analysis.
  uint64_t matcher_short_circuits = 0;  // Tables decided with no AST work.
};

/// One merged view of a table's delta tuples, built once per cycle and
/// shared (borrowed) by every instance analysis — inserts first, then
/// deletes, the order the per-instance copies used to have.
struct TableTuples {
  std::string table;  // Lower-cased (DeltaSet::Tables() key).
  std::vector<const db::Row*> tuples;
};

/// The state one synchronization cycle threads through its stages.
/// IngestStage fills the top, ImpactStage turns deltas into verdicts and
/// polling tasks, PollStage decides the undecided, DeliverStage turns
/// `affected` into eject messages. Each stage reads what earlier stages
/// wrote and nothing else, so any stage is testable in isolation by
/// hand-building its input context.
struct CycleContext {
  /// Cycle start time (orders polling deadlines).
  Micros start = 0;
  /// The degradation rung, resolved into stage knobs.
  StagePolicy policy;
  /// The summary RunCycle returns; every stage contributes counters.
  CycleReport report;
  /// False after IngestStage when the update log had nothing — the
  /// remaining stages are skipped (registration still happened).
  bool proceed = false;

  // ---- IngestStage output. ----
  db::DeltaSet deltas;
  /// One merged tuple view per updated table, borrowed by every
  /// analysis.
  std::vector<TableTuples> merged;
  /// Columnar materialization of `merged` (parallel by index), built
  /// when options.batch_impact && options.use_type_matcher; empty
  /// otherwise. Borrows the same rows as `merged`.
  std::vector<sql::ColumnBatch> batch_columns;

  // ---- ImpactStage output. ----
  /// The per-instance work snapshot with verdicts merged in.
  std::vector<InstanceAnalysis> work;
  /// SQL of every instance decided affected so far (ordered — delivery
  /// iterates it deterministically).
  std::set<std::string> affected;
  /// Undecided instances' polling work, handed to PollStage.
  std::vector<PollingTask> tasks;
};

/// Everything the stages borrow from the invalidator that owns them.
/// All pointers are non-owning; `pool`, `polling_cache`, and `overload`
/// may be null. A test can hand-build one of these around fixture
/// objects to run a single stage in isolation.
struct StageEnv {
  db::Database* database = nullptr;
  sniffer::QiUrlMap* map = nullptr;
  const Clock* clock = nullptr;
  const InvalidatorOptions* options = nullptr;
  MetadataPlane* plane = nullptr;
  InformationManager* info = nullptr;
  const InvalidationScheduler* scheduler = nullptr;
  PollingDataCache* polling_cache = nullptr;
  ThreadPool* pool = nullptr;
  OverloadController* overload = nullptr;
  const std::vector<InvalidationSink*>* sinks = nullptr;
  InvalidatorStats* stats = nullptr;
  /// Cycle-side matcher counters (probes, exclusions, consolidation);
  /// the compile-side counters live in the plane's shards.
  MatcherStats* cycle_matcher_stats = nullptr;
  uint64_t* last_update_seq = nullptr;
  /// QiUrlMap epoch snapshot from the last ingest scan; lets the next
  /// scan skip ReadSince when the row set is untouched. May be null
  /// (always scan); nullopt forces the next scan (e.g. after Restore).
  std::optional<uint64_t>* last_map_epoch = nullptr;
  /// QiUrlMap removals_epoch() snapshot from the last retire sweep; an
  /// unchanged epoch proves no instance lost its last page since, so
  /// the per-instance page-count sweep is skipped. May be null (always
  /// sweep); nullopt forces the next sweep (e.g. after Restore, when
  /// recovered instances may reference pages a rebuilt map never had).
  std::optional<uint64_t>* last_retire_epoch = nullptr;
  /// Executes one polling query against the configured target. Must be
  /// safe to call from pool workers.
  std::function<Result<db::QueryResult>(const std::string&)> execute_poll;
  /// Reads this planning point's overload signals (unused when
  /// `overload` is null).
  std::function<OverloadSignals()> observe_signals;
};

/// Runs fn(i) for i in [0, n): inline when `pool` is null or n <= 1,
/// sharded across the pool otherwise.
inline void RunStageParallel(ThreadPool* pool, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (pool == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->ParallelFor(n, fn);
}

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_CYCLE_H_
