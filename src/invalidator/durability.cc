#include "invalidator/durability.h"

#include <utility>
#include <vector>

#include "common/strings.h"

namespace cacheportal::invalidator {

DurabilityCoordinator::DurabilityCoordinator(Invalidator* invalidator,
                                             DurabilityOptions options)
    : invalidator_(invalidator),
      options_(std::move(options)),
      store_(options_.env != nullptr ? options_.env : PosixEnv::Default(),
             options_.dir, options_.store) {}

DurabilityCoordinator::~DurabilityCoordinator() {
  if (opened_) {
    invalidator_->SetMetadataMutationObserver(nullptr);
    invalidator_->SetStorageReporter(nullptr);
  }
}

Status DurabilityCoordinator::Open() {
  if (opened_) {
    return Status::InvalidArgument("durability coordinator already open");
  }
  storage::RecoveredState recovered;
  CACHEPORTAL_RETURN_NOT_OK(store_.Open(&recovered));
  if (!recovered.snapshot.empty()) {
    CACHEPORTAL_RETURN_NOT_OK(invalidator_->Restore(recovered.snapshot));
  }
  // Commit-granular replay: registrations/retirements buffer until their
  // cycle's kCommit proves the cycle completed. The tail past the last
  // commit is work the dead process never finished — its updates are
  // still in the update log and will simply be re-processed, so applying
  // half of it would double-count, not help.
  std::vector<std::pair<bool, const std::string*>> cycle_ops;
  for (const storage::WalRecord& record : recovered.records) {
    switch (record.type) {
      case storage::RecordType::kRegistration:
        cycle_ops.emplace_back(true, &record.payload);
        break;
      case storage::RecordType::kRetirement:
        cycle_ops.emplace_back(false, &record.payload);
        break;
      case storage::RecordType::kCommit: {
        for (const auto& [registered, sql] : cycle_ops) {
          if (registered) {
            invalidator_->QueueRestoredRegistration(*sql);
          } else {
            invalidator_->QueueRestoredRetirement(*sql);
          }
        }
        cycle_ops.clear();
        CACHEPORTAL_RETURN_NOT_OK(
            invalidator_->ApplyDurableDelta(record.payload));
        ++replayed_commits_;
        break;
      }
    }
  }
  discarded_tail_records_ = cycle_ops.size();
  durable_update_seq_.store(invalidator_->consumed_update_seq(),
                            std::memory_order_release);
  invalidator_->SetMetadataMutationObserver(
      [this](bool registered, const std::string& sql) {
        OnMutation(registered, sql);
      });
  invalidator_->SetStorageReporter([this] { return Report(); });
  opened_ = true;
  return Status::OK();
}

void DurabilityCoordinator::FinishRecovery() {
  suppress_journal_.store(true, std::memory_order_release);
  invalidator_->ApplyPendingRestore();
  suppress_journal_.store(false, std::memory_order_release);
}

void DurabilityCoordinator::OnMutation(bool registered,
                                       const std::string& sql) {
  if (suppress_journal_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(journal_mu_);
  if (!journal_status_.ok()) return;  // Already failed; latched.
  Status appended = store_.Append(registered
                                      ? storage::RecordType::kRegistration
                                      : storage::RecordType::kRetirement,
                                  sql);
  if (!appended.ok()) journal_status_ = appended;
}

Result<CycleReport> DurabilityCoordinator::RunCycle() {
  if (!opened_) {
    return Status::InvalidArgument("durability coordinator not opened");
  }
  {
    std::lock_guard<std::mutex> lock(journal_mu_);
    CACHEPORTAL_RETURN_NOT_OK(journal_status_);
  }
  // Drain staged restore work before the cycle AND before taking
  // journal_mu_ below: ApplyPendingRestore fires the (suppressed)
  // observer, and Checkpoint() inside a snapshot would otherwise apply
  // it while we hold the journal lock the observer wants.
  FinishRecovery();
  CACHEPORTAL_ASSIGN_OR_RETURN(CycleReport report, invalidator_->RunCycle());
  std::lock_guard<std::mutex> lock(journal_mu_);
  CACHEPORTAL_RETURN_NOT_OK(CommitCycleLocked());
  return report;
}

Status DurabilityCoordinator::CommitCycleLocked() {
  // A failed registration append means the WAL is missing an op from
  // this cycle; a commit marker after the gap would make recovery trust
  // an incomplete journal. Refuse instead.
  CACHEPORTAL_RETURN_NOT_OK(journal_status_);
  std::string delta = invalidator_->EncodeDurableDelta(&baseline_);
  CACHEPORTAL_RETURN_NOT_OK(
      store_.Append(storage::RecordType::kCommit, delta));
  if (options_.sync_every_commit) {
    CACHEPORTAL_RETURN_NOT_OK(store_.Sync());
    durable_update_seq_.store(invalidator_->consumed_update_seq(),
                              std::memory_order_release);
  }
  ++cycles_since_snapshot_;
  if (options_.snapshot_every_cycles > 0 &&
      cycles_since_snapshot_ >= options_.snapshot_every_cycles) {
    CACHEPORTAL_RETURN_NOT_OK(SnapshotLocked());
  }
  return Status::OK();
}

Status DurabilityCoordinator::Snapshot() {
  if (!opened_) {
    return Status::InvalidArgument("durability coordinator not opened");
  }
  FinishRecovery();  // Checkpoint() must not fire the observer under us.
  std::lock_guard<std::mutex> lock(journal_mu_);
  return SnapshotLocked();
}

Status DurabilityCoordinator::SnapshotLocked() {
  // Rotate first: journal records racing the snapshot land in the new
  // segment, which stays in the replay chain, so nothing between
  // Checkpoint() and InstallSnapshot() can be lost.
  CACHEPORTAL_RETURN_NOT_OK(store_.RotateWal());
  std::string payload = invalidator_->Checkpoint();
  CACHEPORTAL_RETURN_NOT_OK(store_.InstallSnapshot(payload));
  cycles_since_snapshot_ = 0;
  // RotateWal synced everything the checkpoint captured.
  durable_update_seq_.store(invalidator_->consumed_update_seq(),
                            std::memory_order_release);
  return Status::OK();
}

Status DurabilityCoordinator::journal_status() const {
  std::lock_guard<std::mutex> lock(journal_mu_);
  return journal_status_;
}

std::string DurabilityCoordinator::Report() const {
  std::string out = store_.Report();
  std::lock_guard<std::mutex> lock(journal_mu_);
  out += StrCat(" replayed-commits=", replayed_commits_,
                " discarded-tail=", discarded_tail_records_,
                " durable-seq=",
                durable_update_seq_.load(std::memory_order_acquire));
  if (!journal_status_.ok()) {
    out += StrCat(" JOURNAL-FAILED: ", journal_status_.message());
  }
  return out;
}

}  // namespace cacheportal::invalidator
