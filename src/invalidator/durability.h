#ifndef CACHEPORTAL_INVALIDATOR_DURABILITY_H_
#define CACHEPORTAL_INVALIDATOR_DURABILITY_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/env.h"
#include "common/status.h"
#include "invalidator/cycle.h"
#include "invalidator/invalidator.h"
#include "storage/metadata_store.h"

namespace cacheportal::invalidator {

struct DurabilityOptions {
  /// Directory for the MANIFEST, WAL segments, and snapshots. Created if
  /// missing.
  std::string dir;
  /// Filesystem to write through; nullptr means the real one
  /// (PosixEnv::Default()). Tests inject a SimEnv to crash at will.
  Env* env = nullptr;
  /// Install a fresh snapshot every N committed cycles (0 = only when
  /// Snapshot() is called explicitly). Bounds the WAL suffix recovery
  /// must replay: restart cost is O(records since the last snapshot).
  uint64_t snapshot_every_cycles = 64;
  /// fsync the WAL at every cycle commit. Turning this off trades the
  /// tail of un-synced cycles for fewer fsyncs; recovery still lands on
  /// the last durable commit boundary either way.
  bool sync_every_commit = true;
  storage::StoreOptions store;
};

/// Wires an Invalidator to a storage::DurableMetadataStore so its
/// resumption state survives crashes:
///
///   - every fresh registration/retirement journals to the WAL through
///     the metadata plane's mutation observer, as it happens;
///   - every completed cycle appends a kCommit record carrying the
///     invalidator's durable delta (cursors, counters, changed sink
///     state) and fsyncs — the commit marker makes recovery
///     cycle-atomic: a crash mid-cycle replays to the previous boundary,
///     and the uncommitted tail is discarded;
///   - periodically the WAL rotates, Checkpoint() becomes the new
///     snapshot, and covered segments are garbage-collected.
///
/// Recovery (Open) is the reverse: restore the newest snapshot, replay
/// the WAL suffix commit by commit (registrations/retirements stage
/// lazily; each kCommit applies its delta), and count — not crash on —
/// whatever the store quarantined.
///
/// Install contract: construct the Invalidator, AddSink in the same
/// order as the dead process, then Open() before serving traffic —
/// replay applies sink state by index, and registrations racing the
/// recovery window would miss the journal.
///
/// Threading: Open/RunCycle/Snapshot/FinishRecovery are cycle-thread
/// only. The journaling observer fires from any registering thread; one
/// internal mutex serializes it against the commit path.
class DurabilityCoordinator {
 public:
  /// `invalidator` is borrowed and must outlive the coordinator.
  DurabilityCoordinator(Invalidator* invalidator, DurabilityOptions options);

  /// Detaches the observer and reporter seams.
  ~DurabilityCoordinator();

  DurabilityCoordinator(const DurabilityCoordinator&) = delete;
  DurabilityCoordinator& operator=(const DurabilityCoordinator&) = delete;

  /// Recovers the directory into the invalidator and attaches the
  /// journaling seams. O(snapshot types + WAL suffix): instance SQLs
  /// stage for lazy re-registration, drained by FinishRecovery or the
  /// first RunCycle.
  Status Open();

  /// Drains the invalidator's staged restore work with journaling
  /// suppressed (replayed registrations are already in the WAL or the
  /// snapshot; re-journaling them would write the full registry back out
  /// every restart). RunCycle calls this; tests call it to compare
  /// recovered state without running a cycle.
  void FinishRecovery();

  /// One invalidation cycle followed by its durable commit. Fails fast
  /// if a journaling append ever failed (the WAL is missing a
  /// registration, so a commit marker would persist a lie).
  Result<CycleReport> RunCycle();

  /// Rotate + checkpoint + install, immediately.
  Status Snapshot();

  /// Update-log position covered by durable state — everything at or
  /// below it survives a crash, so the update log may trim through it.
  uint64_t durable_update_seq() const {
    return durable_update_seq_.load(std::memory_order_acquire);
  }

  /// First journaling failure, latched (OK while healthy).
  Status journal_status() const;

  const storage::DurableMetadataStore& store() const { return store_; }

  /// One-line summary (store counters + recovery counts) — installed as
  /// the invalidator's storage reporter.
  std::string Report() const;

 private:
  /// The metadata plane's mutation observer: journal one op.
  void OnMutation(bool registered, const std::string& sql);
  /// Caller holds journal_mu_ and has drained pending restore work.
  Status CommitCycleLocked();
  Status SnapshotLocked();

  Invalidator* invalidator_;
  DurabilityOptions options_;
  storage::DurableMetadataStore store_;
  bool opened_ = false;

  /// True while recovery replay drains — the observer drops mutations
  /// instead of re-journaling them.
  std::atomic<bool> suppress_journal_{false};
  std::atomic<uint64_t> durable_update_seq_{0};

  /// Serializes the observer's appends against the commit/snapshot path
  /// and guards the latched status + counters below.
  mutable std::mutex journal_mu_;
  Status journal_status_ = Status::OK();
  Invalidator::DurableDeltaBaseline baseline_;
  uint64_t cycles_since_snapshot_ = 0;
  uint64_t replayed_commits_ = 0;
  uint64_t discarded_tail_records_ = 0;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_DURABILITY_H_
