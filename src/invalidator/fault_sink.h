#ifndef CACHEPORTAL_INVALIDATOR_FAULT_SINK_H_
#define CACHEPORTAL_INVALIDATOR_FAULT_SINK_H_

#include "common/fault_injector.h"
#include "common/status.h"
#include "invalidator/invalidator.h"

namespace cacheportal::invalidator {

/// Wraps an InvalidationSink with a FaultInjector: the chaos layer the
/// reliability tests slide between a ReliableDeliveryQueue and a real
/// sink. Fault semantics per decision:
///
///   - drop:  the message is lost before reaching the sink; the caller
///            sees a failure and nothing was delivered.
///   - error: transient transport error; likewise nothing delivered.
///   - delay: the message reaches the sink but its acknowledgement is
///            lost — the classic at-least-once ambiguity. The caller
///            sees a failure and will redeliver; idempotent ejects make
///            that safe.
///   - malform is not meaningful at this layer (the sink API carries
///            parsed messages); use net::WrapWireHandlerWithFaults to
///            corrupt wire bytes.
class FaultInjectingSink : public InvalidationSink {
 public:
  /// Neither pointer is owned.
  FaultInjectingSink(InvalidationSink* wrapped, FaultInjector* faults)
      : wrapped_(wrapped), faults_(faults) {}

  Status SendInvalidation(const http::HttpRequest& eject_message,
                          const std::string& cache_key) override {
    if (faults_->ShouldDrop()) {
      return Status::Internal("fault injected: message dropped");
    }
    if (faults_->ShouldError()) {
      return Status::Internal("fault injected: transient transport error");
    }
    if (faults_->ShouldDelay().has_value()) {
      // Delivered, but the ack never comes back.
      (void)wrapped_->SendInvalidation(eject_message, cache_key);
      return Status::Internal("fault injected: acknowledgement lost");
    }
    return wrapped_->SendInvalidation(eject_message, cache_key);
  }

 private:
  InvalidationSink* wrapped_;
  FaultInjector* faults_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_FAULT_SINK_H_
