#include "invalidator/impact.h"

#include <optional>
#include <set>

#include "common/strings.h"
#include "sql/analyzer.h"

namespace cacheportal::invalidator {

namespace {

using sql::Expression;
using sql::ExpressionPtr;

/// Builds `left OR right` (null-tolerant).
ExpressionPtr DisjoinExprs(ExpressionPtr left, ExpressionPtr right) {
  if (left == nullptr) return right;
  if (right == nullptr) return left;
  return std::make_unique<sql::BinaryExpr>(sql::BinaryOp::kOr,
                                           std::move(left), std::move(right));
}

/// Builds the polling query for a residual condition: SELECT 1 FROM the
/// FROM entries still referenced by the residual WHERE residual LIMIT 1.
std::unique_ptr<sql::SelectStatement> BuildPollingQuery(
    const sql::SelectStatement& query, const std::string& removed_alias,
    ExpressionPtr residual) {
  auto poll = std::make_unique<sql::SelectStatement>();
  sql::SelectItem item;
  item.expr = std::make_unique<sql::LiteralExpr>(sql::Value::Int(1));
  item.alias = "hit";
  poll->items.push_back(std::move(item));

  // Keep FROM entries referenced by the residual; if the residual
  // references nothing (shouldn't happen), keep all but the removed one.
  std::set<std::string> referenced;
  if (residual != nullptr) {
    for (const std::string& t : sql::CollectTables(*residual)) {
      referenced.insert(AsciiToLower(t));
    }
  }
  for (const sql::TableRef& ref : query.from) {
    if (EqualsIgnoreCase(ref.EffectiveName(), removed_alias)) continue;
    if (referenced.empty() ||
        referenced.contains(AsciiToLower(ref.EffectiveName()))) {
      poll->from.push_back(ref);
    }
  }
  poll->where = std::move(residual);
  poll->limit = 1;
  return poll;
}

}  // namespace

Result<ImpactResult> ImpactAnalyzer::AnalyzeTuple(
    const sql::SelectStatement& query, const std::string& table,
    const db::Row& tuple) const {
  return AnalyzeDelta(query, table, {tuple});
}

Result<ImpactResult> ImpactAnalyzer::AnalyzeDelta(
    const sql::SelectStatement& query, const std::string& table,
    const std::vector<db::Row>& tuples) const {
  std::vector<const db::Row*> view;
  view.reserve(tuples.size());
  for (const db::Row& tuple : tuples) view.push_back(&tuple);
  return AnalyzeDelta(query, table, view);
}

Result<ImpactResult> ImpactAnalyzer::AnalyzeDelta(
    const sql::SelectStatement& query, const std::string& table,
    const std::vector<const db::Row*>& tuples) const {
  ImpactResult result;
  if (tuples.empty()) return result;  // kUnaffected.

  // FROM occurrences of the updated table.
  std::vector<const sql::TableRef*> occurrences;
  for (const sql::TableRef& ref : query.from) {
    if (EqualsIgnoreCase(ref.table, table)) occurrences.push_back(&ref);
  }
  if (occurrences.empty()) return result;  // kUnaffected.

  const db::Table* updated = database_->FindTable(table);
  if (updated == nullptr) {
    return Status::NotFound(StrCat("table ", table));
  }
  const db::TableSchema& schema = updated->schema();
  for (const db::Row* tuple : tuples) {
    CACHEPORTAL_RETURN_NOT_OK(schema.ValidateRow(*tuple));
  }

  // A query without a WHERE clause returns every tuple: any insert or
  // delete on a FROM table affects it (for single-table queries exactly;
  // for products, conservatively).
  if (query.where == nullptr) {
    result.kind = ImpactKind::kAffected;
    return result;
  }

  // Qualify unqualified columns so substitution is by (alias, column).
  auto owner_of =
      [&](const std::string& column) -> std::optional<std::string> {
    std::optional<std::string> owner;
    for (const sql::TableRef& ref : query.from) {
      const db::Table* t = database_->FindTable(ref.table);
      if (t == nullptr) continue;
      if (t->schema().ColumnIndex(column).has_value()) {
        if (owner.has_value()) return std::nullopt;  // Ambiguous.
        owner = ref.EffectiveName();
      }
    }
    return owner;
  };
  ExpressionPtr qualified = sql::QualifyColumns(*query.where, owner_of);

  // Per-occurrence, per-tuple substitution. Verdicts combine as:
  // any TRUE -> affected outright; any residual -> needs polling (residuals
  // are OR-ed per occurrence); all FALSE/NULL -> unaffected.
  ExpressionPtr combined_residual;
  std::string residual_alias;
  for (const sql::TableRef* occ : occurrences) {
    for (const db::Row* tuple : tuples) {
      auto substituter =
          [&](const std::string& tbl,
              const std::string& col) -> std::optional<sql::Value> {
        if (!EqualsIgnoreCase(tbl, occ->EffectiveName())) {
          return std::nullopt;
        }
        std::optional<size_t> idx = schema.ColumnIndex(col);
        if (!idx.has_value()) return std::nullopt;
        return (*tuple)[*idx];
      };
      ExpressionPtr substituted =
          sql::SubstituteColumns(*qualified, substituter);
      sql::FoldResult folded = sql::FoldConstants(*substituted);
      switch (folded.outcome) {
        case sql::FoldOutcome::kTrue:
          result.kind = ImpactKind::kAffected;
          return result;
        case sql::FoldOutcome::kFalse:
        case sql::FoldOutcome::kNull:
          continue;  // This tuple cannot satisfy the condition.
        case sql::FoldOutcome::kResidual:
          if (!combined_residual) residual_alias = occ->EffectiveName();
          if (EqualsIgnoreCase(residual_alias, occ->EffectiveName())) {
            combined_residual = DisjoinExprs(std::move(combined_residual),
                                             std::move(folded.residual));
          } else {
            // Residuals against different aliases cannot share one
            // polling query; be conservative.
            result.kind = ImpactKind::kAffected;
            return result;
          }
          break;
      }
    }
  }

  if (combined_residual == nullptr) return result;  // kUnaffected.

  result.kind = ImpactKind::kNeedsPolling;
  result.polling_query = BuildPollingQuery(query, residual_alias,
                                           std::move(combined_residual));
  return result;
}

}  // namespace cacheportal::invalidator
