#ifndef CACHEPORTAL_INVALIDATOR_IMPACT_H_
#define CACHEPORTAL_INVALIDATOR_IMPACT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "db/table.h"
#include "sql/ast.h"

namespace cacheportal::invalidator {

/// Verdict of analyzing one update tuple against one query instance.
enum class ImpactKind {
  /// The update provably cannot change the query's result: the WHERE
  /// condition with the tuple substituted folds to FALSE (or NULL).
  kUnaffected,
  /// The update provably changes (or may change, with no way to refine
  /// without polling being necessary) the result: substituted condition
  /// folds to TRUE.
  kAffected,
  /// The substituted condition still references other relations (a join);
  /// a polling query must be issued to decide (Example 4.1 of the paper).
  kNeedsPolling,
};

/// Result of impact analysis. When `kind == kNeedsPolling`,
/// `polling_query` holds the query to issue: a non-empty result means the
/// update affects the query instance.
struct ImpactResult {
  ImpactKind kind = ImpactKind::kUnaffected;
  std::unique_ptr<sql::SelectStatement> polling_query;
};

/// The invalidator's condition analysis (Section 4, Example 4.1).
/// Decides how an inserted or deleted tuple of `table` affects the result
/// of `query`:
///
///  1. If `table` does not appear in the query's FROM list: unaffected.
///  2. Otherwise, for each FROM occurrence of `table`, substitute the
///     tuple's attribute values into the WHERE condition and constant-fold:
///     - FALSE/NULL everywhere  -> unaffected,
///     - TRUE for an occurrence -> affected,
///     - a residual condition   -> needs polling; the polling query
///       selects from the remaining relations with the residual as its
///       WHERE clause (LIMIT 1 — only emptiness matters).
///  3. A query with no WHERE clause over `table` is always affected.
///
/// Deletions use identical logic: a deleted tuple that (possibly)
/// satisfied the condition may have contributed result rows.
class ImpactAnalyzer {
 public:
  /// `database` supplies table schemas for column resolution (not owned).
  explicit ImpactAnalyzer(const db::Database* database)
      : database_(database) {}

  /// Analyzes the impact of `tuple` (inserted into or deleted from
  /// `table`) on `query`.
  Result<ImpactResult> AnalyzeTuple(const sql::SelectStatement& query,
                                    const std::string& table,
                                    const db::Row& tuple) const;

  /// Batched form (the paper's group processing, Section 4.2.1): analyzes
  /// all `tuples` of one delta against `query`, OR-ing the residuals of
  /// tuples that individually need polling into a single polling query.
  Result<ImpactResult> AnalyzeDelta(const sql::SelectStatement& query,
                                    const std::string& table,
                                    const std::vector<db::Row>& tuples) const;

  /// Zero-copy form over borrowed rows: the invalidation cycle builds one
  /// merged view of a table's delta per cycle (and the bind index narrows
  /// it per instance) instead of copying rows per instance. Analyzing a
  /// subset of a delta's tuples yields the same verdict and polling query
  /// as the full delta whenever the dropped tuples fold FALSE/NULL — they
  /// contribute nothing to the OR-ed residual.
  Result<ImpactResult> AnalyzeDelta(
      const sql::SelectStatement& query, const std::string& table,
      const std::vector<const db::Row*>& tuples) const;

 private:
  const db::Database* database_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_IMPACT_H_
