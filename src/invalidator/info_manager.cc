#include "invalidator/info_manager.h"

#include <functional>
#include <mutex>

#include "common/strings.h"

namespace cacheportal::invalidator {

void JoinIndex::AddRow(const db::Row& row) {
  if (column_idx_ >= row.size()) return;
  counts_[row[column_idx_]]++;
}

void JoinIndex::RemoveRow(const db::Row& row) {
  if (column_idx_ >= row.size()) return;
  auto it = counts_.find(row[column_idx_]);
  if (it == counts_.end()) return;
  if (--it->second <= 0) counts_.erase(it);
}

bool JoinIndex::Contains(const sql::Value& value) const {
  return counts_.contains(value);
}

Status InformationManager::CreateJoinIndex(const std::string& table,
                                           const std::string& column) {
  const db::Table* t = database_->FindTable(table);
  if (t == nullptr) return Status::NotFound(StrCat("table ", table));
  std::optional<size_t> idx = t->schema().ColumnIndex(column);
  if (!idx.has_value()) {
    return Status::NotFound(StrCat("column ", column, " in ", table));
  }
  auto key = std::make_pair(AsciiToLower(t->schema().name()),
                            AsciiToLower(column));
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (indexes_.contains(key)) {
    return Status::AlreadyExists(StrCat("join index on ", table, ".", column));
  }
  JoinIndex index(t->schema().name(), column, *idx);
  for (const auto& [id, row] : t->rows()) index.AddRow(row);
  indexes_.emplace(std::move(key), std::move(index));
  return Status::OK();
}

bool InformationManager::HasIndex(const std::string& table,
                                  const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return indexes_.contains(
      std::make_pair(AsciiToLower(table), AsciiToLower(column)));
}

void InformationManager::ApplyDeltas(const db::DeltaSet& deltas) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [key, index] : indexes_) {
    const db::TableDelta& delta = deltas.ForTable(index.table());
    for (const db::Row& row : delta.inserts) index.AddRow(row);
    for (const db::Row& row : delta.deletes) index.RemoveRow(row);
  }
}

namespace {

/// Extracts (column, literal) from an equality `col = lit` / `lit = col`;
/// the column must belong (by qualifier or schema) to `table_name`.
std::optional<std::pair<std::string, sql::Value>> AsColumnEquality(
    const sql::Expression& expr, const std::string& table_alias) {
  if (expr.kind() != sql::ExprKind::kBinary) return std::nullopt;
  const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
  if (bin.op() != sql::BinaryOp::kEq) return std::nullopt;
  const sql::Expression* col = nullptr;
  const sql::Expression* lit = nullptr;
  if (bin.left().kind() == sql::ExprKind::kColumnRef &&
      bin.right().kind() == sql::ExprKind::kLiteral) {
    col = &bin.left();
    lit = &bin.right();
  } else if (bin.right().kind() == sql::ExprKind::kColumnRef &&
             bin.left().kind() == sql::ExprKind::kLiteral) {
    col = &bin.right();
    lit = &bin.left();
  } else {
    return std::nullopt;
  }
  const auto& ref = static_cast<const sql::ColumnRefExpr&>(*col);
  if (!ref.table().empty() && !EqualsIgnoreCase(ref.table(), table_alias)) {
    return std::nullopt;
  }
  return std::make_pair(ref.column(),
                        static_cast<const sql::LiteralExpr&>(*lit).value());
}

/// Flattens top-level ORs.
void FlattenDisjuncts(const sql::Expression& expr,
                      std::vector<const sql::Expression*>* out) {
  if (expr.kind() == sql::ExprKind::kBinary) {
    const auto& bin = static_cast<const sql::BinaryExpr&>(expr);
    if (bin.op() == sql::BinaryOp::kOr) {
      FlattenDisjuncts(bin.left(), out);
      FlattenDisjuncts(bin.right(), out);
      return;
    }
  }
  out->push_back(&expr);
}

}  // namespace

std::optional<bool> InformationManager::AnswerPoll(
    const sql::SelectStatement& poll) const {
  // Only single-relation polls are index-answerable: a disjunct matching
  // one row of T composes across rows (exists distributes over OR), which
  // is not true for conjunctions or joins.
  if (poll.from.size() != 1 || poll.where == nullptr) return std::nullopt;
  const sql::TableRef& ref = poll.from[0];
  std::string table_key = AsciiToLower(ref.table);
  std::shared_lock<std::shared_mutex> lock(mu_);

  std::vector<const sql::Expression*> disjuncts;
  FlattenDisjuncts(*poll.where, &disjuncts);
  bool any_true = false;
  for (const sql::Expression* d : disjuncts) {
    auto eq = AsColumnEquality(*d, ref.EffectiveName());
    if (!eq.has_value()) return std::nullopt;  // Can't decide soundly.
    auto it =
        indexes_.find(std::make_pair(table_key, AsciiToLower(eq->first)));
    if (it == indexes_.end()) return std::nullopt;  // Column not indexed.
    if (it->second.Contains(eq->second)) {
      any_true = true;
      break;
    }
  }
  return any_true;
}

}  // namespace cacheportal::invalidator
