#ifndef CACHEPORTAL_INVALIDATOR_INFO_MANAGER_H_
#define CACHEPORTAL_INVALIDATOR_INFO_MANAGER_H_

#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "db/database.h"
#include "db/delta.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace cacheportal::invalidator {

/// A join index maintained inside the invalidator (Section 4's "external
/// indexes kept within the invalidator, that can be quickly accessed"):
/// the multiset of values of one column of one relation, kept current from
/// the update-log deltas. With the index in place, a polling query whose
/// residual is `<literal> = <col>` can be answered without touching the
/// DBMS at all.
class JoinIndex {
 public:
  JoinIndex(std::string table, std::string column, size_t column_idx)
      : table_(std::move(table)),
        column_(std::move(column)),
        column_idx_(column_idx) {}

  const std::string& table() const { return table_; }
  const std::string& column() const { return column_; }

  void AddRow(const db::Row& row);
  void RemoveRow(const db::Row& row);

  bool Contains(const sql::Value& value) const;
  size_t size() const { return counts_.size(); }

 private:
  std::string table_;
  std::string column_;
  size_t column_idx_;
  std::unordered_map<sql::Value, int64_t, sql::ValueHash> counts_;
};

/// The information management module (Section 4.3): maintains auxiliary
/// data structures — here, join indexes — that the invalidation module
/// consults before generating DBMS polling traffic, and keeps them in
/// sync with the update stream.
///
/// Thread-safety: the read paths (AnswerPoll, HasIndex) take a shared
/// lock and may run concurrently from the invalidator's analysis workers;
/// the mutating paths (CreateJoinIndex, ApplyDeltas) take the lock
/// exclusively and belong to the cycle's serial phases.
class InformationManager {
 public:
  /// `database` is used to bootstrap indexes from current table contents
  /// (not owned).
  explicit InformationManager(const db::Database* database)
      : database_(database) {}

  /// Starts maintaining an index on `table`.`column`, initialized from
  /// the table's current contents.
  Status CreateJoinIndex(const std::string& table, const std::string& column);

  bool HasIndex(const std::string& table, const std::string& column) const;
  size_t num_indexes() const {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return indexes_.size();
  }

  /// Folds one synchronization interval's deltas into the indexes (the
  /// daemon process of Section 4.3).
  void ApplyDeltas(const db::DeltaSet& deltas);

  /// Attempts to answer a polling query from the maintained indexes.
  /// Succeeds when the query reads a single indexed relation and its
  /// WHERE clause is a conjunction of `literal OP col` / `col OP literal`
  /// predicates with at least one indexed equality. Returns nullopt when
  /// the indexes cannot decide (the caller then polls the DBMS).
  std::optional<bool> AnswerPoll(const sql::SelectStatement& poll) const;

 private:
  const db::Database* database_;
  // Shared for AnswerPoll/HasIndex, exclusive for mutations.
  mutable std::shared_mutex mu_;
  // (lower table, lower column) -> index.
  std::map<std::pair<std::string, std::string>, JoinIndex> indexes_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_INFO_MANAGER_H_
