#include "invalidator/invalidator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "invalidator/stages.h"
#include "sql/template.h"

namespace cacheportal::invalidator {

Invalidator::Invalidator(db::Database* database, sniffer::QiUrlMap* map,
                         const Clock* clock, InvalidatorOptions options)
    : database_(database),
      map_(map),
      clock_(clock),
      options_(options),
      plane_(database, options.metadata_shards,
             StrategyConfig::FromOptions(options)),
      info_(database),
      scheduler_(options.max_polls_per_cycle) {
  policy_.SetThresholds(options_.thresholds);
  if (options_.polling_cache_capacity > 0) {
    polling_cache_ = std::make_unique<PollingDataCache>(
        database_, options_.polling_cache_capacity);
  }
  if (options_.worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.overload.enabled) {
    overload_ = std::make_unique<OverloadController>(clock_,
                                                     options_.overload);
  }
  // Attach at the database's current position: updates that committed
  // before CachePortal was deployed predate every cached page.
  last_update_seq_ = database_->update_log().LastSeq();
}

void Invalidator::AddSink(InvalidationSink* sink) { sinks_.push_back(sink); }

Status Invalidator::RegisterQueryType(const std::string& name,
                                      const std::string& parameterized_sql) {
  return plane_.RegisterType(name, parameterized_sql);
}

Status Invalidator::RegisterInstance(const std::string& sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(const QueryInstance* instance,
                               plane_.RegisterInstance(sql));
  (void)instance;
  return Status::OK();
}

Status Invalidator::CreateJoinIndex(const std::string& table,
                                    const std::string& column) {
  return info_.CreateJoinIndex(table, column);
}

bool Invalidator::IsQuerySqlCacheable(const std::string& sql_text) const {
  const QueryInstance* instance = plane_.FindInstance(sql_text);
  uint64_t type_id = 0;
  if (instance != nullptr) {
    type_id = instance->type_id;
  } else {
    // The instance may have been retired with its pages; its query type
    // (and the type's policy verdict) outlives it.
    Result<sql::QueryTemplate> tmpl = sql::ExtractTemplateFromSql(sql_text);
    if (!tmpl.ok()) return true;  // Unknown queries default to yes.
    type_id = tmpl->type_id;
  }
  const QueryType* type = plane_.FindType(type_id);
  if (type == nullptr) return true;
  return type->cacheable;
}

MatcherStats Invalidator::matcher_stats() const {
  MatcherStats merged = cycle_matcher_stats_;
  MatcherStats compile = plane_.CompileStats();
  merged.types_compiled = compile.types_compiled;
  merged.types_handled = compile.types_handled;
  merged.fallback_reasons = compile.fallback_reasons;
  return merged;
}

std::string Invalidator::StatsReport() const {
  std::string out = StrCat(
      "invalidator: cycles=", stats_.cycles,
      " updates=", stats_.updates_processed,
      " checks=", stats_.instance_checks,
      " affected=", stats_.affected_immediately,
      " unaffected=", stats_.unaffected, " polls=", stats_.polls_issued,
      " idx-answered=", stats_.polls_answered_by_index,
      " poll-hits=", stats_.poll_hits,
      " conservative=", stats_.conservative_invalidations,
      " emergency-flushes=", stats_.emergency_flushes,
      " pages-invalidated=", stats_.pages_invalidated,
      " messages-sent=", stats_.messages_sent,
      " send-failures=", stats_.send_failures, "\n");
  if (overload_ != nullptr) {
    out += StrCat("  ", overload_->Report(), "\n");
  }
  // Delivery health was invisible here while the queue quietly retried;
  // every observable sink now reports in line.
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* observable = dynamic_cast<const ObservableSink*>(sinks_[i]);
    if (observable == nullptr) continue;
    out += StrCat("  sink ", i, " ", observable->HealthReport(), "\n");
  }
  // Strategy census (DESIGN.md §16). Snapshotted BEFORE the ForEachType
  // walk below: TierAssignments locks shards one at a time, while the
  // walk holds every shard lock — calling TierOf from inside it would
  // self-deadlock. The census derives from the assigned tiers (persisted
  // ones included), never from live matcher counters, so a report taken
  // right after a v5 restore is byte-identical to the dead process's.
  std::map<uint64_t, TierDecision> tiers = plane_.TierAssignments();
  {
    size_t census[4] = {0, 0, 0, 0};
    std::map<std::string, size_t> demotions;
    for (const auto& [tid, decision] : tiers) {
      (void)tid;
      census[static_cast<size_t>(decision.tier)]++;
      if (!decision.reason.empty()) ++demotions[decision.reason];
    }
    out += StrCat("  strategy: exact=", census[0],
                  " compiled-batch=", census[1], " interpret=", census[2],
                  " poll=", census[3], "\n");
    if (!demotions.empty()) {
      out += "  strategy-demotions:";
      for (const auto& [reason, count] : demotions) {
        out += StrCat(" '", reason, "'=", count);
      }
      out += "\n";
    }
  }
  // The plane's merged iteration is ascending type_id across all shards,
  // so this block is byte-identical at any shard count. Types whose
  // persisted statistics are still staged (restore ran, the next cycle
  // hasn't) report the staged values, so a report taken right after
  // recovery matches the one the dead process would have produced.
  plane_.ForEachType([&](const QueryType& type) {
    const QueryTypeStats* ts = &type.stats;
    bool cacheable = type.cacheable;
    auto it = pending_type_overrides_.find(type.type_id);
    if (it != pending_type_overrides_.end()) {
      ts = &it->second.stats;
      cacheable = it->second.cacheable;
    }
    auto tier_it = tiers.find(type.type_id);
    out += StrCat("  type '", type.name, "'",
                  cacheable ? "" : " [non-cacheable]",
                  ": instances=", ts->instances_seen, " checks=", ts->checks,
                  " affected=", ts->affected, " polls=", ts->polling_queries,
                  " inval-ratio=", ts->InvalidationRatio(),
                  " avg-time-us=", ts->AvgInvalidationTime(),
                  " max-time-us=", ts->max_invalidation_time, " tier=",
                  tier_it != tiers.end() ? StrategyTierName(tier_it->second.tier)
                                         : "unassigned",
                  "\n");
  });
  if (storage_reporter_ != nullptr) {
    out += StrCat("  ", storage_reporter_(), "\n");
  }
  return out;
}

namespace {

/// Checkpoint framing. Sink states are opaque bytes (they may contain
/// newlines and serialized HTTP), so they travel as length-prefixed
/// blocks rather than lines.
///
/// v3 (current): per-shard QI/URL-map cursors.
///   cacheportal-invalidator-checkpoint 3
///   update_seq N
///   shards K
///   shard_map_id I CURSOR     (K lines, I in [0, K))
///   sink I LEN \n <LEN bytes> \n   (per checkpointable sink)
///   end
///
/// v4 (legacy, still restorable — the pre-tier snapshot payload): adds
/// the full registry — the plane-global type counter, the lifetime
/// counters, every type (statistics + cacheability + name + canonical
/// template text as length-prefixed blocks), and every live instance's
/// SQL — so restore needs no QI/URL-map rescan and the map cursors
/// restore to their persisted positions:
///   cacheportal-invalidator-checkpoint 4
///   update_seq N
///   shards K
///   shard_map_id I CURSOR         (K lines, I in [0, K))
///   type_counter N
///   stats <14 lifetime counters>
///   type TID CACHEABLE SEEN CHECKS AFFECTED POLLS TOTAL_US MAX_US
///        NAMELEN TMPLLEN \n <name> \n <template> \n   (per type)
///   instance LEN \n <sql> \n     (per live instance, scan order)
///   sink I LEN \n <LEN bytes> \n (per checkpointable sink)
///   end
///
/// v5 (current, the durable store's snapshot payload): the v4 grammar
/// with the type record widened by the strategy tier (DESIGN.md §16) —
/// TIER is the StrategyTier enum value (0 exact, 1 compiled-batch,
/// 2 interpret, 3 poll) or 4 for a type whose tier is still unassigned
/// (declared offline, no instance yet) — plus the demotion reason as a
/// third length-prefixed block:
///   type TID CACHEABLE SEEN CHECKS AFFECTED POLLS TOTAL_US MAX_US
///        TIER NAMELEN TMPLLEN REASONLEN
///        \n <name> \n <template> \n <reason> \n   (per type)
/// Restore installs the persisted tier eagerly (InstallTier) so a
/// StatsReport taken right after recovery prints the same census and
/// per-type tiers the dead process would have — tiers are pinned, never
/// re-derived from a possibly-drifted analyzer.
///
/// v1/v2 (legacy, still restorable): one `map_id N` line instead of the
/// shards/shard_map_id block — shard count 1 assumed, the single cursor
/// standing for the merged (minimum) position. On v1–v3 restore the
/// cursors rewind to zero (those blobs carry no registry, so live map
/// rows must re-register on the next scan).
constexpr char kCheckpointMagicV1[] = "cacheportal-invalidator-checkpoint 1";
constexpr char kCheckpointMagicV3[] = "cacheportal-invalidator-checkpoint 3";
constexpr char kCheckpointMagicV4[] = "cacheportal-invalidator-checkpoint 4";
constexpr char kCheckpointMagicV5[] = "cacheportal-invalidator-checkpoint 5";

/// The TIER field's "no tier assigned yet" sentinel (valid tiers 0..3).
constexpr uint64_t kTierUnassigned = 4;

/// Per-cycle durable delta (the WAL commit record's payload): cursors,
/// lifetime counters, and only the types/sinks that changed since the
/// last delta. Same line grammar as v4 minus the registry blocks.
constexpr char kDeltaMagicV1[] = "cacheportal-invalidator-delta 1";

std::string EncodeLifetimeStats(const InvalidatorStats& s) {
  return StrCat(s.cycles, " ", s.updates_processed, " ",
                s.instances_registered, " ", s.instance_checks, " ",
                s.affected_immediately, " ", s.unaffected, " ",
                s.polls_issued, " ", s.polls_answered_by_index, " ",
                s.poll_hits, " ", s.conservative_invalidations, " ",
                s.emergency_flushes, " ", s.pages_invalidated, " ",
                s.messages_sent, " ", s.send_failures);
}

/// Parses the 14 counters from `fields[offset..offset+13]`.
Status ParseLifetimeStats(const std::vector<std::string>& fields,
                          size_t offset, InvalidatorStats* out) {
  uint64_t* slots[14] = {
      &out->cycles,          &out->updates_processed,
      &out->instances_registered, &out->instance_checks,
      &out->affected_immediately, &out->unaffected,
      &out->polls_issued,    &out->polls_answered_by_index,
      &out->poll_hits,       &out->conservative_invalidations,
      &out->emergency_flushes, &out->pages_invalidated,
      &out->messages_sent,   &out->send_failures};
  for (size_t i = 0; i < 14; ++i) {
    Result<uint64_t> value = ParseUint64(fields[offset + i]);
    if (!value.ok()) {
      return Status::ParseError(
          StrCat("bad lifetime counter: ", fields[offset + i]));
    }
    *slots[i] = *value;
  }
  return Status::OK();
}

std::string EncodeTypeStats(const QueryTypeStats& ts) {
  return StrCat(ts.instances_seen, " ", ts.checks, " ", ts.affected, " ",
                ts.polling_queries, " ", ts.total_invalidation_time, " ",
                ts.max_invalidation_time);
}

/// Parses CACHEABLE + the 6 type counters from `fields[offset..offset+6]`.
Status ParseTypeStats(const std::vector<std::string>& fields, size_t offset,
                      bool* cacheable, QueryTypeStats* out) {
  Result<uint64_t> flag = ParseUint64(fields[offset]);
  if (!flag.ok() || *flag > 1) {
    return Status::ParseError(
        StrCat("bad cacheability flag: ", fields[offset]));
  }
  *cacheable = (*flag == 1);
  uint64_t values[6];
  for (size_t i = 0; i < 6; ++i) {
    Result<uint64_t> value = ParseUint64(fields[offset + 1 + i]);
    if (!value.ok()) {
      return Status::ParseError(
          StrCat("bad type counter: ", fields[offset + 1 + i]));
    }
    values[i] = *value;
  }
  out->instances_seen = values[0];
  out->checks = values[1];
  out->affected = values[2];
  out->polling_queries = values[3];
  out->total_invalidation_time = static_cast<Micros>(values[4]);
  out->max_invalidation_time = static_cast<Micros>(values[5]);
  return Status::OK();
}

}  // namespace

std::string Invalidator::Checkpoint() {
  // Staged restore work must land first or the snapshot would persist
  // half-restored state (types without their queued instances).
  ApplyPendingRestore();
  std::vector<uint64_t> cursors = plane_.MapCursors();
  std::string out = StrCat(kCheckpointMagicV5, "\n",
                           "update_seq ", last_update_seq_, "\n",
                           "shards ", cursors.size(), "\n");
  for (size_t i = 0; i < cursors.size(); ++i) {
    out += StrCat("shard_map_id ", i, " ", cursors[i], "\n");
  }
  out += StrCat("type_counter ", plane_.TypeCount(), "\n");
  out += StrCat("stats ", EncodeLifetimeStats(stats_), "\n");
  // Snapshot before the walk: TierAssignments takes shard locks one at a
  // time, the walk below holds them all.
  std::map<uint64_t, TierDecision> tiers = plane_.TierAssignments();
  plane_.ForEachType([&](const QueryType& type) {
    auto tier_it = tiers.find(type.type_id);
    uint64_t tier = tier_it != tiers.end()
                        ? static_cast<uint64_t>(tier_it->second.tier)
                        : kTierUnassigned;
    const std::string reason =
        tier_it != tiers.end() ? tier_it->second.reason : std::string();
    out += StrCat("type ", type.type_id, " ", type.cacheable ? 1 : 0, " ",
                  EncodeTypeStats(type.stats), " ", tier, " ",
                  type.name.size(), " ", type.tmpl.canonical_text.size(), " ",
                  reason.size(), "\n");
    out += type.name;
    out += "\n";
    out += type.tmpl.canonical_text;
    out += "\n";
    out += reason;
    out += "\n";
  });
  plane_.ForEachInstance([&](const QueryType&, const QueryInstance& instance) {
    out += StrCat("instance ", instance.sql.size(), "\n");
    out += instance.sql;
    out += "\n";
  });
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* durable = dynamic_cast<const CheckpointableSink*>(sinks_[i]);
    if (durable == nullptr) continue;
    std::string state = durable->CheckpointState();
    out += StrCat("sink ", i, " ", state.size(), "\n");
    out += state;
    out += "\n";
  }
  out += "end\n";
  return out;
}

Status Invalidator::Restore(const std::string& checkpoint) {
  size_t pos = 0;
  auto next_line = [&checkpoint, &pos]() -> std::optional<std::string> {
    if (pos >= checkpoint.size()) return std::nullopt;
    size_t nl = checkpoint.find('\n', pos);
    if (nl == std::string::npos) nl = checkpoint.size();
    std::string line = checkpoint.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::optional<std::string> magic = next_line();
  if (!magic.has_value()) {
    return Status::ParseError("not an invalidator checkpoint");
  }
  int version = 0;
  if (*magic == kCheckpointMagicV1) {
    version = 1;
  } else if (*magic == kCheckpointMagicV3) {
    version = 3;
  } else if (*magic == kCheckpointMagicV4) {
    version = 4;
  } else if (*magic == kCheckpointMagicV5) {
    version = 5;
  } else {
    return Status::ParseError("not an invalidator checkpoint");
  }
  // Reads a length-prefixed block (followed by a separator '\n') at the
  // current position, for the v4 name/template/instance payloads and the
  // sink states of every version.
  auto next_block = [&checkpoint, &pos](uint64_t length,
                                        std::string* out) -> bool {
    if (pos + length > checkpoint.size()) return false;
    *out = checkpoint.substr(pos, length);
    pos += length + 1;
    return true;
  };
  uint64_t update_seq = 0;
  bool saw_update_seq = false;
  bool saw_end = false;
  std::optional<uint64_t> shard_count;
  std::map<uint64_t, uint64_t> shard_cursors;
  std::map<size_t, std::string> sink_states;
  // v4 staging: nothing mutates until the whole blob validates.
  std::optional<uint64_t> type_counter;
  bool saw_stats = false;
  InvalidatorStats staged_stats;
  struct StagedType {
    uint64_t type_id = 0;
    TypeOverride override_;
    uint64_t tier = kTierUnassigned;  // v4 blobs carry no tier.
    std::string name;
    std::string tmpl_text;
    std::string tier_reason;
  };
  std::vector<StagedType> staged_types;
  std::vector<std::string> staged_instances;
  while (std::optional<std::string> line = next_line()) {
    std::vector<std::string> fields = StrSplit(*line, ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    // All numeric fields parse strictly: a corrupt `update_seq` that
    // strtoull would coerce to 0 must fail loudly, not silently rewind
    // the cursor to the log's beginning (replaying every update), and a
    // garbled sink index must not misassign durable sink state. Record
    // types are version-gated: a v1 blob carrying shard records (or a v3
    // blob carrying `map_id`) is corrupt, not merely old.
    if (fields[0] == "update_seq" && fields.size() == 2) {
      Result<uint64_t> seq = ParseUint64(fields[1]);
      if (!seq.ok()) {
        return Status::ParseError(StrCat("bad update_seq in checkpoint: ",
                                         seq.status().message()));
      }
      update_seq = *seq;
      saw_update_seq = true;
    } else if (version == 1 && fields[0] == "map_id" && fields.size() == 2) {
      // The value is unused (restore rescans the map from zero, see the
      // header comment) but still validated: a garbled cursor means a
      // garbled checkpoint.
      Result<uint64_t> map_id = ParseUint64(fields[1]);
      if (!map_id.ok()) {
        return Status::ParseError(StrCat("bad map_id in checkpoint: ",
                                         map_id.status().message()));
      }
    } else if (version >= 3 && fields[0] == "shards" && fields.size() == 2) {
      Result<uint64_t> count = ParseUint64(fields[1]);
      if (!count.ok() || *count == 0) {
        return Status::ParseError(StrCat("bad shard count in checkpoint: ",
                                         fields[1]));
      }
      shard_count = *count;
    } else if (version >= 3 && fields[0] == "shard_map_id" &&
               fields.size() == 3) {
      Result<uint64_t> index = ParseUint64(fields[1]);
      Result<uint64_t> cursor = ParseUint64(fields[2]);
      if (!index.ok() || !cursor.ok()) {
        return Status::ParseError(
            StrCat("bad shard_map_id record in checkpoint: ", *line));
      }
      if (!shard_cursors.emplace(*index, *cursor).second) {
        return Status::ParseError(
            StrCat("duplicate shard_map_id record in checkpoint: ", *line));
      }
    } else if (version >= 4 && fields[0] == "type_counter" &&
               fields.size() == 2) {
      Result<uint64_t> count = ParseUint64(fields[1]);
      if (!count.ok()) {
        return Status::ParseError(
            StrCat("bad type_counter in checkpoint: ", fields[1]));
      }
      type_counter = *count;
    } else if (version >= 4 && fields[0] == "stats" && fields.size() == 15) {
      CACHEPORTAL_RETURN_NOT_OK(ParseLifetimeStats(fields, 1, &staged_stats));
      saw_stats = true;
    } else if (fields[0] == "type" &&
               ((version == 4 && fields.size() == 11) ||
                (version >= 5 && fields.size() == 13))) {
      // v4: type TID CACHEABLE <6 stats> NAMELEN TMPLLEN + 2 blocks.
      // v5: type TID CACHEABLE <6 stats> TIER NAMELEN TMPLLEN REASONLEN
      //     + 3 blocks (the third is the demotion reason, possibly empty).
      StagedType staged;
      size_t len_at = version >= 5 ? 10 : 9;
      Result<uint64_t> tid = ParseUint64(fields[1]);
      Result<uint64_t> name_len = ParseUint64(fields[len_at]);
      Result<uint64_t> tmpl_len = ParseUint64(fields[len_at + 1]);
      if (!tid.ok() || !name_len.ok() || !tmpl_len.ok()) {
        return Status::ParseError(
            StrCat("bad type record in checkpoint: ", *line));
      }
      staged.type_id = *tid;
      CACHEPORTAL_RETURN_NOT_OK(ParseTypeStats(
          fields, 2, &staged.override_.cacheable, &staged.override_.stats));
      std::optional<uint64_t> reason_len;
      if (version >= 5) {
        Result<uint64_t> tier = ParseUint64(fields[9]);
        Result<uint64_t> r_len = ParseUint64(fields[12]);
        if (!tier.ok() || *tier > kTierUnassigned || !r_len.ok()) {
          return Status::ParseError(
              StrCat("bad type tier record in checkpoint: ", *line));
        }
        staged.tier = *tier;
        reason_len = *r_len;
      }
      if (!next_block(*name_len, &staged.name) ||
          !next_block(*tmpl_len, &staged.tmpl_text) ||
          (reason_len.has_value() &&
           !next_block(*reason_len, &staged.tier_reason))) {
        return Status::ParseError("truncated type blocks in checkpoint");
      }
      // The template must still parse, and to the same identity: the
      // type_id is the template hash, so a mismatch means the blob's
      // bytes rotted (or the canonicalizer changed incompatibly) and the
      // registry built from it would route instances to the wrong shard.
      Result<sql::QueryTemplate> tmpl =
          sql::ExtractTemplateFromSql(staged.tmpl_text);
      if (!tmpl.ok()) {
        return Status::ParseError(
            StrCat("checkpoint template no longer parses: ",
                   tmpl.status().message()));
      }
      if (tmpl->type_id != staged.type_id) {
        return Status::ParseError(
            StrCat("checkpoint template hashes to ", tmpl->type_id,
                   " but the record claims ", staged.type_id));
      }
      staged_types.push_back(std::move(staged));
    } else if (version >= 4 && fields[0] == "instance" && fields.size() == 2) {
      Result<uint64_t> length = ParseUint64(fields[1]);
      if (!length.ok()) {
        return Status::ParseError(
            StrCat("bad instance record in checkpoint: ", *line));
      }
      // Framing-only validation: the SQL is NOT parsed here — that cost
      // is deferred to ApplyPendingRestore (the whole point of the lazy
      // rebuild), which logs and skips unparseable entries the way the
      // ingest scan does.
      std::string sql;
      if (!next_block(*length, &sql)) {
        return Status::ParseError("truncated instance block in checkpoint");
      }
      staged_instances.push_back(std::move(sql));
    } else if (fields[0] == "sink" && fields.size() == 3) {
      Result<uint64_t> index = ParseUint64(fields[1]);
      Result<uint64_t> length = ParseUint64(fields[2]);
      if (!index.ok() || !length.ok()) {
        return Status::ParseError(
            StrCat("bad sink record in checkpoint: ", *line));
      }
      std::string state;
      if (!next_block(*length, &state)) {
        return Status::ParseError("truncated sink state in checkpoint");
      }
      sink_states[static_cast<size_t>(*index)] = std::move(state);
    } else {
      return Status::ParseError(StrCat("unknown checkpoint record: ", *line));
    }
  }
  if (!saw_end || !saw_update_seq) {
    return Status::ParseError("truncated invalidator checkpoint");
  }
  if (version >= 3) {
    if (!shard_count.has_value()) {
      return Status::ParseError("checkpoint missing shard count");
    }
    if (shard_cursors.size() != *shard_count) {
      return Status::ParseError(
          StrCat("checkpoint declares ", *shard_count, " shards but carries ",
                 shard_cursors.size(), " cursors"));
    }
    for (const auto& [index, cursor] : shard_cursors) {
      if (index >= *shard_count) {
        return Status::ParseError(
            StrCat("checkpoint shard cursor index ", index,
                   " out of range (", *shard_count, " shards)"));
      }
    }
    // A different live shard count is fine: v1–v3 rewind to zero anyway,
    // and v4's SetMapCursors falls back to the minimum position when the
    // counts differ — the persisted partitioning never constrains the
    // new process's configuration.
  }
  if (version >= 4) {
    if (!type_counter.has_value()) {
      return Status::ParseError("checkpoint missing type_counter");
    }
    if (!saw_stats) {
      return Status::ParseError("checkpoint missing lifetime counters");
    }
  }
  // ---- Validation done; mutate. Sinks first (the only apply step that
  // can fail), then the registry skeleton, then the scalar state. ----
  for (const auto& [index, state] : sink_states) {
    if (index >= sinks_.size()) {
      return Status::InvalidArgument(
          StrCat("checkpoint references sink ", index, " but only ",
                 sinks_.size(), " sinks are attached"));
    }
    auto* durable = dynamic_cast<CheckpointableSink*>(sinks_[index]);
    if (durable == nullptr) {
      return Status::InvalidArgument(
          StrCat("checkpoint has durable state for sink ", index,
                 " but the attached sink is not checkpointable"));
    }
    CACHEPORTAL_RETURN_NOT_OK(durable->RestoreState(state));
  }
  if (version >= 4) {
    // Rebuild every type eagerly — O(types), the cheap part — so
    // cacheability verdicts and reports are right immediately. Instances
    // (the O(N) parse cost) are queued for ApplyPendingRestore.
    pending_restore_ops_.clear();
    pending_type_overrides_.clear();
    for (const StagedType& staged : staged_types) {
      CACHEPORTAL_RETURN_NOT_OK(
          plane_.RegisterType(staged.name, staged.tmpl_text));
      plane_.WithShardOfType(staged.type_id, [&](MetadataPlane::Shard& shard) {
        if (QueryType* type = shard.registry.FindType(staged.type_id)) {
          type->cacheable = staged.override_.cacheable;
        }
      });
      // Pin the persisted tier eagerly (before any instance re-registers)
      // so the census and the next cycle's strategy dispatch match the
      // dead process exactly — a re-derivation against drifted schema or
      // analyzer behavior would be a silent strategy change on recovery.
      if (staged.tier < kTierUnassigned) {
        plane_.InstallTier(staged.type_id,
                           static_cast<StrategyTier>(staged.tier),
                           staged.tier_reason);
      }
      pending_type_overrides_[staged.type_id] = staged.override_;
    }
    // After the creations above, so the persisted counter (which already
    // includes these types) wins and discovered-type naming continues
    // where the dead process left off.
    plane_.SetTypeCount(*type_counter);
    pending_restore_ops_.reserve(staged_instances.size());
    for (std::string& sql : staged_instances) {
      pending_restore_ops_.push_back(RestoredOp{true, std::move(sql)});
    }
    stats_ = staged_stats;
    std::vector<uint64_t> cursors;
    cursors.reserve(shard_cursors.size());
    for (const auto& [index, cursor] : shard_cursors) {
      (void)index;
      // Persisted map cursors are only meaningful against the map
      // incarnation that wrote them. The sniffer's map is rebuilt from
      // live traffic after a process restart, so its ids restart below
      // the persisted positions — installing such a cursor verbatim
      // would silently skip every re-sniffed row, and updates would
      // never eject the re-cached pages. Clamp to the live tail: rows
      // the map does hold stay consumed (the v4 no-rescan win for
      // in-process restores), and a rebuilt map rescans from its start.
      cursors.push_back(std::min(cursor, map_->LastId()));
    }
    plane_.SetMapCursors(cursors);
  } else {
    plane_.ResetMapCursors();
  }
  last_update_seq_ = update_seq;
  last_map_epoch_.reset();  // Force the next cycle's map scan.
  last_retire_epoch_.reset();  // ... and its retire sweep.
  return Status::OK();
}

std::string Invalidator::EncodeDurableDelta(DurableDeltaBaseline* baseline) {
  std::vector<uint64_t> cursors = plane_.MapCursors();
  std::string out = StrCat(kDeltaMagicV1, "\n",
                           "update_seq ", last_update_seq_, "\n",
                           "shards ", cursors.size(), "\n");
  for (size_t i = 0; i < cursors.size(); ++i) {
    out += StrCat("shard_map_id ", i, " ", cursors[i], "\n");
  }
  out += StrCat("stats ", EncodeLifetimeStats(stats_), "\n");
  plane_.ForEachType([&](const QueryType& type) {
    std::string line =
        StrCat("type ", type.type_id, " ", type.cacheable ? 1 : 0, " ",
               EncodeTypeStats(type.stats), "\n");
    auto it = baseline->type_lines.find(type.type_id);
    if (it != baseline->type_lines.end() && it->second == line) return;
    baseline->type_lines[type.type_id] = line;
    out += line;
  });
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* durable = dynamic_cast<const CheckpointableSink*>(sinks_[i]);
    if (durable == nullptr) continue;
    std::string state = durable->CheckpointState();
    auto it = baseline->sink_states.find(i);
    if (it != baseline->sink_states.end() && it->second == state) continue;
    baseline->sink_states[i] = state;
    out += StrCat("sink ", i, " ", state.size(), "\n");
    out += state;
    out += "\n";
  }
  out += "end\n";
  return out;
}

Status Invalidator::ApplyDurableDelta(const std::string& payload) {
  size_t pos = 0;
  auto next_line = [&payload, &pos]() -> std::optional<std::string> {
    if (pos >= payload.size()) return std::nullopt;
    size_t nl = payload.find('\n', pos);
    if (nl == std::string::npos) nl = payload.size();
    std::string line = payload.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };
  std::optional<std::string> magic = next_line();
  if (!magic.has_value() || *magic != kDeltaMagicV1) {
    return Status::ParseError("not an invalidator delta");
  }
  uint64_t update_seq = 0;
  bool saw_update_seq = false;
  bool saw_stats = false;
  bool saw_end = false;
  InvalidatorStats staged_stats;
  std::optional<uint64_t> shard_count;
  std::map<uint64_t, uint64_t> shard_cursors;
  std::map<uint64_t, TypeOverride> staged_overrides;
  std::map<size_t, std::string> sink_states;
  while (std::optional<std::string> line = next_line()) {
    std::vector<std::string> fields = StrSplit(*line, ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    if (fields[0] == "update_seq" && fields.size() == 2) {
      Result<uint64_t> seq = ParseUint64(fields[1]);
      if (!seq.ok()) {
        return Status::ParseError(
            StrCat("bad update_seq in delta: ", seq.status().message()));
      }
      update_seq = *seq;
      saw_update_seq = true;
    } else if (fields[0] == "shards" && fields.size() == 2) {
      Result<uint64_t> count = ParseUint64(fields[1]);
      if (!count.ok() || *count == 0) {
        return Status::ParseError(
            StrCat("bad shard count in delta: ", fields[1]));
      }
      shard_count = *count;
    } else if (fields[0] == "shard_map_id" && fields.size() == 3) {
      Result<uint64_t> index = ParseUint64(fields[1]);
      Result<uint64_t> cursor = ParseUint64(fields[2]);
      if (!index.ok() || !cursor.ok() ||
          !shard_cursors.emplace(*index, *cursor).second) {
        return Status::ParseError(
            StrCat("bad shard_map_id record in delta: ", *line));
      }
    } else if (fields[0] == "stats" && fields.size() == 15) {
      CACHEPORTAL_RETURN_NOT_OK(ParseLifetimeStats(fields, 1, &staged_stats));
      saw_stats = true;
    } else if (fields[0] == "type" && fields.size() == 9) {
      Result<uint64_t> tid = ParseUint64(fields[1]);
      if (!tid.ok()) {
        return Status::ParseError(StrCat("bad type record in delta: ", *line));
      }
      TypeOverride override_;
      CACHEPORTAL_RETURN_NOT_OK(
          ParseTypeStats(fields, 2, &override_.cacheable, &override_.stats));
      staged_overrides[*tid] = override_;
    } else if (fields[0] == "sink" && fields.size() == 3) {
      Result<uint64_t> index = ParseUint64(fields[1]);
      Result<uint64_t> length = ParseUint64(fields[2]);
      if (!index.ok() || !length.ok() ||
          pos + *length > payload.size()) {
        return Status::ParseError(
            StrCat("bad sink record in delta: ", *line));
      }
      sink_states[static_cast<size_t>(*index)] = payload.substr(pos, *length);
      pos += *length + 1;
    } else {
      return Status::ParseError(StrCat("unknown delta record: ", *line));
    }
  }
  if (!saw_end || !saw_update_seq || !saw_stats || !shard_count.has_value() ||
      shard_cursors.size() != *shard_count) {
    return Status::ParseError("truncated invalidator delta");
  }
  for (const auto& [index, cursor] : shard_cursors) {
    if (index >= *shard_count) {
      return Status::ParseError(
          StrCat("delta shard cursor index ", index, " out of range"));
    }
  }
  for (const auto& [index, state] : sink_states) {
    if (index >= sinks_.size()) {
      return Status::InvalidArgument(
          StrCat("delta references sink ", index, " but only ",
                 sinks_.size(), " sinks are attached"));
    }
    auto* durable = dynamic_cast<CheckpointableSink*>(sinks_[index]);
    if (durable == nullptr) {
      return Status::InvalidArgument(
          StrCat("delta has durable state for sink ", index,
                 " but the attached sink is not checkpointable"));
    }
    CACHEPORTAL_RETURN_NOT_OK(durable->RestoreState(state));
  }
  for (const auto& [tid, override_] : staged_overrides) {
    // Cacheability applies eagerly when the type already exists (verdict
    // queries don't wait for the next cycle); statistics are staged
    // behind the pending ops either way — the type may itself still be a
    // queued registration, and re-registration bumps must not survive.
    plane_.WithShardOfType(tid, [&](MetadataPlane::Shard& shard) {
      if (QueryType* type = shard.registry.FindType(tid)) {
        type->cacheable = override_.cacheable;
      }
    });
    pending_type_overrides_[tid] = override_;
  }
  stats_ = staged_stats;
  std::vector<uint64_t> cursors;
  cursors.reserve(shard_cursors.size());
  for (const auto& [index, cursor] : shard_cursors) {
    (void)index;
    // Same clamp as Restore: a replayed commit delta's cursors came from
    // the dead process's map incarnation; never install one beyond the
    // live map's last assigned id or re-sniffed rows would be skipped.
    cursors.push_back(std::min(cursor, map_->LastId()));
  }
  plane_.SetMapCursors(cursors);
  last_update_seq_ = update_seq;
  last_map_epoch_.reset();
  last_retire_epoch_.reset();
  return Status::OK();
}

void Invalidator::QueueRestoredRegistration(const std::string& sql) {
  pending_restore_ops_.push_back(RestoredOp{true, sql});
}

void Invalidator::QueueRestoredRetirement(const std::string& sql) {
  pending_restore_ops_.push_back(RestoredOp{false, sql});
}

size_t Invalidator::pending_restore_ops() const {
  return pending_restore_ops_.size() + pending_type_overrides_.size();
}

void Invalidator::ApplyPendingRestore() {
  if (pending_restore_ops_.empty() && pending_type_overrides_.empty()) return;
  for (const RestoredOp& op : pending_restore_ops_) {
    if (op.registered) {
      Result<const QueryInstance*> registered = plane_.RegisterInstance(op.sql);
      if (!registered.ok()) {
        // Same contract as the ingest scan: a row that no longer parses
        // is logged and skipped, never fatal — the page it backed simply
        // stays conservative.
        LogMessage(LogLevel::kWarning,
                   StrCat("restore: skipping unparseable instance: ",
                          registered.status().message()));
      }
    } else {
      plane_.RetireInstance(op.sql);
    }
  }
  pending_restore_ops_.clear();
  // After the replayed registrations: their instances_seen bumps must be
  // overwritten by the persisted absolute values, or recovered reports
  // would double-count every instance that survived the crash.
  for (const auto& [tid, override_] : pending_type_overrides_) {
    plane_.WithShardOfType(tid, [&](MetadataPlane::Shard& shard) {
      if (QueryType* type = shard.registry.FindType(tid)) {
        type->cacheable = override_.cacheable;
        type->stats = override_.stats;
      }
    });
  }
  pending_type_overrides_.clear();
}

StageEnv Invalidator::MakeStageEnv() {
  StageEnv env;
  env.database = database_;
  env.map = map_;
  env.clock = clock_;
  env.options = &options_;
  env.plane = &plane_;
  env.info = &info_;
  env.scheduler = &scheduler_;
  env.polling_cache = polling_cache_.get();
  env.pool = pool_.get();
  env.overload = overload_.get();
  env.sinks = &sinks_;
  env.stats = &stats_;
  env.cycle_matcher_stats = &cycle_matcher_stats_;
  env.last_update_seq = &last_update_seq_;
  env.last_map_epoch = &last_map_epoch_;
  env.last_retire_epoch = &last_retire_epoch_;
  env.execute_poll = [this](const std::string& poll_sql) {
    return ExecutePoll(poll_sql);
  };
  env.observe_signals = [this] { return ObserveOverloadSignals(); };
  return env;
}

Result<CycleReport> Invalidator::RunCycle() {
  // Drain any staged restore work first: the cycle's impact analysis
  // must see the recovered registry, not a half-rebuilt one.
  ApplyPendingRestore();
  CycleContext ctx;
  ctx.start = clock_->NowMicros();
  ++stats_.cycles;

  StageEnv env = MakeStageEnv();
  CACHEPORTAL_RETURN_NOT_OK(IngestStage(env).Run(ctx));
  if (ctx.proceed) {
    CACHEPORTAL_RETURN_NOT_OK(ImpactStage(env).Run(ctx));
    CACHEPORTAL_RETURN_NOT_OK(PollStage(env).Run(ctx));
    CACHEPORTAL_RETURN_NOT_OK(DeliverStage(env).Run(ctx));

    // ---- Policy discovery: refresh cacheability verdicts. ----
    plane_.ForEachTypeMutable([&](QueryType& type) {
      type.cacheable = policy_.IsQueryTypeCacheable(type);
    });
  }

  ctx.report.duration = clock_->NowMicros() - ctx.start;
  last_cycle_duration_ = ctx.report.duration;
  return ctx.report;
}

Result<db::QueryResult> Invalidator::ExecutePoll(const std::string& poll_sql) {
  server::Connection* external =
      polling_connection_.load(std::memory_order_acquire);
  if (external != nullptr) {
    std::lock_guard<std::mutex> lock(polling_connection_mu_);
    return external->ExecuteQuery(poll_sql);
  }
  if (polling_cache_ != nullptr) {
    return polling_cache_->ExecuteQuery(poll_sql);
  }
  return database_->ExecuteSql(poll_sql);
}

OverloadSignals Invalidator::ObserveOverloadSignals() const {
  OverloadSignals signals;
  const db::UpdateLog& log =
      static_cast<const db::Database*>(database_)->update_log();
  uint64_t last = log.LastSeq();
  signals.backlog_depth =
      last > last_update_seq_ ? last - last_update_seq_ : 0;
  if (std::optional<Micros> oldest =
          log.OldestTimestampSince(last_update_seq_)) {
    Micros now = clock_->NowMicros();
    signals.backlog_age = now > *oldest ? now - *oldest : 0;
  }
  for (const InvalidationSink* sink : sinks_) {
    if (const auto* observable = dynamic_cast<const ObservableSink*>(sink)) {
      signals.delivery_backlog += observable->PendingBacklog();
    }
  }
  signals.last_cycle_latency = last_cycle_duration_;
  return signals;
}

}  // namespace cacheportal::invalidator
