#include "invalidator/invalidator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "db/delta.h"
#include "sql/analyzer.h"
#include "sql/printer.h"

namespace cacheportal::invalidator {

Invalidator::Invalidator(db::Database* database, sniffer::QiUrlMap* map,
                         const Clock* clock, InvalidatorOptions options)
    : database_(database),
      map_(map),
      clock_(clock),
      options_(options),
      info_(database),
      scheduler_(options.max_polls_per_cycle) {
  policy_.SetThresholds(options_.thresholds);
  if (options_.polling_cache_capacity > 0) {
    polling_cache_ = std::make_unique<PollingDataCache>(
        database_, options_.polling_cache_capacity);
  }
  if (options_.worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.overload.enabled) {
    overload_ = std::make_unique<OverloadController>(clock_,
                                                     options_.overload);
  }
  // Attach at the database's current position: updates that committed
  // before CachePortal was deployed predate every cached page.
  last_update_seq_ = database_->update_log().LastSeq();
}

void Invalidator::AddSink(InvalidationSink* sink) { sinks_.push_back(sink); }

Status Invalidator::RegisterQueryType(const std::string& name,
                                      const std::string& parameterized_sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t id,
                               registry_.RegisterType(name,
                                                      parameterized_sql));
  (void)id;
  return Status::OK();
}

Status Invalidator::CreateJoinIndex(const std::string& table,
                                    const std::string& column) {
  return info_.CreateJoinIndex(table, column);
}

bool Invalidator::IsQuerySqlCacheable(const std::string& sql_text) const {
  const QueryInstance* instance = registry_.FindInstance(sql_text);
  uint64_t type_id = 0;
  if (instance != nullptr) {
    type_id = instance->type_id;
  } else {
    // The instance may have been retired with its pages; its query type
    // (and the type's policy verdict) outlives it.
    Result<sql::QueryTemplate> tmpl = sql::ExtractTemplateFromSql(sql_text);
    if (!tmpl.ok()) return true;  // Unknown queries default to yes.
    type_id = tmpl->type_id;
  }
  const QueryType* type = registry_.FindType(type_id);
  if (type == nullptr) return true;
  return type->cacheable;
}

std::string Invalidator::StatsReport() const {
  std::string out = StrCat(
      "invalidator: cycles=", stats_.cycles,
      " updates=", stats_.updates_processed,
      " checks=", stats_.instance_checks,
      " affected=", stats_.affected_immediately,
      " unaffected=", stats_.unaffected, " polls=", stats_.polls_issued,
      " idx-answered=", stats_.polls_answered_by_index,
      " poll-hits=", stats_.poll_hits,
      " conservative=", stats_.conservative_invalidations,
      " emergency-flushes=", stats_.emergency_flushes,
      " pages-invalidated=", stats_.pages_invalidated,
      " messages-sent=", stats_.messages_sent,
      " send-failures=", stats_.send_failures, "\n");
  if (overload_ != nullptr) {
    out += StrCat("  ", overload_->Report(), "\n");
  }
  // Delivery health was invisible here while the queue quietly retried;
  // every observable sink now reports in line.
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* observable = dynamic_cast<const ObservableSink*>(sinks_[i]);
    if (observable == nullptr) continue;
    out += StrCat("  sink ", i, " ", observable->HealthReport(), "\n");
  }
  registry_.ForEachType([&](const QueryType& type) {
    const QueryTypeStats& ts = type.stats;
    out += StrCat("  type '", type.name, "'",
                  type.cacheable ? "" : " [non-cacheable]",
                  ": instances=", ts.instances_seen, " checks=", ts.checks,
                  " affected=", ts.affected, " polls=", ts.polling_queries,
                  " inval-ratio=", ts.InvalidationRatio(),
                  " avg-time-us=", ts.AvgInvalidationTime(),
                  " max-time-us=", ts.max_invalidation_time, "\n");
  });
  return out;
}

namespace {

/// Checkpoint framing. Sink states are opaque bytes (they may contain
/// newlines and serialized HTTP), so they travel as length-prefixed
/// blocks rather than lines.
constexpr char kCheckpointMagic[] = "cacheportal-invalidator-checkpoint 1";

}  // namespace

std::string Invalidator::Checkpoint() const {
  std::string out = StrCat(kCheckpointMagic, "\n",
                           "update_seq ", last_update_seq_, "\n",
                           "map_id ", last_map_id_, "\n");
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* durable = dynamic_cast<const CheckpointableSink*>(sinks_[i]);
    if (durable == nullptr) continue;
    std::string state = durable->CheckpointState();
    out += StrCat("sink ", i, " ", state.size(), "\n");
    out += state;
    out += "\n";
  }
  out += "end\n";
  return out;
}

Status Invalidator::Restore(const std::string& checkpoint) {
  size_t pos = 0;
  auto next_line = [&checkpoint, &pos]() -> std::optional<std::string> {
    if (pos >= checkpoint.size()) return std::nullopt;
    size_t nl = checkpoint.find('\n', pos);
    if (nl == std::string::npos) nl = checkpoint.size();
    std::string line = checkpoint.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::optional<std::string> magic = next_line();
  if (!magic.has_value() || *magic != kCheckpointMagic) {
    return Status::ParseError("not an invalidator checkpoint");
  }
  uint64_t update_seq = 0;
  bool saw_update_seq = false;
  bool saw_end = false;
  std::map<size_t, std::string> sink_states;
  while (std::optional<std::string> line = next_line()) {
    std::vector<std::string> fields = StrSplit(*line, ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    // All numeric fields parse strictly: a corrupt `update_seq` that
    // strtoull would coerce to 0 must fail loudly, not silently rewind
    // the cursor to the log's beginning (replaying every update), and a
    // garbled sink index must not misassign durable sink state.
    if (fields[0] == "update_seq" && fields.size() == 2) {
      Result<uint64_t> seq = ParseUint64(fields[1]);
      if (!seq.ok()) {
        return Status::ParseError(StrCat("bad update_seq in checkpoint: ",
                                         seq.status().message()));
      }
      update_seq = *seq;
      saw_update_seq = true;
    } else if (fields[0] == "map_id" && fields.size() == 2) {
      // The value is unused (restore rescans the map from zero, see the
      // header comment) but still validated: a garbled cursor means a
      // garbled checkpoint.
      Result<uint64_t> map_id = ParseUint64(fields[1]);
      if (!map_id.ok()) {
        return Status::ParseError(StrCat("bad map_id in checkpoint: ",
                                         map_id.status().message()));
      }
    } else if (fields[0] == "sink" && fields.size() == 3) {
      Result<uint64_t> index = ParseUint64(fields[1]);
      Result<uint64_t> length = ParseUint64(fields[2]);
      if (!index.ok() || !length.ok()) {
        return Status::ParseError(
            StrCat("bad sink record in checkpoint: ", *line));
      }
      if (pos + *length > checkpoint.size()) {
        return Status::ParseError("truncated sink state in checkpoint");
      }
      sink_states[static_cast<size_t>(*index)] =
          checkpoint.substr(pos, *length);
      pos += *length + 1;  // The block is followed by a separator '\n'.
    } else {
      return Status::ParseError(StrCat("unknown checkpoint record: ", *line));
    }
  }
  if (!saw_end || !saw_update_seq) {
    return Status::ParseError("truncated invalidator checkpoint");
  }
  for (const auto& [index, state] : sink_states) {
    if (index >= sinks_.size()) {
      return Status::InvalidArgument(
          StrCat("checkpoint references sink ", index, " but only ",
                 sinks_.size(), " sinks are attached"));
    }
    auto* durable = dynamic_cast<CheckpointableSink*>(sinks_[index]);
    if (durable == nullptr) {
      return Status::InvalidArgument(
          StrCat("checkpoint has durable state for sink ", index,
                 " but the attached sink is not checkpointable"));
    }
    CACHEPORTAL_RETURN_NOT_OK(durable->RestoreState(state));
  }
  last_update_seq_ = update_seq;
  last_map_id_ = 0;
  return Status::OK();
}

void Invalidator::RunParallel(size_t n,
                              const std::function<void(size_t)>& fn) {
  if (pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool_->ParallelFor(n, fn);
}

void Invalidator::IndexInstance(const QueryInstance& instance) {
  if (!options_.use_type_matcher) return;
  auto it = matchers_.find(instance.type_id);
  if (it == matchers_.end()) {
    const QueryType* type = registry_.FindType(instance.type_id);
    if (type == nullptr) return;
    TypeMatcher matcher = TypeMatcher::Compile(*type, *database_);
    ++matcher_stats_.types_compiled;
    if (matcher.handled()) ++matcher_stats_.types_handled;
    it = matchers_.emplace(instance.type_id, std::move(matcher)).first;
  }
  if (it->second.handled()) bind_index_.AddInstance(it->second, instance);
}

void Invalidator::RetireInstance(const std::string& instance_sql) {
  const QueryInstance* instance = registry_.FindInstance(instance_sql);
  if (instance != nullptr) bind_index_.RemoveInstance(instance->instance_id);
  registry_.UnregisterInstance(instance_sql);
}

Result<db::QueryResult> Invalidator::ExecutePoll(const std::string& poll_sql) {
  if (polling_connection_ != nullptr) {
    std::lock_guard<std::mutex> lock(polling_connection_mu_);
    return polling_connection_->ExecuteQuery(poll_sql);
  }
  if (polling_cache_ != nullptr) {
    return polling_cache_->ExecuteQuery(poll_sql);
  }
  return database_->ExecuteSql(poll_sql);
}

OverloadSignals Invalidator::ObserveOverloadSignals() const {
  OverloadSignals signals;
  const db::UpdateLog& log =
      static_cast<const db::Database*>(database_)->update_log();
  uint64_t last = log.LastSeq();
  signals.backlog_depth =
      last > last_update_seq_ ? last - last_update_seq_ : 0;
  if (std::optional<Micros> oldest =
          log.OldestTimestampSince(last_update_seq_)) {
    Micros now = clock_->NowMicros();
    signals.backlog_age = now > *oldest ? now - *oldest : 0;
  }
  for (const InvalidationSink* sink : sinks_) {
    if (const auto* observable = dynamic_cast<const ObservableSink*>(sink)) {
      signals.delivery_backlog += observable->PendingBacklog();
    }
  }
  signals.last_cycle_latency = last_cycle_duration_;
  return signals;
}

namespace {

/// One instance's slot in the parallel analysis fan-out: read-only inputs
/// set up serially, verdict written by exactly one worker, stats merged
/// serially afterwards — in instance order, so cycle results are
/// identical at every worker count.
struct InstanceAnalysis {
  // Inputs.
  uint64_t type_id = 0;
  uint64_t instance_id = 0;
  const QueryInstance* instance = nullptr;

  // Verdict.
  Status status;                   // Analysis error, reported at merge.
  bool multi_table_guard = false;  // >= 2 FROM tables updated together.
  bool checked = false;
  bool affected = false;           // Decided by condition analysis.
  bool index_affected = false;     // Decided by a join-index answer.
  uint64_t index_answers = 0;      // Polls answered without the DBMS.
  std::vector<std::unique_ptr<sql::SelectStatement>> remaining_polls;
  size_t affected_pages = 0;       // Cached pages riding on the verdict.
  Micros check_time = 0;
  // Matcher bookkeeping (merged serially into MatcherStats).
  uint64_t matcher_excluded = 0;        // Tuples pruned before analysis.
  uint64_t matcher_short_circuits = 0;  // Tables decided with no AST work.
};

/// One merged view of a table's delta tuples, built once per cycle and
/// shared (borrowed) by every instance analysis — inserts first, then
/// deletes, the order the per-instance copies used to have.
struct TableTuples {
  std::string table;  // Lower-cased (DeltaSet::Tables() key).
  std::vector<const db::Row*> tuples;
};

/// Index-probe result for one (query type, delta table): per-instance
/// candidate tuple lists plus the tuples every instance must consider
/// (NULL/boolean column values). Built serially, read-only in the
/// fan-out. Both lists are ascending and duplicate-free, so a sorted
/// merge reconstructs each instance's candidate tuples in delta order.
struct TableProbe {
  std::vector<uint32_t> all_tuples;
  std::unordered_map<uint64_t, std::vector<uint32_t>> per_id;
};

/// One instance's polling work in the parallel polling fan-out. The
/// scheduler emits an instance's polls contiguously, so grouping is a
/// single pass; polls within a group run in order and short-circuit on
/// the first hit or failure, exactly like the serial loop.
struct PollGroup {
  std::string instance_sql;
  uint64_t type_id = 0;
  std::vector<std::unique_ptr<sql::SelectStatement>> queries;

  // Outcome.
  uint64_t polls_issued = 0;
  bool poll_hit = false;
  bool conservative = false;  // A poll failed; invalidate conservatively.
  std::string failure;        // The failed poll's status, for the log.
};

/// One consolidated polling statement: the OR of the residual WHEREs of
/// several instances' polls against one (type, target table), executed
/// as a single DBMS round trip and demultiplexed in-process.
struct MergedPoll {
  sql::TableRef from;
  std::vector<size_t> groups;  // Member PollGroup indexes, in group order.
  struct MemberRef {
    size_t group = 0;
    size_t query = 0;  // Index into that group's queries.
  };
  std::vector<MemberRef> members;
  std::unique_ptr<sql::SelectStatement> statement;

  // Outcome (written by the one worker owning this poll).
  bool failed = false;
  std::string failure;
  std::set<size_t> hit_groups;
};

/// Does `row` (a SELECT * result over `from`) satisfy a member poll's
/// residual WHERE? Decided with the same substitution + fold the impact
/// analyzer and the executor use, so the demultiplexed verdict equals
/// what the member's own `SELECT 1 ... LIMIT 1` poll would have returned.
bool RowSatisfies(const sql::Expression& where, const sql::TableRef& from,
                  const std::vector<std::string>& columns,
                  const db::Row& row) {
  auto substituter = [&](const std::string& tbl, const std::string& col)
      -> std::optional<sql::Value> {
    if (!tbl.empty() && !EqualsIgnoreCase(tbl, from.EffectiveName())) {
      return std::nullopt;
    }
    for (size_t i = 0; i < columns.size() && i < row.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], col)) return row[i];
    }
    return std::nullopt;
  };
  sql::FoldResult folded =
      sql::FoldConstants(*sql::SubstituteColumns(where, substituter));
  // A residual would mean the row lacks a referenced column (cannot
  // happen: SELECT * carries the whole schema); count it as a hit rather
  // than risk staleness.
  return folded.outcome == sql::FoldOutcome::kTrue ||
         folded.outcome == sql::FoldOutcome::kResidual;
}

/// A fully built eject message, ready for per-sink delivery.
struct Eject {
  std::string page_key;
  http::HttpRequest request;
};

/// Per-sink delivery counters, accumulated on the worker that owns the
/// sink and merged serially.
struct SinkTally {
  uint64_t sent = 0;
  uint64_t failures = 0;
  std::vector<std::string> warnings;
};

}  // namespace

Result<CycleReport> Invalidator::RunCycle() {
  CycleReport report;
  Micros start = clock_->NowMicros();
  ++stats_.cycles;

  // ---- Overload planning: pick this cycle's degradation rung. ----
  // Signals are observed BEFORE the log is consumed (the backlog is the
  // evidence) and are deterministic functions of the clock and pipeline
  // state, so the mode sequence is identical at every worker count.
  DegradationMode mode = DegradationMode::kNormal;
  if (overload_ != nullptr) {
    mode = overload_->Plan(ObserveOverloadSignals());
  }
  report.mode = mode;

  // ---- Registration module, online mode: scan the QI/URL map. ----
  for (const sniffer::QiUrlEntry& entry : map_->ReadSince(last_map_id_)) {
    last_map_id_ = std::max(last_map_id_, entry.id);
    Result<const QueryInstance*> instance =
        registry_.RegisterInstance(entry.query_sql);
    if (!instance.ok()) {
      // Unparseable query: nothing we can safely track. Drop its pages
      // from consideration (they were cached under a query we cannot
      // invalidate — treat as immediately suspect).
      LogMessage(LogLevel::kWarning,
                 StrCat("cannot register query instance: ",
                        instance.status().ToString()));
      continue;
    }
    ++report.new_instances;
    ++stats_.instances_registered;
    IndexInstance(**instance);
  }

  // ---- Invalidation module: pull the update log. ----
  std::vector<db::UpdateRecord> records =
      database_->update_log().ReadSince(last_update_seq_);
  if (!records.empty()) last_update_seq_ = records.back().seq;
  report.updates = records.size();
  stats_.updates_processed += records.size();

  if (records.empty()) {
    report.duration = clock_->NowMicros() - start;
    last_cycle_duration_ = report.duration;
    return report;
  }

  db::DeltaSet deltas = db::DeltaSet::FromRecords(records);
  // The internal polling cache must not serve results that predate this
  // batch: drop everything reading an updated table first.
  if (polling_cache_ != nullptr) polling_cache_->Synchronize(deltas);
  // Keep the information manager's auxiliary structures current *after*
  // analysis would be wrong for deletes (the index must reflect the state
  // including this batch for inserts when answering polls). The paper's
  // daemon applies the same update stream it analyzes; we apply before
  // answering polls so index answers match the database state the polls
  // would see.
  info_.ApplyDeltas(deltas);

  std::set<std::string> affected_instances;

  // ---- Emergency rung: table-scoped flush, no analysis, no polling. ----
  // Precision is abandoned for this cycle: every registered instance
  // reading a table with backlogged updates is invalidated outright, and
  // the cursor has already fast-forwarded past the whole backlog above —
  // unbounded staleness becomes bounded over-invalidation. Instances
  // reading only untouched tables are provably unaffected and skipped.
  if (mode == DegradationMode::kEmergency) {
    registry_.ForEachType([&](const QueryType& type) {
      registry_.ForEachInstanceOfType(
          type.type_id, [&](const QueryInstance& instance) {
            if (map_->NumPagesForQuery(instance.sql) == 0) return;
            bool reads_updated_table = false;
            for (const sql::TableRef& ref : instance.statement->from) {
              if (!deltas.ForTable(ref.table).empty()) {
                reads_updated_table = true;
                break;
              }
            }
            if (!reads_updated_table) return;
            if (affected_instances.insert(instance.sql).second) {
              ++stats_.emergency_flushes;
              ++stats_.conservative_invalidations;
              ++report.conservative_invalidations;
            }
          });
    });
  }

  // ---- Impact analysis (Section 4.1.2's grouping), parallel phase. ----
  // Serial pre-pass: snapshot the per-instance work list and retire
  // instances whose pages already left the cache (evicted or invalidated
  // through another instance). Registry mutation stays on this thread;
  // the snapshot's QueryInstance pointers stay valid because nothing
  // mutates the registry until the merge. An emergency cycle decided
  // everything above, so its work list stays empty.
  std::vector<InstanceAnalysis> work;
  if (mode != DegradationMode::kEmergency) {
    work.reserve(registry_.NumInstances());
    std::vector<std::string> retired;
    registry_.ForEachType([&](const QueryType& type) {
      registry_.ForEachInstanceOfType(
          type.type_id, [&](const QueryInstance& instance) {
            if (map_->NumPagesForQuery(instance.sql) == 0) {
              retired.push_back(instance.sql);
              return;
            }
            InstanceAnalysis analysis;
            analysis.type_id = type.type_id;
            analysis.instance_id = instance.instance_id;
            analysis.instance = &instance;
            work.push_back(std::move(analysis));
          });
    });
    for (const std::string& instance_sql : retired) {
      RetireInstance(instance_sql);
    }
  }

  // One merged tuple view per updated table (inserts then deletes, the
  // order the per-instance copies used to have), borrowed by every
  // analysis this cycle instead of copied per instance.
  std::vector<TableTuples> merged;
  for (const std::string& table : deltas.Tables()) {
    const db::TableDelta& delta = deltas.ForTable(table);
    TableTuples view;
    view.table = table;
    view.tuples.reserve(delta.inserts.size() + delta.deletes.size());
    for (const db::Row& row : delta.inserts) view.tuples.push_back(&row);
    for (const db::Row& row : delta.deletes) view.tuples.push_back(&row);
    if (!view.tuples.empty()) merged.push_back(std::move(view));
  }

  // ---- Index probe phase (serial): each delta tuple probes the bind
  // index once per covered (type, table), producing per-instance
  // candidate tuple lists. Instances absent from every list are provably
  // unaffected — the fan-out below skips their AST work entirely.
  std::map<std::pair<uint64_t, size_t>, TableProbe> probes;
  if (options_.use_type_matcher && !work.empty()) {
    std::vector<uint64_t> work_types;  // Distinct, in work (type) order.
    for (const InstanceAnalysis& a : work) {
      if (work_types.empty() || work_types.back() != a.type_id) {
        work_types.push_back(a.type_id);
      }
    }
    for (uint64_t type_id : work_types) {
      auto matcher_it = matchers_.find(type_id);
      if (matcher_it == matchers_.end() || !matcher_it->second.handled()) {
        continue;
      }
      // Exclusion is only sound if every live instance of the type is
      // indexed; a mismatch (cannot happen while all registrations and
      // retirements flow through IndexInstance/RetireInstance) falls
      // back to the interpreted path for the whole type.
      if (bind_index_.IndexedCountOfType(type_id) !=
          registry_.NumInstancesOfType(type_id)) {
        continue;
      }
      for (size_t t = 0; t < merged.size(); ++t) {
        const CompiledAnchor* anchor =
            matcher_it->second.AnchorFor(merged[t].table);
        if (anchor == nullptr) continue;
        TableProbe probe;
        for (uint32_t ti = 0; ti < merged[t].tuples.size(); ++ti) {
          ++matcher_stats_.probes;
          const db::Row& row = *merged[t].tuples[ti];
          if (anchor->column_index >= row.size()) {
            // Malformed row; the analyzer will report it. Everyone looks.
            probe.all_tuples.push_back(ti);
            continue;
          }
          BindIndex::Candidates candidates = bind_index_.Probe(
              type_id, merged[t].table, *anchor, row[anchor->column_index]);
          if (candidates.all) {
            probe.all_tuples.push_back(ti);
            continue;
          }
          for (uint64_t id : candidates.ids) {
            probe.per_id[id].push_back(ti);
          }
        }
        probes.emplace(std::make_pair(type_id, t), std::move(probe));
      }
    }
  }

  // Soundness guard input, hoisted per type: polling queries run against
  // the post-update database, so a batch touching two or more of a
  // query's FROM relations must invalidate conservatively (a poll can
  // miss impacts, e.g. both join partners deleted together). The count
  // depends only on the type's FROM list — identical for every instance
  // of the type — so compute it once per type, not once per instance.
  std::unordered_map<uint64_t, int> delta_tables_by_type;
  for (const InstanceAnalysis& a : work) {
    if (delta_tables_by_type.contains(a.type_id)) continue;
    int n = 0;
    for (const sql::TableRef& ref : a.instance->statement->from) {
      if (!deltas.ForTable(ref.table).empty()) ++n;
    }
    delta_tables_by_type.emplace(a.type_id, n);
  }

  // Fan out: instances are independent given the batch's deltas. Workers
  // touch only const reads (deltas, schemas, the QI/URL map, the probe
  // results, join-index answers behind a shared lock) and their own work
  // slot. The analyzer is stateless; one per cycle, shared by all
  // workers.
  const ImpactAnalyzer analyzer(database_);
  RunParallel(work.size(), [&](size_t i) {
    InstanceAnalysis& a = work[i];
    const QueryInstance& instance = *a.instance;

    if (delta_tables_by_type.find(a.type_id)->second >= 2) {
      a.multi_table_guard = true;
      return;
    }

    Micros check_start = clock_->NowMicros();
    bool affected = false;
    std::vector<std::unique_ptr<sql::SelectStatement>> polls;
    std::vector<const db::Row*> subset;
    for (const TableTuples& view : merged) {
      a.checked = true;
      const std::vector<const db::Row*>* tuples = &view.tuples;
      auto probe_it = probes.find(
          std::make_pair(a.type_id, static_cast<size_t>(&view - &merged[0])));
      if (probe_it != probes.end()) {
        // Sorted-merge the tuples every instance must see with this
        // instance's candidates: delta order is preserved, so verdicts
        // and polling SQL match the interpreted path byte for byte.
        const TableProbe& probe = probe_it->second;
        auto own_it = probe.per_id.find(a.instance_id);
        static const std::vector<uint32_t> kNone;
        const std::vector<uint32_t>& own =
            own_it == probe.per_id.end() ? kNone : own_it->second;
        subset.clear();
        subset.reserve(probe.all_tuples.size() + own.size());
        size_t x = 0;
        size_t y = 0;
        while (x < probe.all_tuples.size() || y < own.size()) {
          uint32_t next;
          if (y >= own.size() ||
              (x < probe.all_tuples.size() && probe.all_tuples[x] < own[y])) {
            next = probe.all_tuples[x++];
          } else {
            next = own[y++];
          }
          subset.push_back(view.tuples[next]);
        }
        a.matcher_excluded += view.tuples.size() - subset.size();
        if (subset.empty()) {
          // Every tuple's probe excluded this instance: provably
          // unaffected by this table with zero AST work.
          ++a.matcher_short_circuits;
          continue;
        }
        tuples = &subset;
      }

      if (options_.batch_deltas) {
        Result<ImpactResult> impact =
            analyzer.AnalyzeDelta(*instance.statement, view.table, *tuples);
        if (!impact.ok()) {
          a.status = impact.status();
          return;
        }
        if (impact->kind == ImpactKind::kAffected) {
          affected = true;
          break;
        }
        if (impact->kind == ImpactKind::kNeedsPolling) {
          polls.push_back(std::move(impact->polling_query));
        }
      } else {
        for (const db::Row* tuple : *tuples) {
          Result<ImpactResult> impact =
              analyzer.AnalyzeTuple(*instance.statement, view.table, *tuple);
          if (!impact.ok()) {
            a.status = impact.status();
            return;
          }
          if (impact->kind == ImpactKind::kAffected) {
            affected = true;
            break;
          }
          if (impact->kind == ImpactKind::kNeedsPolling) {
            polls.push_back(std::move(impact->polling_query));
          }
        }
        if (affected) break;
      }
    }
    a.check_time = clock_->NowMicros() - check_start;
    if (!a.checked) return;
    if (affected) {
      a.affected = true;
      return;
    }
    if (polls.empty()) return;

    // Try the information manager's indexes before scheduling DBMS
    // polls.
    for (auto& poll : polls) {
      std::optional<bool> answer = info_.AnswerPoll(*poll);
      if (answer.has_value()) {
        ++a.index_answers;
        if (*answer) {
          a.index_affected = true;
          return;
        }
      } else {
        a.remaining_polls.push_back(std::move(poll));
      }
    }
    a.affected_pages = map_->NumPagesForQuery(instance.sql);
  });

  // Serial merge, in snapshot order: fold verdicts into the lifetime and
  // per-type stats and collect the polling tasks. Identical to what the
  // serial loop would have produced.
  std::vector<PollingTask> tasks;
  QueryType* cached_type = nullptr;  // Work is grouped by type.
  for (InstanceAnalysis& a : work) {
    if (!a.status.ok()) return a.status;
    if (cached_type == nullptr || cached_type->type_id != a.type_id) {
      cached_type = registry_.FindType(a.type_id);
    }
    QueryType* mutable_type = cached_type;
    const std::string& instance_sql = a.instance->sql;

    if (a.multi_table_guard) {
      ++report.checks;
      ++stats_.instance_checks;
      ++stats_.affected_immediately;
      if (mutable_type != nullptr) {
        ++mutable_type->stats.checks;
        ++mutable_type->stats.affected;
      }
      affected_instances.insert(instance_sql);
      continue;
    }
    if (!a.checked) continue;

    matcher_stats_.tuples_excluded += a.matcher_excluded;
    matcher_stats_.instances_short_circuited += a.matcher_short_circuits;
    ++report.checks;
    ++stats_.instance_checks;
    if (mutable_type != nullptr) {
      QueryTypeStats& ts = mutable_type->stats;
      ++ts.checks;
      ts.total_invalidation_time += a.check_time;
      ts.max_invalidation_time =
          std::max(ts.max_invalidation_time, a.check_time);
    }

    if (a.affected) {
      affected_instances.insert(instance_sql);
      ++stats_.affected_immediately;
      if (mutable_type != nullptr) ++mutable_type->stats.affected;
      continue;
    }
    stats_.polls_answered_by_index += a.index_answers;
    report.polls_answered_by_index += a.index_answers;
    if (a.index_affected) {
      affected_instances.insert(instance_sql);
      if (mutable_type != nullptr) ++mutable_type->stats.affected;
      continue;
    }
    if (a.remaining_polls.empty()) {
      ++stats_.unaffected;
      continue;
    }
    for (auto& poll : a.remaining_polls) {
      PollingTask task;
      task.instance_sql = instance_sql;
      task.type_id = a.type_id;
      task.query = std::move(poll);
      task.deadline = start + options_.cycle_deadline;
      task.affected_pages = a.affected_pages;
      tasks.push_back(std::move(task));
      if (mutable_type != nullptr) ++mutable_type->stats.polling_queries;
    }
  }

  // ---- Schedule and execute polling queries, parallel phase. ----
  // The degradation rung sets this cycle's effective polling budget:
  // kEconomy shrinks it, kConservative (or an economy budget of 0)
  // skips polling entirely — every undecided instance is condemned.
  size_t effective_budget = options_.max_polls_per_cycle;
  bool skip_polls = mode == DegradationMode::kConservative;
  if (mode == DegradationMode::kEconomy) {
    size_t economy = options_.overload.economy_poll_budget;
    if (economy == 0) {
      skip_polls = true;
    } else {
      effective_budget = effective_budget == 0
                             ? economy
                             : std::min(effective_budget, economy);
    }
  }
  InvalidationScheduler::Schedule schedule;
  if (skip_polls) {
    // Condemn whole instances exactly like the scheduler would: one
    // representative task per instance, in task order.
    std::set<std::string> condemned;
    for (PollingTask& task : tasks) {
      if (condemned.insert(task.instance_sql).second) {
        schedule.conservative.push_back(std::move(task));
      }
    }
  } else {
    schedule = scheduler_.BuildWithBudget(std::move(tasks),
                                          effective_budget);
  }

  // Condemn budget-overflow instances BEFORE any poll is issued: a
  // condemned instance is invalidated regardless, so polling any of its
  // queries would be pure DBMS waste.
  for (PollingTask& task : schedule.conservative) {
    if (affected_instances.insert(task.instance_sql).second) {
      ++stats_.conservative_invalidations;
      ++report.conservative_invalidations;
    }
  }

  // Group the admitted polls per instance (the scheduler emits them
  // contiguously); instances the analysis already decided need no polls.
  std::vector<PollGroup> poll_groups;
  for (PollingTask& task : schedule.to_poll) {
    if (affected_instances.contains(task.instance_sql)) continue;
    if (poll_groups.empty() ||
        poll_groups.back().instance_sql != task.instance_sql) {
      poll_groups.emplace_back();
      poll_groups.back().instance_sql = task.instance_sql;
      poll_groups.back().type_id = task.type_id;
    }
    poll_groups.back().queries.push_back(std::move(task.query));
  }

  // Consolidation (the paper's type-level grouping applied to polling):
  // instances of one type polling one single-table target share their
  // residuals' shape, so their polls merge into chunks of
  // `SELECT * FROM target WHERE (r1) OR (r2) OR ...` — one DBMS round
  // trip per chunk — and each returned row is matched back to its member
  // residuals in-process. Buckets with a single instance keep the exact
  // per-query path (same polls_issued as ever). Which instances end up
  // affected is unchanged; only the round-trip count (and, if a merged
  // statement fails, the blast radius of conservatism) differs.
  std::vector<MergedPoll> merged_polls;
  std::vector<size_t> classic_groups;
  if (options_.consolidate_polls && poll_groups.size() > 1) {
    std::vector<bool> consolidated(poll_groups.size(), false);
    std::map<std::tuple<uint64_t, std::string, std::string>,
             std::vector<size_t>>
        buckets;
    for (size_t g = 0; g < poll_groups.size(); ++g) {
      const PollGroup& group = poll_groups[g];
      const sql::TableRef* target = nullptr;
      bool mergeable = !group.queries.empty();
      for (const auto& query : group.queries) {
        if (query->from.size() != 1 || query->where == nullptr) {
          mergeable = false;
          break;
        }
        if (target == nullptr) {
          target = &query->from[0];
        } else if (!EqualsIgnoreCase(query->from[0].table, target->table) ||
                   !EqualsIgnoreCase(query->from[0].alias, target->alias)) {
          mergeable = false;
          break;
        }
      }
      if (!mergeable) continue;
      buckets[{group.type_id, AsciiToLower(target->table),
               AsciiToLower(target->alias)}]
          .push_back(g);
    }
    for (const auto& [bucket_key, bucket_groups] : buckets) {
      if (bucket_groups.size() < 2) continue;
      size_t chunk = options_.consolidated_poll_chunk == 0
                         ? bucket_groups.size()
                         : options_.consolidated_poll_chunk;
      for (size_t base = 0; base < bucket_groups.size(); base += chunk) {
        size_t end = std::min(base + chunk, bucket_groups.size());
        MergedPoll poll;
        poll.from = poll_groups[bucket_groups[base]].queries[0]->from[0];
        sql::ExpressionPtr disjunction;
        for (size_t j = base; j < end; ++j) {
          size_t g = bucket_groups[j];
          poll.groups.push_back(g);
          consolidated[g] = true;
          for (size_t q = 0; q < poll_groups[g].queries.size(); ++q) {
            poll.members.push_back({g, q});
            sql::ExpressionPtr clause = poll_groups[g].queries[q]->where->Clone();
            disjunction = disjunction == nullptr
                              ? std::move(clause)
                              : std::make_unique<sql::BinaryExpr>(
                                    sql::BinaryOp::kOr, std::move(disjunction),
                                    std::move(clause));
          }
        }
        auto statement = std::make_unique<sql::SelectStatement>();
        sql::SelectItem star;
        star.star = true;
        statement->items.push_back(std::move(star));
        statement->from.push_back(poll.from);
        statement->where = std::move(disjunction);
        poll.statement = std::move(statement);
        merged_polls.push_back(std::move(poll));
      }
    }
    for (size_t g = 0; g < poll_groups.size(); ++g) {
      if (!consolidated[g]) classic_groups.push_back(g);
    }
  } else {
    classic_groups.reserve(poll_groups.size());
    for (size_t g = 0; g < poll_groups.size(); ++g) classic_groups.push_back(g);
  }

  // Fan out: one worker task per classic instance (its polls run in
  // order and stop at the first hit or failure, like the serial loop) or
  // per merged statement (one round trip, then in-process demux).
  RunParallel(classic_groups.size() + merged_polls.size(), [&](size_t u) {
    if (u < classic_groups.size()) {
      PollGroup& group = poll_groups[classic_groups[u]];
      for (const auto& query : group.queries) {
        std::string poll_sql = sql::StatementToSql(*query);
        ++group.polls_issued;
        Result<db::QueryResult> result = ExecutePoll(poll_sql);
        if (!result.ok()) {
          group.conservative = true;
          group.failure = result.status().ToString();
          return;
        }
        if (!result->rows.empty()) {
          group.poll_hit = true;
          return;
        }
      }
      return;
    }
    MergedPoll& poll = merged_polls[u - classic_groups.size()];
    std::string poll_sql = sql::StatementToSql(*poll.statement);
    Result<db::QueryResult> result = ExecutePoll(poll_sql);
    if (!result.ok()) {
      poll.failed = true;
      poll.failure = result.status().ToString();
      return;
    }
    for (const db::Row& row : result->rows) {
      if (poll.hit_groups.size() == poll.groups.size()) break;
      for (const MergedPoll::MemberRef& member : poll.members) {
        if (poll.hit_groups.contains(member.group)) continue;
        const auto& query = poll_groups[member.group].queries[member.query];
        if (RowSatisfies(*query->where, poll.from, result->columns, row)) {
          poll.hit_groups.insert(member.group);
        }
      }
    }
  });

  // Serial merge in deterministic order: classic groups first (in group
  // order), then merged polls (in bucket order).
  for (size_t g : classic_groups) {
    PollGroup& group = poll_groups[g];
    stats_.polls_issued += group.polls_issued;
    report.polls_issued += group.polls_issued;
    if (group.conservative) {
      // A failed poll must not leak staleness: invalidate conservatively.
      LogMessage(LogLevel::kWarning,
                 StrCat("polling query failed (", group.failure,
                        "); invalidating conservatively"));
      affected_instances.insert(group.instance_sql);
      ++stats_.conservative_invalidations;
      ++report.conservative_invalidations;
      continue;
    }
    if (group.poll_hit) {
      ++stats_.poll_hits;
      affected_instances.insert(group.instance_sql);
    }
  }
  for (MergedPoll& poll : merged_polls) {
    ++stats_.polls_issued;
    ++report.polls_issued;
    ++matcher_stats_.consolidated_polls;
    matcher_stats_.consolidated_members += poll.members.size();
    if (poll.failed) {
      // One failed round trip decides every member conservatively.
      LogMessage(LogLevel::kWarning,
                 StrCat("consolidated polling query failed (", poll.failure,
                        "); invalidating ", poll.groups.size(),
                        " instances conservatively"));
      for (size_t g : poll.groups) {
        affected_instances.insert(poll_groups[g].instance_sql);
        ++stats_.conservative_invalidations;
        ++report.conservative_invalidations;
      }
      continue;
    }
    for (size_t g : poll.groups) {
      if (poll.hit_groups.contains(g)) {
        ++stats_.poll_hits;
        affected_instances.insert(poll_groups[g].instance_sql);
      }
    }
  }

  // ---- Generate invalidation messages, parallel phase. ----
  report.affected_instances = affected_instances.size();

  // Serial: collect the deduplicated page list (affected_instances is an
  // ordered set, so the order is deterministic) and build each eject
  // message — a normal HTTP request addressed at the page, carrying the
  // Cache-Control: eject extension (Section 4.2.4).
  std::vector<Eject> ejects;
  std::set<std::string> pages_done;
  for (const std::string& instance_sql : affected_instances) {
    for (const std::string& page_key : map_->PagesForQuery(instance_sql)) {
      if (!pages_done.insert(page_key).second) continue;
      Eject eject;
      eject.page_key = page_key;
      Result<http::PageId> id = http::PageId::FromCacheKey(page_key);
      if (id.ok()) {
        eject.request.method = http::Method::kGet;
        eject.request.host = id->host();
        eject.request.path = id->path();
        eject.request.get_params = id->get_params();
        eject.request.post_params = id->post_params();
        eject.request.cookies = id->cookie_params();
      } else {
        LogMessage(LogLevel::kWarning,
                   StrCat("unparseable cache key '", page_key,
                          "': ", id.status().ToString()));
      }
      http::CacheControl cc;
      cc.eject = true;
      eject.request.headers.Set("Cache-Control", cc.ToHeaderValue());
      ejects.push_back(std::move(eject));
    }
  }

  // Fan out across sinks: each sink is owned by one worker task, which
  // delivers every message in order (preserving the per-sink FIFO a
  // ReliableDeliveryQueue depends on) — sinks never see concurrent calls.
  std::vector<SinkTally> tallies(sinks_.size());
  RunParallel(sinks_.size(), [&](size_t s) {
    InvalidationSink* sink = sinks_[s];
    SinkTally& tally = tallies[s];
    for (const Eject& eject : ejects) {
      Status sent = sink->SendInvalidation(eject.request, eject.page_key);
      ++tally.sent;
      if (!sent.ok()) {
        // A sink that rejects a message owns no retry state — without a
        // ReliableDeliveryQueue in front, this page may stay stale in
        // that cache. Surface it loudly (at the merge).
        ++tally.failures;
        tally.warnings.push_back(
            StrCat("invalidation delivery failed for '", eject.page_key,
                   "': ", sent.ToString()));
      }
    }
  });
  for (const SinkTally& tally : tallies) {
    stats_.messages_sent += tally.sent;
    stats_.send_failures += tally.failures;
    for (const std::string& warning : tally.warnings) {
      LogMessage(LogLevel::kWarning, warning);
    }
  }

  // Serial post-pass: ejected pages leave the map (retiring their rows
  // for every instance that fed them), and instances left without pages
  // are unregistered.
  for (const Eject& eject : ejects) {
    map_->RemovePage(eject.page_key);
    ++report.pages_invalidated;
    ++stats_.pages_invalidated;
  }
  for (const std::string& instance_sql : affected_instances) {
    if (map_->NumPagesForQuery(instance_sql) == 0) {
      RetireInstance(instance_sql);
    }
  }

  // ---- Policy discovery: refresh cacheability verdicts. ----
  registry_.ForEachTypeMutable([&](QueryType& type) {
    type.cacheable = policy_.IsQueryTypeCacheable(type);
  });

  report.duration = clock_->NowMicros() - start;
  last_cycle_duration_ = report.duration;
  return report;
}

}  // namespace cacheportal::invalidator
