#include "invalidator/invalidator.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "common/strings.h"
#include "invalidator/stages.h"
#include "sql/template.h"

namespace cacheportal::invalidator {

Invalidator::Invalidator(db::Database* database, sniffer::QiUrlMap* map,
                         const Clock* clock, InvalidatorOptions options)
    : database_(database),
      map_(map),
      clock_(clock),
      options_(options),
      plane_(database, options.metadata_shards, options.use_type_matcher),
      info_(database),
      scheduler_(options.max_polls_per_cycle) {
  policy_.SetThresholds(options_.thresholds);
  if (options_.polling_cache_capacity > 0) {
    polling_cache_ = std::make_unique<PollingDataCache>(
        database_, options_.polling_cache_capacity);
  }
  if (options_.worker_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.worker_threads);
  }
  if (options_.overload.enabled) {
    overload_ = std::make_unique<OverloadController>(clock_,
                                                     options_.overload);
  }
  // Attach at the database's current position: updates that committed
  // before CachePortal was deployed predate every cached page.
  last_update_seq_ = database_->update_log().LastSeq();
}

void Invalidator::AddSink(InvalidationSink* sink) { sinks_.push_back(sink); }

Status Invalidator::RegisterQueryType(const std::string& name,
                                      const std::string& parameterized_sql) {
  return plane_.RegisterType(name, parameterized_sql);
}

Status Invalidator::RegisterInstance(const std::string& sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(const QueryInstance* instance,
                               plane_.RegisterInstance(sql));
  (void)instance;
  return Status::OK();
}

Status Invalidator::CreateJoinIndex(const std::string& table,
                                    const std::string& column) {
  return info_.CreateJoinIndex(table, column);
}

bool Invalidator::IsQuerySqlCacheable(const std::string& sql_text) const {
  const QueryInstance* instance = plane_.FindInstance(sql_text);
  uint64_t type_id = 0;
  if (instance != nullptr) {
    type_id = instance->type_id;
  } else {
    // The instance may have been retired with its pages; its query type
    // (and the type's policy verdict) outlives it.
    Result<sql::QueryTemplate> tmpl = sql::ExtractTemplateFromSql(sql_text);
    if (!tmpl.ok()) return true;  // Unknown queries default to yes.
    type_id = tmpl->type_id;
  }
  const QueryType* type = plane_.FindType(type_id);
  if (type == nullptr) return true;
  return type->cacheable;
}

MatcherStats Invalidator::matcher_stats() const {
  MatcherStats merged = cycle_matcher_stats_;
  MatcherStats compile = plane_.CompileStats();
  merged.types_compiled = compile.types_compiled;
  merged.types_handled = compile.types_handled;
  return merged;
}

std::string Invalidator::StatsReport() const {
  std::string out = StrCat(
      "invalidator: cycles=", stats_.cycles,
      " updates=", stats_.updates_processed,
      " checks=", stats_.instance_checks,
      " affected=", stats_.affected_immediately,
      " unaffected=", stats_.unaffected, " polls=", stats_.polls_issued,
      " idx-answered=", stats_.polls_answered_by_index,
      " poll-hits=", stats_.poll_hits,
      " conservative=", stats_.conservative_invalidations,
      " emergency-flushes=", stats_.emergency_flushes,
      " pages-invalidated=", stats_.pages_invalidated,
      " messages-sent=", stats_.messages_sent,
      " send-failures=", stats_.send_failures, "\n");
  if (overload_ != nullptr) {
    out += StrCat("  ", overload_->Report(), "\n");
  }
  // Delivery health was invisible here while the queue quietly retried;
  // every observable sink now reports in line.
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* observable = dynamic_cast<const ObservableSink*>(sinks_[i]);
    if (observable == nullptr) continue;
    out += StrCat("  sink ", i, " ", observable->HealthReport(), "\n");
  }
  // The plane's merged iteration is ascending type_id across all shards,
  // so this block is byte-identical at any shard count.
  plane_.ForEachType([&](const QueryType& type) {
    const QueryTypeStats& ts = type.stats;
    out += StrCat("  type '", type.name, "'",
                  type.cacheable ? "" : " [non-cacheable]",
                  ": instances=", ts.instances_seen, " checks=", ts.checks,
                  " affected=", ts.affected, " polls=", ts.polling_queries,
                  " inval-ratio=", ts.InvalidationRatio(),
                  " avg-time-us=", ts.AvgInvalidationTime(),
                  " max-time-us=", ts.max_invalidation_time, "\n");
  });
  return out;
}

namespace {

/// Checkpoint framing. Sink states are opaque bytes (they may contain
/// newlines and serialized HTTP), so they travel as length-prefixed
/// blocks rather than lines.
///
/// v3 (current): per-shard QI/URL-map cursors.
///   cacheportal-invalidator-checkpoint 3
///   update_seq N
///   shards K
///   shard_map_id I CURSOR     (K lines, I in [0, K))
///   sink I LEN \n <LEN bytes> \n   (per checkpointable sink)
///   end
///
/// v1/v2 (legacy, still restorable): one `map_id N` line instead of the
/// shards/shard_map_id block — shard count 1 assumed, the single cursor
/// standing for the merged (minimum) position. Restore treats both the
/// same way: cursors rewind to zero regardless (the in-memory registry
/// died with the process), so only validation differs.
constexpr char kCheckpointMagicV1[] = "cacheportal-invalidator-checkpoint 1";
constexpr char kCheckpointMagicV3[] = "cacheportal-invalidator-checkpoint 3";

}  // namespace

std::string Invalidator::Checkpoint() const {
  std::vector<uint64_t> cursors = plane_.MapCursors();
  std::string out = StrCat(kCheckpointMagicV3, "\n",
                           "update_seq ", last_update_seq_, "\n",
                           "shards ", cursors.size(), "\n");
  for (size_t i = 0; i < cursors.size(); ++i) {
    out += StrCat("shard_map_id ", i, " ", cursors[i], "\n");
  }
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* durable = dynamic_cast<const CheckpointableSink*>(sinks_[i]);
    if (durable == nullptr) continue;
    std::string state = durable->CheckpointState();
    out += StrCat("sink ", i, " ", state.size(), "\n");
    out += state;
    out += "\n";
  }
  out += "end\n";
  return out;
}

Status Invalidator::Restore(const std::string& checkpoint) {
  size_t pos = 0;
  auto next_line = [&checkpoint, &pos]() -> std::optional<std::string> {
    if (pos >= checkpoint.size()) return std::nullopt;
    size_t nl = checkpoint.find('\n', pos);
    if (nl == std::string::npos) nl = checkpoint.size();
    std::string line = checkpoint.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::optional<std::string> magic = next_line();
  if (!magic.has_value()) {
    return Status::ParseError("not an invalidator checkpoint");
  }
  int version = 0;
  if (*magic == kCheckpointMagicV1) {
    version = 1;
  } else if (*magic == kCheckpointMagicV3) {
    version = 3;
  } else {
    return Status::ParseError("not an invalidator checkpoint");
  }
  uint64_t update_seq = 0;
  bool saw_update_seq = false;
  bool saw_end = false;
  std::optional<uint64_t> shard_count;
  std::map<uint64_t, uint64_t> shard_cursors;
  std::map<size_t, std::string> sink_states;
  while (std::optional<std::string> line = next_line()) {
    std::vector<std::string> fields = StrSplit(*line, ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    // All numeric fields parse strictly: a corrupt `update_seq` that
    // strtoull would coerce to 0 must fail loudly, not silently rewind
    // the cursor to the log's beginning (replaying every update), and a
    // garbled sink index must not misassign durable sink state. Record
    // types are version-gated: a v1 blob carrying shard records (or a v3
    // blob carrying `map_id`) is corrupt, not merely old.
    if (fields[0] == "update_seq" && fields.size() == 2) {
      Result<uint64_t> seq = ParseUint64(fields[1]);
      if (!seq.ok()) {
        return Status::ParseError(StrCat("bad update_seq in checkpoint: ",
                                         seq.status().message()));
      }
      update_seq = *seq;
      saw_update_seq = true;
    } else if (version == 1 && fields[0] == "map_id" && fields.size() == 2) {
      // The value is unused (restore rescans the map from zero, see the
      // header comment) but still validated: a garbled cursor means a
      // garbled checkpoint.
      Result<uint64_t> map_id = ParseUint64(fields[1]);
      if (!map_id.ok()) {
        return Status::ParseError(StrCat("bad map_id in checkpoint: ",
                                         map_id.status().message()));
      }
    } else if (version == 3 && fields[0] == "shards" && fields.size() == 2) {
      Result<uint64_t> count = ParseUint64(fields[1]);
      if (!count.ok() || *count == 0) {
        return Status::ParseError(StrCat("bad shard count in checkpoint: ",
                                         fields[1]));
      }
      shard_count = *count;
    } else if (version == 3 && fields[0] == "shard_map_id" &&
               fields.size() == 3) {
      Result<uint64_t> index = ParseUint64(fields[1]);
      Result<uint64_t> cursor = ParseUint64(fields[2]);
      if (!index.ok() || !cursor.ok()) {
        return Status::ParseError(
            StrCat("bad shard_map_id record in checkpoint: ", *line));
      }
      if (!shard_cursors.emplace(*index, *cursor).second) {
        return Status::ParseError(
            StrCat("duplicate shard_map_id record in checkpoint: ", *line));
      }
    } else if (fields[0] == "sink" && fields.size() == 3) {
      Result<uint64_t> index = ParseUint64(fields[1]);
      Result<uint64_t> length = ParseUint64(fields[2]);
      if (!index.ok() || !length.ok()) {
        return Status::ParseError(
            StrCat("bad sink record in checkpoint: ", *line));
      }
      if (pos + *length > checkpoint.size()) {
        return Status::ParseError("truncated sink state in checkpoint");
      }
      sink_states[static_cast<size_t>(*index)] =
          checkpoint.substr(pos, *length);
      pos += *length + 1;  // The block is followed by a separator '\n'.
    } else {
      return Status::ParseError(StrCat("unknown checkpoint record: ", *line));
    }
  }
  if (!saw_end || !saw_update_seq) {
    return Status::ParseError("truncated invalidator checkpoint");
  }
  if (version == 3) {
    if (!shard_count.has_value()) {
      return Status::ParseError("checkpoint missing shard count");
    }
    if (shard_cursors.size() != *shard_count) {
      return Status::ParseError(
          StrCat("checkpoint declares ", *shard_count, " shards but carries ",
                 shard_cursors.size(), " cursors"));
    }
    for (const auto& [index, cursor] : shard_cursors) {
      if (index >= *shard_count) {
        return Status::ParseError(
            StrCat("checkpoint shard cursor index ", index,
                   " out of range (", *shard_count, " shards)"));
      }
    }
    // A different live shard count is fine: cursors rewind to zero below
    // either way, so the persisted partitioning never constrains the new
    // process's configuration.
  }
  for (const auto& [index, state] : sink_states) {
    if (index >= sinks_.size()) {
      return Status::InvalidArgument(
          StrCat("checkpoint references sink ", index, " but only ",
                 sinks_.size(), " sinks are attached"));
    }
    auto* durable = dynamic_cast<CheckpointableSink*>(sinks_[index]);
    if (durable == nullptr) {
      return Status::InvalidArgument(
          StrCat("checkpoint has durable state for sink ", index,
                 " but the attached sink is not checkpointable"));
    }
    CACHEPORTAL_RETURN_NOT_OK(durable->RestoreState(state));
  }
  last_update_seq_ = update_seq;
  plane_.ResetMapCursors();
  last_map_epoch_.reset();  // Force the next cycle's map scan.
  return Status::OK();
}

StageEnv Invalidator::MakeStageEnv() {
  StageEnv env;
  env.database = database_;
  env.map = map_;
  env.clock = clock_;
  env.options = &options_;
  env.plane = &plane_;
  env.info = &info_;
  env.scheduler = &scheduler_;
  env.polling_cache = polling_cache_.get();
  env.pool = pool_.get();
  env.overload = overload_.get();
  env.sinks = &sinks_;
  env.stats = &stats_;
  env.cycle_matcher_stats = &cycle_matcher_stats_;
  env.last_update_seq = &last_update_seq_;
  env.last_map_epoch = &last_map_epoch_;
  env.execute_poll = [this](const std::string& poll_sql) {
    return ExecutePoll(poll_sql);
  };
  env.observe_signals = [this] { return ObserveOverloadSignals(); };
  return env;
}

Result<CycleReport> Invalidator::RunCycle() {
  CycleContext ctx;
  ctx.start = clock_->NowMicros();
  ++stats_.cycles;

  StageEnv env = MakeStageEnv();
  CACHEPORTAL_RETURN_NOT_OK(IngestStage(env).Run(ctx));
  if (ctx.proceed) {
    CACHEPORTAL_RETURN_NOT_OK(ImpactStage(env).Run(ctx));
    CACHEPORTAL_RETURN_NOT_OK(PollStage(env).Run(ctx));
    CACHEPORTAL_RETURN_NOT_OK(DeliverStage(env).Run(ctx));

    // ---- Policy discovery: refresh cacheability verdicts. ----
    plane_.ForEachTypeMutable([&](QueryType& type) {
      type.cacheable = policy_.IsQueryTypeCacheable(type);
    });
  }

  ctx.report.duration = clock_->NowMicros() - ctx.start;
  last_cycle_duration_ = ctx.report.duration;
  return ctx.report;
}

Result<db::QueryResult> Invalidator::ExecutePoll(const std::string& poll_sql) {
  server::Connection* external =
      polling_connection_.load(std::memory_order_acquire);
  if (external != nullptr) {
    std::lock_guard<std::mutex> lock(polling_connection_mu_);
    return external->ExecuteQuery(poll_sql);
  }
  if (polling_cache_ != nullptr) {
    return polling_cache_->ExecuteQuery(poll_sql);
  }
  return database_->ExecuteSql(poll_sql);
}

OverloadSignals Invalidator::ObserveOverloadSignals() const {
  OverloadSignals signals;
  const db::UpdateLog& log =
      static_cast<const db::Database*>(database_)->update_log();
  uint64_t last = log.LastSeq();
  signals.backlog_depth =
      last > last_update_seq_ ? last - last_update_seq_ : 0;
  if (std::optional<Micros> oldest =
          log.OldestTimestampSince(last_update_seq_)) {
    Micros now = clock_->NowMicros();
    signals.backlog_age = now > *oldest ? now - *oldest : 0;
  }
  for (const InvalidationSink* sink : sinks_) {
    if (const auto* observable = dynamic_cast<const ObservableSink*>(sink)) {
      signals.delivery_backlog += observable->PendingBacklog();
    }
  }
  signals.last_cycle_latency = last_cycle_duration_;
  return signals;
}

}  // namespace cacheportal::invalidator
