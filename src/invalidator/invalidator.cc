#include "invalidator/invalidator.h"

#include <cstdlib>
#include <map>
#include <optional>
#include <set>

#include "common/logging.h"
#include "common/strings.h"
#include "db/delta.h"
#include "sql/printer.h"

namespace cacheportal::invalidator {

Invalidator::Invalidator(db::Database* database, sniffer::QiUrlMap* map,
                         const Clock* clock, InvalidatorOptions options)
    : database_(database),
      map_(map),
      clock_(clock),
      options_(options),
      info_(database),
      scheduler_(options.max_polls_per_cycle) {
  policy_.SetThresholds(options_.thresholds);
  if (options_.polling_cache_capacity > 0) {
    polling_cache_ = std::make_unique<PollingDataCache>(
        database_, options_.polling_cache_capacity);
  }
  // Attach at the database's current position: updates that committed
  // before CachePortal was deployed predate every cached page.
  last_update_seq_ = database_->update_log().LastSeq();
}

void Invalidator::AddSink(InvalidationSink* sink) { sinks_.push_back(sink); }

Status Invalidator::RegisterQueryType(const std::string& name,
                                      const std::string& parameterized_sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t id,
                               registry_.RegisterType(name,
                                                      parameterized_sql));
  (void)id;
  return Status::OK();
}

Status Invalidator::CreateJoinIndex(const std::string& table,
                                    const std::string& column) {
  return info_.CreateJoinIndex(table, column);
}

bool Invalidator::IsQuerySqlCacheable(const std::string& sql_text) const {
  const QueryInstance* instance = registry_.FindInstance(sql_text);
  uint64_t type_id = 0;
  if (instance != nullptr) {
    type_id = instance->type_id;
  } else {
    // The instance may have been retired with its pages; its query type
    // (and the type's policy verdict) outlives it.
    Result<sql::QueryTemplate> tmpl = sql::ExtractTemplateFromSql(sql_text);
    if (!tmpl.ok()) return true;  // Unknown queries default to yes.
    type_id = tmpl->type_id;
  }
  const QueryType* type = registry_.FindType(type_id);
  if (type == nullptr) return true;
  return type->cacheable;
}

std::string Invalidator::StatsReport() const {
  std::string out = StrCat(
      "invalidator: cycles=", stats_.cycles,
      " updates=", stats_.updates_processed,
      " checks=", stats_.instance_checks,
      " affected=", stats_.affected_immediately,
      " unaffected=", stats_.unaffected, " polls=", stats_.polls_issued,
      " idx-answered=", stats_.polls_answered_by_index,
      " poll-hits=", stats_.poll_hits,
      " conservative=", stats_.conservative_invalidations,
      " pages-invalidated=", stats_.pages_invalidated,
      " send-failures=", stats_.send_failures, "\n");
  for (const QueryType* type : registry_.Types()) {
    const QueryTypeStats& ts = type->stats;
    out += StrCat("  type '", type->name, "'",
                  type->cacheable ? "" : " [non-cacheable]",
                  ": instances=", ts.instances_seen, " checks=", ts.checks,
                  " affected=", ts.affected, " polls=", ts.polling_queries,
                  " inval-ratio=", ts.InvalidationRatio(),
                  " avg-time-us=", ts.AvgInvalidationTime(),
                  " max-time-us=", ts.max_invalidation_time, "\n");
  }
  return out;
}

namespace {

/// Checkpoint framing. Sink states are opaque bytes (they may contain
/// newlines and serialized HTTP), so they travel as length-prefixed
/// blocks rather than lines.
constexpr char kCheckpointMagic[] = "cacheportal-invalidator-checkpoint 1";

}  // namespace

std::string Invalidator::Checkpoint() const {
  std::string out = StrCat(kCheckpointMagic, "\n",
                           "update_seq ", last_update_seq_, "\n",
                           "map_id ", last_map_id_, "\n");
  for (size_t i = 0; i < sinks_.size(); ++i) {
    const auto* durable = dynamic_cast<const CheckpointableSink*>(sinks_[i]);
    if (durable == nullptr) continue;
    std::string state = durable->CheckpointState();
    out += StrCat("sink ", i, " ", state.size(), "\n");
    out += state;
    out += "\n";
  }
  out += "end\n";
  return out;
}

Status Invalidator::Restore(const std::string& checkpoint) {
  size_t pos = 0;
  auto next_line = [&checkpoint, &pos]() -> std::optional<std::string> {
    if (pos >= checkpoint.size()) return std::nullopt;
    size_t nl = checkpoint.find('\n', pos);
    if (nl == std::string::npos) nl = checkpoint.size();
    std::string line = checkpoint.substr(pos, nl - pos);
    pos = nl + 1;
    return line;
  };

  std::optional<std::string> magic = next_line();
  if (!magic.has_value() || *magic != kCheckpointMagic) {
    return Status::ParseError("not an invalidator checkpoint");
  }
  uint64_t update_seq = 0;
  bool saw_update_seq = false;
  bool saw_end = false;
  std::map<size_t, std::string> sink_states;
  while (std::optional<std::string> line = next_line()) {
    std::vector<std::string> fields = StrSplit(*line, ' ');
    if (fields.empty() || fields[0].empty()) continue;
    if (fields[0] == "end") {
      saw_end = true;
      break;
    }
    if (fields[0] == "update_seq" && fields.size() == 2) {
      update_seq = std::strtoull(fields[1].c_str(), nullptr, 10);
      saw_update_seq = true;
    } else if (fields[0] == "map_id" && fields.size() == 2) {
      // Parsed for format completeness; restore rescans the map from
      // zero (see header comment).
    } else if (fields[0] == "sink" && fields.size() == 3) {
      size_t index = std::strtoull(fields[1].c_str(), nullptr, 10);
      size_t length = std::strtoull(fields[2].c_str(), nullptr, 10);
      if (pos + length > checkpoint.size()) {
        return Status::ParseError("truncated sink state in checkpoint");
      }
      sink_states[index] = checkpoint.substr(pos, length);
      pos += length + 1;  // The block is followed by a separator '\n'.
    } else {
      return Status::ParseError(StrCat("unknown checkpoint record: ", *line));
    }
  }
  if (!saw_end || !saw_update_seq) {
    return Status::ParseError("truncated invalidator checkpoint");
  }
  for (const auto& [index, state] : sink_states) {
    if (index >= sinks_.size()) {
      return Status::InvalidArgument(
          StrCat("checkpoint references sink ", index, " but only ",
                 sinks_.size(), " sinks are attached"));
    }
    auto* durable = dynamic_cast<CheckpointableSink*>(sinks_[index]);
    if (durable == nullptr) {
      return Status::InvalidArgument(
          StrCat("checkpoint has durable state for sink ", index,
                 " but the attached sink is not checkpointable"));
    }
    CACHEPORTAL_RETURN_NOT_OK(durable->RestoreState(state));
  }
  last_update_seq_ = update_seq;
  last_map_id_ = 0;
  return Status::OK();
}

Status Invalidator::InvalidateInstancePages(const std::string& instance_sql,
                                            std::set<std::string>* pages_done,
                                            uint64_t* pages_invalidated) {
  for (const std::string& page_key : map_->PagesForQuery(instance_sql)) {
    if (!pages_done->insert(page_key).second) continue;

    // Build the eject message: a normal HTTP request addressed at the
    // page, carrying the Cache-Control: eject extension (Section 4.2.4).
    Result<http::PageId> id = http::PageId::FromCacheKey(page_key);
    http::HttpRequest message;
    if (id.ok()) {
      message.method = http::Method::kGet;
      message.host = id->host();
      message.path = id->path();
      message.get_params = id->get_params();
      message.post_params = id->post_params();
      message.cookies = id->cookie_params();
    } else {
      LogMessage(LogLevel::kWarning,
                 StrCat("unparseable cache key '", page_key,
                        "': ", id.status().ToString()));
    }
    http::CacheControl cc;
    cc.eject = true;
    message.headers.Set("Cache-Control", cc.ToHeaderValue());

    for (InvalidationSink* sink : sinks_) {
      Status sent = sink->SendInvalidation(message, page_key);
      ++stats_.messages_sent;
      if (!sent.ok()) {
        // A sink that rejects a message owns no retry state — without a
        // ReliableDeliveryQueue in front, this page may stay stale in
        // that cache. Surface it loudly.
        ++stats_.send_failures;
        LogMessage(LogLevel::kWarning,
                   StrCat("invalidation delivery failed for '", page_key,
                          "': ", sent.ToString()));
      }
    }
    ++*pages_invalidated;
    ++stats_.pages_invalidated;

    // Retire every other instance that fed this page: its rows leave the
    // map with the page. (Instances left without pages are unregistered
    // below.)
    map_->RemovePage(page_key);
  }
  if (map_->PagesForQuery(instance_sql).empty()) {
    registry_.UnregisterInstance(instance_sql);
  }
  return Status::OK();
}

Result<CycleReport> Invalidator::RunCycle() {
  CycleReport report;
  Micros start = clock_->NowMicros();
  ++stats_.cycles;

  // ---- Registration module, online mode: scan the QI/URL map. ----
  for (const sniffer::QiUrlEntry& entry : map_->ReadSince(last_map_id_)) {
    last_map_id_ = std::max(last_map_id_, entry.id);
    Result<const QueryInstance*> instance =
        registry_.RegisterInstance(entry.query_sql);
    if (!instance.ok()) {
      // Unparseable query: nothing we can safely track. Drop its pages
      // from consideration (they were cached under a query we cannot
      // invalidate — treat as immediately suspect).
      LogMessage(LogLevel::kWarning,
                 StrCat("cannot register query instance: ",
                        instance.status().ToString()));
      continue;
    }
    ++report.new_instances;
    ++stats_.instances_registered;
  }

  // ---- Invalidation module: pull the update log. ----
  std::vector<db::UpdateRecord> records =
      database_->update_log().ReadSince(last_update_seq_);
  if (!records.empty()) last_update_seq_ = records.back().seq;
  report.updates = records.size();
  stats_.updates_processed += records.size();

  if (records.empty()) {
    report.duration = clock_->NowMicros() - start;
    return report;
  }

  db::DeltaSet deltas = db::DeltaSet::FromRecords(records);
  // The internal polling cache must not serve results that predate this
  // batch: drop everything reading an updated table first.
  if (polling_cache_ != nullptr) polling_cache_->Synchronize(deltas);
  // Keep the information manager's auxiliary structures current *after*
  // analysis would be wrong for deletes (the index must reflect the state
  // including this batch for inserts when answering polls). The paper's
  // daemon applies the same update stream it analyzes; we apply before
  // answering polls so index answers match the database state the polls
  // would see.
  info_.ApplyDeltas(deltas);

  ImpactAnalyzer analyzer(database_);
  std::set<std::string> affected_instances;
  std::vector<PollingTask> tasks;

  // Analyze instances grouped by query type (Section 4.1.2's grouping).
  for (const QueryType* type : registry_.Types()) {
    for (const QueryInstance* instance :
         registry_.InstancesOfType(type->type_id)) {
      if (affected_instances.contains(instance->sql)) continue;
      if (map_->PagesForQuery(instance->sql).empty()) {
        // All pages built from this instance already left the cache
        // (evicted or invalidated through another instance): retire it.
        std::string sql_copy = instance->sql;
        registry_.UnregisterInstance(sql_copy);
        continue;
      }
      Micros check_start = clock_->NowMicros();
      bool checked = false;
      bool affected = false;
      std::vector<std::unique_ptr<sql::SelectStatement>> polls;

      // Soundness guard: polling queries run against the post-update
      // database. If one batch touched two or more of this query's FROM
      // relations, a poll can miss impacts (e.g. both join partners
      // deleted together), so invalidate conservatively instead.
      int from_tables_with_deltas = 0;
      for (const sql::TableRef& ref : instance->statement->from) {
        if (!deltas.ForTable(ref.table).empty()) ++from_tables_with_deltas;
      }
      if (from_tables_with_deltas >= 2) {
        ++report.checks;
        ++stats_.instance_checks;
        ++stats_.affected_immediately;
        if (QueryType* mt = registry_.FindType(type->type_id);
            mt != nullptr) {
          ++mt->stats.checks;
          ++mt->stats.affected;
        }
        affected_instances.insert(instance->sql);
        continue;
      }

      for (const std::string& table : deltas.Tables()) {
        const db::TableDelta& delta = deltas.ForTable(table);
        std::vector<db::Row> tuples = delta.inserts;
        tuples.insert(tuples.end(), delta.deletes.begin(),
                      delta.deletes.end());
        if (tuples.empty()) continue;
        checked = true;

        if (options_.batch_deltas) {
          CACHEPORTAL_ASSIGN_OR_RETURN(
              ImpactResult impact,
              analyzer.AnalyzeDelta(*instance->statement, table, tuples));
          if (impact.kind == ImpactKind::kAffected) {
            affected = true;
            break;
          }
          if (impact.kind == ImpactKind::kNeedsPolling) {
            polls.push_back(std::move(impact.polling_query));
          }
        } else {
          for (const db::Row& tuple : tuples) {
            CACHEPORTAL_ASSIGN_OR_RETURN(
                ImpactResult impact,
                analyzer.AnalyzeTuple(*instance->statement, table, tuple));
            if (impact.kind == ImpactKind::kAffected) {
              affected = true;
              break;
            }
            if (impact.kind == ImpactKind::kNeedsPolling) {
              polls.push_back(std::move(impact.polling_query));
            }
          }
          if (affected) break;
        }
      }

      if (!checked) continue;
      ++report.checks;
      ++stats_.instance_checks;
      QueryType* mutable_type = registry_.FindType(type->type_id);
      Micros check_time = clock_->NowMicros() - check_start;
      if (mutable_type != nullptr) {
        QueryTypeStats& ts = mutable_type->stats;
        ++ts.checks;
        ts.total_invalidation_time += check_time;
        ts.max_invalidation_time =
            std::max(ts.max_invalidation_time, check_time);
      }

      if (affected) {
        affected_instances.insert(instance->sql);
        ++stats_.affected_immediately;
        if (mutable_type != nullptr) ++mutable_type->stats.affected;
        continue;
      }
      if (polls.empty()) {
        ++stats_.unaffected;
        continue;
      }
      // Try the information manager's indexes before scheduling DBMS
      // polls.
      bool decided = false;
      bool any_hit = false;
      std::vector<std::unique_ptr<sql::SelectStatement>> remaining;
      for (auto& poll : polls) {
        std::optional<bool> answer = info_.AnswerPoll(*poll);
        if (answer.has_value()) {
          ++stats_.polls_answered_by_index;
          ++report.polls_answered_by_index;
          if (*answer) {
            any_hit = true;
            decided = true;
            break;
          }
        } else {
          remaining.push_back(std::move(poll));
        }
      }
      if (decided && any_hit) {
        affected_instances.insert(instance->sql);
        if (mutable_type != nullptr) ++mutable_type->stats.affected;
        continue;
      }
      if (remaining.empty()) {
        ++stats_.unaffected;
        continue;
      }
      for (auto& poll : remaining) {
        PollingTask task;
        task.instance_sql = instance->sql;
        task.query = std::move(poll);
        task.deadline = start + options_.cycle_deadline;
        task.affected_pages = map_->PagesForQuery(instance->sql).size();
        tasks.push_back(std::move(task));
        if (mutable_type != nullptr) ++mutable_type->stats.polling_queries;
      }
    }
  }

  // ---- Schedule and execute polling queries. ----
  InvalidationScheduler::Schedule schedule = scheduler_.Build(std::move(tasks));
  for (PollingTask& task : schedule.to_poll) {
    if (affected_instances.contains(task.instance_sql)) continue;
    std::string poll_sql = sql::StatementToSql(*task.query);
    ++stats_.polls_issued;
    ++report.polls_issued;
    server::Connection* poll_target = polling_connection_;
    if (poll_target == nullptr) poll_target = polling_cache_.get();
    Result<db::QueryResult> result =
        poll_target != nullptr ? poll_target->ExecuteQuery(poll_sql)
                               : database_->ExecuteSql(poll_sql);
    if (!result.ok()) {
      // A failed poll must not leak staleness: invalidate conservatively.
      LogMessage(LogLevel::kWarning,
                 StrCat("polling query failed (", result.status().ToString(),
                        "); invalidating conservatively"));
      affected_instances.insert(task.instance_sql);
      ++stats_.conservative_invalidations;
      ++report.conservative_invalidations;
      continue;
    }
    if (!result->rows.empty()) {
      ++stats_.poll_hits;
      affected_instances.insert(task.instance_sql);
    }
  }
  for (PollingTask& task : schedule.conservative) {
    if (affected_instances.insert(task.instance_sql).second) {
      ++stats_.conservative_invalidations;
      ++report.conservative_invalidations;
    }
  }

  // ---- Generate invalidation messages. ----
  report.affected_instances = affected_instances.size();
  std::set<std::string> pages_done;
  for (const std::string& instance_sql : affected_instances) {
    CACHEPORTAL_RETURN_NOT_OK(InvalidateInstancePages(
        instance_sql, &pages_done, &report.pages_invalidated));
  }

  // ---- Policy discovery: refresh cacheability verdicts. ----
  for (const QueryType* type : registry_.Types()) {
    QueryType* mutable_type = registry_.FindType(type->type_id);
    mutable_type->cacheable = policy_.IsQueryTypeCacheable(*mutable_type);
  }

  report.duration = clock_->NowMicros() - start;
  return report;
}

}  // namespace cacheportal::invalidator
