#ifndef CACHEPORTAL_INVALIDATOR_INVALIDATOR_H_
#define CACHEPORTAL_INVALIDATOR_INVALIDATOR_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "http/message.h"
#include "invalidator/cycle.h"
#include "invalidator/info_manager.h"
#include "invalidator/metadata_plane.h"
#include "invalidator/options.h"
#include "invalidator/overload.h"
#include "invalidator/policy.h"
#include "invalidator/polling_cache.h"
#include "invalidator/registry.h"
#include "invalidator/scheduler.h"
#include "invalidator/sinks.h"
#include "server/jdbc.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {

/// The CachePortal invalidator (Section 4): registration module (query
/// type registration + discovery from the QI/URL map), information
/// management module (policies, statistics, join indexes), and the
/// invalidation module (update processing into Δ-tables, impact analysis,
/// polling-query scheduling/generation, and invalidation message
/// generation). It runs entirely outside the web server, application
/// server, and DBMS, synchronizing by polling their logs.
///
/// Structure: registration metadata lives in a sharded MetadataPlane
/// (metadata_plane.h), and RunCycle is the fixed composition of four
/// typed stages (stages.h) — IngestStage → ImpactStage → PollStage →
/// DeliverStage — threading one CycleContext through them.
///
/// Threading contract: RunCycle runs on ONE thread (the cycle thread) at
/// a time. Concurrently with a running cycle, other threads may safely
/// call RegisterInstance / IsQuerySqlCacheable / SetPollingConnection,
/// and the sniffer may Add to the QI/URL map — the plane's shard locks
/// and the map's internal lock serialize the touch points. Checkpoint /
/// Restore / StatsReport are cycle-thread-only.
class Invalidator {
 public:
  /// Observes `database`'s update log and the sniffer-maintained `map`.
  /// Nothing is owned; everything must outlive the invalidator.
  Invalidator(db::Database* database, sniffer::QiUrlMap* map,
              const Clock* clock, InvalidatorOptions options = {});

  Invalidator(const Invalidator&) = delete;
  Invalidator& operator=(const Invalidator&) = delete;

  /// Adds a cache to notify (not owned).
  void AddSink(InvalidationSink* sink);

  /// Directs polling queries to `connection` instead of the observed
  /// database — e.g. a middle-tier data cache maintained for the
  /// invalidator. Pass nullptr to return to direct execution.
  ///
  /// Call-during-cycle contract: safe to call from any thread at any
  /// time, including while a cycle is polling (the pointer is atomic
  /// with release/acquire ordering, and polls through the external
  /// connection are serialized by a mutex). Polls already in flight
  /// finish against the connection they picked up; `connection` must
  /// therefore stay alive until the cycle after the one during which it
  /// was replaced completes.
  void SetPollingConnection(server::Connection* connection) {
    polling_connection_.store(connection, std::memory_order_release);
  }

  /// Offline registration mode (Section 4.1.1): declare a query type.
  Status RegisterQueryType(const std::string& name,
                           const std::string& parameterized_sql);

  /// Registers a concrete query instance directly (the same path the
  /// QI/URL-map scan uses). Safe from any thread, concurrently with a
  /// running cycle — registration routes to exactly one metadata shard.
  Status RegisterInstance(const std::string& sql);

  /// Registers a hard invalidation policy rule (Section 4.1.3).
  void AddPolicyRule(PolicyRule rule) { policy_.AddRule(std::move(rule)); }

  /// Maintains a join index on `table`.`column` for index-answered polls.
  Status CreateJoinIndex(const std::string& table, const std::string& column);

  /// One synchronization cycle: scan the QI/URL map for new query
  /// instances, pull new update-log records, analyze, poll, and send
  /// invalidation messages.
  Result<CycleReport> RunCycle();

  /// Cacheability verdict for a query instance's SQL (feedback consumed
  /// by the sniffer's servlet wrapper). Safe from any thread.
  bool IsQuerySqlCacheable(const std::string& sql) const;

  /// Update-log position this invalidator has consumed up to; the log
  /// owner may Truncate() everything at or below it once all other
  /// consumers are past it too.
  uint64_t consumed_update_seq() const { return last_update_seq_; }

  /// Serializes the invalidator's full resumption state (checkpoint v5,
  /// the durable store's snapshot payload): the consumed update-log
  /// position, the per-shard QI/URL-map cursors, the lifetime counters,
  /// every query type (name + canonical template + statistics +
  /// cacheability + strategy tier), every live instance's SQL, and each
  /// CheckpointableSink's durable state (un-acked delivery-queue
  /// messages). Folds any pending restore ops in first. After a crash,
  /// build a fresh Invalidator (same database/map, sinks re-added in the
  /// same order) and Restore() to resume without missing an update.
  std::string Checkpoint();

  /// Rebuilds resumption state from Checkpoint() output — the current v5
  /// format or a legacy v1–v4 blob. The update-log cursor rewinds to
  /// the persisted position, so updates that committed after the
  /// checkpoint (including during the outage) are replayed — at least
  /// once, made safe by idempotent ejects.
  ///
  /// v5 additionally pins each type's persisted strategy tier
  /// (MetadataPlane::InstallTier) before any instance re-registers, so
  /// the strategy census and dispatch match the dead process exactly;
  /// v4 blobs carry no tiers, so restored types re-derive them at their
  /// first instance registration.
  ///
  /// v4/v5 restore the registry WITHOUT the O(N) parse cost up front:
  /// types, statistics, and cursors rebuild eagerly (cursors restore to
  /// their persisted positions — no map rescan), while instance SQLs are
  /// queued and re-registered lazily by ApplyPendingRestore() (run
  /// automatically at the next cycle) — restart-to-ready is O(types),
  /// not O(instances). v1–v3 keep their historical semantics: map
  /// cursors rewind to zero and live map rows re-register on the next
  /// scan.
  Status Restore(const std::string& checkpoint);

  // ---- Durability seams (storage::DurableMetadataStore wiring). ----

  /// Change detector state for EncodeDurableDelta: what the last emitted
  /// delta said, so unchanged types/sinks are skipped.
  struct DurableDeltaBaseline {
    std::map<uint64_t, std::string> type_lines;
    std::map<size_t, std::string> sink_states;
  };

  /// Serializes the per-cycle durable delta — the commit record's
  /// payload: the consumed update-log position, the map cursors, the
  /// absolute lifetime counters, and only the types/sinks whose state
  /// changed since `baseline` (which is updated in place). O(active
  /// types + changed sinks) — flat in the instance count, which is what
  /// keeps commit cost and recovery O(delta).
  std::string EncodeDurableDelta(DurableDeltaBaseline* baseline);

  /// Applies a delta produced by EncodeDurableDelta: cursors, counters,
  /// and sink states apply immediately; per-type statistics are staged
  /// with the pending restore ops (their types may themselves still be
  /// queued) and land in ApplyPendingRestore().
  Status ApplyDurableDelta(const std::string& payload);

  /// Recovery replay: stages a registration/retirement recovered from
  /// the WAL, in order, without the parse cost of applying it now.
  void QueueRestoredRegistration(const std::string& sql);
  void QueueRestoredRetirement(const std::string& sql);
  /// Staged-but-unapplied restore work (ops + per-type stat overrides).
  size_t pending_restore_ops() const;
  /// Drains the staged restore work into the metadata plane: replays
  /// queued registrations/retirements in order (unparseable SQL is
  /// logged and skipped, matching the ingest scan), then overwrites the
  /// affected types' statistics with their persisted values. Runs
  /// automatically at the top of RunCycle and Checkpoint.
  void ApplyPendingRestore();

  /// Passthrough to the metadata plane's mutation observer — the
  /// durability coordinator's journaling hook. Null detaches.
  void SetMetadataMutationObserver(
      std::function<void(bool registered, const std::string& sql)> observer) {
    plane_.SetMutationObserver(std::move(observer));
  }

  /// When set, StatsReport() appends a "  storage: ..." line from this
  /// callback (the durable store's counters — recovery quarantine
  /// totals included).
  void SetStorageReporter(std::function<std::string()> reporter) {
    storage_reporter_ = std::move(reporter);
  }

  /// The sharded registration metadata (registry partitions, matchers,
  /// bind indexes).
  const MetadataPlane& metadata() const { return plane_; }
  const PolicyEngine& policy() const { return policy_; }
  const InformationManager& info() const { return info_; }
  /// The internal polling data cache, or nullptr when not configured.
  const PollingDataCache* polling_cache() const {
    return polling_cache_.get();
  }
  const InvalidatorStats& stats() const { return stats_; }
  /// Merged matcher counters: compile-side from the plane's shards,
  /// cycle-side from the pipeline. Returned by value (the parts live in
  /// different places since the plane was sharded).
  MatcherStats matcher_stats() const;
  const InvalidatorOptions& options() const { return options_; }
  /// The overload controller, or nullptr when not enabled.
  const OverloadController* overload_controller() const {
    return overload_.get();
  }

  /// Human-readable dump of the lifetime counters and the per-query-type
  /// statistics the information management module maintains
  /// (Section 4.3) — for operators and the examples.
  std::string StatsReport() const;

 private:
  /// The borrowed-component bundle the stages run against.
  StageEnv MakeStageEnv();

  /// Executes one polling query against the configured target (external
  /// connection > internal polling cache > the DBMS directly). Safe to
  /// call from pool workers: the external connection is serialized by a
  /// mutex, the other targets are internally thread-safe for reads.
  Result<db::QueryResult> ExecutePoll(const std::string& poll_sql);

  /// Reads this planning point's overload signals (backlog depth/age
  /// from the update log, delivery backlog from ObservableSinks, last
  /// cycle's latency). All deterministic given the clock.
  OverloadSignals ObserveOverloadSignals() const;

  db::Database* database_;
  sniffer::QiUrlMap* map_;
  const Clock* clock_;
  InvalidatorOptions options_;

  /// Registration metadata, sharded by query-type hash (its own locks).
  MetadataPlane plane_;
  PolicyEngine policy_;
  InformationManager info_;
  InvalidationScheduler scheduler_;
  std::vector<InvalidationSink*> sinks_;
  // Written by SetPollingConnection (any thread), read by ExecutePoll
  // (pool workers): release/acquire so a worker that sees the pointer
  // sees the connection fully constructed.
  std::atomic<server::Connection*> polling_connection_{nullptr};
  // Serializes polls through the external connection (its thread-safety
  // is unknown); the internal cache and the DBMS read path are not
  // funneled through this.
  std::mutex polling_connection_mu_;
  std::unique_ptr<PollingDataCache> polling_cache_;
  // Non-null iff options_.worker_threads > 1.
  std::unique_ptr<ThreadPool> pool_;
  // Non-null iff options_.overload.enabled.
  std::unique_ptr<OverloadController> overload_;

  // Cycle-side matcher counters (probes, exclusions, consolidation);
  // compile-side counters live in the plane's shards.
  MatcherStats cycle_matcher_stats_;

  uint64_t last_update_seq_ = 0;
  // QiUrlMap epoch at the last ingest scan (nullopt = must scan).
  std::optional<uint64_t> last_map_epoch_;
  // QiUrlMap removals epoch at the last retire sweep (nullopt = must
  // sweep).
  std::optional<uint64_t> last_retire_epoch_;
  Micros last_cycle_duration_ = 0;
  InvalidatorStats stats_;

  // ---- Staged restore state (drained by ApplyPendingRestore). ----
  struct RestoredOp {
    bool registered = true;  // false = retirement.
    std::string sql;
  };
  struct TypeOverride {
    bool cacheable = true;
    QueryTypeStats stats;
  };
  std::vector<RestoredOp> pending_restore_ops_;
  // Absolute per-type stats from the last applied snapshot/delta; keyed
  // by type_id, last write wins. Applied AFTER the ops (registration
  // bumps instances_seen; the persisted absolute value must overwrite
  // those bumps or recovered reports would double-count).
  std::map<uint64_t, TypeOverride> pending_type_overrides_;
  std::function<std::string()> storage_reporter_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_INVALIDATOR_H_
