#ifndef CACHEPORTAL_INVALIDATOR_INVALIDATOR_H_
#define CACHEPORTAL_INVALIDATOR_INVALIDATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "db/database.h"
#include "http/message.h"
#include "invalidator/bind_index.h"
#include "invalidator/impact.h"
#include "invalidator/info_manager.h"
#include "invalidator/overload.h"
#include "invalidator/policy.h"
#include "invalidator/polling_cache.h"
#include "invalidator/registry.h"
#include "invalidator/scheduler.h"
#include "invalidator/type_matcher.h"
#include "server/jdbc.h"
#include "sniffer/qiurl_map.h"

namespace cacheportal::invalidator {

/// Receives the invalidation messages the invalidator generates
/// (Section 4.2.4). The message is a normal HTTP request carrying
/// `Cache-Control: eject`; `cache_key` is the addressed page's canonical
/// identity. core::PageCacheSink adapts a cache::PageCache.
///
/// Delivery contract: ejects are idempotent (re-ejecting an absent page
/// is a no-op), so a failed SendInvalidation may be retried safely —
/// core::ReliableDeliveryQueue builds at-least-once delivery on exactly
/// this property. A non-OK return means the message may not have reached
/// the cache; the caller must retry or escalate, never ignore it.
///
/// Threading contract: with InvalidatorOptions::worker_threads > 1 the
/// invalidator calls each sink from a pool thread, but never calls the
/// SAME sink from two threads at once, and messages reach each sink in
/// the same order as the serial pipeline would send them. Sinks need no
/// internal locking unless they share mutable state with one another.
class InvalidationSink {
 public:
  virtual ~InvalidationSink() = default;

  virtual Status SendInvalidation(const http::HttpRequest& eject_message,
                                  const std::string& cache_key) = 0;
};

/// Optional capability of an InvalidationSink: delivery health the
/// invalidator can observe. The overload controller reads PendingBacklog
/// as an overload signal, and StatsReport() embeds HealthReport so
/// delivery health is visible where operators already look.
class ObservableSink {
 public:
  virtual ~ObservableSink() = default;

  /// Un-acked (message, sink) pairs the sink still owes downstream.
  virtual size_t PendingBacklog() const = 0;

  /// One diagnostic line (no trailing newline).
  virtual std::string HealthReport() const = 0;
};

/// Optional capability of an InvalidationSink: state that must survive a
/// process restart (e.g. a delivery queue's un-acked messages).
/// Invalidator::Checkpoint embeds each capable sink's state and
/// Invalidator::Restore hands it back, matched by AddSink order.
class CheckpointableSink {
 public:
  virtual ~CheckpointableSink() = default;

  /// Serializes the sink's durable state (opaque bytes).
  virtual std::string CheckpointState() const = 0;

  /// Rebuilds state from CheckpointState() output.
  virtual Status RestoreState(const std::string& state) = 0;
};

/// Tunables of the invalidation process.
struct InvalidatorOptions {
  /// Group a delta's tuples into one batched analysis / polling query per
  /// (instance, table) — the paper's group processing. When false every
  /// tuple is analyzed and polled separately (the ablation baseline).
  bool batch_deltas = true;
  /// Per-cycle polling budget; instances beyond it are invalidated
  /// conservatively. 0 = unlimited.
  size_t max_polls_per_cycle = 0;
  /// Deadline granted to each cycle's invalidations (only orders polling;
  /// the cycle always completes).
  Micros cycle_deadline = kMicrosPerSecond;
  /// When > 0, the invalidator maintains an internal data cache of this
  /// capacity for its polling queries (Section 2.2) instead of hitting
  /// the DBMS for every poll. Ignored while SetPollingConnection() has
  /// installed an external connection.
  size_t polling_cache_capacity = 0;
  /// Worker threads for the parallel invalidation pipeline: per-instance
  /// impact analysis, polling-query execution, and per-sink message
  /// delivery fan out across this many threads. 1 (the default) runs the
  /// cycle serially on the calling thread. Invalidation decisions are
  /// identical at any worker count (per-instance work is independent
  /// given the batch's deltas, and results merge in deterministic
  /// instance order); only wall-clock time changes.
  size_t worker_threads = 1;
  /// Thresholds for discovered (self-tuning) cacheability policies.
  PolicyThresholds thresholds;
  /// Overload control: the adaptive degradation ladder that keeps cache
  /// staleness bounded under update storms (disabled by default).
  OverloadOptions overload;
  /// Compile each query type's template into per-table predicates and
  /// index the bind values of its live instances, so a delta tuple probes
  /// the index for the exact candidate instance set instead of
  /// substituting every instance's WHERE AST (Section 4.2's type-level
  /// group processing). Excluded instances are provably unaffected;
  /// candidates fall through to the regular ImpactAnalyzer, so decisions
  /// and StatsReport() are byte-identical with this off (the ablation
  /// baseline / differential-test oracle).
  bool use_type_matcher = true;
  /// Merge the residual polls of instances sharing a query type and a
  /// polling target into one disjunctive polling query per chunk,
  /// demultiplexing the result rows per instance in-process — O(types)
  /// DBMS round trips instead of O(polling instances). Which pages get
  /// invalidated is unchanged; only polls_issued (and, on poll failure,
  /// the blast radius of conservatism) differs.
  bool consolidate_polls = true;
  /// Maximum member polls folded into one consolidated query (0 =
  /// unlimited). Bounds the disjunction's size.
  size_t consolidated_poll_chunk = 64;
};

/// Counters of the compiled matching layer (kept out of StatsReport so
/// the report stays byte-identical between the indexed and interpreted
/// paths — the differential test diffs the strings).
struct MatcherStats {
  uint64_t types_compiled = 0;   // Templates analyzed.
  uint64_t types_handled = 0;    // ... that produced >= 1 anchor.
  uint64_t probes = 0;           // (tuple, type, table) index probes.
  uint64_t tuples_excluded = 0;  // (instance, tuple) pairs proven
                                 // unaffected with zero AST work.
  uint64_t instances_short_circuited = 0;  // (instance, table) analyses
                                           // skipped entirely.
  uint64_t consolidated_polls = 0;    // Merged polling statements issued.
  uint64_t consolidated_members = 0;  // Residual polls folded into them.
};

/// Lifetime counters for the whole invalidator.
struct InvalidatorStats {
  uint64_t cycles = 0;
  uint64_t updates_processed = 0;       // Update-log records consumed.
  uint64_t instances_registered = 0;    // From QI/URL map scans.
  uint64_t instance_checks = 0;         // (instance, delta) analyses.
  uint64_t affected_immediately = 0;    // Decided without polling.
  uint64_t unaffected = 0;
  uint64_t polls_issued = 0;            // Polling queries sent to the DBMS.
  uint64_t polls_answered_by_index = 0; // Avoided via join indexes.
  uint64_t poll_hits = 0;               // Polls that confirmed impact.
  uint64_t conservative_invalidations = 0;  // Budget exceeded.
  uint64_t emergency_flushes = 0;       // Instances flushed table-scoped.
  uint64_t pages_invalidated = 0;
  uint64_t messages_sent = 0;
  uint64_t send_failures = 0;           // Sinks that rejected a message.
};

/// Per-cycle summary returned by RunCycle.
struct CycleReport {
  uint64_t updates = 0;
  uint64_t new_instances = 0;
  uint64_t checks = 0;
  uint64_t affected_instances = 0;
  uint64_t polls_issued = 0;
  uint64_t polls_answered_by_index = 0;
  uint64_t conservative_invalidations = 0;
  uint64_t pages_invalidated = 0;
  /// Degradation rung this cycle ran under (kNormal unless the overload
  /// controller is enabled and escalated).
  DegradationMode mode = DegradationMode::kNormal;
  Micros duration = 0;
};

/// The CachePortal invalidator (Section 4): registration module (query
/// type registration + discovery from the QI/URL map), information
/// management module (policies, statistics, join indexes), and the
/// invalidation module (update processing into Δ-tables, impact analysis,
/// polling-query scheduling/generation, and invalidation message
/// generation). It runs entirely outside the web server, application
/// server, and DBMS, synchronizing by polling their logs.
class Invalidator {
 public:
  /// Observes `database`'s update log and the sniffer-maintained `map`.
  /// Nothing is owned; everything must outlive the invalidator.
  Invalidator(db::Database* database, sniffer::QiUrlMap* map,
              const Clock* clock, InvalidatorOptions options = {});

  Invalidator(const Invalidator&) = delete;
  Invalidator& operator=(const Invalidator&) = delete;

  /// Adds a cache to notify (not owned).
  void AddSink(InvalidationSink* sink);

  /// Directs polling queries to `connection` instead of the observed
  /// database — e.g. a middle-tier data cache maintained for the
  /// invalidator. Pass nullptr to return to direct execution.
  void SetPollingConnection(server::Connection* connection) {
    polling_connection_ = connection;
  }

  /// Offline registration mode (Section 4.1.1): declare a query type.
  Status RegisterQueryType(const std::string& name,
                           const std::string& parameterized_sql);

  /// Registers a hard invalidation policy rule (Section 4.1.3).
  void AddPolicyRule(PolicyRule rule) { policy_.AddRule(std::move(rule)); }

  /// Maintains a join index on `table`.`column` for index-answered polls.
  Status CreateJoinIndex(const std::string& table, const std::string& column);

  /// One synchronization cycle: scan the QI/URL map for new query
  /// instances, pull new update-log records, analyze, poll, and send
  /// invalidation messages.
  Result<CycleReport> RunCycle();

  /// Cacheability verdict for a query instance's SQL (feedback consumed
  /// by the sniffer's servlet wrapper).
  bool IsQuerySqlCacheable(const std::string& sql) const;

  /// Update-log position this invalidator has consumed up to; the log
  /// owner may Truncate() everything at or below it once all other
  /// consumers are past it too.
  uint64_t consumed_update_seq() const { return last_update_seq_; }

  /// Serializes the invalidator's resumption state: the consumed
  /// update-log and QI/URL-map positions, plus each CheckpointableSink's
  /// durable state (un-acked delivery-queue messages). Persist the
  /// returned bytes at every synchronization point; after a crash, build
  /// a fresh Invalidator (same database/map, sinks re-added in the same
  /// order) and Restore() to resume without missing an update.
  std::string Checkpoint() const;

  /// Rebuilds resumption state from Checkpoint() output. The update-log
  /// cursor rewinds to the persisted position, so updates that committed
  /// after the checkpoint (including during the outage) are replayed —
  /// at-least-once, made safe by idempotent ejects. The QI/URL-map
  /// cursor rewinds to zero: the in-memory registry died with the old
  /// process, and re-registering live map entries is idempotent.
  Status Restore(const std::string& checkpoint);

  const QueryTypeRegistry& registry() const { return registry_; }
  const PolicyEngine& policy() const { return policy_; }
  const InformationManager& info() const { return info_; }
  /// The internal polling data cache, or nullptr when not configured.
  const PollingDataCache* polling_cache() const {
    return polling_cache_.get();
  }
  const InvalidatorStats& stats() const { return stats_; }
  const MatcherStats& matcher_stats() const { return matcher_stats_; }
  const BindIndex& bind_index() const { return bind_index_; }
  const InvalidatorOptions& options() const { return options_; }
  /// The overload controller, or nullptr when not enabled.
  const OverloadController* overload_controller() const {
    return overload_.get();
  }

  /// Human-readable dump of the lifetime counters and the per-query-type
  /// statistics the information management module maintains
  /// (Section 4.3) — for operators and the examples.
  std::string StatsReport() const;

 private:
  /// Runs fn(i) for i in [0, n): inline when serial, sharded across the
  /// pool when worker_threads > 1.
  void RunParallel(size_t n, const std::function<void(size_t)>& fn);

  /// Adds a freshly registered instance to the bind index, compiling its
  /// type's template on first contact (the FROM tables exist by then).
  /// Idempotent; no-op when the matcher is disabled.
  void IndexInstance(const QueryInstance& instance);

  /// Unregisters an instance AND drops its index postings. Every
  /// unregistration must go through here or the index would keep
  /// shortlisting a dead instance (harmless) — or worse, the live/indexed
  /// count cross-check would disable probing for the whole type.
  void RetireInstance(const std::string& instance_sql);

  /// Executes one polling query against the configured target (external
  /// connection > internal polling cache > the DBMS directly). Safe to
  /// call from pool workers: the external connection is serialized by a
  /// mutex, the other targets are internally thread-safe for reads.
  Result<db::QueryResult> ExecutePoll(const std::string& poll_sql);

  /// Reads this planning point's overload signals (backlog depth/age
  /// from the update log, delivery backlog from ObservableSinks, last
  /// cycle's latency). All deterministic given the clock.
  OverloadSignals ObserveOverloadSignals() const;

  db::Database* database_;
  sniffer::QiUrlMap* map_;
  const Clock* clock_;
  InvalidatorOptions options_;

  QueryTypeRegistry registry_;
  PolicyEngine policy_;
  InformationManager info_;
  InvalidationScheduler scheduler_;
  std::vector<InvalidationSink*> sinks_;
  server::Connection* polling_connection_ = nullptr;
  // Serializes polls through the external connection (its thread-safety
  // is unknown); the internal cache and the DBMS read path are not
  // funneled through this.
  std::mutex polling_connection_mu_;
  std::unique_ptr<PollingDataCache> polling_cache_;
  // Non-null iff options_.worker_threads > 1.
  std::unique_ptr<ThreadPool> pool_;
  // Non-null iff options_.overload.enabled.
  std::unique_ptr<OverloadController> overload_;

  // The compiled matching layer: per-type compiled templates and the
  // bind-value indexes over live instances. Mutated only on the cycle
  // thread (registration/retirement); read-only during parallel phases.
  std::map<uint64_t, TypeMatcher> matchers_;
  BindIndex bind_index_;
  MatcherStats matcher_stats_;

  uint64_t last_update_seq_ = 0;
  uint64_t last_map_id_ = 0;
  Micros last_cycle_duration_ = 0;
  InvalidatorStats stats_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_INVALIDATOR_H_
