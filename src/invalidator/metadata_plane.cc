#include "invalidator/metadata_plane.h"

#include <algorithm>
#include <utility>

#include "sql/parser.h"
#include "sql/template.h"

namespace cacheportal::invalidator {

MetadataPlane::MetadataPlane(db::Database* database, size_t num_shards,
                             StrategyConfig strategy)
    : database_(database), strategy_(strategy) {
  if (num_shards == 0) num_shards = 1;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<ShardSlot>());
    // Discovered-type names number types across the WHOLE plane, not per
    // shard — StatsReport() must read identically at any shard count.
    shards_.back()->shard.registry.SetTypeCounter(&type_count_);
  }
}

MetadataPlane::MetadataPlane(db::Database* database, size_t num_shards,
                             bool use_type_matcher)
    : MetadataPlane(database, num_shards, StrategyConfig{
                                              /*exact=*/true,
                                              /*compiled=*/use_type_matcher,
                                              /*batch=*/true}) {}

Status MetadataPlane::RegisterType(const std::string& name,
                                   const std::string& parameterized_sql) {
  // Parse once here to route; the registry's canonicalizing parse runs
  // again under the shard lock. Offline registration is rare enough that
  // the double parse is not worth a second registry entry point.
  CACHEPORTAL_ASSIGN_OR_RETURN(
      sql::QueryTemplate tmpl,
      sql::ExtractTemplateFromSql(parameterized_sql));
  ShardSlot& slot = SlotOfType(tmpl.type_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  CACHEPORTAL_ASSIGN_OR_RETURN(
      uint64_t id, slot.shard.registry.RegisterType(name, parameterized_sql));
  (void)id;
  return Status::OK();
}

Result<const QueryInstance*> MetadataPlane::RegisterInstance(
    const std::string& sql) {
  // Fast path: a live instance's SQL routes via the route map without
  // parsing (re-registration is the common case — the sniffer re-adds a
  // row every time a cached page rebuilds).
  uint64_t known_type = 0;
  bool known = false;
  {
    std::shared_lock<std::shared_mutex> route(route_mu_);
    auto it = type_by_sql_.find(sql);
    if (it != type_by_sql_.end()) {
      known_type = it->second;
      known = true;
    }
  }
  if (known) {
    ShardSlot& slot = SlotOfType(known_type);
    std::lock_guard<std::mutex> lock(slot.mu);
    const QueryInstance* instance = slot.shard.registry.FindInstance(sql);
    // A concurrent retirement may have raced the lookup; fall through to
    // the slow path if so.
    if (instance != nullptr) return instance;
  }

  CACHEPORTAL_ASSIGN_OR_RETURN(auto select, sql::Parser::ParseSelect(sql));
  CACHEPORTAL_ASSIGN_OR_RETURN(sql::QueryTemplate tmpl,
                               sql::ExtractTemplate(*select));
  uint64_t type_id = tmpl.type_id;
  const QueryInstance* instance = nullptr;
  bool fresh = false;
  {
    ShardSlot& slot = SlotOfType(type_id);
    std::lock_guard<std::mutex> lock(slot.mu);
    fresh = slot.shard.registry.FindInstance(sql) == nullptr;
    CACHEPORTAL_ASSIGN_OR_RETURN(
        instance, slot.shard.registry.RegisterParsedInstance(
                      sql, std::move(select), std::move(tmpl)));
    IndexInstanceLocked(slot.shard, *instance);
  }
  {
    std::unique_lock<std::shared_mutex> route(route_mu_);
    type_by_sql_[sql] = type_id;
  }
  if (fresh) NotifyObserver(/*registered=*/true, sql);
  return instance;
}

void MetadataPlane::RetireInstance(const std::string& sql) {
  uint64_t type_id = 0;
  {
    std::shared_lock<std::shared_mutex> route(route_mu_);
    auto it = type_by_sql_.find(sql);
    if (it == type_by_sql_.end()) return;
    type_id = it->second;
  }
  {
    ShardSlot& slot = SlotOfType(type_id);
    std::lock_guard<std::mutex> lock(slot.mu);
    const QueryInstance* instance = slot.shard.registry.FindInstance(sql);
    if (instance != nullptr) {
      slot.shard.bind_index.RemoveInstance(instance->instance_id);
    }
    slot.shard.registry.UnregisterInstance(sql);
  }
  {
    std::unique_lock<std::shared_mutex> route(route_mu_);
    type_by_sql_.erase(sql);
  }
  NotifyObserver(/*registered=*/false, sql);
}

const QueryInstance* MetadataPlane::FindInstance(const std::string& sql) const {
  uint64_t type_id = 0;
  {
    std::shared_lock<std::shared_mutex> route(route_mu_);
    auto it = type_by_sql_.find(sql);
    if (it == type_by_sql_.end()) return nullptr;
    type_id = it->second;
  }
  ShardSlot& slot = SlotOfType(type_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.shard.registry.FindInstance(sql);
}

const QueryType* MetadataPlane::FindType(uint64_t type_id) const {
  ShardSlot& slot = SlotOfType(type_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.shard.registry.FindType(type_id);
}

void MetadataPlane::WithShardOfType(uint64_t type_id,
                                    const std::function<void(Shard&)>& fn) {
  ShardSlot& slot = SlotOfType(type_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  fn(slot.shard);
}

void MetadataPlane::WithShard(size_t index,
                              const std::function<void(Shard&)>& fn) {
  ShardSlot& slot = *shards_[index];
  std::lock_guard<std::mutex> lock(slot.mu);
  fn(slot.shard);
}

// The k-way merge all the deterministic iterators share: with every
// shard locked (in index order — the one sanctioned all-shards order),
// repeatedly visit the shard whose next type has the smallest type_id.
// Type_ids are unique across shards (hash partitioning), so there are no
// ties, and the scan reproduces the unsharded registry's ascending-
// type_id order exactly.
void MetadataPlane::MergedTypeScan(
    const std::function<void(size_t, const QueryType&)>& fn) const {
  std::vector<std::unique_lock<std::mutex>> all;
  all.reserve(shards_.size());
  for (const auto& slot : shards_) {
    all.emplace_back(slot->mu);
  }
  struct Cursor {
    std::vector<const QueryType*> types;
    size_t next = 0;
  };
  std::vector<Cursor> cursors(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    cursors[i].types = shards_[i]->shard.registry.Types();
  }
  for (;;) {
    size_t best = shards_.size();
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].next >= cursors[i].types.size()) continue;
      if (best == shards_.size() ||
          cursors[i].types[cursors[i].next]->type_id <
              cursors[best].types[cursors[best].next]->type_id) {
        best = i;
      }
    }
    if (best == shards_.size()) break;
    fn(best, *cursors[best].types[cursors[best].next++]);
  }
}

void MetadataPlane::ForEachType(
    const std::function<void(const QueryType&)>& fn) const {
  MergedTypeScan([&fn](size_t, const QueryType& type) { fn(type); });
}

void MetadataPlane::ForEachTypeMutable(
    const std::function<void(QueryType&)>& fn) {
  MergedTypeScan([&](size_t shard_index, const QueryType& type) {
    QueryType* mutable_type =
        shards_[shard_index]->shard.registry.FindType(type.type_id);
    if (mutable_type != nullptr) fn(*mutable_type);
  });
}

void MetadataPlane::ForEachInstance(
    const std::function<void(const QueryType&, const QueryInstance&)>& fn)
    const {
  MergedTypeScan([&](size_t shard_index, const QueryType& type) {
    shards_[shard_index]->shard.registry.ForEachInstanceOfType(
        type.type_id, [&](const QueryInstance& instance) {
          fn(type, instance);
        });
  });
}

size_t MetadataPlane::NumTypes() const {
  size_t n = 0;
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    n += slot->shard.registry.NumTypes();
  }
  return n;
}

size_t MetadataPlane::NumInstances() const {
  size_t n = 0;
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    n += slot->shard.registry.NumInstances();
  }
  return n;
}

size_t MetadataPlane::NumInstancesOfType(uint64_t type_id) const {
  ShardSlot& slot = SlotOfType(type_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.shard.registry.NumInstancesOfType(type_id);
}

size_t MetadataPlane::NumIndexedInstances() const {
  size_t n = 0;
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    n += slot->shard.bind_index.NumIndexedInstances();
  }
  return n;
}

MatcherStats MetadataPlane::CompileStats() const {
  MatcherStats out;
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    out.types_compiled += slot->shard.compile_stats.types_compiled;
    out.types_handled += slot->shard.compile_stats.types_handled;
    for (const auto& [reason, count] :
         slot->shard.compile_stats.fallback_reasons) {
      out.fallback_reasons[reason] += count;
    }
  }
  return out;
}

std::optional<TierDecision> MetadataPlane::TierOf(uint64_t type_id) const {
  ShardSlot& slot = SlotOfType(type_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  auto it = slot.shard.tiers.find(type_id);
  if (it == slot.shard.tiers.end()) return std::nullopt;
  return it->second;
}

std::map<uint64_t, TierDecision> MetadataPlane::TierAssignments() const {
  std::map<uint64_t, TierDecision> out;
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    for (const auto& [type_id, decision] : slot->shard.tiers) {
      out.emplace(type_id, decision);
    }
  }
  return out;
}

void MetadataPlane::InstallTier(uint64_t type_id, StrategyTier tier,
                                const std::string& reason) {
  ShardSlot& slot = SlotOfType(type_id);
  std::lock_guard<std::mutex> lock(slot.mu);
  slot.shard.tiers[type_id] = TierDecision{tier, reason};
}

uint64_t MetadataPlane::MinMapCursor() const {
  uint64_t min = 0;
  bool first = true;
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    if (first || slot->shard.map_cursor < min) min = slot->shard.map_cursor;
    first = false;
  }
  return min;
}

void MetadataPlane::AdvanceMapCursors(uint64_t id) {
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->shard.map_cursor = std::max(slot->shard.map_cursor, id);
  }
}

std::vector<uint64_t> MetadataPlane::MapCursors() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    out.push_back(slot->shard.map_cursor);
  }
  return out;
}

void MetadataPlane::ResetMapCursors() {
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->shard.map_cursor = 0;
  }
}

void MetadataPlane::SetMapCursors(const std::vector<uint64_t>& cursors) {
  if (cursors.size() == shards_.size()) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      std::lock_guard<std::mutex> lock(shards_[i]->mu);
      shards_[i]->shard.map_cursor = cursors[i];
    }
    return;
  }
  // Shard count changed across the restart: only the minimum position
  // is known to be absorbed by every new shard's worth of types.
  uint64_t min = 0;
  for (size_t i = 0; i < cursors.size(); ++i) {
    min = i == 0 ? cursors[i] : std::min(min, cursors[i]);
  }
  for (const auto& slot : shards_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->shard.map_cursor = min;
  }
}

void MetadataPlane::SetMutationObserver(
    std::function<void(bool, const std::string&)> observer) {
  std::unique_lock<std::shared_mutex> lock(observer_mu_);
  observer_ = std::move(observer);
}

void MetadataPlane::NotifyObserver(bool registered, const std::string& sql) {
  std::function<void(bool, const std::string&)> observer;
  {
    std::shared_lock<std::shared_mutex> lock(observer_mu_);
    if (observer_ == nullptr) return;
    observer = observer_;
  }
  observer(registered, sql);
}

void MetadataPlane::IndexInstanceLocked(Shard& shard,
                                        const QueryInstance& instance) {
  const QueryType* type = shard.registry.FindType(instance.type_id);
  if (type == nullptr) return;
  // The matcher compiles even when the compiled execution path is off:
  // tier assignment needs its verdict, and tier naming must not depend
  // on which execution path the options picked (StatsReport() is diffed
  // between the two). The compile COUNTERS describe the matching layer's
  // activity, so they only move when that layer is enabled — as does the
  // bind index, which only the compiled path consults.
  auto it = shard.matchers.find(instance.type_id);
  if (it == shard.matchers.end()) {
    TypeMatcher matcher = TypeMatcher::Compile(*type, *database_);
    if (strategy_.compiled) {
      ++shard.compile_stats.types_compiled;
      if (matcher.handled()) {
        ++shard.compile_stats.types_handled;
      } else {
        ++shard.compile_stats.fallback_reasons[matcher.fallback_reason()];
      }
    }
    it = shard.matchers.emplace(instance.type_id, std::move(matcher)).first;
  }
  if (strategy_.compiled && it->second.handled()) {
    shard.bind_index.AddInstance(it->second, instance);
  }
  if (shard.tiers.find(instance.type_id) == shard.tiers.end()) {
    shard.tiers.emplace(
        instance.type_id,
        DecideTier(*type, *database_, strategy_, it->second.handled(),
                   it->second.fallback_reason()));
  }
}

}  // namespace cacheportal::invalidator
