#ifndef CACHEPORTAL_INVALIDATOR_METADATA_PLANE_H_
#define CACHEPORTAL_INVALIDATOR_METADATA_PLANE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "db/database.h"
#include "invalidator/bind_index.h"
#include "invalidator/options.h"
#include "invalidator/registry.h"
#include "invalidator/strategy.h"
#include "invalidator/type_matcher.h"

namespace cacheportal::invalidator {

/// The registration module's state — query-type registry, compiled
/// template matchers, and bind-value indexes — sharded by query-type
/// hash so sniffer-side registration can proceed while a cycle runs.
///
/// Sharding: a query routes to shard `type_id % num_shards()`; the
/// type_id is the template hash, computable from the SQL text alone, so
/// registration takes exactly one shard lock. Everything type-scoped
/// (the type, its instances, its matcher, its bind index postings) lives
/// whole in one shard — cycle phases that work type by type lock one
/// shard at a time.
///
/// Determinism: the merged iterators (ForEachType / ForEachInstance)
/// visit types in ascending type_id order and instances of a type in
/// SQL-text order — exactly the orders the unsharded registry exposed —
/// so invalidation decisions and StatsReport() are byte-identical at any
/// shard count.
///
/// Locking contract:
///   - RegisterInstance / RegisterType / FindInstance / FindType and the
///     counting accessors are safe from any thread at any time.
///   - RetireInstance and the With*/ForEach* accessors are cycle-thread
///     only (they may run concurrently with registration, which the
///     shard locks serialize, but not with each other).
///   - Callbacks passed to With*/ForEach* hold shard locks: they must
///     not call back into the plane.
///   - QueryType/QueryInstance pointers obtained under a shard lock stay
///     valid after it is released (node-based maps; types are never
///     erased, instances only by RetireInstance on the cycle thread).
class MetadataPlane {
 public:
  /// One shard's partition of the metadata. Exposed (under the shard's
  /// lock, via WithShard*) so cycle stages can run the registry, matcher,
  /// and bind-index machinery directly.
  struct Shard {
    QueryTypeRegistry registry;
    std::map<uint64_t, TypeMatcher> matchers;
    BindIndex bind_index;
    /// Compile-side counters (types_compiled / types_handled); the
    /// cycle-side MatcherStats counters live with the cycle.
    MatcherStats compile_stats;
    /// Highest QI/URL-map row id whose registration this shard has
    /// absorbed. Advanced in lockstep by the ingest scan; persisted
    /// per shard by checkpoint v3.
    uint64_t map_cursor = 0;
    /// Strategy tier of each type this shard owns, assigned at the
    /// type's first instance registration (or pinned by checkpoint
    /// restore) and immutable afterwards (DESIGN.md §16). Tier naming is
    /// matcher-flag-independent so StatsReport() stays byte-identical
    /// between the compiled and interpreted execution paths.
    std::map<uint64_t, TierDecision> tiers;
  };

  /// `database` is needed to compile type matchers (schema lookups); not
  /// owned. `num_shards` of 0 is treated as 1.
  MetadataPlane(db::Database* database, size_t num_shards,
                StrategyConfig strategy);

  /// Historical convenience ctor: exact tier on, batch on, matcher as
  /// given (the pre-strategy-seam call sites and tests).
  MetadataPlane(db::Database* database, size_t num_shards,
                bool use_type_matcher);

  MetadataPlane(const MetadataPlane&) = delete;
  MetadataPlane& operator=(const MetadataPlane&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t ShardOfType(uint64_t type_id) const {
    return type_id % shards_.size();
  }
  bool use_type_matcher() const { return strategy_.compiled; }
  const StrategyConfig& strategy() const { return strategy_; }

  /// Offline registration: declare a query type (routed by its
  /// template's type_id).
  Status RegisterType(const std::string& name,
                      const std::string& parameterized_sql);

  /// Registers a query instance and indexes its bind values, compiling
  /// the type's matcher on first contact. Idempotent; safe from any
  /// thread. The parse runs outside the shard lock; a known SQL takes
  /// only a shared route-map lookup plus the shard lock.
  Result<const QueryInstance*> RegisterInstance(const std::string& sql);

  /// Unregisters an instance AND drops its index postings. Every
  /// unregistration must go through here or the index would keep
  /// shortlisting a dead instance (harmless) — or worse, the
  /// live/indexed count cross-check would disable probing for the whole
  /// type. Cycle thread only.
  void RetireInstance(const std::string& sql);

  /// The live instance registered for `sql`, or nullptr. Lock-free of
  /// parsing: unknown SQL is answered from the route map alone.
  const QueryInstance* FindInstance(const std::string& sql) const;

  /// The type, or nullptr. The pointer stays valid forever (types are
  /// never erased).
  const QueryType* FindType(uint64_t type_id) const;

  /// Runs `fn` with `type_id`'s shard locked.
  void WithShardOfType(uint64_t type_id, const std::function<void(Shard&)>& fn);
  /// Runs `fn` with shard `index` locked.
  void WithShard(size_t index, const std::function<void(Shard&)>& fn);

  /// Merged iteration in ascending type_id order across all shards
  /// (shard locks held in index order for the duration — callbacks must
  /// be quick and must not touch the plane).
  void ForEachType(const std::function<void(const QueryType&)>& fn) const;
  void ForEachTypeMutable(const std::function<void(QueryType&)>& fn);
  /// Types in type_id order, instances of each type in SQL-text order —
  /// the unsharded registry's scan order.
  void ForEachInstance(
      const std::function<void(const QueryType&, const QueryInstance&)>& fn)
      const;

  size_t NumTypes() const;
  size_t NumInstances() const;
  size_t NumInstancesOfType(uint64_t type_id) const;
  size_t NumIndexedInstances() const;

  /// Summed compile-side matcher counters (probes etc. stay zero here).
  MatcherStats CompileStats() const;

  // ---- Strategy tiers (DESIGN.md §16). ----
  /// The tier assigned to `type_id`, or nullopt before its first
  /// instance registered (and no checkpoint pinned it).
  std::optional<TierDecision> TierOf(uint64_t type_id) const;
  /// Snapshot of every assigned tier, keyed by type_id (sorted — the
  /// census/checkpoint order). Locks shards one at a time; safe to call
  /// from StatsReport and checkpointing.
  std::map<uint64_t, TierDecision> TierAssignments() const;
  /// Pins a restored tier assignment: later registrations of the type
  /// keep it instead of re-deriving from the (possibly drifted)
  /// analyzer. Overwrites any live assignment.
  void InstallTier(uint64_t type_id, StrategyTier tier,
                   const std::string& reason);

  // ---- QI/URL-map cursors (one per shard, advanced in lockstep). ----
  /// The scan origin: the smallest per-shard cursor (rows above it may
  /// be unabsorbed by some shard).
  uint64_t MinMapCursor() const;
  /// Advances every cursor to at least `id` (the ingest scan absorbed
  /// rows up to `id` for all shards).
  void AdvanceMapCursors(uint64_t id);
  /// Snapshot of all cursors, shard order — checkpoint v3's payload.
  std::vector<uint64_t> MapCursors() const;
  /// Rewinds every cursor to zero (restore: the in-memory registry died
  /// with the old process; re-registering live map rows is idempotent).
  void ResetMapCursors();
  /// Restores persisted cursor positions (checkpoint v4, whose snapshot
  /// carries the full registry — no rescan needed). With a matching
  /// shard count the positions restore exactly; otherwise every cursor
  /// rewinds to the minimum (re-scanning some rows, which registration
  /// idempotency absorbs).
  void SetMapCursors(const std::vector<uint64_t>& cursors);

  /// The plane-global count of types ever created (discovered-type
  /// naming continues from it after a restore).
  uint64_t TypeCount() const {
    return type_count_.load(std::memory_order_relaxed);
  }
  void SetTypeCount(uint64_t count) {
    type_count_.store(count, std::memory_order_relaxed);
  }

  /// Observer of metadata mutations, called OUTSIDE all plane locks as
  /// `observer(registered, sql)` — true for a fresh instance
  /// registration, false for a retirement. Idempotent re-registrations
  /// (the common sniffer path) do not fire. The durability layer
  /// journals through this seam. Install before concurrent use; pass
  /// nullptr to detach.
  void SetMutationObserver(
      std::function<void(bool registered, const std::string& sql)> observer);

 private:
  struct ShardSlot {
    mutable std::mutex mu;
    Shard shard;
  };

  ShardSlot& SlotOfType(uint64_t type_id) const {
    return *shards_[type_id % shards_.size()];
  }

  /// Copies the observer out under its lock and fires it with no plane
  /// lock held.
  void NotifyObserver(bool registered, const std::string& sql);

  /// Adds a freshly registered instance to its shard's bind index,
  /// compiling the type's template on first contact (the FROM tables
  /// exist by then). Caller holds the shard lock.
  void IndexInstanceLocked(Shard& shard, const QueryInstance& instance);

  /// Locks every shard and visits all types in ascending type_id order,
  /// passing the owning shard's index — the deterministic k-way merge
  /// the ForEach* iterators are built on.
  void MergedTypeScan(
      const std::function<void(size_t, const QueryType&)>& fn) const;

  db::Database* database_;
  StrategyConfig strategy_;
  std::vector<std::unique_ptr<ShardSlot>> shards_;
  /// Plane-global count of types ever created, shared with every shard's
  /// registry so discovered-type names are shard-count-invariant.
  std::atomic<uint64_t> type_count_{0};

  // Route map: SQL of every LIVE instance -> its type_id, so lookups and
  // retirement route to a shard without re-parsing. Readers (the
  // re-registration fast path, FindInstance) take the lock shared;
  // never held together with a shard lock (lookup, release, then lock
  // the shard) so the two lock orders cannot deadlock.
  mutable std::shared_mutex route_mu_;
  std::unordered_map<std::string, uint64_t> type_by_sql_;

  // The mutation observer, under its own lock (copied out shared, then
  // invoked with no plane lock held — the callback may do I/O).
  mutable std::shared_mutex observer_mu_;
  std::function<void(bool, const std::string&)> observer_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_METADATA_PLANE_H_
