#ifndef CACHEPORTAL_INVALIDATOR_OPTIONS_H_
#define CACHEPORTAL_INVALIDATOR_OPTIONS_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"
#include "invalidator/overload.h"
#include "invalidator/policy.h"

namespace cacheportal::invalidator {

/// Tunables of the invalidation process.
struct InvalidatorOptions {
  /// Group a delta's tuples into one batched analysis / polling query per
  /// (instance, table) — the paper's group processing. When false every
  /// tuple is analyzed and polled separately (the ablation baseline).
  bool batch_deltas = true;
  /// Per-cycle polling budget; instances beyond it are invalidated
  /// conservatively. 0 = unlimited.
  size_t max_polls_per_cycle = 0;
  /// Deadline granted to each cycle's invalidations (only orders polling;
  /// the cycle always completes).
  Micros cycle_deadline = kMicrosPerSecond;
  /// When > 0, the invalidator maintains an internal data cache of this
  /// capacity for its polling queries (Section 2.2) instead of hitting
  /// the DBMS for every poll. Ignored while SetPollingConnection() has
  /// installed an external connection.
  size_t polling_cache_capacity = 0;
  /// Worker threads for the parallel invalidation pipeline: per-instance
  /// impact analysis, polling-query execution, and per-sink message
  /// delivery fan out across this many threads. 1 (the default) runs the
  /// cycle serially on the calling thread. Invalidation decisions are
  /// identical at any worker count (per-instance work is independent
  /// given the batch's deltas, and results merge in deterministic
  /// instance order); only wall-clock time changes.
  size_t worker_threads = 1;
  /// Shards of the metadata plane (registry + matchers + bind indexes),
  /// partitioned by query-type hash. Each shard has its own lock, so
  /// sniffer-side registration contends only with cycle phases touching
  /// the same shard. Invalidation decisions and StatsReport() are
  /// identical at any shard count (shard results merge in deterministic
  /// type_id order); only lock granularity changes. 0 is treated as 1.
  size_t metadata_shards = 4;
  /// Thresholds for discovered (self-tuning) cacheability policies.
  PolicyThresholds thresholds;
  /// Overload control: the adaptive degradation ladder that keeps cache
  /// staleness bounded under update storms (disabled by default).
  OverloadOptions overload;
  /// Compile each query type's template into per-table predicates and
  /// index the bind values of its live instances, so a delta tuple probes
  /// the index for the exact candidate instance set instead of
  /// substituting every instance's WHERE AST (Section 4.2's type-level
  /// group processing). Excluded instances are provably unaffected;
  /// candidates fall through to the regular ImpactAnalyzer, so decisions
  /// and StatsReport() are byte-identical with this off (the ablation
  /// baseline / differential-test oracle).
  bool use_type_matcher = true;
  /// Allow the exact single-table strategy tier: eligible templates
  /// (single FROM table, no aggregation/self-join, WHERE decidable from
  /// one row under 3VL, all references schema-resolved) are invalidated
  /// exactly from the delta's old/new row images — no impact-analysis
  /// fan-out, no polling, no false ejects — instead of the conservative
  /// path (DESIGN.md §16). Off = every type lands on the tier it had
  /// before the strategy seam existed (the differential-test oracle).
  bool exact_strategy = true;
  /// Run the compiled matcher's candidate discovery column-wise: each
  /// cycle materializes the merged delta views as typed column batches
  /// and every (type, table) anchor is evaluated over a whole column in
  /// one call — tight per-entry kernels when a type has few instances,
  /// sorted-key merges against the bind index's sorted maps when it has
  /// many — instead of one BindIndex::Probe per tuple. Instances none of
  /// the cycle's tuples can affect skip the analysis fan-out entirely.
  /// Candidate sets (and therefore decisions, summaries, and
  /// StatsReport()) are byte-identical with this off; only MatcherStats'
  /// batch counters and wall-clock time differ. Ignored unless
  /// use_type_matcher is on.
  bool batch_impact = true;
  /// Merge the residual polls of instances sharing a query type and a
  /// polling target into one disjunctive polling query per chunk,
  /// demultiplexing the result rows per instance in-process — O(types)
  /// DBMS round trips instead of O(polling instances). Which pages get
  /// invalidated is unchanged, and polls_issued still counts the
  /// logical member polls the serial path would have issued (identical
  /// at every chunk size); only MatcherStats' poll_round_trips (and, on
  /// poll failure, the blast radius of conservatism) differs.
  bool consolidate_polls = true;
  /// Maximum member polls folded into one consolidated query (0 =
  /// unlimited). Bounds the disjunction's size.
  size_t consolidated_poll_chunk = 64;
};

/// Counters of the compiled matching layer (kept out of StatsReport so
/// the report stays byte-identical between the indexed and interpreted
/// paths — the differential test diffs the strings).
struct MatcherStats {
  uint64_t types_compiled = 0;   // Templates analyzed.
  uint64_t types_handled = 0;    // ... that produced >= 1 anchor.
  uint64_t probes = 0;           // (tuple, type, table) index probes.
  uint64_t tuples_excluded = 0;  // (instance, tuple) pairs proven
                                 // unaffected with zero AST work.
  uint64_t instances_short_circuited = 0;  // (instance, table) analyses
                                           // skipped entirely.
  uint64_t consolidated_polls = 0;    // Merged polling statements issued.
  uint64_t consolidated_members = 0;  // Residual polls folded into them.
  uint64_t poll_round_trips = 0;      // Polling statements sent to the
                                      // target (consolidation merges
                                      // many member polls into one).
  uint64_t batch_probes = 0;        // (type, table) columnar probes.
  uint64_t batch_kernel_evals = 0;  // Index entries evaluated by a
                                    // whole-column kernel pass.
  uint64_t batch_merge_probes = 0;  // Sorted/hashed probe-key merge
                                    // steps against the index's maps.
  uint64_t fast_path_instances = 0;  // Instances skipped before the
                                     // analysis fan-out (no candidate
                                     // rows anywhere in the cycle).
  /// Per-reason tally of templates the compiler declined to anchor
  /// (TypeMatcher::fallback_reason()), aggregated at compile time so
  /// tier demotions are observable without a debugger.
  std::map<std::string, uint64_t> fallback_reasons;
};

/// Lifetime counters for the whole invalidator.
struct InvalidatorStats {
  uint64_t cycles = 0;
  uint64_t updates_processed = 0;       // Update-log records consumed.
  uint64_t instances_registered = 0;    // From QI/URL map scans.
  uint64_t instance_checks = 0;         // (instance, delta) analyses.
  uint64_t affected_immediately = 0;    // Decided without polling.
  uint64_t unaffected = 0;
  uint64_t polls_issued = 0;            // Polling queries sent to the DBMS.
  uint64_t polls_answered_by_index = 0; // Avoided via join indexes.
  uint64_t poll_hits = 0;               // Polls that confirmed impact.
  uint64_t conservative_invalidations = 0;  // Budget exceeded.
  uint64_t emergency_flushes = 0;       // Instances flushed table-scoped.
  uint64_t pages_invalidated = 0;
  uint64_t messages_sent = 0;
  uint64_t send_failures = 0;           // Sinks that rejected a message.
};

/// Per-cycle summary returned by RunCycle.
struct CycleReport {
  uint64_t updates = 0;
  uint64_t new_instances = 0;
  uint64_t checks = 0;
  uint64_t affected_instances = 0;
  uint64_t polls_issued = 0;
  uint64_t polls_answered_by_index = 0;
  uint64_t conservative_invalidations = 0;
  uint64_t pages_invalidated = 0;
  /// Degradation rung this cycle ran under (kNormal unless the overload
  /// controller is enabled and escalated).
  DegradationMode mode = DegradationMode::kNormal;
  Micros duration = 0;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_OPTIONS_H_
