#include "invalidator/overload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace cacheportal::invalidator {

const char* DegradationModeName(DegradationMode mode) {
  switch (mode) {
    case DegradationMode::kNormal:
      return "normal";
    case DegradationMode::kEconomy:
      return "economy";
    case DegradationMode::kConservative:
      return "conservative";
    case DegradationMode::kEmergency:
      return "emergency";
  }
  return "unknown";
}

OverloadController::OverloadController(const Clock* clock,
                                       OverloadOptions options)
    : clock_(clock), options_(options), entered_at_(clock->NowMicros()) {
  if (options_.exit_fraction <= 0.0 || options_.exit_fraction > 1.0) {
    options_.exit_fraction = 0.5;
  }
}

DegradationMode OverloadController::DesiredMode(
    const OverloadSignals& signals) const {
  if (signals.backlog_age >= options_.staleness_bound ||
      signals.backlog_depth >= options_.emergency_backlog) {
    return DegradationMode::kEmergency;
  }
  if (signals.backlog_depth >= options_.conservative_backlog) {
    return DegradationMode::kConservative;
  }
  bool latency_high = options_.cycle_latency_watermark > 0 &&
                      signals.last_cycle_latency >=
                          options_.cycle_latency_watermark;
  bool delivery_high = options_.delivery_backlog_watermark > 0 &&
                       signals.delivery_backlog >=
                           options_.delivery_backlog_watermark;
  if (signals.backlog_depth >= options_.economy_backlog || latency_high ||
      delivery_high) {
    return DegradationMode::kEconomy;
  }
  return DegradationMode::kNormal;
}

bool OverloadController::BelowExitWatermarks(
    DegradationMode mode, const OverloadSignals& signals) const {
  const double f = options_.exit_fraction;
  auto below = [f](double signal, double enter_watermark) {
    return signal < f * enter_watermark;
  };
  switch (mode) {
    case DegradationMode::kEmergency:
      return below(static_cast<double>(signals.backlog_depth),
                   static_cast<double>(options_.emergency_backlog)) &&
             below(static_cast<double>(signals.backlog_age),
                   static_cast<double>(options_.staleness_bound));
    case DegradationMode::kConservative:
      return below(static_cast<double>(signals.backlog_depth),
                   static_cast<double>(options_.conservative_backlog));
    case DegradationMode::kEconomy: {
      if (!below(static_cast<double>(signals.backlog_depth),
                 static_cast<double>(options_.economy_backlog))) {
        return false;
      }
      if (options_.cycle_latency_watermark > 0 &&
          !below(static_cast<double>(signals.last_cycle_latency),
                 static_cast<double>(options_.cycle_latency_watermark))) {
        return false;
      }
      if (options_.delivery_backlog_watermark > 0 &&
          !below(static_cast<double>(signals.delivery_backlog),
                 static_cast<double>(options_.delivery_backlog_watermark))) {
        return false;
      }
      return true;
    }
    case DegradationMode::kNormal:
      return true;
  }
  return true;
}

DegradationMode OverloadController::Plan(const OverloadSignals& signals) {
  Micros now = clock_->NowMicros();
  stats_.max_backlog_depth =
      std::max(stats_.max_backlog_depth, signals.backlog_depth);
  stats_.max_backlog_age = std::max(stats_.max_backlog_age,
                                    signals.backlog_age);
  if (options_.enabled && signals.backlog_age >= options_.staleness_bound) {
    ++stats_.staleness_breaches;
  }

  if (options_.enabled) {
    DegradationMode desired = DesiredMode(signals);
    if (desired > mode_) {
      // Escalate immediately — backlog is staleness in the making.
      LogMessage(LogLevel::kWarning,
                 StrCat("overload: ", DegradationModeName(mode_), " -> ",
                        DegradationModeName(desired), " (backlog=",
                        signals.backlog_depth, " age-us=",
                        signals.backlog_age, " delivery=",
                        signals.delivery_backlog, ")"));
      mode_ = desired;
      entered_at_ = now;
      ++stats_.escalations;
    } else if (desired < mode_ && now - entered_at_ >= options_.min_dwell &&
               BelowExitWatermarks(mode_, signals)) {
      // De-escalate one rung: the dwell plus the exit watermarks keep a
      // load level hovering at an enter watermark from flapping.
      DegradationMode next =
          static_cast<DegradationMode>(static_cast<int>(mode_) - 1);
      LogMessage(LogLevel::kInfo,
                 StrCat("overload: ", DegradationModeName(mode_), " -> ",
                        DegradationModeName(next), " (recovering)"));
      mode_ = next;
      entered_at_ = now;
      ++stats_.deescalations;
    }
  }
  ++stats_.cycles_in_mode[static_cast<int>(mode_)];
  return mode_;
}

std::string OverloadController::Report() const {
  return StrCat("overload: mode=", DegradationModeName(mode_),
                " escalations=", stats_.escalations,
                " deescalations=", stats_.deescalations,
                " cycles=", stats_.cycles_in_mode[0], "/",
                stats_.cycles_in_mode[1], "/", stats_.cycles_in_mode[2],
                "/", stats_.cycles_in_mode[3],
                " staleness-breaches=", stats_.staleness_breaches,
                " max-backlog=", stats_.max_backlog_depth,
                " max-age-us=", stats_.max_backlog_age);
}

}  // namespace cacheportal::invalidator
