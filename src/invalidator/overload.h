#ifndef CACHEPORTAL_INVALIDATOR_OVERLOAD_H_
#define CACHEPORTAL_INVALIDATOR_OVERLOAD_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace cacheportal::invalidator {

/// The degradation ladder (ordered: each rung trades more precision for
/// more timeliness than the one before it).
///
///   kNormal        full pipeline, configured polling budget.
///   kEconomy       polling budget shrunk to `economy_poll_budget`.
///   kConservative  no polling at all: every instance the analysis could
///                  not clear is invalidated conservatively.
///   kEmergency     no analysis either: every instance reading a
///                  backlogged table is invalidated (a table-scoped
///                  flush) and the update-log cursor fast-forwards —
///                  unbounded staleness becomes bounded
///                  over-invalidation.
enum class DegradationMode {
  kNormal = 0,
  kEconomy = 1,
  kConservative = 2,
  kEmergency = 3,
};

const char* DegradationModeName(DegradationMode mode);

/// Watermarks and hysteresis tunables of the OverloadController.
struct OverloadOptions {
  /// Master switch; a disabled controller pins the ladder at kNormal.
  bool enabled = false;

  // ---- Enter watermarks (escalation is immediate). ----
  /// Unconsumed update-log records that put the ladder at (at least)
  /// the given rung.
  uint64_t economy_backlog = 256;
  uint64_t conservative_backlog = 1024;
  uint64_t emergency_backlog = 4096;
  /// The staleness bound: when the oldest unconsumed update is this old,
  /// the ladder jumps straight to kEmergency regardless of depth — the
  /// next cycle consumes the whole backlog via table flushes, so no
  /// cached page can trail the database by much more than this plus one
  /// cycle period.
  Micros staleness_bound = 5 * kMicrosPerSecond;
  /// A previous cycle slower than this is overload evidence worth at
  /// least kEconomy. 0 disables the signal.
  Micros cycle_latency_watermark = 0;
  /// Un-acked invalidation messages (delivery-queue backlog) worth at
  /// least kEconomy. 0 disables the signal.
  uint64_t delivery_backlog_watermark = 0;

  // ---- Hysteresis (de-escalation is reluctant). ----
  /// To step DOWN a rung, every signal must sit below exit_fraction of
  /// that rung's enter watermark — a signal hovering at the watermark
  /// cannot flap the mode.
  double exit_fraction = 0.5;
  /// Minimum time spent on a rung before stepping down (dwell); the
  /// ladder descends one rung per planning point at most.
  Micros min_dwell = 2 * kMicrosPerSecond;

  /// Polling budget while kEconomy. 0 means "no polls", which behaves
  /// like kConservative for that cycle.
  size_t economy_poll_budget = 8;
};

/// The signals one planning point observes. All of them are
/// deterministic functions of the injected Clock and the pipeline's
/// (deterministic) state, so mode decisions are byte-identical across
/// worker_threads counts.
struct OverloadSignals {
  uint64_t backlog_depth = 0;     // Unconsumed update-log records.
  Micros backlog_age = 0;         // now - oldest unconsumed commit time.
  uint64_t delivery_backlog = 0;  // Un-acked (message, sink) pairs.
  Micros last_cycle_latency = 0;  // Duration of the previous cycle.
};

/// Lifetime counters of the controller.
struct OverloadStats {
  uint64_t escalations = 0;        // Upward transitions.
  uint64_t deescalations = 0;      // Downward transitions (one rung each).
  uint64_t cycles_in_mode[4] = {}; // Planning points spent on each rung.
  uint64_t staleness_breaches = 0; // Age >= staleness_bound observed.
  uint64_t max_backlog_depth = 0;
  Micros max_backlog_age = 0;
};

/// Drives the degradation ladder from backlog depth/age, cycle latency,
/// and delivery backlog (Section 4.2.2's precision-for-timeliness
/// tradeoff, made adaptive). Escalation is immediate — freshness is at
/// stake; de-escalation is hysteretic — one rung at a time, only after
/// `min_dwell` on the current rung and only once every signal is below
/// `exit_fraction` of the rung's enter watermark, so a load level
/// hovering at a watermark cannot flap the mode.
///
/// The controller is deterministic: equal clocks and equal signal
/// sequences produce equal mode sequences, independent of thread count.
class OverloadController {
 public:
  /// `clock` times dwell; not owned.
  OverloadController(const Clock* clock, OverloadOptions options);

  /// One planning point (call at cycle start, before consuming the
  /// log). Returns the mode the coming cycle must run in.
  DegradationMode Plan(const OverloadSignals& signals);

  DegradationMode mode() const { return mode_; }
  /// Time the ladder entered the current rung.
  Micros entered_mode_at() const { return entered_at_; }
  const OverloadOptions& options() const { return options_; }
  const OverloadStats& stats() const { return stats_; }

  /// One-line diagnostic ("overload: mode=... ...") for StatsReport().
  std::string Report() const;

 private:
  /// Highest rung whose enter condition the signals satisfy.
  DegradationMode DesiredMode(const OverloadSignals& signals) const;
  /// True when every signal that can hold the ladder at `mode` is below
  /// exit_fraction of its enter watermark.
  bool BelowExitWatermarks(DegradationMode mode,
                           const OverloadSignals& signals) const;

  const Clock* clock_;
  OverloadOptions options_;
  DegradationMode mode_ = DegradationMode::kNormal;
  Micros entered_at_ = 0;
  OverloadStats stats_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_OVERLOAD_H_
