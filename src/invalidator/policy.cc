#include "invalidator/policy.h"

namespace cacheportal::invalidator {

void PolicyEngine::AddRule(PolicyRule rule) {
  rules_.push_back(std::move(rule));
}

bool PolicyEngine::IsQueryTypeCacheable(const QueryType& type) const {
  for (const PolicyRule& rule : rules_) {
    if (rule.kind == PolicyRule::Kind::kQueryBased &&
        rule.target == type.name) {
      return rule.cacheable;
    }
  }
  const QueryTypeStats& stats = type.stats;
  if (stats.checks >= thresholds_.min_checks) {
    if (thresholds_.max_invalidation_ratio < 1.0 &&
        stats.InvalidationRatio() > thresholds_.max_invalidation_ratio) {
      return false;
    }
    if (thresholds_.max_processing_time > 0 &&
        stats.AvgInvalidationTime() > thresholds_.max_processing_time) {
      return false;
    }
  }
  return true;
}

bool PolicyEngine::IsServletCacheable(const std::string& servlet_name) const {
  for (const PolicyRule& rule : rules_) {
    if (rule.kind == PolicyRule::Kind::kRequestBased &&
        rule.target == servlet_name) {
      return rule.cacheable;
    }
  }
  return true;
}

}  // namespace cacheportal::invalidator
