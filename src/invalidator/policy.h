#ifndef CACHEPORTAL_INVALIDATOR_POLICY_H_
#define CACHEPORTAL_INVALIDATOR_POLICY_H_

#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "invalidator/registry.h"

namespace cacheportal::invalidator {

/// A hard-coded invalidation policy rule (Section 4.1.3), either
/// query-type-based or request(servlet)-based, registered by a domain
/// expert: the named target is forced cacheable or non-cacheable.
struct PolicyRule {
  enum class Kind { kQueryBased, kRequestBased };
  Kind kind = Kind::kQueryBased;
  std::string target;      // Query type name or servlet name.
  bool cacheable = false;  // The forced verdict.
};

/// Self-tuning thresholds for policy discovery (Section 4.1.4): a query
/// type becomes non-cacheable when maintaining its pages stops paying off.
struct PolicyThresholds {
  /// Max fraction of instance checks that invalidate; a type whose
  /// updates invalidate more than this share of its instances is not
  /// worth caching. 1.0 disables the rule.
  double max_invalidation_ratio = 1.0;
  /// Max average invalidation-processing time per check; 0 disables.
  Micros max_processing_time = 0;
  /// Minimum number of checks before the discovered rules kick in (avoid
  /// reacting to noise).
  uint64_t min_checks = 10;
};

/// Decides cacheability from hard-coded rules plus discovered statistics.
class PolicyEngine {
 public:
  PolicyEngine() = default;

  void AddRule(PolicyRule rule);
  void SetThresholds(const PolicyThresholds& thresholds) {
    thresholds_ = thresholds;
  }
  const PolicyThresholds& thresholds() const { return thresholds_; }

  /// Verdict for a query type: a matching hard rule wins; otherwise the
  /// statistics are compared against the thresholds.
  bool IsQueryTypeCacheable(const QueryType& type) const;

  /// Verdict for a servlet: only hard request-based rules apply (default
  /// cacheable).
  bool IsServletCacheable(const std::string& servlet_name) const;

  size_t num_rules() const { return rules_.size(); }

 private:
  std::vector<PolicyRule> rules_;
  PolicyThresholds thresholds_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_POLICY_H_
