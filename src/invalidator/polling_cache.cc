#include "invalidator/polling_cache.h"

#include "sql/parser.h"

namespace cacheportal::invalidator {

Result<db::QueryResult> PollingDataCache::ExecuteQuery(
    const std::string& sql) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (std::optional<db::QueryResult> hit = cache_.Lookup(sql);
        hit.has_value()) {
      return *hit;
    }
  }
  // Miss: execute outside the lock so concurrent polls overlap on the
  // DBMS (its read-only query path is thread-safe).
  CACHEPORTAL_ASSIGN_OR_RETURN(auto select, sql::Parser::ParseSelect(sql));
  CACHEPORTAL_ASSIGN_OR_RETURN(db::QueryResult result,
                               database_->ExecuteQuery(*select));
  std::vector<std::string> tables;
  tables.reserve(select->from.size());
  for (const sql::TableRef& ref : select->from) tables.push_back(ref.table);
  {
    std::lock_guard<std::mutex> lock(mu_);
    cache_.Store(sql, result, tables);
  }
  return result;
}

Result<int64_t> PollingDataCache::ExecuteUpdate(const std::string& /*sql*/) {
  return Status::NotSupported(
      "the invalidator's polling connection is read-only");
}

}  // namespace cacheportal::invalidator
