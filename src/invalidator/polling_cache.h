#ifndef CACHEPORTAL_INVALIDATOR_POLLING_CACHE_H_
#define CACHEPORTAL_INVALIDATOR_POLLING_CACHE_H_

#include <memory>
#include <string>

#include "cache/data_cache.h"
#include "common/status.h"
#include "db/database.h"
#include "db/delta.h"
#include "server/jdbc.h"

namespace cacheportal::invalidator {

/// A middle-tier data cache maintained by the invalidator for its polling
/// queries (Section 2.2: "in order to reduce the load on the DBMS,
/// [polling queries can be directed] to a middle-tier data cache
/// maintained by the invalidator").
///
/// It is a server::Connection, so it plugs straight into
/// Invalidator::SetPollingConnection(). Repeated polling queries within a
/// synchronization interval are answered from the cache; Synchronize()
/// must be called with each interval's deltas to drop results reading
/// updated tables (otherwise polls would see stale data and the
/// invalidator could leak staleness).
class PollingDataCache : public server::Connection {
 public:
  /// Polls fall through to `database` on cache misses (not owned).
  /// `capacity` bounds the number of cached results.
  PollingDataCache(db::Database* database, size_t capacity)
      : database_(database), cache_(capacity) {}

  // server::Connection:
  Result<db::QueryResult> ExecuteQuery(const std::string& sql) override;
  Result<int64_t> ExecuteUpdate(const std::string& sql) override;

  /// Applies one synchronization interval's deltas: every cached result
  /// reading an updated table is dropped. Returns results dropped.
  size_t Synchronize(const db::DeltaSet& deltas) {
    return cache_.Synchronize(deltas);
  }

  const cache::DataCacheStats& stats() const { return cache_.stats(); }
  size_t size() const { return cache_.size(); }

 private:
  db::Database* database_;
  cache::DataCache cache_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_POLLING_CACHE_H_
