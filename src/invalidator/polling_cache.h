#ifndef CACHEPORTAL_INVALIDATOR_POLLING_CACHE_H_
#define CACHEPORTAL_INVALIDATOR_POLLING_CACHE_H_

#include <memory>
#include <mutex>
#include <string>

#include "cache/data_cache.h"
#include "common/status.h"
#include "db/database.h"
#include "db/delta.h"
#include "server/jdbc.h"

namespace cacheportal::invalidator {

/// A middle-tier data cache maintained by the invalidator for its polling
/// queries (Section 2.2: "in order to reduce the load on the DBMS,
/// [polling queries can be directed] to a middle-tier data cache
/// maintained by the invalidator").
///
/// It is a server::Connection, so it plugs straight into
/// Invalidator::SetPollingConnection(). Repeated polling queries within a
/// synchronization interval are answered from the cache; Synchronize()
/// must be called with each interval's deltas to drop results reading
/// updated tables (otherwise polls would see stale data and the
/// invalidator could leak staleness).
///
/// Thread-safety: ExecuteQuery may be called concurrently (the parallel
/// polling phase does); the cache is guarded by an internal mutex that is
/// released while a miss executes against the DBMS, so misses overlap.
/// Two concurrent misses on the same SQL may both execute it — benign,
/// they store the same post-batch result. Synchronize() and the accessors
/// belong to the cycle's serial phases.
class PollingDataCache : public server::Connection {
 public:
  /// Polls fall through to `database` on cache misses (not owned).
  /// `capacity` bounds the number of cached results.
  PollingDataCache(db::Database* database, size_t capacity)
      : database_(database), cache_(capacity) {}

  // server::Connection:
  Result<db::QueryResult> ExecuteQuery(const std::string& sql) override;
  Result<int64_t> ExecuteUpdate(const std::string& sql) override;

  /// Applies one synchronization interval's deltas: every cached result
  /// reading an updated table is dropped. Returns results dropped.
  size_t Synchronize(const db::DeltaSet& deltas) {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.Synchronize(deltas);
  }

  const cache::DataCacheStats& stats() const { return cache_.stats(); }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

 private:
  db::Database* database_;
  mutable std::mutex mu_;  // Guards cache_ (lookup/store/synchronize).
  cache::DataCache cache_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_POLLING_CACHE_H_
