#include "invalidator/registry.h"

#include "common/strings.h"
#include "sql/parser.h"

namespace cacheportal::invalidator {

Result<uint64_t> QueryTypeRegistry::RegisterType(
    const std::string& name, const std::string& parameterized_sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(auto select,
                               sql::Parser::ParseSelect(parameterized_sql));
  // Canonicalize through the template machinery so offline-declared types
  // collide with discovered ones. ExtractTemplate renumbers parameters and
  // leaves the structure intact.
  CACHEPORTAL_ASSIGN_OR_RETURN(sql::QueryTemplate tmpl,
                               sql::ExtractTemplate(*select));
  auto it = types_.find(tmpl.type_id);
  if (it != types_.end()) {
    if (it->second.name.empty()) it->second.name = name;
    return it->first;
  }
  QueryType type;
  type.type_id = tmpl.type_id;
  type.name = name;
  type.tmpl = std::move(tmpl);
  uint64_t id = type.type_id;
  types_.emplace(id, std::move(type));
  return id;
}

Result<const QueryInstance*> QueryTypeRegistry::RegisterInstance(
    const std::string& sql_text) {
  auto existing = instances_.find(sql_text);
  if (existing != instances_.end()) return &existing->second;

  CACHEPORTAL_ASSIGN_OR_RETURN(auto select,
                               sql::Parser::ParseSelect(sql_text));
  CACHEPORTAL_ASSIGN_OR_RETURN(sql::QueryTemplate tmpl,
                               sql::ExtractTemplate(*select));
  auto type_it = types_.find(tmpl.type_id);
  if (type_it == types_.end()) {
    // Query type discovery (Section 4.1.2).
    QueryType type;
    type.type_id = tmpl.type_id;
    type.name = StrCat("discovered-", types_.size() + 1);
    type.tmpl = tmpl.Clone();
    type_it = types_.emplace(type.type_id, std::move(type)).first;
  }
  type_it->second.stats.instances_seen++;

  QueryInstance instance;
  instance.sql = sql_text;
  instance.type_id = tmpl.type_id;
  instance.statement = std::move(select);
  auto [it, inserted] = instances_.emplace(sql_text, std::move(instance));
  (void)inserted;
  return &it->second;
}

void QueryTypeRegistry::UnregisterInstance(const std::string& sql_text) {
  instances_.erase(sql_text);
}

const QueryType* QueryTypeRegistry::FindType(uint64_t type_id) const {
  auto it = types_.find(type_id);
  return it == types_.end() ? nullptr : &it->second;
}

QueryType* QueryTypeRegistry::FindType(uint64_t type_id) {
  auto it = types_.find(type_id);
  return it == types_.end() ? nullptr : &it->second;
}

const QueryInstance* QueryTypeRegistry::FindInstance(
    const std::string& sql_text) const {
  auto it = instances_.find(sql_text);
  return it == instances_.end() ? nullptr : &it->second;
}

std::vector<const QueryType*> QueryTypeRegistry::Types() const {
  std::vector<const QueryType*> out;
  out.reserve(types_.size());
  for (const auto& [id, type] : types_) out.push_back(&type);
  return out;
}

std::vector<const QueryInstance*> QueryTypeRegistry::InstancesOfType(
    uint64_t type_id) const {
  std::vector<const QueryInstance*> out;
  for (const auto& [sql_text, instance] : instances_) {
    if (instance.type_id == type_id) out.push_back(&instance);
  }
  return out;
}

}  // namespace cacheportal::invalidator
