#include "invalidator/registry.h"

#include "common/strings.h"
#include "sql/parser.h"

namespace cacheportal::invalidator {

Result<uint64_t> QueryTypeRegistry::RegisterType(
    const std::string& name, const std::string& parameterized_sql) {
  CACHEPORTAL_ASSIGN_OR_RETURN(auto select,
                               sql::Parser::ParseSelect(parameterized_sql));
  // Canonicalize through the template machinery so offline-declared types
  // collide with discovered ones. ExtractTemplate renumbers parameters and
  // leaves the structure intact.
  CACHEPORTAL_ASSIGN_OR_RETURN(sql::QueryTemplate tmpl,
                               sql::ExtractTemplate(*select));
  auto it = types_.find(tmpl.type_id);
  if (it != types_.end()) {
    if (it->second.name.empty()) it->second.name = name;
    return it->first;
  }
  QueryType type;
  type.type_id = tmpl.type_id;
  type.name = name;
  type.tmpl = std::move(tmpl);
  uint64_t id = type.type_id;
  types_.emplace(id, std::move(type));
  if (type_counter_ != nullptr) {
    type_counter_->fetch_add(1, std::memory_order_relaxed);
  }
  return id;
}

Result<const QueryInstance*> QueryTypeRegistry::RegisterInstance(
    const std::string& sql_text) {
  auto existing = instance_id_by_sql_.find(sql_text);
  if (existing != instance_id_by_sql_.end()) {
    return &instances_.at(existing->second);
  }

  CACHEPORTAL_ASSIGN_OR_RETURN(auto select,
                               sql::Parser::ParseSelect(sql_text));
  CACHEPORTAL_ASSIGN_OR_RETURN(sql::QueryTemplate tmpl,
                               sql::ExtractTemplate(*select));
  return RegisterParsedInstance(sql_text, std::move(select), std::move(tmpl));
}

Result<const QueryInstance*> QueryTypeRegistry::RegisterParsedInstance(
    const std::string& sql_text, std::unique_ptr<sql::SelectStatement> select,
    sql::QueryTemplate tmpl) {
  auto existing = instance_id_by_sql_.find(sql_text);
  if (existing != instance_id_by_sql_.end()) {
    return &instances_.at(existing->second);
  }
  auto type_it = types_.find(tmpl.type_id);
  if (type_it == types_.end()) {
    // Query type discovery (Section 4.1.2). The name numbers types in
    // creation order — against the shared counter when one is installed
    // (so the numbering spans every shard of a metadata plane), against
    // this registry's own type count otherwise.
    uint64_t ordinal =
        type_counter_ == nullptr
            ? types_.size() + 1
            : type_counter_->fetch_add(1, std::memory_order_relaxed) + 1;
    QueryType type;
    type.type_id = tmpl.type_id;
    type.name = StrCat("discovered-", ordinal);
    type.tmpl = tmpl.Clone();
    type_it = types_.emplace(type.type_id, std::move(type)).first;
  }
  type_it->second.stats.instances_seen++;

  QueryInstance instance;
  instance.instance_id = ++next_instance_id_;
  instance.sql = sql_text;
  instance.type_id = tmpl.type_id;
  instance.statement = std::move(select);
  instance.bindings = std::move(tmpl.bindings);
  uint64_t id = instance.instance_id;
  auto [it, inserted] = instances_.emplace(id, std::move(instance));
  (void)inserted;
  instance_id_by_sql_.emplace(sql_text, id);
  instances_by_type_[tmpl.type_id].emplace(sql_text, &it->second);
  return &it->second;
}

void QueryTypeRegistry::UnregisterInstance(const std::string& sql_text) {
  auto side = instance_id_by_sql_.find(sql_text);
  if (side == instance_id_by_sql_.end()) return;
  uint64_t id = side->second;
  auto it = instances_.find(id);
  if (it != instances_.end()) {
    auto by_type = instances_by_type_.find(it->second.type_id);
    if (by_type != instances_by_type_.end()) {
      by_type->second.erase(sql_text);
      if (by_type->second.empty()) instances_by_type_.erase(by_type);
    }
    instances_.erase(it);
  }
  instance_id_by_sql_.erase(side);
}

const QueryType* QueryTypeRegistry::FindType(uint64_t type_id) const {
  auto it = types_.find(type_id);
  return it == types_.end() ? nullptr : &it->second;
}

QueryType* QueryTypeRegistry::FindType(uint64_t type_id) {
  auto it = types_.find(type_id);
  return it == types_.end() ? nullptr : &it->second;
}

const QueryInstance* QueryTypeRegistry::FindInstance(
    const std::string& sql_text) const {
  auto side = instance_id_by_sql_.find(sql_text);
  if (side == instance_id_by_sql_.end()) return nullptr;
  return FindInstanceById(side->second);
}

const QueryInstance* QueryTypeRegistry::FindInstanceById(
    uint64_t instance_id) const {
  auto it = instances_.find(instance_id);
  return it == instances_.end() ? nullptr : &it->second;
}

void QueryTypeRegistry::ForEachType(
    const std::function<void(const QueryType&)>& fn) const {
  for (const auto& [id, type] : types_) fn(type);
}

void QueryTypeRegistry::ForEachTypeMutable(
    const std::function<void(QueryType&)>& fn) {
  for (auto& [id, type] : types_) fn(type);
}

void QueryTypeRegistry::ForEachInstanceOfType(
    uint64_t type_id,
    const std::function<void(const QueryInstance&)>& fn) const {
  auto by_type = instances_by_type_.find(type_id);
  if (by_type == instances_by_type_.end()) return;
  for (const auto& [sql_text, instance] : by_type->second) fn(*instance);
}

std::vector<const QueryType*> QueryTypeRegistry::Types() const {
  std::vector<const QueryType*> out;
  out.reserve(types_.size());
  for (const auto& [id, type] : types_) out.push_back(&type);
  return out;
}

std::vector<const QueryInstance*> QueryTypeRegistry::InstancesOfType(
    uint64_t type_id) const {
  std::vector<const QueryInstance*> out;
  ForEachInstanceOfType(type_id, [&out](const QueryInstance& instance) {
    out.push_back(&instance);
  });
  return out;
}

size_t QueryTypeRegistry::NumInstancesOfType(uint64_t type_id) const {
  auto by_type = instances_by_type_.find(type_id);
  return by_type == instances_by_type_.end() ? 0 : by_type->second.size();
}

}  // namespace cacheportal::invalidator
