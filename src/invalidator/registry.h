#ifndef CACHEPORTAL_INVALIDATOR_REGISTRY_H_
#define CACHEPORTAL_INVALIDATOR_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "sql/template.h"

namespace cacheportal::invalidator {

/// Self-tuning statistics kept per query type (Section 4.1.1): how often
/// instances are seen, how often updates invalidate them, and how long
/// invalidation processing takes.
struct QueryTypeStats {
  uint64_t instances_seen = 0;      // Query instances registered.
  uint64_t checks = 0;              // (instance, update-batch) analyses.
  uint64_t affected = 0;            // Analyses that invalidated.
  uint64_t polling_queries = 0;     // Polls issued for this type.
  Micros total_invalidation_time = 0;
  Micros max_invalidation_time = 0;

  /// Fraction of analyses that led to invalidation ("the ratio of query
  /// instances invalidated by each update").
  double InvalidationRatio() const {
    return checks == 0 ? 0.0
                       : static_cast<double>(affected) / checks;
  }

  Micros AvgInvalidationTime() const {
    return checks == 0 ? 0 : total_invalidation_time / static_cast<Micros>(checks);
  }
};

/// A registered query type: the parameterized template shared by all its
/// instances, a human name, cacheability (set by the policy engine), and
/// running statistics.
struct QueryType {
  uint64_t type_id = 0;
  std::string name;
  sql::QueryTemplate tmpl;
  bool cacheable = true;
  QueryTypeStats stats;
};

/// A registered query instance: the concrete SQL of a query that built at
/// least one cached page, its parsed form, the type it belongs to, and
/// the literal values it binds into the type's template ($1..$n order) —
/// the raw material of the bind-value indexes.
struct QueryInstance {
  /// Interned identity, unique across the registry's lifetime (a
  /// re-registered SQL gets a fresh ID). Stable, cheap container key.
  uint64_t instance_id = 0;
  std::string sql;
  uint64_t type_id = 0;
  std::unique_ptr<sql::SelectStatement> statement;
  std::vector<sql::Value> bindings;
};

/// The registration module's data structures (Section 4.1): query types
/// declared by domain experts (offline mode) plus types discovered from
/// the QI/URL map (online mode), and the instances grouped under them.
///
/// Instances are interned: keyed by a small integer ID with a side map
/// from SQL text, and grouped per type so InstancesOfType / the ForEach
/// iterators cost O(instances of that type), not O(all instances).
class QueryTypeRegistry {
 public:
  QueryTypeRegistry() = default;

  QueryTypeRegistry(const QueryTypeRegistry&) = delete;
  QueryTypeRegistry& operator=(const QueryTypeRegistry&) = delete;

  /// Shares a type-creation counter across registries: every new type
  /// (declared or discovered) bumps it, and discovered types are named
  /// "discovered-<count after the bump>". The metadata plane installs
  /// one plane-global counter so discovered names — and therefore
  /// StatsReport() — are identical at any shard count. Null (the
  /// default) keeps the historical registry-local count.
  void SetTypeCounter(std::atomic<uint64_t>* counter) {
    type_counter_ = counter;
  }

  /// Offline registration: a domain expert declares a query type by its
  /// parameterized SQL ("SELECT ... WHERE R.A > $1"). Returns the type ID.
  Result<uint64_t> RegisterType(const std::string& name,
                                const std::string& parameterized_sql);

  /// Online discovery: registers a concrete query instance, deriving (and
  /// registering, if new) its query type. Returns the instance.
  Result<const QueryInstance*> RegisterInstance(const std::string& sql);

  /// As RegisterInstance, but with the parse and template extraction
  /// already done by the caller — the metadata plane parses outside its
  /// shard locks so registration holds a lock only for the map inserts.
  /// `tmpl` must be ExtractTemplate(*statement)'s output for `sql`; both
  /// are consumed only when `sql` is not already registered.
  Result<const QueryInstance*> RegisterParsedInstance(
      const std::string& sql, std::unique_ptr<sql::SelectStatement> statement,
      sql::QueryTemplate tmpl);

  /// Removes an instance (its last cached page disappeared).
  void UnregisterInstance(const std::string& sql);

  const QueryType* FindType(uint64_t type_id) const;
  QueryType* FindType(uint64_t type_id);
  const QueryInstance* FindInstance(const std::string& sql) const;
  const QueryInstance* FindInstanceById(uint64_t instance_id) const;

  /// Stable iteration without building pointer vectors. Callbacks must
  /// not mutate the registry (collect, then mutate after the loop).
  /// Types iterate in type_id order; instances of a type in SQL-text
  /// order — the same orders the vector snapshots below expose.
  void ForEachType(const std::function<void(const QueryType&)>& fn) const;
  void ForEachTypeMutable(const std::function<void(QueryType&)>& fn);
  void ForEachInstanceOfType(
      uint64_t type_id,
      const std::function<void(const QueryInstance&)>& fn) const;

  /// All registered types.
  std::vector<const QueryType*> Types() const;
  /// All live instances of `type_id`.
  std::vector<const QueryInstance*> InstancesOfType(uint64_t type_id) const;

  size_t NumTypes() const { return types_.size(); }
  size_t NumInstances() const { return instances_.size(); }
  size_t NumInstancesOfType(uint64_t type_id) const;

 private:
  std::map<uint64_t, QueryType> types_;
  std::map<uint64_t, QueryInstance> instances_;  // Keyed by instance_id.
  std::map<std::string, uint64_t> instance_id_by_sql_;
  // type_id -> (SQL text -> instance). The inner key keeps per-type
  // iteration in SQL order, matching the historical scan of the global
  // SQL-keyed map (scheduler tie-breaks depend on this order). The value
  // is a direct pointer (stable: instances_ is a node-based map) so the
  // invalidator's per-cycle sweep does no per-instance id lookup.
  std::map<uint64_t, std::map<std::string, QueryInstance*>> instances_by_type_;
  uint64_t next_instance_id_ = 0;
  std::atomic<uint64_t>* type_counter_ = nullptr;  // Not owned; may be null.
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_REGISTRY_H_
