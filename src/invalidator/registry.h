#ifndef CACHEPORTAL_INVALIDATOR_REGISTRY_H_
#define CACHEPORTAL_INVALIDATOR_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "sql/template.h"

namespace cacheportal::invalidator {

/// Self-tuning statistics kept per query type (Section 4.1.1): how often
/// instances are seen, how often updates invalidate them, and how long
/// invalidation processing takes.
struct QueryTypeStats {
  uint64_t instances_seen = 0;      // Query instances registered.
  uint64_t checks = 0;              // (instance, update-batch) analyses.
  uint64_t affected = 0;            // Analyses that invalidated.
  uint64_t polling_queries = 0;     // Polls issued for this type.
  Micros total_invalidation_time = 0;
  Micros max_invalidation_time = 0;

  /// Fraction of analyses that led to invalidation ("the ratio of query
  /// instances invalidated by each update").
  double InvalidationRatio() const {
    return checks == 0 ? 0.0
                       : static_cast<double>(affected) / checks;
  }

  Micros AvgInvalidationTime() const {
    return checks == 0 ? 0 : total_invalidation_time / static_cast<Micros>(checks);
  }
};

/// A registered query type: the parameterized template shared by all its
/// instances, a human name, cacheability (set by the policy engine), and
/// running statistics.
struct QueryType {
  uint64_t type_id = 0;
  std::string name;
  sql::QueryTemplate tmpl;
  bool cacheable = true;
  QueryTypeStats stats;
};

/// A registered query instance: the concrete SQL of a query that built at
/// least one cached page, its parsed form, and the type it belongs to.
struct QueryInstance {
  std::string sql;
  uint64_t type_id = 0;
  std::unique_ptr<sql::SelectStatement> statement;
};

/// The registration module's data structures (Section 4.1): query types
/// declared by domain experts (offline mode) plus types discovered from
/// the QI/URL map (online mode), and the instances grouped under them.
class QueryTypeRegistry {
 public:
  QueryTypeRegistry() = default;

  QueryTypeRegistry(const QueryTypeRegistry&) = delete;
  QueryTypeRegistry& operator=(const QueryTypeRegistry&) = delete;

  /// Offline registration: a domain expert declares a query type by its
  /// parameterized SQL ("SELECT ... WHERE R.A > $1"). Returns the type ID.
  Result<uint64_t> RegisterType(const std::string& name,
                                const std::string& parameterized_sql);

  /// Online discovery: registers a concrete query instance, deriving (and
  /// registering, if new) its query type. Returns the instance.
  Result<const QueryInstance*> RegisterInstance(const std::string& sql);

  /// Removes an instance (its last cached page disappeared).
  void UnregisterInstance(const std::string& sql);

  const QueryType* FindType(uint64_t type_id) const;
  QueryType* FindType(uint64_t type_id);
  const QueryInstance* FindInstance(const std::string& sql) const;

  /// All registered types.
  std::vector<const QueryType*> Types() const;
  /// All live instances of `type_id`.
  std::vector<const QueryInstance*> InstancesOfType(uint64_t type_id) const;

  size_t NumTypes() const { return types_.size(); }
  size_t NumInstances() const { return instances_.size(); }

 private:
  std::map<uint64_t, QueryType> types_;
  std::map<std::string, QueryInstance> instances_;  // Keyed by SQL text.
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_REGISTRY_H_
