#include "invalidator/scheduler.h"

#include <algorithm>
#include <map>

namespace cacheportal::invalidator {

InvalidationScheduler::Schedule InvalidationScheduler::BuildWithBudget(
    std::vector<PollingTask> tasks, size_t max_polls) const {
  std::sort(tasks.begin(), tasks.end(),
            [](const PollingTask& a, const PollingTask& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              return a.affected_pages > b.affected_pages;
            });

  // Group tasks per instance, keeping each group's priority at its
  // highest-priority task (groups stay in first-appearance order of the
  // sorted task list).
  std::vector<std::vector<PollingTask>> groups;
  std::map<std::string, size_t> group_of;
  for (PollingTask& task : tasks) {
    auto [it, inserted] = group_of.try_emplace(task.instance_sql,
                                               groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].push_back(std::move(task));
  }

  // Admit whole instances in priority order while their polls fit the
  // budget. A group too large for the remaining budget is condemned, but
  // later (lower-priority) smaller groups may still fill the remainder:
  // polling them is strictly better than leaving budget idle, since the
  // skipped instance is invalidated conservatively either way.
  Schedule schedule;
  for (std::vector<PollingTask>& group : groups) {
    const bool fits =
        max_polls == 0 ||
        schedule.to_poll.size() + group.size() <= max_polls;
    if (fits) {
      for (PollingTask& task : group) {
        schedule.to_poll.push_back(std::move(task));
      }
    } else {
      // One representative carries the instance's conservative verdict.
      schedule.conservative.push_back(std::move(group.front()));
    }
  }
  return schedule;
}

}  // namespace cacheportal::invalidator
