#include "invalidator/scheduler.h"

#include <algorithm>

namespace cacheportal::invalidator {

InvalidationScheduler::Schedule InvalidationScheduler::Build(
    std::vector<PollingTask> tasks) const {
  std::sort(tasks.begin(), tasks.end(),
            [](const PollingTask& a, const PollingTask& b) {
              if (a.deadline != b.deadline) return a.deadline < b.deadline;
              return a.affected_pages > b.affected_pages;
            });
  Schedule schedule;
  for (PollingTask& task : tasks) {
    if (max_polls_ == 0 || schedule.to_poll.size() < max_polls_) {
      schedule.to_poll.push_back(std::move(task));
    } else {
      schedule.conservative.push_back(std::move(task));
    }
  }
  return schedule;
}

}  // namespace cacheportal::invalidator
