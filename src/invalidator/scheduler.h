#ifndef CACHEPORTAL_INVALIDATOR_SCHEDULER_H_
#define CACHEPORTAL_INVALIDATOR_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "sql/ast.h"

namespace cacheportal::invalidator {

/// A pending polling decision for one query instance: issue `query` to
/// find out whether the instance was affected by this cycle's updates.
struct PollingTask {
  std::string instance_sql;  // The query instance being decided.
  uint64_t type_id = 0;      // The instance's query type; polls of one
                             // type share a template, which is what makes
                             // them consolidatable into one disjunction.
  std::unique_ptr<sql::SelectStatement> query;  // The polling query.
  Micros deadline = 0;       // Invalidation must land by this time.
  size_t affected_pages = 0; // Cached pages riding on the verdict.
};

/// The schedule-generation component (Section 4.2.2). Polling improves
/// invalidation precision but costs DBMS work, and the invalidator runs
/// under real-time constraints — so each cycle gets a polling budget.
/// Tasks are ordered by (deadline, pages at stake); tasks beyond the
/// budget are not polled and their instances are invalidated
/// conservatively (trading over-invalidation for timeliness, the exact
/// tradeoff the paper describes).
///
/// The unit of scheduling is the query INSTANCE, not the individual
/// polling query: an instance is only "provably unaffected" when every
/// one of its polls came back empty, so admitting some of its polls and
/// condemning a sibling wastes the admitted polls (the instance is
/// invalidated conservatively regardless). Build therefore admits or
/// condemns all of an instance's polls together, and an instance appears
/// at most once in `conservative`.
class InvalidationScheduler {
 public:
  /// `max_polls_per_cycle` of 0 means unlimited.
  explicit InvalidationScheduler(size_t max_polls_per_cycle)
      : max_polls_(max_polls_per_cycle) {}

  struct Schedule {
    /// Polls of admitted instances, grouped contiguously per instance in
    /// priority order. to_poll.size() never exceeds the budget.
    std::vector<PollingTask> to_poll;
    /// One representative task per condemned instance (deduplicated):
    /// invalidate without polling.
    std::vector<PollingTask> conservative;
  };

  Schedule Build(std::vector<PollingTask> tasks) const {
    return BuildWithBudget(std::move(tasks), max_polls_);
  }

  /// Build with an explicit budget for this cycle, overriding the
  /// configured one — the overload controller's degradation ladder
  /// shrinks the budget under load. `max_polls` of 0 means unlimited
  /// (same convention as the constructor).
  Schedule BuildWithBudget(std::vector<PollingTask> tasks,
                           size_t max_polls) const;

  size_t max_polls_per_cycle() const { return max_polls_; }

 private:
  size_t max_polls_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_SCHEDULER_H_
