#ifndef CACHEPORTAL_INVALIDATOR_SINKS_H_
#define CACHEPORTAL_INVALIDATOR_SINKS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "http/message.h"

namespace cacheportal::invalidator {

/// Receives the invalidation messages the invalidator generates
/// (Section 4.2.4). The message is a normal HTTP request carrying
/// `Cache-Control: eject`; `cache_key` is the addressed page's canonical
/// identity. core::PageCacheSink adapts a cache::PageCache.
///
/// Delivery contract: ejects are idempotent (re-ejecting an absent page
/// is a no-op), so a failed SendInvalidation may be retried safely —
/// core::ReliableDeliveryQueue builds at-least-once delivery on exactly
/// this property. A non-OK return means the message may not have reached
/// the cache; the caller must retry or escalate, never ignore it.
///
/// Threading contract: with InvalidatorOptions::worker_threads > 1 the
/// invalidator calls each sink from a pool thread, but never calls the
/// SAME sink from two threads at once, and messages reach each sink in
/// the same order as the serial pipeline would send them. Sinks need no
/// internal locking unless they share mutable state with one another.
class InvalidationSink {
 public:
  virtual ~InvalidationSink() = default;

  virtual Status SendInvalidation(const http::HttpRequest& eject_message,
                                  const std::string& cache_key) = 0;
};

/// One entry of a batch send: borrowed pointers into the caller's
/// pending messages (valid for the duration of the call only).
struct BatchItem {
  const http::HttpRequest* eject_message = nullptr;
  const std::string* cache_key = nullptr;
};

/// What a batch send achieved. The sink confirmed the first `confirmed`
/// items (in call order) — each with the same "acked downstream"
/// meaning as a successful SendInvalidation — and `status` explains the
/// first unconfirmed one (it is ignored when everything confirmed). The
/// retryable-vs-fatal taxonomy is unchanged: kUnavailable earns the
/// remainder a retry, kNotSupported/kParseError/kInvalidArgument
/// dead-letter it.
struct BatchSendResult {
  size_t confirmed = 0;
  Status status = Status::OK();
};

/// Optional capability of an InvalidationSink: amortized delivery of
/// many ejects per transport operation (e.g. the pipelined invalidation
/// wire's EJECT_BATCH frames). core::ReliableDeliveryQueue discovers it
/// by dynamic_cast and, when BatchingEnabled(), drains up to batch_max
/// queued messages per flush through SendInvalidationBatch instead of
/// one SendInvalidation at a time. Items arrive in the sink's FIFO
/// order; a partial confirmation MUST be a prefix (the queue requeues
/// the unconfirmed suffix in order, preserving per-sink FIFO).
class BatchInvalidationSink {
 public:
  virtual ~BatchInvalidationSink() = default;

  virtual BatchSendResult SendInvalidationBatch(
      const std::vector<BatchItem>& items) = 0;

  /// Lets an adapter implement the interface unconditionally but opt in
  /// per instance (e.g. only when constructed with a batch transport).
  virtual bool BatchingEnabled() const { return true; }
};

/// Optional capability of an InvalidationSink: delivery health the
/// invalidator can observe. The overload controller reads PendingBacklog
/// as an overload signal, and StatsReport() embeds HealthReport so
/// delivery health is visible where operators already look.
class ObservableSink {
 public:
  virtual ~ObservableSink() = default;

  /// Un-acked (message, sink) pairs the sink still owes downstream.
  virtual size_t PendingBacklog() const = 0;

  /// One diagnostic line (no trailing newline).
  virtual std::string HealthReport() const = 0;
};

/// Optional capability of an InvalidationSink: state that must survive a
/// process restart (e.g. a delivery queue's un-acked messages).
/// Invalidator::Checkpoint embeds each capable sink's state and
/// Invalidator::Restore hands it back, matched by AddSink order.
class CheckpointableSink {
 public:
  virtual ~CheckpointableSink() = default;

  /// Serializes the sink's durable state (opaque bytes).
  virtual std::string CheckpointState() const = 0;

  /// Rebuilds state from CheckpointState() output.
  virtual Status RestoreState(const std::string& state) = 0;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_SINKS_H_
