#ifndef CACHEPORTAL_INVALIDATOR_SINKS_H_
#define CACHEPORTAL_INVALIDATOR_SINKS_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "http/message.h"

namespace cacheportal::invalidator {

/// Receives the invalidation messages the invalidator generates
/// (Section 4.2.4). The message is a normal HTTP request carrying
/// `Cache-Control: eject`; `cache_key` is the addressed page's canonical
/// identity. core::PageCacheSink adapts a cache::PageCache.
///
/// Delivery contract: ejects are idempotent (re-ejecting an absent page
/// is a no-op), so a failed SendInvalidation may be retried safely —
/// core::ReliableDeliveryQueue builds at-least-once delivery on exactly
/// this property. A non-OK return means the message may not have reached
/// the cache; the caller must retry or escalate, never ignore it.
///
/// Threading contract: with InvalidatorOptions::worker_threads > 1 the
/// invalidator calls each sink from a pool thread, but never calls the
/// SAME sink from two threads at once, and messages reach each sink in
/// the same order as the serial pipeline would send them. Sinks need no
/// internal locking unless they share mutable state with one another.
class InvalidationSink {
 public:
  virtual ~InvalidationSink() = default;

  virtual Status SendInvalidation(const http::HttpRequest& eject_message,
                                  const std::string& cache_key) = 0;
};

/// Optional capability of an InvalidationSink: delivery health the
/// invalidator can observe. The overload controller reads PendingBacklog
/// as an overload signal, and StatsReport() embeds HealthReport so
/// delivery health is visible where operators already look.
class ObservableSink {
 public:
  virtual ~ObservableSink() = default;

  /// Un-acked (message, sink) pairs the sink still owes downstream.
  virtual size_t PendingBacklog() const = 0;

  /// One diagnostic line (no trailing newline).
  virtual std::string HealthReport() const = 0;
};

/// Optional capability of an InvalidationSink: state that must survive a
/// process restart (e.g. a delivery queue's un-acked messages).
/// Invalidator::Checkpoint embeds each capable sink's state and
/// Invalidator::Restore hands it back, matched by AddSink order.
class CheckpointableSink {
 public:
  virtual ~CheckpointableSink() = default;

  /// Serializes the sink's durable state (opaque bytes).
  virtual std::string CheckpointState() const = 0;

  /// Rebuilds state from CheckpointState() output.
  virtual Status RestoreState(const std::string& state) = 0;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_SINKS_H_
