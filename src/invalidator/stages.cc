#include "invalidator/stages.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "invalidator/impact.h"
#include "sql/analyzer.h"
#include "sql/printer.h"

namespace cacheportal::invalidator {

StagePolicy MakeStagePolicy(DegradationMode mode,
                            const InvalidatorOptions& options) {
  StagePolicy policy;
  policy.mode = mode;
  policy.poll_budget = options.max_polls_per_cycle;
  switch (mode) {
    case DegradationMode::kNormal:
      break;
    case DegradationMode::kEconomy: {
      size_t economy = options.overload.economy_poll_budget;
      if (economy == 0) {
        policy.skip_polls = true;
      } else {
        policy.poll_budget = policy.poll_budget == 0
                                 ? economy
                                 : std::min(policy.poll_budget, economy);
      }
      break;
    }
    case DegradationMode::kConservative:
      policy.skip_polls = true;
      break;
    case DegradationMode::kEmergency:
      policy.skip_polls = true;
      policy.flush_only = true;
      // The one rung that overrides the exact tier: a table-scoped flush
      // abandons precision wholesale, exact types included. The economy
      // and conservative rungs above keep exact_exempt true — they only
      // ration polls, and the exact tier issues none to ration.
      policy.exact_exempt = false;
      break;
  }
  return policy;
}

// ---------------------------------------------------------------------------
// IngestStage
// ---------------------------------------------------------------------------

Status IngestStage::Run(CycleContext& ctx) {
  // ---- Overload planning: pick this cycle's degradation rung. ----
  // Signals are observed BEFORE the log is consumed (the backlog is the
  // evidence) and are deterministic functions of the clock and pipeline
  // state, so the mode sequence is identical at every worker count.
  DegradationMode mode = DegradationMode::kNormal;
  if (env_.overload != nullptr) {
    mode = env_.overload->Plan(env_.observe_signals());
  }
  ctx.policy = MakeStagePolicy(mode, *env_.options);
  ctx.report.mode = mode;

  // ---- Registration module, online mode: scan the QI/URL map. ----
  // The map's epoch is a cheap "anything changed?" probe: when it equals
  // the last scan's snapshot the row set is untouched and the scan would
  // return nothing. Recorded BEFORE the read, so rows added during the
  // scan force a (possibly empty) rescan next cycle rather than a skip.
  uint64_t epoch = env_.map->epoch();
  bool scan = env_.last_map_epoch == nullptr ||
              !env_.last_map_epoch->has_value() ||
              **env_.last_map_epoch != epoch;
  if (scan) {
    if (env_.last_map_epoch != nullptr) *env_.last_map_epoch = epoch;
    uint64_t max_id = 0;
    for (const sniffer::QiUrlEntry& entry :
         env_.map->ReadSince(env_.plane->MinMapCursor())) {
      max_id = std::max(max_id, entry.id);
      Result<const QueryInstance*> instance =
          env_.plane->RegisterInstance(entry.query_sql);
      if (!instance.ok()) {
        // Unparseable query: nothing we can safely track. Drop its pages
        // from consideration (they were cached under a query we cannot
        // invalidate — treat as immediately suspect).
        LogMessage(LogLevel::kWarning,
                   StrCat("cannot register query instance: ",
                          instance.status().ToString()));
        continue;
      }
      ++ctx.report.new_instances;
      ++env_.stats->instances_registered;
    }
    if (max_id > 0) env_.plane->AdvanceMapCursors(max_id);
  }

  // ---- Invalidation module: pull the update log. ----
  std::vector<db::UpdateRecord> records =
      env_.database->update_log().ReadSince(*env_.last_update_seq);
  if (!records.empty()) *env_.last_update_seq = records.back().seq;
  ctx.report.updates = records.size();
  env_.stats->updates_processed += records.size();

  if (records.empty()) {
    ctx.proceed = false;
    return Status::OK();
  }

  ctx.deltas = db::DeltaSet::FromRecords(records);
  // The internal polling cache must not serve results that predate this
  // batch: drop everything reading an updated table first.
  if (env_.polling_cache != nullptr) {
    env_.polling_cache->Synchronize(ctx.deltas);
  }
  // Keep the information manager's auxiliary structures current: the
  // paper's daemon applies the same update stream it analyzes; we apply
  // before answering polls so index answers match the database state the
  // polls would see.
  env_.info->ApplyDeltas(ctx.deltas);

  // One merged tuple view per updated table (inserts then deletes, the
  // order the per-instance copies used to have), borrowed by every
  // analysis this cycle instead of copied per instance.
  for (const std::string& table : ctx.deltas.Tables()) {
    const db::TableDelta& delta = ctx.deltas.ForTable(table);
    TableTuples view;
    view.table = table;
    view.tuples = delta.MergedRows();
    if (!view.tuples.empty()) ctx.merged.push_back(std::move(view));
  }

  // Columnar materialization of the merged views (parallel by index),
  // built once here and probed whole-column per (type, table) anchor by
  // ImpactStage. Borrows the same rows as `merged`. Gated on the plane's
  // strategy config (the options resolved once at construction) — the
  // stages read strategy knobs from one place, not scattered booleans.
  if (env_.plane->strategy().compiled && env_.plane->strategy().batch) {
    ctx.batch_columns.reserve(ctx.merged.size());
    for (const TableTuples& view : ctx.merged) {
      ctx.batch_columns.push_back(sql::ColumnBatch::FromRows(view.tuples));
    }
  }

  ctx.proceed = true;
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ImpactStage
// ---------------------------------------------------------------------------

namespace {

/// Index-probe result for one (query type, delta table): per-instance
/// candidate tuple lists plus the tuples every instance must consider
/// (NULL/boolean column values). Built serially under the type's shard
/// lock, read-only in the fan-out. Both lists are ascending and
/// duplicate-free, so a sorted merge reconstructs each instance's
/// candidate tuples in delta order.
struct TableProbe {
  std::vector<uint32_t> all_tuples;
  std::unordered_map<uint64_t, std::vector<uint32_t>> per_id;
};

}  // namespace

Status ImpactStage::Run(CycleContext& ctx) {
  MetadataPlane& plane = *env_.plane;

  // ---- Emergency rung: table-scoped flush, no analysis, no polling. ----
  // Precision is abandoned for this cycle: every registered instance
  // reading a table with backlogged updates is invalidated outright, and
  // the cursor has already fast-forwarded past the whole backlog in
  // ingest — unbounded staleness becomes bounded over-invalidation.
  // Instances reading only untouched tables are provably unaffected and
  // skipped.
  if (ctx.policy.flush_only) {
    plane.ForEachInstance([&](const QueryType&, const QueryInstance& instance) {
      if (env_.map->NumPagesForQuery(instance.sql) == 0) return;
      bool reads_updated_table = false;
      for (const sql::TableRef& ref : instance.statement->from) {
        if (!ctx.deltas.ForTable(ref.table).empty()) {
          reads_updated_table = true;
          break;
        }
      }
      if (!reads_updated_table) return;
      if (ctx.affected.insert(instance.sql).second) {
        ++env_.stats->emergency_flushes;
        ++env_.stats->conservative_invalidations;
        ++ctx.report.conservative_invalidations;
      }
    });
    return Status::OK();
  }

  // ---- Impact analysis (Section 4.1.2's grouping). ----
  const bool batch = plane.strategy().compiled && plane.strategy().batch &&
                     ctx.batch_columns.size() == ctx.merged.size();

  // Exact-tier types (DESIGN.md §16): decided per instance from the
  // delta's row images — no index probes, no impact fan-out, no polls.
  // Snapshotted up front because the ForEach* callbacks below must not
  // re-enter the plane. Empty when the policy's rung revoked the
  // exemption (kEmergency never reaches this point anyway).
  std::set<uint64_t> exact_types;
  if (ctx.policy.exact_exempt) {
    for (const auto& [type_id, decision] : plane.TierAssignments()) {
      if (decision.tier == StrategyTier::kExact) exact_types.insert(type_id);
    }
  }

  // Retire sweep gate: checking every instance costs a page-count map
  // lookup per instance, but a query's page count can only DROP through
  // a RemovePage — so when the map's removal epoch is unchanged since
  // the last sweep, every live instance provably still has a page and
  // the sweep would retire nothing. A null slot (stage isolation tests)
  // or an empty one (first cycle, post-restore — recovered instances may
  // reference pages a rebuilt map never had) forces the sweep.
  const uint64_t removal_epoch = env_.map->removals_epoch();
  const bool sweep = env_.last_retire_epoch == nullptr ||
                     !env_.last_retire_epoch->has_value() ||
                     **env_.last_retire_epoch != removal_epoch;
  if (env_.last_retire_epoch != nullptr) {
    *env_.last_retire_epoch = removal_epoch;
  }

  // Serial pre-pass: retire instances whose pages already left the cache
  // (evicted or invalidated through another instance), and — on the
  // interpreted/scalar path — snapshot the per-instance work list in the
  // same walk. The snapshot's QueryInstance pointers stay valid without
  // holding shard locks: instances are node-mapped and only the cycle
  // thread (below, or DeliverStage) erases them. Registration may insert
  // concurrently; inserts never move nodes. The columnar path builds its
  // (much smaller) work list type by type after the probes instead.
  std::vector<std::string> retired;
  std::vector<InstanceAnalysis>& work = ctx.work;
  if (!batch) {
    ctx.work.reserve(plane.NumInstances());
    plane.ForEachInstance([&](const QueryType& type,
                              const QueryInstance& instance) {
      if (sweep && env_.map->NumPagesForQuery(instance.sql) == 0) {
        retired.push_back(instance.sql);
        return;
      }
      InstanceAnalysis analysis;
      analysis.type_id = type.type_id;
      analysis.instance_id = instance.instance_id;
      analysis.instance = &instance;
      analysis.exact = exact_types.count(type.type_id) > 0;
      ctx.work.push_back(std::move(analysis));
    });
  } else if (sweep) {
    plane.ForEachInstance(
        [&](const QueryType&, const QueryInstance& instance) {
          if (env_.map->NumPagesForQuery(instance.sql) == 0) {
            retired.push_back(instance.sql);
          }
        });
  }
  for (const std::string& instance_sql : retired) {
    plane.RetireInstance(instance_sql);
  }

  // ---- Index probe phase: each delta tuple probes the bind index once
  // per covered (type, table), producing per-instance candidate tuple
  // lists. Instances absent from every list are provably unaffected —
  // the fan-out below skips their AST work entirely. Runs type by type
  // under that type's shard lock, so a concurrent registration of the
  // same type is serialized (and keeps the live/indexed counts in step —
  // both change under the same lock).
  std::map<std::pair<uint64_t, size_t>, TableProbe> probes;

  /// Per-type snapshot driving the columnar partition: the live instance
  /// count is captured under the type's shard lock at probe time, so it
  /// is consistent with the probes' candidate sets.
  struct TypeBlock {
    uint64_t type_id = 0;
    const QueryType* type = nullptr;
    size_t live = 0;
  };
  std::vector<TypeBlock> blocks;  // Ascending type_id — the scan order.

  if (batch) {
    // Columnar path: enumerate TYPES, not instances. One whole-column
    // probe per (type, table) pair; the anchored column's kAlways rows
    // (NULL / boolean / NaN / missing cells, and every row when the
    // column index is beyond the batch width) come back as all_rows —
    // exactly the per-tuple probe's `all` answers.
    plane.ForEachType([&](const QueryType& type) {
      blocks.push_back({type.type_id, &type, 0});
    });
    for (TypeBlock& block : blocks) {
      plane.WithShardOfType(block.type_id, [&](MetadataPlane::Shard& shard) {
        block.live = shard.registry.NumInstancesOfType(block.type_id);
        if (block.live == 0) return;
        // Exact-tier types need no candidate discovery: every instance
        // is decided from row images in the fan-out below.
        if (exact_types.count(block.type_id) > 0) return;
        auto matcher_it = shard.matchers.find(block.type_id);
        if (matcher_it == shard.matchers.end() ||
            !matcher_it->second.handled()) {
          return;
        }
        // Exclusion is only sound if every live instance of the type is
        // indexed; a mismatch (cannot happen while all registrations and
        // retirements flow through the plane) falls back to the
        // interpreted path for the whole type.
        if (shard.bind_index.IndexedCountOfType(block.type_id) !=
            block.live) {
          return;
        }
        for (size_t t = 0; t < ctx.merged.size(); ++t) {
          const CompiledAnchor* anchor =
              matcher_it->second.AnchorFor(ctx.merged[t].table);
          if (anchor == nullptr) continue;
          env_.cycle_matcher_stats->probes += ctx.merged[t].tuples.size();
          ++env_.cycle_matcher_stats->batch_probes;
          BindIndex::BatchProbe batch_probe;
          shard.bind_index.ProbeBatch(
              block.type_id, ctx.merged[t].table, *anchor,
              ctx.batch_columns[t].Column(anchor->column_index),
              &batch_probe, env_.cycle_matcher_stats);
          TableProbe probe;
          probe.all_tuples = std::move(batch_probe.all_rows);
          probe.per_id = std::move(batch_probe.per_id);
          probes.emplace(std::make_pair(block.type_id, t),
                         std::move(probe));
        }
      });
    }
  } else if (plane.use_type_matcher() && !work.empty()) {
    std::vector<uint64_t> work_types;  // Distinct, in work (type) order.
    for (const InstanceAnalysis& a : work) {
      if (work_types.empty() || work_types.back() != a.type_id) {
        work_types.push_back(a.type_id);
      }
    }
    for (uint64_t type_id : work_types) {
      if (exact_types.count(type_id) > 0) continue;
      plane.WithShardOfType(type_id, [&](MetadataPlane::Shard& shard) {
        auto matcher_it = shard.matchers.find(type_id);
        if (matcher_it == shard.matchers.end() ||
            !matcher_it->second.handled()) {
          return;
        }
        // Same live/indexed cross-check as the columnar path above.
        if (shard.bind_index.IndexedCountOfType(type_id) !=
            shard.registry.NumInstancesOfType(type_id)) {
          return;
        }
        for (size_t t = 0; t < ctx.merged.size(); ++t) {
          const CompiledAnchor* anchor =
              matcher_it->second.AnchorFor(ctx.merged[t].table);
          if (anchor == nullptr) continue;
          TableProbe probe;
          for (uint32_t ti = 0; ti < ctx.merged[t].tuples.size(); ++ti) {
            ++env_.cycle_matcher_stats->probes;
            const db::Row& row = *ctx.merged[t].tuples[ti];
            if (anchor->column_index >= row.size()) {
              // Malformed row; the analyzer will report it. Everyone
              // looks.
              probe.all_tuples.push_back(ti);
              continue;
            }
            BindIndex::Candidates candidates = shard.bind_index.Probe(
                type_id, ctx.merged[t].table, *anchor,
                row[anchor->column_index]);
            if (candidates.all) {
              probe.all_tuples.push_back(ti);
              continue;
            }
            for (uint64_t id : candidates.ids) {
              probe.per_id[id].push_back(ti);
            }
          }
          probes.emplace(std::make_pair(type_id, t), std::move(probe));
        }
      });
    }
  }

  // The multi-table soundness guard's input (see the fan-out below): how
  // many of a statement's FROM relations this batch updated. Identical
  // for every instance of a type, so the partition evaluates it per type
  // from the type's template; the per-instance map for the fan-out is
  // filled from the final work list further down.
  const auto count_delta_tables = [&](const sql::SelectStatement& statement) {
    int n = 0;
    for (const sql::TableRef& ref : statement.from) {
      if (!ctx.deltas.ForTable(ref.table).empty()) ++n;
    }
    return n;
  };

  // ---- Columnar partition: build the work list per type, skipping the
  // fan-out — and the per-instance state entirely — for instances the
  // probes proved unaffected. A type is eligible when no multi-table
  // guard applies and every merged view either (a) has a probe whose
  // all_tuples list is empty — then an instance absent from per_id would
  // short-circuit that table with zero AST work — or (b) is a table
  // outside the type's FROM list, which AnalyzeDelta dismisses without
  // reading a tuple. An eligible type materializes only the candidates
  // in some covering per_id (in SQL-text order, the scalar snapshot's
  // order — polling order downstream depends on it); the rest fold into
  // one aggregate record per type, merged below with counters identical
  // to the scalar walk's. An ineligible type materializes everyone.
  struct SkippedBlock {
    uint64_t type_id = 0;
    uint64_t count = 0;           // Instances proven unaffected.
    uint64_t covered_tuples = 0;  // Tuples excluded per instance.
    uint64_t covered_views = 0;   // Tables short-circuited per instance.
  };
  std::vector<SkippedBlock> skipped;
  if (batch) {
    std::vector<const QueryInstance*> fetched;
    for (const TypeBlock& block : blocks) {
      if (block.live == 0) continue;
      // Exact-tier types bypass the probe-driven partition: every live
      // instance enters the work list (SQL-text order — the scalar
      // snapshot's order) and is decided from row images in the fan-out.
      if (exact_types.count(block.type_id) > 0) {
        plane.WithShardOfType(
            block.type_id, [&](MetadataPlane::Shard& shard) {
              shard.registry.ForEachInstanceOfType(
                  block.type_id, [&](const QueryInstance& instance) {
                    InstanceAnalysis analysis;
                    analysis.type_id = block.type_id;
                    analysis.instance_id = instance.instance_id;
                    analysis.instance = &instance;
                    analysis.exact = true;
                    work.push_back(std::move(analysis));
                  });
            });
        continue;
      }
      const sql::SelectStatement* statement = block.type->tmpl.statement.get();

      std::vector<const TableProbe*> covering(ctx.merged.size(), nullptr);
      uint64_t covered_tuples = 0;
      uint64_t covered_views = 0;
      bool eligible =
          statement != nullptr && count_delta_tables(*statement) < 2;
      if (eligible) {
        for (size_t t = 0; eligible && t < ctx.merged.size(); ++t) {
          auto probe_it = probes.find(std::make_pair(block.type_id, t));
          if (probe_it != probes.end()) {
            if (!probe_it->second.all_tuples.empty()) {
              eligible = false;  // Some tuples reach every instance.
              break;
            }
            covering[t] = &probe_it->second;
            covered_tuples += ctx.merged[t].tuples.size();
            ++covered_views;
            continue;
          }
          // Uncovered view: only harmless when the table is not in the
          // type's FROM list (identical for every instance of the type).
          for (const sql::TableRef& ref : statement->from) {
            if (AsciiToLower(ref.table) == ctx.merged[t].table) {
              eligible = false;
              break;
            }
          }
        }
      }

      if (!eligible) {
        plane.WithShardOfType(
            block.type_id, [&](MetadataPlane::Shard& shard) {
              shard.registry.ForEachInstanceOfType(
                  block.type_id, [&](const QueryInstance& instance) {
                    InstanceAnalysis analysis;
                    analysis.type_id = block.type_id;
                    analysis.instance_id = instance.instance_id;
                    analysis.instance = &instance;
                    work.push_back(std::move(analysis));
                  });
            });
        continue;
      }

      // Candidates: the union of the covering probes' per_id keys. Every
      // key is a live indexed instance of this type, so the remainder —
      // live minus candidates — is exactly the skipped population.
      std::vector<uint64_t> candidate_ids;
      for (size_t t = 0; t < ctx.merged.size(); ++t) {
        if (covering[t] == nullptr) continue;
        for (const auto& [id, rows] : covering[t]->per_id) {
          candidate_ids.push_back(id);
        }
      }
      std::sort(candidate_ids.begin(), candidate_ids.end());
      candidate_ids.erase(
          std::unique(candidate_ids.begin(), candidate_ids.end()),
          candidate_ids.end());
      fetched.clear();
      if (!candidate_ids.empty()) {
        plane.WithShardOfType(
            block.type_id, [&](MetadataPlane::Shard& shard) {
              for (uint64_t id : candidate_ids) {
                const QueryInstance* instance =
                    shard.registry.FindInstanceById(id);
                if (instance != nullptr &&
                    instance->type_id == block.type_id) {
                  fetched.push_back(instance);
                }
              }
            });
        std::sort(fetched.begin(), fetched.end(),
                  [](const QueryInstance* a, const QueryInstance* b) {
                    return a->sql < b->sql;
                  });
        for (const QueryInstance* instance : fetched) {
          InstanceAnalysis analysis;
          analysis.type_id = block.type_id;
          analysis.instance_id = instance->instance_id;
          analysis.instance = instance;
          work.push_back(std::move(analysis));
        }
      }
      if (block.live > fetched.size()) {
        skipped.push_back({block.type_id, block.live - fetched.size(),
                           covered_tuples, covered_views});
      }
    }
  }

  // Per-type multi-table guard counts for the fan-out, from the final
  // work list (an instance's FROM list equals its type's template FROM
  // list — templates parameterize only WHERE literals).
  std::unordered_map<uint64_t, int> delta_tables_by_type;
  for (const InstanceAnalysis& a : work) {
    if (delta_tables_by_type.contains(a.type_id)) continue;
    delta_tables_by_type.emplace(a.type_id,
                                 count_delta_tables(*a.instance->statement));
  }

  // Fan out: instances are independent given the batch's deltas. Workers
  // touch only const reads (deltas, schemas, the QI/URL map, the probe
  // results, join-index answers behind a shared lock) and their own work
  // slot — no shard locks, so registration proceeds concurrently. The
  // analyzer is stateless; one per cycle, shared by all workers.
  const std::vector<TableTuples>& merged = ctx.merged;
  const ImpactAnalyzer analyzer(env_.database);
  RunStageParallel(env_.pool, work.size(), [&](size_t slot) {
    InstanceAnalysis& a = work[slot];
    const QueryInstance& instance = *a.instance;

    if (a.exact) {
      // Exact tier: the delta for the instance's single FROM table
      // decides membership changes from its row images — no impact
      // analysis, no polls, never condemned. Views over other tables
      // cannot affect a single-table query and are skipped outright
      // (the checked bit still arms so the merge counts the analysis,
      // exactly like the conservative walk does).
      Micros check_start = env_.clock->NowMicros();
      const sql::SelectStatement& statement = *instance.statement;
      const db::Table* table =
          statement.from.empty()
              ? nullptr
              : env_.database->FindTable(statement.from[0].table);
      bool affected = false;
      for (const TableTuples& view : merged) {
        a.checked = true;
        if (table == nullptr) {
          // Schema vanished under an assigned tier: eject conservatively
          // rather than risk staleness.
          affected = true;
          break;
        }
        if (!EqualsIgnoreCase(statement.from[0].table, view.table)) continue;
        if (ExactInstanceAffected(statement, table->schema(),
                                  ctx.deltas.ForTable(view.table))) {
          affected = true;
          break;
        }
      }
      a.check_time = env_.clock->NowMicros() - check_start;
      if (a.checked && affected) a.affected = true;
      return;
    }

    if (delta_tables_by_type.find(a.type_id)->second >= 2) {
      a.multi_table_guard = true;
      return;
    }

    Micros check_start = env_.clock->NowMicros();
    bool affected = false;
    std::vector<std::unique_ptr<sql::SelectStatement>> polls;
    std::vector<const db::Row*> subset;
    for (const TableTuples& view : merged) {
      a.checked = true;
      const std::vector<const db::Row*>* tuples = &view.tuples;
      auto probe_it = probes.find(
          std::make_pair(a.type_id, static_cast<size_t>(&view - &merged[0])));
      if (probe_it != probes.end()) {
        // Sorted-merge the tuples every instance must see with this
        // instance's candidates: delta order is preserved, so verdicts
        // and polling SQL match the interpreted path byte for byte.
        const TableProbe& probe = probe_it->second;
        auto own_it = probe.per_id.find(a.instance_id);
        static const std::vector<uint32_t> kNone;
        const std::vector<uint32_t>& own =
            own_it == probe.per_id.end() ? kNone : own_it->second;
        subset.clear();
        subset.reserve(probe.all_tuples.size() + own.size());
        size_t x = 0;
        size_t y = 0;
        while (x < probe.all_tuples.size() || y < own.size()) {
          uint32_t next;
          if (y >= own.size() ||
              (x < probe.all_tuples.size() && probe.all_tuples[x] < own[y])) {
            next = probe.all_tuples[x++];
          } else {
            next = own[y++];
          }
          subset.push_back(view.tuples[next]);
        }
        a.matcher_excluded += view.tuples.size() - subset.size();
        if (subset.empty()) {
          // Every tuple's probe excluded this instance: provably
          // unaffected by this table with zero AST work.
          ++a.matcher_short_circuits;
          continue;
        }
        tuples = &subset;
      }

      if (env_.options->batch_deltas) {
        Result<ImpactResult> impact =
            analyzer.AnalyzeDelta(*instance.statement, view.table, *tuples);
        if (!impact.ok()) {
          a.status = impact.status();
          return;
        }
        if (impact->kind == ImpactKind::kAffected) {
          affected = true;
          break;
        }
        if (impact->kind == ImpactKind::kNeedsPolling) {
          polls.push_back(std::move(impact->polling_query));
        }
      } else {
        for (const db::Row* tuple : *tuples) {
          Result<ImpactResult> impact =
              analyzer.AnalyzeTuple(*instance.statement, view.table, *tuple);
          if (!impact.ok()) {
            a.status = impact.status();
            return;
          }
          if (impact->kind == ImpactKind::kAffected) {
            affected = true;
            break;
          }
          if (impact->kind == ImpactKind::kNeedsPolling) {
            polls.push_back(std::move(impact->polling_query));
          }
        }
        if (affected) break;
      }
    }
    a.check_time = env_.clock->NowMicros() - check_start;
    if (!a.checked) return;
    if (affected) {
      a.affected = true;
      return;
    }
    if (polls.empty()) return;

    // Try the information manager's indexes before scheduling DBMS
    // polls.
    for (auto& poll : polls) {
      std::optional<bool> answer = env_.info->AnswerPoll(*poll);
      if (answer.has_value()) {
        ++a.index_answers;
        if (*answer) {
          a.index_affected = true;
          return;
        }
      } else {
        a.remaining_polls.push_back(std::move(poll));
      }
    }
    a.affected_pages = env_.map->NumPagesForQuery(instance.sql);
  });

  // Serial merge, in snapshot order: fold verdicts into the lifetime and
  // per-type stats and collect the polling tasks. Work is grouped by
  // type, so each type block merges under one brief shard lock —
  // identical results to the serial loop, at any shard count.
  size_t i = 0;
  while (i < work.size()) {
    uint64_t type_id = work[i].type_id;
    size_t j = i;
    while (j < work.size() && work[j].type_id == type_id) ++j;
    Status block_status;
    plane.WithShardOfType(type_id, [&](MetadataPlane::Shard& shard) {
      QueryType* mutable_type = shard.registry.FindType(type_id);
      for (size_t k = i; k < j; ++k) {
        InstanceAnalysis& a = work[k];
        if (!a.status.ok()) {
          block_status = a.status;
          return;
        }
        const std::string& instance_sql = a.instance->sql;

        if (a.multi_table_guard) {
          ++ctx.report.checks;
          ++env_.stats->instance_checks;
          ++env_.stats->affected_immediately;
          if (mutable_type != nullptr) {
            ++mutable_type->stats.checks;
            ++mutable_type->stats.affected;
          }
          ctx.affected.insert(instance_sql);
          continue;
        }
        if (!a.checked) continue;

        env_.cycle_matcher_stats->tuples_excluded += a.matcher_excluded;
        env_.cycle_matcher_stats->instances_short_circuited +=
            a.matcher_short_circuits;
        ++ctx.report.checks;
        ++env_.stats->instance_checks;
        if (mutable_type != nullptr) {
          QueryTypeStats& ts = mutable_type->stats;
          ++ts.checks;
          ts.total_invalidation_time += a.check_time;
          ts.max_invalidation_time =
              std::max(ts.max_invalidation_time, a.check_time);
        }

        if (a.affected) {
          ctx.affected.insert(instance_sql);
          ++env_.stats->affected_immediately;
          if (mutable_type != nullptr) ++mutable_type->stats.affected;
          continue;
        }
        env_.stats->polls_answered_by_index += a.index_answers;
        ctx.report.polls_answered_by_index += a.index_answers;
        if (a.index_affected) {
          ctx.affected.insert(instance_sql);
          if (mutable_type != nullptr) ++mutable_type->stats.affected;
          continue;
        }
        if (a.remaining_polls.empty()) {
          ++env_.stats->unaffected;
          continue;
        }
        for (auto& poll : a.remaining_polls) {
          PollingTask task;
          task.instance_sql = instance_sql;
          task.type_id = a.type_id;
          task.query = std::move(poll);
          task.deadline = ctx.start + env_.options->cycle_deadline;
          task.affected_pages = a.affected_pages;
          ctx.tasks.push_back(std::move(task));
          if (mutable_type != nullptr) ++mutable_type->stats.polling_queries;
        }
      }
    });
    CACHEPORTAL_RETURN_NOT_OK(block_status);
    i = j;
  }

  // Fold the partition's fully-skipped type blocks: the columnar probes
  // short-circuited every table for `count` instances before any
  // per-instance state existed. Record exactly what the scalar walk
  // would have per instance — one check, every covered tuple excluded,
  // one short-circuit per covered table, verdict unaffected (check_time
  // zero; the fast path reads no clock). All the touched counters are
  // order-insensitive sums, so folding after the per-instance merge is
  // byte-identical to interleaving.
  for (const SkippedBlock& block : skipped) {
    plane.WithShardOfType(block.type_id, [&](MetadataPlane::Shard& shard) {
      QueryType* mutable_type = shard.registry.FindType(block.type_id);
      if (mutable_type != nullptr) mutable_type->stats.checks += block.count;
    });
    env_.cycle_matcher_stats->tuples_excluded +=
        block.covered_tuples * block.count;
    env_.cycle_matcher_stats->instances_short_circuited +=
        block.covered_views * block.count;
    env_.cycle_matcher_stats->fast_path_instances += block.count;
    ctx.report.checks += block.count;
    env_.stats->instance_checks += block.count;
    env_.stats->unaffected += block.count;
  }

  return Status::OK();
}

// ---------------------------------------------------------------------------
// PollStage
// ---------------------------------------------------------------------------

namespace {

/// One instance's polling work in the parallel polling fan-out. The
/// scheduler emits an instance's polls contiguously, so grouping is a
/// single pass; polls within a group run in order and short-circuit on
/// the first hit or failure, exactly like the serial loop.
struct PollGroup {
  std::string instance_sql;
  uint64_t type_id = 0;
  std::vector<std::unique_ptr<sql::SelectStatement>> queries;

  // Outcome.
  uint64_t polls_issued = 0;
  bool poll_hit = false;
  bool conservative = false;  // A poll failed; invalidate conservatively.
  std::string failure;        // The failed poll's status, for the log.
};

/// One consolidated polling statement: the OR of the residual WHEREs of
/// several instances' polls against one (type, target table), executed
/// as a single DBMS round trip and demultiplexed in-process.
struct MergedPoll {
  sql::TableRef from;
  std::vector<size_t> groups;  // Member PollGroup indexes, in group order.
  struct MemberRef {
    size_t group = 0;
    size_t query = 0;  // Index into that group's queries.
  };
  std::vector<MemberRef> members;
  std::unique_ptr<sql::SelectStatement> statement;

  // Outcome (written by the one worker owning this poll). `hit_best`
  // maps each hit member group to the smallest satisfied query index —
  // the query the group's own serial loop would have stopped at — so
  // the merge can charge the group the identical polls_issued count.
  bool failed = false;
  std::string failure;
  std::map<size_t, size_t> hit_best;
};

/// Does `row` (a SELECT * result over `from`) satisfy a member poll's
/// residual WHERE? Decided with the same substitution + fold the impact
/// analyzer and the executor use, so the demultiplexed verdict equals
/// what the member's own `SELECT 1 ... LIMIT 1` poll would have returned.
bool RowSatisfies(const sql::Expression& where, const sql::TableRef& from,
                  const std::vector<std::string>& columns,
                  const db::Row& row) {
  auto substituter = [&](const std::string& tbl, const std::string& col)
      -> std::optional<sql::Value> {
    if (!tbl.empty() && !EqualsIgnoreCase(tbl, from.EffectiveName())) {
      return std::nullopt;
    }
    for (size_t i = 0; i < columns.size() && i < row.size(); ++i) {
      if (EqualsIgnoreCase(columns[i], col)) return row[i];
    }
    return std::nullopt;
  };
  sql::FoldResult folded =
      sql::FoldConstants(*sql::SubstituteColumns(where, substituter));
  // A residual would mean the row lacks a referenced column (cannot
  // happen: SELECT * carries the whole schema); count it as a hit rather
  // than risk staleness.
  return folded.outcome == sql::FoldOutcome::kTrue ||
         folded.outcome == sql::FoldOutcome::kResidual;
}

}  // namespace

Status PollStage::Run(CycleContext& ctx) {
  // ---- Schedule and execute polling queries, parallel phase. ----
  // The degradation rung already set this cycle's effective polling
  // budget in the stage policy: kEconomy shrank it, kConservative (or an
  // economy budget of 0) skips polling entirely — every undecided
  // instance is condemned.
  InvalidationScheduler::Schedule schedule;
  if (ctx.policy.skip_polls) {
    // Condemn whole instances exactly like the scheduler would: one
    // representative task per instance, in task order.
    std::set<std::string> condemned;
    for (PollingTask& task : ctx.tasks) {
      if (condemned.insert(task.instance_sql).second) {
        schedule.conservative.push_back(std::move(task));
      }
    }
  } else {
    schedule = env_.scheduler->BuildWithBudget(std::move(ctx.tasks),
                                               ctx.policy.poll_budget);
  }
  ctx.tasks.clear();

  // Condemn budget-overflow instances BEFORE any poll is issued: a
  // condemned instance is invalidated regardless, so polling any of its
  // queries would be pure DBMS waste.
  for (PollingTask& task : schedule.conservative) {
    if (ctx.affected.insert(task.instance_sql).second) {
      ++env_.stats->conservative_invalidations;
      ++ctx.report.conservative_invalidations;
    }
  }

  // Group the admitted polls per instance (the scheduler emits them
  // contiguously); instances the analysis already decided need no polls.
  std::vector<PollGroup> poll_groups;
  for (PollingTask& task : schedule.to_poll) {
    if (ctx.affected.contains(task.instance_sql)) continue;
    if (poll_groups.empty() ||
        poll_groups.back().instance_sql != task.instance_sql) {
      poll_groups.emplace_back();
      poll_groups.back().instance_sql = task.instance_sql;
      poll_groups.back().type_id = task.type_id;
    }
    poll_groups.back().queries.push_back(std::move(task.query));
  }

  // Consolidation (the paper's type-level grouping applied to polling):
  // instances of one type polling one single-table target share their
  // residuals' shape, so their polls merge into chunks of
  // `SELECT * FROM target WHERE (r1) OR (r2) OR ...` — one DBMS round
  // trip per chunk — and each returned row is matched back to its member
  // residuals in-process. Buckets with a single instance keep the exact
  // per-query path. Which instances end up affected is unchanged, and so
  // is polls_issued (the merge below reconstructs each member's serial
  // short-circuit count from the demux); only poll_round_trips (and, if
  // a merged statement fails, the blast radius of conservatism) differs.
  std::vector<MergedPoll> merged_polls;
  std::vector<size_t> classic_groups;
  if (env_.options->consolidate_polls && poll_groups.size() > 1) {
    std::vector<bool> consolidated(poll_groups.size(), false);
    std::map<std::tuple<uint64_t, std::string, std::string>,
             std::vector<size_t>>
        buckets;
    for (size_t g = 0; g < poll_groups.size(); ++g) {
      const PollGroup& group = poll_groups[g];
      const sql::TableRef* target = nullptr;
      bool mergeable = !group.queries.empty();
      for (const auto& query : group.queries) {
        if (query->from.size() != 1 || query->where == nullptr) {
          mergeable = false;
          break;
        }
        if (target == nullptr) {
          target = &query->from[0];
        } else if (!EqualsIgnoreCase(query->from[0].table, target->table) ||
                   !EqualsIgnoreCase(query->from[0].alias, target->alias)) {
          mergeable = false;
          break;
        }
      }
      if (!mergeable) continue;
      buckets[{group.type_id, AsciiToLower(target->table),
               AsciiToLower(target->alias)}]
          .push_back(g);
    }
    for (const auto& [bucket_key, bucket_groups] : buckets) {
      if (bucket_groups.size() < 2) continue;
      size_t chunk = env_.options->consolidated_poll_chunk == 0
                         ? bucket_groups.size()
                         : env_.options->consolidated_poll_chunk;
      for (size_t base = 0; base < bucket_groups.size(); base += chunk) {
        size_t end = std::min(base + chunk, bucket_groups.size());
        MergedPoll poll;
        poll.from = poll_groups[bucket_groups[base]].queries[0]->from[0];
        sql::ExpressionPtr disjunction;
        for (size_t j = base; j < end; ++j) {
          size_t g = bucket_groups[j];
          poll.groups.push_back(g);
          consolidated[g] = true;
          for (size_t q = 0; q < poll_groups[g].queries.size(); ++q) {
            poll.members.push_back({g, q});
            sql::ExpressionPtr clause =
                poll_groups[g].queries[q]->where->Clone();
            disjunction = disjunction == nullptr
                              ? std::move(clause)
                              : std::make_unique<sql::BinaryExpr>(
                                    sql::BinaryOp::kOr, std::move(disjunction),
                                    std::move(clause));
          }
        }
        auto statement = std::make_unique<sql::SelectStatement>();
        sql::SelectItem star;
        star.star = true;
        statement->items.push_back(std::move(star));
        statement->from.push_back(poll.from);
        statement->where = std::move(disjunction);
        poll.statement = std::move(statement);
        merged_polls.push_back(std::move(poll));
      }
    }
    for (size_t g = 0; g < poll_groups.size(); ++g) {
      if (!consolidated[g]) classic_groups.push_back(g);
    }
  } else {
    classic_groups.reserve(poll_groups.size());
    for (size_t g = 0; g < poll_groups.size(); ++g) classic_groups.push_back(g);
  }

  // Fan out: one worker task per classic instance (its polls run in
  // order and stop at the first hit or failure, like the serial loop) or
  // per merged statement (one round trip, then in-process demux).
  RunStageParallel(
      env_.pool, classic_groups.size() + merged_polls.size(), [&](size_t u) {
        if (u < classic_groups.size()) {
          PollGroup& group = poll_groups[classic_groups[u]];
          for (const auto& query : group.queries) {
            std::string poll_sql = sql::StatementToSql(*query);
            ++group.polls_issued;
            Result<db::QueryResult> result = env_.execute_poll(poll_sql);
            if (!result.ok()) {
              group.conservative = true;
              group.failure = result.status().ToString();
              return;
            }
            if (!result->rows.empty()) {
              group.poll_hit = true;
              return;
            }
          }
          return;
        }
        MergedPoll& poll = merged_polls[u - classic_groups.size()];
        std::string poll_sql = sql::StatementToSql(*poll.statement);
        Result<db::QueryResult> result = env_.execute_poll(poll_sql);
        if (!result.ok()) {
          poll.failed = true;
          poll.failure = result.status().ToString();
          return;
        }
        // Demultiplex: find each member group's FIRST satisfied query.
        // A later row can satisfy an earlier query of an already-hit
        // group, so a member is settled only once its group's best index
        // reaches it; when every group bottoms out at query 0 the
        // remaining rows can't change anything.
        size_t settled = 0;
        for (const db::Row& row : result->rows) {
          if (settled == poll.groups.size()) break;
          for (const MergedPoll::MemberRef& member : poll.members) {
            auto best_it = poll.hit_best.find(member.group);
            if (best_it != poll.hit_best.end() &&
                best_it->second <= member.query) {
              continue;
            }
            const auto& query = poll_groups[member.group].queries[member.query];
            if (RowSatisfies(*query->where, poll.from, result->columns, row)) {
              if (best_it == poll.hit_best.end()) {
                poll.hit_best.emplace(member.group, member.query);
              } else {
                best_it->second = member.query;
              }
              if (member.query == 0) ++settled;
            }
          }
        }
      });

  // Serial merge in deterministic order: classic groups first (in group
  // order), then merged polls (in bucket order).
  for (size_t g : classic_groups) {
    PollGroup& group = poll_groups[g];
    env_.stats->polls_issued += group.polls_issued;
    ctx.report.polls_issued += group.polls_issued;
    env_.cycle_matcher_stats->poll_round_trips += group.polls_issued;
    if (group.conservative) {
      // A failed poll must not leak staleness: invalidate conservatively.
      LogMessage(LogLevel::kWarning,
                 StrCat("polling query failed (", group.failure,
                        "); invalidating conservatively"));
      ctx.affected.insert(group.instance_sql);
      ++env_.stats->conservative_invalidations;
      ++ctx.report.conservative_invalidations;
      continue;
    }
    if (group.poll_hit) {
      ++env_.stats->poll_hits;
      ctx.affected.insert(group.instance_sql);
    }
  }
  for (MergedPoll& poll : merged_polls) {
    // polls_issued stays the LOGICAL member-poll count — what the serial
    // per-query loop would have issued — so StatsReport() is identical
    // at every consolidation setting and chunk size; the physical
    // statement count rides in MatcherStats as poll_round_trips.
    ++env_.cycle_matcher_stats->poll_round_trips;
    ++env_.cycle_matcher_stats->consolidated_polls;
    env_.cycle_matcher_stats->consolidated_members += poll.members.size();
    if (poll.failed) {
      // One failed round trip decides every member conservatively; each
      // member is charged one poll, exactly like a serial group whose
      // first poll fails.
      LogMessage(LogLevel::kWarning,
                 StrCat("consolidated polling query failed (", poll.failure,
                        "); invalidating ", poll.groups.size(),
                        " instances conservatively"));
      for (size_t g : poll.groups) {
        ++env_.stats->polls_issued;
        ++ctx.report.polls_issued;
        ctx.affected.insert(poll_groups[g].instance_sql);
        ++env_.stats->conservative_invalidations;
        ++ctx.report.conservative_invalidations;
      }
      continue;
    }
    for (size_t g : poll.groups) {
      auto hit_it = poll.hit_best.find(g);
      // Serial equivalence: a hit group stops at its first satisfied
      // query (best + 1 polls); a miss group runs them all.
      uint64_t issued = hit_it != poll.hit_best.end()
                            ? hit_it->second + 1
                            : poll_groups[g].queries.size();
      env_.stats->polls_issued += issued;
      ctx.report.polls_issued += issued;
      if (hit_it != poll.hit_best.end()) {
        ++env_.stats->poll_hits;
        ctx.affected.insert(poll_groups[g].instance_sql);
      }
    }
  }

  return Status::OK();
}

// ---------------------------------------------------------------------------
// DeliverStage
// ---------------------------------------------------------------------------

namespace {

/// A fully built eject message, ready for per-sink delivery.
struct Eject {
  std::string page_key;
  http::HttpRequest request;
};

/// Per-sink delivery counters, accumulated on the worker that owns the
/// sink and merged serially.
struct SinkTally {
  uint64_t sent = 0;
  uint64_t failures = 0;
  std::vector<std::string> warnings;
};

}  // namespace

Status DeliverStage::Run(CycleContext& ctx) {
  // ---- Generate invalidation messages, parallel phase. ----
  ctx.report.affected_instances = ctx.affected.size();

  // Serial: collect the deduplicated page list (ctx.affected is an
  // ordered set, so the order is deterministic) and build each eject
  // message — a normal HTTP request addressed at the page, carrying the
  // Cache-Control: eject extension (Section 4.2.4).
  std::vector<Eject> ejects;
  std::set<std::string> pages_done;
  for (const std::string& instance_sql : ctx.affected) {
    for (const std::string& page_key : env_.map->PagesForQuery(instance_sql)) {
      if (!pages_done.insert(page_key).second) continue;
      Eject eject;
      eject.page_key = page_key;
      Result<http::PageId> id = http::PageId::FromCacheKey(page_key);
      if (id.ok()) {
        eject.request.method = http::Method::kGet;
        eject.request.host = id->host();
        eject.request.path = id->path();
        eject.request.get_params = id->get_params();
        eject.request.post_params = id->post_params();
        eject.request.cookies = id->cookie_params();
      } else {
        LogMessage(LogLevel::kWarning,
                   StrCat("unparseable cache key '", page_key,
                          "': ", id.status().ToString()));
      }
      http::CacheControl cc;
      cc.eject = true;
      eject.request.headers.Set("Cache-Control", cc.ToHeaderValue());
      ejects.push_back(std::move(eject));
    }
  }

  // Fan out across sinks: each sink is owned by one worker task, which
  // delivers every message in order (preserving the per-sink FIFO a
  // ReliableDeliveryQueue depends on) — sinks never see concurrent calls.
  const std::vector<InvalidationSink*>& sinks = *env_.sinks;
  std::vector<SinkTally> tallies(sinks.size());
  RunStageParallel(env_.pool, sinks.size(), [&](size_t s) {
    InvalidationSink* sink = sinks[s];
    SinkTally& tally = tallies[s];
    for (const Eject& eject : ejects) {
      Status sent = sink->SendInvalidation(eject.request, eject.page_key);
      ++tally.sent;
      if (!sent.ok()) {
        // A sink that rejects a message owns no retry state — without a
        // ReliableDeliveryQueue in front, this page may stay stale in
        // that cache. Surface it loudly (at the merge).
        ++tally.failures;
        tally.warnings.push_back(
            StrCat("invalidation delivery failed for '", eject.page_key,
                   "': ", sent.ToString()));
      }
    }
  });
  for (const SinkTally& tally : tallies) {
    env_.stats->messages_sent += tally.sent;
    env_.stats->send_failures += tally.failures;
    for (const std::string& warning : tally.warnings) {
      LogMessage(LogLevel::kWarning, warning);
    }
  }

  // Serial post-pass: ejected pages leave the map (retiring their rows
  // for every instance that fed them), and instances left without pages
  // are unregistered.
  for (const Eject& eject : ejects) {
    env_.map->RemovePage(eject.page_key);
    ++ctx.report.pages_invalidated;
    ++env_.stats->pages_invalidated;
  }
  for (const std::string& instance_sql : ctx.affected) {
    if (env_.map->NumPagesForQuery(instance_sql) == 0) {
      env_.plane->RetireInstance(instance_sql);
    }
  }

  return Status::OK();
}

}  // namespace cacheportal::invalidator
