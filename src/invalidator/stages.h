#ifndef CACHEPORTAL_INVALIDATOR_STAGES_H_
#define CACHEPORTAL_INVALIDATOR_STAGES_H_

#include "common/status.h"
#include "invalidator/cycle.h"

namespace cacheportal::invalidator {

/// The four typed stages RunCycle is composed of. Each takes the
/// CycleContext explicitly, reads only what earlier stages wrote, and is
/// constructible standalone around a StageEnv — which is how the stage
/// isolation tests drive them. Running Ingest → Impact → Poll → Deliver
/// in order is exactly the historical monolithic cycle.

/// Plans the degradation rung, scans the QI/URL map for new query
/// instances (routing registrations into the metadata plane's shards),
/// pulls the update log, and builds the delta set + merged tuple views.
/// Sets ctx.proceed = false when the log had nothing new.
class IngestStage {
 public:
  explicit IngestStage(StageEnv env) : env_(std::move(env)) {}
  Status Run(CycleContext& ctx);

 private:
  StageEnv env_;
};

/// Impact analysis (Section 4.1.2's grouping): snapshots the work list,
/// retires page-less instances, probes the bind indexes, fans the
/// per-instance analysis across the pool, and merges verdicts into
/// stats and polling tasks — or, on the emergency rung, table-scope
/// flushes without analysis.
class ImpactStage {
 public:
  explicit ImpactStage(StageEnv env) : env_(std::move(env)) {}
  Status Run(CycleContext& ctx);

 private:
  StageEnv env_;
};

/// Schedules the polling tasks under the rung's budget, condemns the
/// overflow conservatively, consolidates mergeable polls into
/// disjunctions, executes everything across the pool, and merges the
/// poll verdicts into ctx.affected.
class PollStage {
 public:
  explicit PollStage(StageEnv env) : env_(std::move(env)) {}
  Status Run(CycleContext& ctx);

 private:
  StageEnv env_;
};

/// Builds the deduplicated eject messages from ctx.affected, fans
/// delivery across the sinks, removes ejected pages from the QI/URL map,
/// and retires instances left page-less.
class DeliverStage {
 public:
  explicit DeliverStage(StageEnv env) : env_(std::move(env)) {}
  Status Run(CycleContext& ctx);

 private:
  StageEnv env_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_STAGES_H_
