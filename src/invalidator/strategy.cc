#include "invalidator/strategy.h"

#include <optional>
#include <set>
#include <vector>

#include "common/strings.h"
#include "sql/analyzer.h"
#include "sql/eval.h"

namespace cacheportal::invalidator {

namespace {

/// Resolves column references of a single-table statement against one row
/// image. Accepts unqualified references and qualifiers naming either the
/// real table or the statement's FROM alias (both ignore-case), mirroring
/// the executor's SingleTableResolver plus alias awareness.
class RowImageResolver : public sql::ColumnResolver {
 public:
  RowImageResolver(const db::TableSchema& schema, const std::string& alias,
                   const db::Row& row)
      : schema_(schema), alias_(alias), row_(row) {}

  std::optional<sql::Value> Resolve(const std::string& table,
                                    const std::string& column) const override {
    if (!table.empty() && !EqualsIgnoreCase(table, schema_.name()) &&
        !EqualsIgnoreCase(table, alias_)) {
      return std::nullopt;
    }
    std::optional<size_t> idx = schema_.ColumnIndex(column);
    if (!idx.has_value() || *idx >= row_.size()) return std::nullopt;
    return row_[*idx];
  }

 private:
  const db::TableSchema& schema_;
  const std::string& alias_;
  const db::Row& row_;
};

/// WHERE satisfaction of one row image under 3VL; absent WHERE is TRUE.
/// Evaluation errors (malformed row, type confusion) report satisfied so
/// the caller ejects conservatively instead of failing the cycle.
bool RowSatisfiesWhere(const sql::SelectStatement& statement,
                       const db::TableSchema& schema, const db::Row& row) {
  if (statement.where == nullptr) return true;
  RowImageResolver resolver(
      schema, statement.from.empty() ? std::string() : statement.from[0].alias,
      row);
  Result<std::optional<bool>> verdict =
      sql::EvalPredicate(*statement.where, resolver);
  if (!verdict.ok()) return true;
  return verdict->has_value() && **verdict;
}

/// Schema indexes of the columns the result's bytes depend on: every
/// column the select items and ORDER BY read, or all columns when any
/// item is `*`. Returns nullopt when a reference does not resolve (the
/// caller then treats every column as relevant).
std::optional<std::set<size_t>> RelevantColumns(
    const sql::SelectStatement& statement, const db::TableSchema& schema) {
  std::set<size_t> relevant;
  auto add_refs = [&](const sql::Expression& expr) -> bool {
    for (const sql::ColumnRefExpr* ref : sql::CollectColumnRefs(expr)) {
      std::optional<size_t> idx = schema.ColumnIndex(ref->column());
      if (!idx.has_value()) return false;
      relevant.insert(*idx);
    }
    return true;
  };
  for (const sql::SelectItem& item : statement.items) {
    if (item.star) {
      for (size_t i = 0; i < schema.num_columns(); ++i) relevant.insert(i);
      continue;
    }
    if (item.expr != nullptr && !add_refs(*item.expr)) return std::nullopt;
  }
  for (const sql::OrderByItem& item : statement.order_by) {
    if (item.expr != nullptr && !add_refs(*item.expr)) return std::nullopt;
  }
  return relevant;
}

}  // namespace

const char* StrategyTierName(StrategyTier tier) {
  switch (tier) {
    case StrategyTier::kExact:
      return "exact";
    case StrategyTier::kCompiledBatch:
      return "compiled-batch";
    case StrategyTier::kInterpret:
      return "interpret";
    case StrategyTier::kPoll:
      return "poll";
  }
  return "unknown";
}

StrategyConfig StrategyConfig::FromOptions(const InvalidatorOptions& options) {
  StrategyConfig config;
  config.exact = options.exact_strategy;
  config.compiled = options.use_type_matcher;
  config.batch = options.batch_impact;
  return config;
}

TierDecision DecideTier(const QueryType& type, const db::Database& database,
                        const StrategyConfig& config, bool matcher_handled,
                        const std::string& matcher_fallback) {
  TierDecision decision;
  const sql::SelectStatement* statement = type.tmpl.statement.get();
  if (statement == nullptr) {
    decision.tier = StrategyTier::kInterpret;
    decision.reason = "no template";
    return decision;
  }

  sql::TemplateShape shape = sql::ClassifyTemplateShape(*statement);
  std::string demotion = shape.blocker;

  if (demotion.empty()) {
    // Shape-eligible; exactness additionally needs every column reference
    // to resolve against the live schema (a dangling reference would make
    // image evaluation silently wrong rather than conservative).
    const db::Table* table = statement->from.empty()
                                 ? nullptr
                                 : database.FindTable(statement->from[0].table);
    if (table == nullptr) {
      demotion = "unknown table";
    } else {
      const db::TableSchema& schema = table->schema();
      const std::string& alias = statement->from[0].alias;
      auto refs_resolve = [&](const sql::Expression& expr) {
        for (const sql::ColumnRefExpr* ref : sql::CollectColumnRefs(expr)) {
          if (!ref->table().empty() &&
              !EqualsIgnoreCase(ref->table(), schema.name()) &&
              !EqualsIgnoreCase(ref->table(), alias)) {
            return false;
          }
          if (!schema.ColumnIndex(ref->column()).has_value()) return false;
        }
        return true;
      };
      bool resolved = statement->where == nullptr || refs_resolve(*statement->where);
      for (const sql::SelectItem& item : statement->items) {
        if (!resolved) break;
        if (item.expr != nullptr) resolved = refs_resolve(*item.expr);
      }
      for (const sql::OrderByItem& item : statement->order_by) {
        if (!resolved) break;
        if (item.expr != nullptr) resolved = refs_resolve(*item.expr);
      }
      if (!resolved) {
        demotion = "unresolved column";
      } else if (config.exact) {
        decision.tier = StrategyTier::kExact;
        return decision;
      } else {
        demotion = "exact tier disabled";
      }
    }
  }

  // Tier naming deliberately ignores config.compiled: the tier records
  // what the matcher CAN do with the template, while the options decide
  // which execution path actually runs — so StatsReport() (which prints
  // the census) stays byte-identical between the compiled and
  // interpreted paths, as the matcher differential suite asserts.
  if (matcher_handled) {
    decision.tier = StrategyTier::kCompiledBatch;
    decision.reason = demotion;
    return decision;
  }

  // Unanchored path. Multi-table shapes (including self-joins) are the
  // ones whose interpreted analysis residualizes on essentially every
  // relevant delta, so their steady state is the polling tier. The shape
  // blocker names WHY the template left the exact tier; the matcher's
  // fallback string only fills in when the shape itself was eligible.
  decision.tier = (statement->from.size() > 1 || shape.self_join)
                      ? StrategyTier::kPoll
                      : StrategyTier::kInterpret;
  decision.reason = !demotion.empty() ? demotion : matcher_fallback;
  return decision;
}

bool ExactInstanceAffected(const sql::SelectStatement& statement,
                           const db::TableSchema& schema,
                           const db::TableDelta& delta) {
  if (delta.empty()) return false;

  std::vector<bool> paired_insert(delta.inserts.size(), false);
  std::vector<bool> paired_delete(delta.deletes.size(), false);
  for (const auto& [d_idx, i_idx] : delta.update_pairs) {
    if (d_idx < paired_delete.size()) paired_delete[d_idx] = true;
    if (i_idx < paired_insert.size()) paired_insert[i_idx] = true;
  }

  // Unpaired Δ⁺/Δ⁻ rows: membership enters or leaves iff WHERE is TRUE.
  for (size_t i = 0; i < delta.inserts.size(); ++i) {
    if (paired_insert[i]) continue;
    if (RowSatisfiesWhere(statement, schema, delta.inserts[i])) return true;
  }
  for (size_t i = 0; i < delta.deletes.size(); ++i) {
    if (paired_delete[i]) continue;
    if (RowSatisfiesWhere(statement, schema, delta.deletes[i])) return true;
  }

  if (delta.update_pairs.empty()) return false;

  std::optional<std::set<size_t>> relevant = RelevantColumns(statement, schema);
  for (const auto& [d_idx, i_idx] : delta.update_pairs) {
    if (d_idx >= delta.deletes.size() || i_idx >= delta.inserts.size()) {
      return true;  // Malformed pairing: eject conservatively.
    }
    const db::Row& old_row = delta.deletes[d_idx];
    const db::Row& new_row = delta.inserts[i_idx];
    bool old_in = RowSatisfiesWhere(statement, schema, old_row);
    bool new_in = RowSatisfiesWhere(statement, schema, new_row);
    if (old_in != new_in) return true;
    if (!old_in) continue;  // Never in the result: invisible change.
    // In the result before and after (same scan position — the pair
    // token guarantees an in-place update): only a change to a column
    // the result reads can alter its bytes.
    if (!relevant.has_value()) return true;
    if (old_row.size() != new_row.size()) return true;
    for (size_t col : *relevant) {
      if (col >= old_row.size() || !(old_row[col] == new_row[col])) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace cacheportal::invalidator
