#ifndef CACHEPORTAL_INVALIDATOR_STRATEGY_H_
#define CACHEPORTAL_INVALIDATOR_STRATEGY_H_

#include <cstdint>
#include <string>

#include "db/database.h"
#include "db/delta.h"
#include "invalidator/options.h"
#include "invalidator/registry.h"

namespace cacheportal::invalidator {

/// Per-type invalidation strategy, assigned once at registration from the
/// template's structural classification (DESIGN.md §16) and fixed for the
/// type's lifetime (persisted through checkpoints so an analyzer change
/// can never silently reassign a restored type).
enum class StrategyTier : uint8_t {
  /// Single-table template whose WHERE is row-decidable under 3VL:
  /// invalidation is decided exactly from the delta tuples' old/new row
  /// images (Łopuszański's single-table algorithm). No impact-analysis
  /// fan-out, no polling, no false ejects.
  kExact = 0,
  /// The compiled matcher + columnar batch path: per-table anchors probe
  /// the bind index to exclude provably-unaffected instances; the rest
  /// fall through to interpreted analysis and possibly polling.
  kCompiledBatch = 1,
  /// Per-instance interpreted impact analysis (substitute + fold), with
  /// residuals polled. The ablation baseline and the refuge of templates
  /// the matcher cannot anchor.
  kInterpret = 2,
  /// Templates expected to residualize on most deltas (multi-table
  /// joins, self-joins): interpreted analysis whose usual outcome is a
  /// polling query.
  kPoll = 3,
};

/// "exact" / "compiled-batch" / "interpret" / "poll".
const char* StrategyTierName(StrategyTier tier);

/// Which strategy tiers the options allow. Selection collapses
/// gracefully: with `exact` off every exact-eligible type lands where it
/// would have before this layer existed; with `compiled` off everything
/// non-exact interprets.
struct StrategyConfig {
  bool exact = true;     // InvalidatorOptions::exact_strategy.
  bool compiled = true;  // InvalidatorOptions::use_type_matcher.
  bool batch = true;     // InvalidatorOptions::batch_impact.

  static StrategyConfig FromOptions(const InvalidatorOptions& options);
};

/// A tier assignment plus the census-facing reason. `reason` is empty for
/// kExact and otherwise names the first disqualifier ("multi-table FROM",
/// "self-join", "aggregation", "LIKE pattern", "NULL comparand", ...) or
/// the matcher's fallback reason.
struct TierDecision {
  StrategyTier tier = StrategyTier::kInterpret;
  std::string reason;
};

/// Assigns `type` its strategy tier. Deterministic in (template text,
/// schema, config): independent of shard count, worker count, and
/// registration order, so StatsReport() stays byte-identical across
/// sharding sweeps. `matcher_handled` / `matcher_fallback` describe the
/// compiled TypeMatcher's verdict for the same type (pass false/"" when
/// compilation is disabled).
TierDecision DecideTier(const QueryType& type, const db::Database& database,
                        const StrategyConfig& config, bool matcher_handled,
                        const std::string& matcher_fallback);

/// The exact tier's per-cycle decision for one instance: true iff the
/// interval's delta for the instance's single FROM table changes the
/// query's result. `statement` must be the instance's concrete (bound)
/// statement and the type must have been assigned kExact against the same
/// schema.
///
/// Decision rule, per Łopuszański adapted to this executor:
///  - an unpaired Δ⁺ or Δ⁻ row affects the result iff the WHERE is TRUE
///    for that row under 3VL (absent WHERE is TRUE);
///  - a paired (old, new) in-place UPDATE affects it iff satisfaction
///    flips between the images, or both images satisfy AND a relevant
///    column (one the select items or ORDER BY read; all columns under
///    `*`) changed value. Both-unsatisfied pairs, and both-satisfied
///    pairs touching only unread columns, provably leave the result
///    byte-identical because the row's scan position is stable.
/// Evaluation errors decide `true` (conservative eject) rather than
/// failing the cycle.
bool ExactInstanceAffected(const sql::SelectStatement& statement,
                           const db::TableSchema& schema,
                           const db::TableDelta& delta);

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_STRATEGY_H_
