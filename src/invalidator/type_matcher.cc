#include "invalidator/type_matcher.h"

#include <optional>

#include "common/strings.h"
#include "sql/analyzer.h"
#include "sql/ast.h"

namespace cacheportal::invalidator {

namespace {

/// A column reference resolved against the template's FROM list and the
/// database schemas.
struct ResolvedColumn {
  std::string table_lower;
  std::string column;
  size_t column_index = 0;
};

/// Anchor preference: cheaper/tighter probes win when several conjuncts
/// constrain the same table. Ties keep the first conjunct seen.
int AnchorRank(AnchorRel rel) {
  switch (rel) {
    case AnchorRel::kEq:
      return 0;
    case AnchorRel::kIn:
      return 1;
    case AnchorRel::kBetween:
      return 2;
    case AnchorRel::kLt:
    case AnchorRel::kLtEq:
    case AnchorRel::kGt:
    case AnchorRel::kGtEq:
      return 3;
  }
  return 3;
}

std::optional<AnchorOperand> OperandFrom(const sql::Expression& expr) {
  if (expr.kind() == sql::ExprKind::kParameter) {
    int ordinal = static_cast<const sql::ParameterExpr&>(expr).ordinal();
    if (ordinal <= 0) return std::nullopt;  // Anonymous `?` placeholder.
    AnchorOperand operand;
    operand.ordinal = ordinal;
    return operand;
  }
  if (expr.kind() == sql::ExprKind::kLiteral) {
    AnchorOperand operand;
    operand.constant = static_cast<const sql::LiteralExpr&>(expr).value();
    return operand;
  }
  return std::nullopt;
}

std::optional<AnchorRel> RelFrom(sql::BinaryOp op, bool column_on_left) {
  switch (op) {
    case sql::BinaryOp::kEq:
      return AnchorRel::kEq;
    case sql::BinaryOp::kLt:
      return column_on_left ? AnchorRel::kLt : AnchorRel::kGt;
    case sql::BinaryOp::kLtEq:
      return column_on_left ? AnchorRel::kLtEq : AnchorRel::kGtEq;
    case sql::BinaryOp::kGt:
      return column_on_left ? AnchorRel::kGt : AnchorRel::kLt;
    case sql::BinaryOp::kGtEq:
      return column_on_left ? AnchorRel::kGtEq : AnchorRel::kLtEq;
    default:
      // <> and LIKE fold FALSE on matches the index cannot enumerate;
      // leave them to the interpreted path.
      return std::nullopt;
  }
}

}  // namespace

sql::Value TypeMatcher::OperandValue(const AnchorOperand& operand,
                                     const std::vector<sql::Value>& bindings) {
  if (operand.ordinal <= 0) return operand.constant;
  size_t index = static_cast<size_t>(operand.ordinal) - 1;
  if (index >= bindings.size()) return sql::Value::Null();
  return bindings[index];
}

const CompiledAnchor* TypeMatcher::AnchorFor(
    const std::string& table_lower) const {
  auto it = anchors_.find(table_lower);
  return it == anchors_.end() ? nullptr : &it->second;
}

TypeMatcher TypeMatcher::Compile(const QueryType& type,
                                 const db::Database& database) {
  TypeMatcher matcher;
  const sql::SelectStatement* stmt = type.tmpl.statement.get();
  if (stmt == nullptr) {
    matcher.fallback_reason_ = "type has no template statement";
    return matcher;
  }
  if (stmt->where == nullptr) {
    // Every update to a FROM table affects such a query; there is nothing
    // to index (the analyzer decides it in O(1) anyway).
    matcher.fallback_reason_ = "template has no WHERE clause";
    return matcher;
  }

  std::map<std::string, int> occurrences;
  for (const sql::TableRef& ref : stmt->from) {
    ++occurrences[AsciiToLower(ref.table)];
  }

  // Mirror ImpactAnalyzer's qualification exactly: the compiled anchors
  // must describe the same predicate the analyzer evaluates. Schemas are
  // immutable and the FROM tables exist by the time the first instance
  // registers, so resolving once here equals resolving per analysis.
  auto owner_of =
      [&](const std::string& column) -> std::optional<std::string> {
    std::optional<std::string> owner;
    for (const sql::TableRef& ref : stmt->from) {
      const db::Table* t = database.FindTable(ref.table);
      if (t == nullptr) continue;
      if (t->schema().ColumnIndex(column).has_value()) {
        if (owner.has_value()) return std::nullopt;  // Ambiguous.
        owner = ref.EffectiveName();
      }
    }
    return owner;
  };
  sql::ExpressionPtr qualified = sql::QualifyColumns(*stmt->where, owner_of);

  auto resolve =
      [&](const sql::Expression& expr) -> std::optional<ResolvedColumn> {
    if (expr.kind() != sql::ExprKind::kColumnRef) return std::nullopt;
    const auto& col = static_cast<const sql::ColumnRefExpr&>(expr);
    if (col.table().empty()) return std::nullopt;  // Unresolvably ambiguous.
    for (const sql::TableRef& ref : stmt->from) {
      if (!EqualsIgnoreCase(col.table(), ref.EffectiveName())) continue;
      std::string table_lower = AsciiToLower(ref.table);
      if (occurrences[table_lower] != 1) return std::nullopt;
      const db::Table* t = database.FindTable(ref.table);
      if (t == nullptr) return std::nullopt;
      std::optional<size_t> index = t->schema().ColumnIndex(col.column());
      if (!index.has_value()) return std::nullopt;
      ResolvedColumn resolved;
      resolved.table_lower = std::move(table_lower);
      resolved.column = col.column();
      resolved.column_index = *index;
      return resolved;
    }
    return std::nullopt;
  };

  auto consider = [&matcher](const ResolvedColumn& column, AnchorRel rel,
                             std::vector<AnchorOperand> operands) {
    CompiledAnchor anchor;
    anchor.table_lower = column.table_lower;
    anchor.column = column.column;
    anchor.column_index = column.column_index;
    anchor.rel = rel;
    anchor.operands = std::move(operands);
    auto it = matcher.anchors_.find(anchor.table_lower);
    if (it == matcher.anchors_.end()) {
      matcher.anchors_.emplace(anchor.table_lower, std::move(anchor));
    } else if (AnchorRank(rel) < AnchorRank(it->second.rel)) {
      it->second = std::move(anchor);
    }
  };

  for (const sql::Expression* conjunct : sql::SplitConjuncts(*qualified)) {
    switch (conjunct->kind()) {
      case sql::ExprKind::kBinary: {
        const auto& bin = static_cast<const sql::BinaryExpr&>(*conjunct);
        if (!sql::IsComparisonOp(bin.op())) break;
        std::optional<ResolvedColumn> left = resolve(bin.left());
        std::optional<ResolvedColumn> right = resolve(bin.right());
        if (left.has_value() && right.has_value()) {
          if (bin.op() == sql::BinaryOp::kEq &&
              left->table_lower != right->table_lower) {
            JoinTerm join;
            join.left_table_lower = left->table_lower;
            join.left_column = left->column;
            join.right_table_lower = right->table_lower;
            join.right_column = right->column;
            matcher.join_terms_.push_back(std::move(join));
          }
          break;
        }
        bool column_on_left = left.has_value();
        const std::optional<ResolvedColumn>& column =
            column_on_left ? left : right;
        if (!column.has_value()) break;
        std::optional<AnchorOperand> operand =
            OperandFrom(column_on_left ? bin.right() : bin.left());
        if (!operand.has_value()) break;
        std::optional<AnchorRel> rel = RelFrom(bin.op(), column_on_left);
        if (!rel.has_value()) break;
        consider(*column, *rel, {std::move(*operand)});
        break;
      }
      case sql::ExprKind::kInList: {
        const auto& in = static_cast<const sql::InListExpr&>(*conjunct);
        if (in.negated()) break;
        std::optional<ResolvedColumn> column = resolve(in.operand());
        if (!column.has_value()) break;
        std::vector<AnchorOperand> operands;
        operands.reserve(in.items().size());
        bool all_simple = !in.items().empty();
        for (const sql::ExpressionPtr& item : in.items()) {
          std::optional<AnchorOperand> operand = OperandFrom(*item);
          if (!operand.has_value()) {
            all_simple = false;
            break;
          }
          operands.push_back(std::move(*operand));
        }
        if (!all_simple) break;
        consider(*column, AnchorRel::kIn, std::move(operands));
        break;
      }
      case sql::ExprKind::kBetween: {
        const auto& between = static_cast<const sql::BetweenExpr&>(*conjunct);
        if (between.negated()) break;
        std::optional<ResolvedColumn> column = resolve(between.operand());
        if (!column.has_value()) break;
        std::optional<AnchorOperand> low = OperandFrom(between.low());
        std::optional<AnchorOperand> high = OperandFrom(between.high());
        if (!low.has_value() || !high.has_value()) break;
        consider(*column, AnchorRel::kBetween,
                 {std::move(*low), std::move(*high)});
        break;
      }
      default:
        break;
    }
  }

  if (matcher.anchors_.empty()) {
    matcher.fallback_reason_ = "no indexable conjunct in template WHERE";
  }
  return matcher;
}

}  // namespace cacheportal::invalidator
