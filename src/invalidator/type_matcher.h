#ifndef CACHEPORTAL_INVALIDATOR_TYPE_MATCHER_H_
#define CACHEPORTAL_INVALIDATOR_TYPE_MATCHER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "db/database.h"
#include "invalidator/registry.h"
#include "sql/value.h"

namespace cacheportal::invalidator {

/// Relation of a compiled single-column predicate, normalized so the
/// column sits on the left (`$1 > price` compiles as price < $1).
enum class AnchorRel { kEq, kIn, kBetween, kLt, kLtEq, kGt, kGtEq };

/// One comparand of a compiled predicate: a template parameter (its value
/// varies per instance and is read from QueryInstance::bindings) or a
/// constant baked into the template (NULL / boolean literals, which
/// template extraction keeps structural).
struct AnchorOperand {
  int ordinal = 0;      // 1-based $k; 0 means `constant` holds the value.
  sql::Value constant;
};

/// A compiled per-table predicate `col REL operand(s)` extracted from a
/// query type's template: the conjunct every instance of the type applies
/// to the updated table, differing only in bind values. A delta tuple
/// whose `column` value makes this conjunct fold to definite FALSE makes
/// the whole WHERE fold FALSE (FALSE absorbs through nested ANDs), so the
/// instance is provably unaffected by that tuple — the exclusion the
/// BindIndex implements. A fold to NULL does NOT exclude: the analyzer
/// keeps `NULL AND residual` as a residual, so NULL-producing probes must
/// leave the instance a candidate (BindIndex's always-candidate lists).
struct CompiledAnchor {
  std::string table_lower;   // Real table name, lower-cased (delta key).
  std::string column;
  size_t column_index = 0;   // Index of `column` in the table's schema.
  AnchorRel rel = AnchorRel::kEq;
  /// 1 comparand for =,<,<=,>,>=; the list for IN; {low, high} for
  /// BETWEEN.
  std::vector<AnchorOperand> operands;
};

/// A `T1.c1 = T2.c2` equality across two FROM tables, recorded for
/// introspection (polling consolidation and future join indexes); join
/// terms are not indexed.
struct JoinTerm {
  std::string left_table_lower;
  std::string left_column;
  std::string right_table_lower;
  std::string right_column;
};

/// Compiles a query type's template once (at first instance registration,
/// when the FROM tables are known to exist) into per-table anchors. A
/// table gets at most one anchor, preferring equality over IN over
/// BETWEEN over open intervals (equality probes are O(1)); a table is
/// only coverable when it appears exactly once in FROM (a self-joined
/// table is unaffected only if the predicate fails for EVERY occurrence,
/// which one column index cannot prove). Templates the compiler cannot
/// handle — OR-rooted WHERE, NOT, LIKE, <>, expressions over the column —
/// simply produce no anchors and stay on the interpreted path, keeping
/// decisions and stats byte-identical.
class TypeMatcher {
 public:
  static TypeMatcher Compile(const QueryType& type,
                             const db::Database& database);

  /// The anchor covering `table_lower`, or nullptr (interpreted path).
  const CompiledAnchor* AnchorFor(const std::string& table_lower) const;

  const std::map<std::string, CompiledAnchor>& anchors() const {
    return anchors_;
  }
  const std::vector<JoinTerm>& join_terms() const { return join_terms_; }

  /// True when at least one table is covered by an anchor.
  bool handled() const { return !anchors_.empty(); }

  /// Why compilation produced no anchors (empty when handled()).
  const std::string& fallback_reason() const { return fallback_reason_; }

  /// Resolves an operand against an instance's bind values. Out-of-range
  /// ordinals resolve to NULL (the instance then lands on the
  /// always-candidate lists — sound, never reached for well-formed
  /// templates since bindings has ParameterSlotCount(tmpl) entries).
  static sql::Value OperandValue(const AnchorOperand& operand,
                                 const std::vector<sql::Value>& bindings);

 private:
  std::map<std::string, CompiledAnchor> anchors_;  // By table_lower.
  std::vector<JoinTerm> join_terms_;
  std::string fallback_reason_;
};

}  // namespace cacheportal::invalidator

#endif  // CACHEPORTAL_INVALIDATOR_TYPE_MATCHER_H_
