#include "net/http_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "common/strings.h"
#include "net/socket_util.h"

namespace cacheportal::net {

namespace {

/// Reads one HTTP request from `fd`: headers terminated by CRLFCRLF plus
/// a Content-Length body if declared. Returns empty on EOF/error; when
/// the failure was an SO_RCVTIMEO expiry, also sets *timed_out.
std::string ReadRequest(int fd, bool* timed_out) {
  *timed_out = false;
  std::string data;
  char buf[4096];
  auto read_some = [fd, timed_out, &buf]() -> ssize_t {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *timed_out = true;
    }
    return n;
  };
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    ssize_t n = read_some();
    if (n <= 0) return "";
    data.append(buf, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (data.size() > (1u << 20)) return "";  // 1 MiB header cap.
  }
  // Parse Content-Length (case-insensitive scan of the header block).
  size_t body_needed = 0;
  std::string headers = data.substr(0, header_end);
  std::string lower = AsciiToLower(headers);
  size_t pos = lower.find("content-length:");
  if (pos != std::string::npos) {
    body_needed = static_cast<size_t>(
        std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
  }
  size_t have = data.size() - (header_end + 4);
  while (have < body_needed) {
    ssize_t n = read_some();
    if (n <= 0) {
      // A declared body that never arrives is the slow-loris body
      // variant: treat the request as unusable.
      return "";
    }
    data.append(buf, static_cast<size_t>(n));
    have += static_cast<size_t>(n);
  }
  return data;
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(WireHandler handler,
                                                      Options options) {
  if (!handler) {
    return Status::InvalidArgument("HttpServer requires a handler");
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(
      BoundListener listener,
      BindLoopbackListener(options.port, options.backlog));
  return std::unique_ptr<HttpServer>(
      new HttpServer(std::move(handler), listener.fd, listener.port,
                     std::move(options)));
}

HttpServer::HttpServer(WireHandler handler, int listen_fd, uint16_t port,
                       Options options)
    : handler_(std::move(handler)),
      listen_fd_(listen_fd),
      port_(port),
      io_timeout_(options.io_timeout),
      shed_check_(std::move(options.shed_check)),
      retry_after_seconds_(options.retry_after_seconds) {
  thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  bool was_running = running_.exchange(false);
  if (was_running) {
    // Unblock accept() by shutting the listener down.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      continue;  // Transient accept failure.
    }
    // Bound every read/write so one hung or slow-loris peer cannot
    // stall the single-threaded accept loop forever.
    SetSocketIoTimeout(conn, io_timeout_);
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpServer::ServeConnection(int fd) {
  bool timed_out = false;
  std::string request = ReadRequest(fd, &timed_out);
  if (request.empty()) {
    if (timed_out) {
      connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (shed_check_ && shed_check_()) {
    // Overloaded: refuse explicitly and retryably instead of queueing
    // work behind a loop that is already behind.
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    static constexpr char kShedBody[] = "overloaded";
    std::string shed = StrCat(
        "HTTP/1.1 503 Service Unavailable\r\nRetry-After: ",
        retry_after_seconds_, "\r\nContent-Length: ", sizeof(kShedBody) - 1,
        "\r\n\r\n", kShedBody);
    WriteAllBytes(fd, shed);
    return;
  }
  std::string response = handler_(request);
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  if (!WriteAllBytes(fd, response) &&
      (errno == EAGAIN || errno == EWOULDBLOCK)) {
    connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<std::string> FetchWire(uint16_t port,
                              const std::string& request_bytes) {
  CACHEPORTAL_ASSIGN_OR_RETURN(int fd, ConnectLoopback(port));
  if (!WriteAllBytes(fd, request_bytes)) {
    ::close(fd);
    return Status::Unavailable("short write");
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  // Empty = the peer closed without answering (drop fault, overload kill,
  // crash): transient by definition, so retryable.
  if (response.empty()) return Status::Unavailable("empty response");
  return response;
}

HttpServer::WireHandler WrapWireHandlerWithFaults(
    FaultInjector* faults, HttpServer::WireHandler handler) {
  return [faults, handler = std::move(handler)](
             const std::string& request_bytes) -> std::string {
    if (std::optional<Micros> delay = faults->ShouldDelay()) {
      // Real sleep: this models a slow origin on a real socket, paired
      // with the client's/peer's io_timeout.
      std::this_thread::sleep_for(std::chrono::microseconds(*delay));
    }
    if (faults->ShouldDrop()) {
      return "";  // No bytes: the peer sees the connection close.
    }
    if (faults->ShouldError()) {
      static constexpr char kBody[] = "fault injected";
      return StrCat("HTTP/1.1 503 Service Unavailable\r\nContent-Length: ",
                    sizeof(kBody) - 1, "\r\n\r\n", kBody);
    }
    std::string response = handler(request_bytes);
    if (faults->ShouldMalform()) {
      response = faults->Malform(std::move(response));
    }
    return response;
  };
}

}  // namespace cacheportal::net
