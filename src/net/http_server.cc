#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "common/strings.h"

namespace cacheportal::net {

namespace {

/// Reads one HTTP request from `fd`: headers terminated by CRLFCRLF plus
/// a Content-Length body if declared. Returns empty on EOF/error; when
/// the failure was an SO_RCVTIMEO expiry, also sets *timed_out.
std::string ReadRequest(int fd, bool* timed_out) {
  *timed_out = false;
  std::string data;
  char buf[4096];
  auto read_some = [fd, timed_out, &buf]() -> ssize_t {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      *timed_out = true;
    }
    return n;
  };
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    ssize_t n = read_some();
    if (n <= 0) return "";
    data.append(buf, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (data.size() > (1u << 20)) return "";  // 1 MiB header cap.
  }
  // Parse Content-Length (case-insensitive scan of the header block).
  size_t body_needed = 0;
  std::string headers = data.substr(0, header_end);
  std::string lower = AsciiToLower(headers);
  size_t pos = lower.find("content-length:");
  if (pos != std::string::npos) {
    body_needed = static_cast<size_t>(
        std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
  }
  size_t have = data.size() - (header_end + 4);
  while (have < body_needed) {
    ssize_t n = read_some();
    if (n <= 0) {
      // A declared body that never arrives is the slow-loris body
      // variant: treat the request as unusable.
      return "";
    }
    data.append(buf, static_cast<size_t>(n));
    have += static_cast<size_t>(n);
  }
  return data;
}

bool WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(WireHandler handler,
                                                      Options options) {
  if (!handler) {
    return Status::InvalidArgument("HttpServer requires a handler");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("bind(): ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(fd, options.backlog) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("listen(): ", std::strerror(errno)));
  }
  return std::unique_ptr<HttpServer>(
      new HttpServer(std::move(handler), fd, ntohs(addr.sin_port),
                     std::move(options)));
}

HttpServer::HttpServer(WireHandler handler, int listen_fd, uint16_t port,
                       Options options)
    : handler_(std::move(handler)),
      listen_fd_(listen_fd),
      port_(port),
      io_timeout_(options.io_timeout),
      shed_check_(std::move(options.shed_check)),
      retry_after_seconds_(options.retry_after_seconds) {
  thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  bool was_running = running_.exchange(false);
  if (was_running) {
    // Unblock accept() by shutting the listener down.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      continue;  // Transient accept failure.
    }
    if (io_timeout_ > 0) {
      // Bound every read/write so one hung or slow-loris peer cannot
      // stall the single-threaded accept loop forever.
      timeval tv{};
      tv.tv_sec = static_cast<time_t>(io_timeout_ / kMicrosPerSecond);
      tv.tv_usec = static_cast<suseconds_t>(io_timeout_ % kMicrosPerSecond);
      ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpServer::ServeConnection(int fd) {
  bool timed_out = false;
  std::string request = ReadRequest(fd, &timed_out);
  if (request.empty()) {
    if (timed_out) {
      connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  if (shed_check_ && shed_check_()) {
    // Overloaded: refuse explicitly and retryably instead of queueing
    // work behind a loop that is already behind.
    connections_rejected_.fetch_add(1, std::memory_order_relaxed);
    static constexpr char kShedBody[] = "overloaded";
    std::string shed = StrCat(
        "HTTP/1.1 503 Service Unavailable\r\nRetry-After: ",
        retry_after_seconds_, "\r\nContent-Length: ", sizeof(kShedBody) - 1,
        "\r\n\r\n", kShedBody);
    WriteAll(fd, shed);
    return;
  }
  std::string response = handler_(request);
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  if (!WriteAll(fd, response) &&
      (errno == EAGAIN || errno == EWOULDBLOCK)) {
    connections_timed_out_.fetch_add(1, std::memory_order_relaxed);
  }
}

Result<std::string> FetchWire(uint16_t port,
                              const std::string& request_bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("connect(): ", std::strerror(errno)));
  }
  if (!WriteAll(fd, request_bytes)) {
    ::close(fd);
    return Status::Internal("short write");
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.empty()) return Status::Internal("empty response");
  return response;
}

HttpServer::WireHandler WrapWireHandlerWithFaults(
    FaultInjector* faults, HttpServer::WireHandler handler) {
  return [faults, handler = std::move(handler)](
             const std::string& request_bytes) -> std::string {
    if (std::optional<Micros> delay = faults->ShouldDelay()) {
      // Real sleep: this models a slow origin on a real socket, paired
      // with the client's/peer's io_timeout.
      std::this_thread::sleep_for(std::chrono::microseconds(*delay));
    }
    if (faults->ShouldDrop()) {
      return "";  // No bytes: the peer sees the connection close.
    }
    if (faults->ShouldError()) {
      static constexpr char kBody[] = "fault injected";
      return StrCat("HTTP/1.1 503 Service Unavailable\r\nContent-Length: ",
                    sizeof(kBody) - 1, "\r\n\r\n", kBody);
    }
    std::string response = handler(request_bytes);
    if (faults->ShouldMalform()) {
      response = faults->Malform(std::move(response));
    }
    return response;
  };
}

}  // namespace cacheportal::net
