#include "net/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace cacheportal::net {

namespace {

/// Reads one HTTP request from `fd`: headers terminated by CRLFCRLF plus
/// a Content-Length body if declared. Returns empty on EOF/error.
std::string ReadRequest(int fd) {
  std::string data;
  char buf[4096];
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) return "";
    data.append(buf, static_cast<size_t>(n));
    header_end = data.find("\r\n\r\n");
    if (data.size() > (1u << 20)) return "";  // 1 MiB header cap.
  }
  // Parse Content-Length (case-insensitive scan of the header block).
  size_t body_needed = 0;
  std::string headers = data.substr(0, header_end);
  std::string lower = AsciiToLower(headers);
  size_t pos = lower.find("content-length:");
  if (pos != std::string::npos) {
    body_needed = static_cast<size_t>(
        std::strtoull(headers.c_str() + pos + 15, nullptr, 10));
  }
  size_t have = data.size() - (header_end + 4);
  while (have < body_needed) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
    have += static_cast<size_t>(n);
  }
  return data;
}

bool WriteAll(int fd, const std::string& bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(WireHandler handler,
                                                      Options options) {
  if (!handler) {
    return Status::InvalidArgument("HttpServer requires a handler");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("bind(): ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(fd, options.backlog) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("listen(): ", std::strerror(errno)));
  }
  return std::unique_ptr<HttpServer>(
      new HttpServer(std::move(handler), fd, ntohs(addr.sin_port)));
}

HttpServer::HttpServer(WireHandler handler, int listen_fd, uint16_t port)
    : handler_(std::move(handler)), listen_fd_(listen_fd), port_(port) {
  thread_ = std::thread([this] { AcceptLoop(); });
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  bool was_running = running_.exchange(false);
  if (was_running) {
    // Unblock accept() by shutting the listener down.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      continue;  // Transient accept failure.
    }
    ServeConnection(conn);
    ::close(conn);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string request = ReadRequest(fd);
  if (request.empty()) return;
  std::string response = handler_(request);
  requests_handled_.fetch_add(1, std::memory_order_relaxed);
  WriteAll(fd, response);
}

Result<std::string> FetchWire(uint16_t port,
                              const std::string& request_bytes) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("connect(): ", std::strerror(errno)));
  }
  if (!WriteAll(fd, request_bytes)) {
    ::close(fd);
    return Status::Internal("short write");
  }
  ::shutdown(fd, SHUT_WR);
  std::string response;
  char buf[4096];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  if (response.empty()) return Status::Internal("empty response");
  return response;
}

}  // namespace cacheportal::net
