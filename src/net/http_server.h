#ifndef CACHEPORTAL_NET_HTTP_SERVER_H_
#define CACHEPORTAL_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/status.h"

namespace cacheportal::net {

/// HttpServer bind options.
struct HttpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;
  int backlog = 16;
  /// Read/write timeout applied to every accepted socket (SO_RCVTIMEO /
  /// SO_SNDTIMEO), so a hung or slow-loris peer cannot stall the
  /// single-threaded accept loop indefinitely: a stalled read or write
  /// fails and the connection is dropped. 0 disables the timeouts
  /// (pre-existing behavior; not recommended).
  Micros io_timeout = 5 * kMicrosPerSecond;
  /// Load shedding: when set, evaluated once per accepted request; true
  /// answers `503 Service Unavailable` + `Retry-After` WITHOUT invoking
  /// the handler. Failing fast keeps the accept loop draining (each
  /// shed costs a header read, not handler work), so overload degrades
  /// into explicit retryable refusals instead of timeout pile-ups. Runs
  /// on the server thread; must be cheap and thread-safe.
  std::function<bool()> shed_check;
  /// Retry-After value (seconds) attached to shed responses.
  int retry_after_seconds = 1;
};

/// A minimal blocking HTTP/1.1 server over TCP: one accept loop, one
/// connection at a time, `Connection: close` semantics. It is the
/// network face the paper's components actually have — NetCache-style
/// caches and the invalidator exchange real HTTP — and is deliberately
/// simple: the interesting machinery lives behind the handler.
///
/// The handler receives the raw request bytes and returns raw response
/// bytes (core::RemoteCacheEndpoint::HandleWire plugs in directly). It
/// runs on the server thread; wrap shared state in a mutex if the rest
/// of the process touches it concurrently.
class HttpServer {
 public:
  using WireHandler = std::function<std::string(const std::string&)>;
  using Options = HttpServerOptions;

  /// Binds, listens, and starts the accept loop on a background thread.
  static Result<std::unique_ptr<HttpServer>> Start(WireHandler handler,
                                                   Options options = {});

  /// Stops the accept loop and joins the thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (useful with ephemeral binding).
  uint16_t port() const { return port_; }

  /// Requests served so far.
  uint64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }

  /// Connections dropped because a read or write exceeded io_timeout
  /// (or otherwise failed before a full request arrived).
  uint64_t connections_timed_out() const {
    return connections_timed_out_.load(std::memory_order_relaxed);
  }

  /// Requests answered 503 by shed_check instead of the handler.
  uint64_t connections_rejected() const {
    return connections_rejected_.load(std::memory_order_relaxed);
  }

  /// Stops accepting; idempotent. Called by the destructor.
  void Stop();

 private:
  HttpServer(WireHandler handler, int listen_fd, uint16_t port,
             Options options);

  void AcceptLoop();
  void ServeConnection(int fd);

  WireHandler handler_;
  int listen_fd_;
  uint16_t port_;
  Micros io_timeout_;
  std::function<bool()> shed_check_;
  int retry_after_seconds_;
  std::atomic<bool> running_{true};
  std::atomic<uint64_t> requests_handled_{0};
  std::atomic<uint64_t> connections_timed_out_{0};
  std::atomic<uint64_t> connections_rejected_{0};
  std::thread thread_;
};

/// Wraps a wire handler with a FaultInjector, corrupting the server's
/// side of the exchange: dropped responses send no bytes (the peer sees
/// the connection close), transient errors answer 503, malformed
/// responses are corrupted with FaultInjector::Malform, and delays
/// stall the handler for real wall-clock time (this runs on the server
/// thread — pair with io_timeout-bounded clients). `faults` is not
/// owned and must outlive the returned handler; decisions and counters
/// are the injector's.
HttpServer::WireHandler WrapWireHandlerWithFaults(
    FaultInjector* faults, HttpServer::WireHandler handler);

/// Blocking HTTP client for tests and examples: connects to
/// 127.0.0.1:`port`, sends `request_bytes`, reads until the peer closes,
/// and returns the raw response bytes.
Result<std::string> FetchWire(uint16_t port, const std::string& request_bytes);

}  // namespace cacheportal::net

#endif  // CACHEPORTAL_NET_HTTP_SERVER_H_
