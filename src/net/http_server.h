#ifndef CACHEPORTAL_NET_HTTP_SERVER_H_
#define CACHEPORTAL_NET_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"

namespace cacheportal::net {

/// HttpServer bind options.
struct HttpServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port.
  uint16_t port = 0;
  int backlog = 16;
};

/// A minimal blocking HTTP/1.1 server over TCP: one accept loop, one
/// connection at a time, `Connection: close` semantics. It is the
/// network face the paper's components actually have — NetCache-style
/// caches and the invalidator exchange real HTTP — and is deliberately
/// simple: the interesting machinery lives behind the handler.
///
/// The handler receives the raw request bytes and returns raw response
/// bytes (core::RemoteCacheEndpoint::HandleWire plugs in directly). It
/// runs on the server thread; wrap shared state in a mutex if the rest
/// of the process touches it concurrently.
class HttpServer {
 public:
  using WireHandler = std::function<std::string(const std::string&)>;
  using Options = HttpServerOptions;

  /// Binds, listens, and starts the accept loop on a background thread.
  static Result<std::unique_ptr<HttpServer>> Start(WireHandler handler,
                                                   Options options = {});

  /// Stops the accept loop and joins the thread.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// The bound port (useful with ephemeral binding).
  uint16_t port() const { return port_; }

  /// Requests served so far.
  uint64_t requests_handled() const {
    return requests_handled_.load(std::memory_order_relaxed);
  }

  /// Stops accepting; idempotent. Called by the destructor.
  void Stop();

 private:
  HttpServer(WireHandler handler, int listen_fd, uint16_t port);

  void AcceptLoop();
  void ServeConnection(int fd);

  WireHandler handler_;
  int listen_fd_;
  uint16_t port_;
  std::atomic<bool> running_{true};
  std::atomic<uint64_t> requests_handled_{0};
  std::thread thread_;
};

/// Blocking HTTP client for tests and examples: connects to
/// 127.0.0.1:`port`, sends `request_bytes`, reads until the peer closes,
/// and returns the raw response bytes.
Result<std::string> FetchWire(uint16_t port, const std::string& request_bytes);

}  // namespace cacheportal::net

#endif  // CACHEPORTAL_NET_HTTP_SERVER_H_
