#include "net/invalidation_server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "net/socket_util.h"

namespace cacheportal::net {

Result<std::unique_ptr<InvalidationServer>> InvalidationServer::Start(
    ApplyFn apply, InvalidationServerOptions options) {
  if (!apply) {
    return Status::InvalidArgument("InvalidationServer requires an ApplyFn");
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(
      BoundListener listener,
      BindLoopbackListener(options.port, options.backlog));
  return std::unique_ptr<InvalidationServer>(new InvalidationServer(
      std::move(apply), listener.fd, listener.port, std::move(options)));
}

InvalidationServer::InvalidationServer(ApplyFn apply, int listen_fd,
                                       uint16_t port,
                                       InvalidationServerOptions options)
    : apply_(std::move(apply)),
      listen_fd_(listen_fd),
      port_(port),
      options_(std::move(options)),
      session_epoch_(options_.session_epoch),
      ledger_(options_.ledger) {
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

InvalidationServer::~InvalidationServer() { Stop(); }

void InvalidationServer::Stop() {
  bool was_running = running_.exchange(false);
  if (was_running) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    std::lock_guard<std::mutex> lock(mu_);
    // Unblock every live session's read so its thread can exit.
    for (int fd : session_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [id, session] : sessions_) {
      sessions.push_back(std::move(session));
    }
    sessions_.clear();
    for (std::thread& session : finished_sessions_) {
      sessions.push_back(std::move(session));
    }
    finished_sessions_.clear();
  }
  for (std::thread& session : sessions) {
    if (session.joinable()) session.join();
  }
}

void InvalidationServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    int conn = ::accept(listen_fd_, nullptr, nullptr);
    ReapFinishedSessions();
    if (conn < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      continue;  // Transient accept failure.
    }
    SetSocketIoTimeout(conn, options_.io_timeout);
    // Acks are tiny; Nagle would hold each one hostage to the previous
    // ack's round trip and stall the client's pipeline window.
    SetTcpNoDelay(conn);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.sessions_accepted;
    session_fds_.push_back(conn);
    uint64_t id = next_session_id_++;
    sessions_.emplace(
        id, std::thread([this, conn, id] { ServeSession(conn, id); }));
  }
}

void InvalidationServer::ReapFinishedSessions() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done.swap(finished_sessions_);
  }
  // A handle lands in finished_sessions_ as the very last thing its
  // thread does, so these joins return near-instantly.
  for (std::thread& session : done) {
    if (session.joinable()) session.join();
  }
}

void InvalidationServer::ServeSession(int fd, uint64_t session_id) {
  std::string buffer;
  char chunk[4096];
  bool hello_done = false;
  bool open = true;
  while (open && running_.load(std::memory_order_relaxed)) {
    // Drain every complete frame at the head of the buffer.
    while (open) {
      DecodeResult decoded = DecodeFrame(buffer);
      if (decoded.outcome == DecodeOutcome::kCorrupt) {
        Quarantine(fd, decoded.reason);
        open = false;
        break;
      }
      if (decoded.outcome == DecodeOutcome::kNeedMore) break;
      buffer.erase(0, decoded.consumed);
      if (!HandleFrame(fd, decoded.frame, &hello_done)) open = false;
    }
    if (!open) break;
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n > 0) {
      buffer.append(chunk, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
        !buffer.empty()) {
      // A torn frame sat unfinished past io_timeout: the slow-loris
      // variant of a partial write. Unlike corruption the bytes are
      // fine — the peer just stopped — so drop the connection quietly
      // and let it reconnect and resume.
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.partial_frame_timeouts;
      break;
    }
    break;  // EOF, idle timeout with an empty buffer, or a read error.
  }
  {
    // Drop the fd from the live set BEFORE close(): once closed, the
    // kernel can hand the same fd number to a new connection, and an
    // erase-by-value after that would remove the live session's entry
    // (Stop() would then skip shutting it down, or shutdown() a reused
    // fd that is no longer ours).
    std::lock_guard<std::mutex> lock(mu_);
    session_fds_.erase(
        std::remove(session_fds_.begin(), session_fds_.end(), fd),
        session_fds_.end());
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(mu_);
  auto self = sessions_.find(session_id);
  if (self != sessions_.end()) {
    // Hand our own thread handle to AcceptLoop for joining. When Stop()
    // already claimed the handle the entry is gone — Stop() joins it.
    finished_sessions_.push_back(std::move(self->second));
    sessions_.erase(self);
  }
}

bool InvalidationServer::HandleFrame(int fd, const WireFrame& frame,
                                     bool* hello_done) {
  switch (frame.type) {
    case FrameType::kHello: {
      Result<HelloInfo> hello = ParseHelloPayload(frame.payload);
      if (!hello.ok()) {
        Quarantine(fd, StrCat("bad HELLO: ", hello.status().ToString()));
        return false;
      }
      if (hello->version != kWireProtocolVersion) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.version_mismatches;
        }
        LogMessage(LogLevel::kWarning,
                   StrCat("invalidation server: refusing client '",
                          hello->client_id, "' speaking protocol version ",
                          hello->version, " (ours: ", kWireProtocolVersion,
                          ")"));
        WireFrame error;
        error.type = FrameType::kError;
        error.payload = StrCat("version mismatch: server speaks ",
                               kWireProtocolVersion);
        SendFrame(fd, error);
        return false;
      }
      *hello_done = true;
      WireFrame ack;
      ack.type = FrameType::kHelloAck;
      ack.epoch = session_epoch_;
      ack.payload = EncodeHelloAckPayload(kWireProtocolVersion);
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.hellos_accepted;
        ack.seq = ledger_.last_applied(session_epoch_);
      }
      return SendFrame(fd, ack);
    }
    case FrameType::kEject: {
      if (!*hello_done) {
        Quarantine(fd, "EJECT before HELLO");
        return false;
      }
      if (frame.epoch != session_epoch_) {
        // A seq minted against a dead incarnation; the client must
        // re-handshake and rebase onto the current epoch.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stale_epoch_frames;
        WireFrame error;
        error.type = FrameType::kError;
        error.payload = StrCat("stale epoch ", frame.epoch, " (current ",
                               session_epoch_, ")");
        SendFrame(fd, error);
        return false;
      }
      {
        // Dedup-then-apply under one lock: two sessions replaying the
        // same (epoch, seq) must resolve to exactly one apply. The
        // ledger advances only AFTER apply_ succeeds — if it advanced
        // first, a failed apply would leave the high-water mark past
        // the frame and the client's retry would be duplicate-acked
        // without ever applying (a silently lost invalidation).
        std::lock_guard<std::mutex> lock(mu_);
        if (frame.seq > ledger_.last_applied(frame.epoch)) {
          Status applied = apply_(frame.payload, frame.epoch, frame.seq);
          if (!applied.ok()) {
            ++stats_.apply_failures;
            LogMessage(LogLevel::kWarning,
                       StrCat("invalidation server: apply failed for seq ",
                              frame.seq, ": ", applied.ToString()));
            WireFrame error;
            error.type = FrameType::kError;
            error.payload = StrCat("apply failed: ", applied.ToString());
            SendFrame(fd, error);
            return false;
          }
          ledger_.Admit(frame.epoch, frame.seq);
          ++stats_.ejects_applied;
        } else {
          // Replay of something already applied (the ack was lost):
          // ack again, apply nothing — this is the dedup that turns
          // at-least-once transport into exactly-once applies.
          ++stats_.ejects_duplicate;
        }
      }
      WireFrame ack;
      ack.type = FrameType::kAck;
      ack.epoch = frame.epoch;
      ack.seq = frame.seq;
      return SendFrame(fd, ack);
    }
    case FrameType::kEjectBatch: {
      if (!*hello_done) {
        Quarantine(fd, "EJECT_BATCH before HELLO");
        return false;
      }
      if (frame.epoch != session_epoch_) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stale_epoch_frames;
        WireFrame error;
        error.type = FrameType::kError;
        error.payload = StrCat("stale epoch ", frame.epoch, " (current ",
                               session_epoch_, ")");
        SendFrame(fd, error);
        return false;
      }
      Result<std::vector<std::string_view>> entries =
          ParseEjectBatchPayload(frame.payload);
      if (!entries.ok()) {
        // A malformed batch blob is stream corruption one layer up from
        // the frame CRC: same quarantine, same loudness.
        Quarantine(fd, entries.status().ToString());
        return false;
      }
      {
        // Same dedup-then-apply as kEject, per entry, under ONE lock so
        // a concurrent session replaying the overlapping run resolves to
        // exactly one apply per seq. Entry i carries seq base + i; the
        // ledger advances entry by entry, so a mid-batch apply failure
        // leaves the applied prefix recorded — the client's replay of
        // the whole run dedups that prefix and resumes at the failure.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.batch_frames;
        for (size_t i = 0; i < entries->size(); ++i) {
          uint64_t seq = frame.seq + i;
          if (seq <= ledger_.last_applied(frame.epoch)) {
            ++stats_.ejects_duplicate;
            continue;
          }
          Status applied = apply_((*entries)[i], frame.epoch, seq);
          if (!applied.ok()) {
            ++stats_.apply_failures;
            LogMessage(LogLevel::kWarning,
                       StrCat("invalidation server: batch apply failed at "
                              "seq ", seq, ": ", applied.ToString()));
            WireFrame error;
            error.type = FrameType::kError;
            error.payload = StrCat("apply failed: ", applied.ToString());
            SendFrame(fd, error);
            // No ack: the cumulative ack would claim the whole run.
            return false;
          }
          ledger_.Admit(frame.epoch, seq);
          ++stats_.ejects_applied;
        }
      }
      // One cumulative ack covers the run (and everything below it).
      WireFrame ack;
      ack.type = FrameType::kAck;
      ack.epoch = frame.epoch;
      ack.seq = frame.seq + entries->size() - 1;
      return SendFrame(fd, ack);
    }
    case FrameType::kHeartbeat: {
      if (!*hello_done) {
        Quarantine(fd, "HEARTBEAT before HELLO");
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.heartbeats_answered;
      }
      WireFrame ack;
      ack.type = FrameType::kHeartbeatAck;
      ack.epoch = session_epoch_;
      ack.seq = frame.seq;
      return SendFrame(fd, ack);
    }
    case FrameType::kError:
      LogMessage(LogLevel::kWarning,
                 StrCat("invalidation server: peer error: ", frame.payload));
      return false;
    default:
      // HELLO_ACK / ACK / HEARTBEAT_ACK are server-to-client only.
      Quarantine(fd, StrCat("client sent server-only frame type ",
                            static_cast<int>(frame.type)));
      return false;
  }
}

bool InvalidationServer::SendFrame(int fd, const WireFrame& frame) {
  std::string bytes = EncodeFrame(frame);
  if (options_.faults != nullptr) {
    if (std::optional<Micros> delay = options_.faults->ShouldDelay()) {
      std::this_thread::sleep_for(std::chrono::microseconds(*delay));
    }
    if (options_.faults->ShouldDrop()) {
      // The reply vanishes: the client times out and resends, which is
      // exactly the replay the ResumeLedger dedups.
      return true;
    }
    if (options_.faults->ShouldReset()) {
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
    if (options_.faults->ShouldPartialWrite()) {
      WriteAllBytes(fd, std::string_view(bytes).substr(0, bytes.size() / 2));
      ::shutdown(fd, SHUT_RDWR);
      return false;
    }
  }
  return WriteAllBytes(fd, bytes);
}

void InvalidationServer::Quarantine(int fd, const std::string& reason) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.frames_quarantined;
  }
  // Loud by design: a desynced stream silently resynced is how caches
  // end up applying garbage. The connection dies here; the client's
  // resume machinery recovers anything un-acked.
  LogMessage(LogLevel::kError,
             StrCat("invalidation server: quarantining connection: ", reason));
  WireFrame error;
  error.type = FrameType::kError;
  error.payload = StrCat("connection quarantined: ", reason);
  WriteAllBytes(fd, EncodeFrame(error));  // Best effort, faults bypassed.
}

ResumeLedger InvalidationServer::ledger_snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ledger_;
}

InvalidationServerStats InvalidationServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::string InvalidationServer::HealthReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StrCat("invalidation-server: epoch=", session_epoch_,
                " sessions=", stats_.sessions_accepted,
                " hellos=", stats_.hellos_accepted,
                " applied=", stats_.ejects_applied,
                " dups=", stats_.ejects_duplicate,
                " batches=", stats_.batch_frames,
                " stale-epoch=", stats_.stale_epoch_frames,
                " quarantined=", stats_.frames_quarantined,
                " partial-timeouts=", stats_.partial_frame_timeouts,
                " version-mismatches=", stats_.version_mismatches);
}

}  // namespace cacheportal::net
