#ifndef CACHEPORTAL_NET_INVALIDATION_SERVER_H_
#define CACHEPORTAL_NET_INVALIDATION_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/status.h"
#include "net/wire.h"

namespace cacheportal::net {

/// Lifetime counters of an InvalidationServer, aggregated across
/// sessions. Copy returned under the server's lock.
struct InvalidationServerStats {
  uint64_t sessions_accepted = 0;    // Connections accepted.
  uint64_t hellos_accepted = 0;      // Successful handshakes (reconnects
                                     // show up here: hellos - 1).
  uint64_t version_mismatches = 0;   // HELLOs refused: wrong protocol.
  uint64_t ejects_applied = 0;       // Fresh (epoch, seq): apply ran.
  uint64_t ejects_duplicate = 0;     // Replays acked without re-apply.
  uint64_t batch_frames = 0;         // EJECT_BATCH frames handled (their
                                     // entries count under applied/dup).
  uint64_t stale_epoch_frames = 0;   // EJECTs for a dead epoch.
  uint64_t heartbeats_answered = 0;
  uint64_t frames_quarantined = 0;   // Corrupt frames: connection killed.
  uint64_t partial_frame_timeouts = 0;  // Slow-loris torn frames.
  uint64_t apply_failures = 0;       // ApplyFn returned non-OK.
};

struct InvalidationServerOptions {
  /// Port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// via port() — the bind-port-0-and-report pattern).
  uint16_t port = 0;
  int backlog = 16;
  /// Read/write timeout per session socket. A peer that leaves a frame
  /// torn longer than this (slow loris) is dropped and counted.
  Micros io_timeout = 5 * kMicrosPerSecond;
  /// This incarnation's session epoch. The caller persists the previous
  /// epoch and passes previous+1 after a restart, so seqs assigned to a
  /// dead incarnation can never collide with fresh ones.
  uint64_t session_epoch = 1;
  /// Restored dedup state (empty for a fresh cache).
  ResumeLedger ledger;
  /// When set, the server's replies are fault-injected: dropped acks
  /// (the client times out and resends — exercising dedup), resets, and
  /// delays. Not owned; must outlive the server.
  FaultInjector* faults = nullptr;
};

/// The cache process's side of the invalidation wire (net/wire.h): a
/// real TCP server that accepts invalidator connections, performs the
/// versioned HELLO handshake, dedups ejects by (epoch, seq) against the
/// ResumeLedger, applies fresh ones through the ApplyFn, and acks. One
/// accept loop; each session gets its own thread (an invalidator
/// reconnecting must not wait behind its own half-dead predecessor).
///
/// Corrupt frames (bad magic, bad CRC, absurd length) quarantine the
/// connection LOUDLY — log, count, best-effort ERROR frame, close —
/// because a byte stream that has desynced can never be trusted again;
/// the client reconnects and resumes from its last ack (the same
/// torn-tail-vs-corruption split the WAL applies to segment files).
class InvalidationServer {
 public:
  /// Applies one fresh eject payload (a serialized HTTP eject request).
  /// Called with the server's session lock HELD — dedup-then-apply must
  /// be atomic against concurrent sessions — so it must not block on the
  /// network or call back into the server. A non-OK return fails the
  /// session (the frame is NOT recorded as applied; the client retries).
  /// The payload view borrows from the received frame (valid only for
  /// the duration of the call): batched entries apply straight out of
  /// the EJECT_BATCH blob with zero per-entry copies, so an ApplyFn
  /// that keeps the bytes must copy them itself.
  using ApplyFn = std::function<Status(std::string_view payload,
                                       uint64_t epoch, uint64_t seq)>;

  static Result<std::unique_ptr<InvalidationServer>> Start(
      ApplyFn apply, InvalidationServerOptions options = {});

  ~InvalidationServer();

  InvalidationServer(const InvalidationServer&) = delete;
  InvalidationServer& operator=(const InvalidationServer&) = delete;

  /// The bound port (the resolved one when options.port was 0).
  uint16_t port() const { return port_; }

  uint64_t session_epoch() const { return session_epoch_; }

  /// Snapshot of the dedup ledger (for persistence across restarts).
  ResumeLedger ledger_snapshot() const;

  InvalidationServerStats stats() const;

  /// One diagnostic line (no trailing newline).
  std::string HealthReport() const;

  /// Stops accepting, closes live sessions, joins threads; idempotent.
  void Stop();

 private:
  InvalidationServer(ApplyFn apply, int listen_fd, uint16_t port,
                     InvalidationServerOptions options);

  void AcceptLoop();
  void ServeSession(int fd, uint64_t session_id);
  /// Joins session threads that have already finished (ServeSession
  /// moves its own handle to finished_sessions_ on exit). Called by
  /// AcceptLoop on every wakeup so reconnect churn cannot accumulate
  /// unjoined threads for the server's lifetime.
  void ReapFinishedSessions();
  /// Handles one decoded frame; false ends the session.
  bool HandleFrame(int fd, const WireFrame& frame, bool* hello_done);
  /// Sends a frame through the (optional) fault injector. False when the
  /// session should end (reset injected or write failed).
  bool SendFrame(int fd, const WireFrame& frame);
  void Quarantine(int fd, const std::string& reason);

  ApplyFn apply_;
  int listen_fd_;
  uint16_t port_;
  InvalidationServerOptions options_;
  uint64_t session_epoch_;

  std::atomic<bool> running_{true};
  std::thread accept_thread_;

  mutable std::mutex mu_;
  ResumeLedger ledger_;
  InvalidationServerStats stats_;
  uint64_t next_session_id_ = 0;
  std::map<uint64_t, std::thread> sessions_;     // Live, by session id.
  std::vector<std::thread> finished_sessions_;   // Exited, awaiting join.
  std::vector<int> session_fds_;
};

}  // namespace cacheportal::net

#endif  // CACHEPORTAL_NET_INVALIDATION_SERVER_H_
