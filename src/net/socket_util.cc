#include "net/socket_util.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace cacheportal::net {

Result<BoundListener> BindLoopbackListener(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("bind(): ", std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    return Status::Internal(StrCat("listen(): ", std::strerror(errno)));
  }
  BoundListener listener;
  listener.fd = fd;
  listener.port = ntohs(addr.sin_port);
  return listener;
}

Result<int> ConnectLoopback(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(StrCat("socket(): ", std::strerror(errno)));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable(StrCat("connect(): ", std::strerror(errno)));
  }
  return fd;
}

void SetSocketIoTimeout(int fd, Micros timeout) {
  if (timeout <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout / kMicrosPerSecond);
  tv.tv_usec = static_cast<suseconds_t>(timeout % kMicrosPerSecond);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void SetTcpNoDelay(int fd) {
  int on = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &on, sizeof(on));
}

bool WriteAllBytes(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a peer that closed mid-exchange must surface as a
    // failed write (EPIPE), not a process-killing SIGPIPE.
    ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace cacheportal::net
