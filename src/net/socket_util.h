#ifndef CACHEPORTAL_NET_SOCKET_UTIL_H_
#define CACHEPORTAL_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"

namespace cacheportal::net {

/// A bound, listening loopback socket plus the port the kernel actually
/// assigned. Binding port 0 and reading the resolved port back is THE
/// way to get a test/tool port — hardcoded ports race with whatever else
/// runs on the machine. Every listener in this layer (HttpServer,
/// InvalidationServer) goes through here so they all report their real
/// port.
struct BoundListener {
  int fd = -1;
  uint16_t port = 0;
};

/// Creates a TCP listener on 127.0.0.1:`port` (0 picks an ephemeral
/// port), with SO_REUSEADDR set so a restarted process can rebind the
/// same port without waiting out TIME_WAIT. Returns the fd and the
/// resolved port.
Result<BoundListener> BindLoopbackListener(uint16_t port, int backlog);

/// Blocking connect to 127.0.0.1:`port`; returns the connected fd.
Result<int> ConnectLoopback(uint16_t port);

/// Applies SO_RCVTIMEO/SO_SNDTIMEO of `timeout` to `fd` (0 disables).
void SetSocketIoTimeout(int fd, Micros timeout);

/// Disables Nagle (TCP_NODELAY) on `fd`. The invalidation wire sends
/// many small frames and pipelines without waiting for acks; with Nagle
/// on, each sub-MSS frame sits in the kernel until the previous one is
/// acked — turning the pipelined wire back into stop-and-wait and
/// masking every batching gain (see bench/bench_wire.cc).
void SetTcpNoDelay(int fd);

/// Writes all of `bytes` to `fd`; false on any error or short write.
bool WriteAllBytes(int fd, std::string_view bytes);

}  // namespace cacheportal::net

#endif  // CACHEPORTAL_NET_SOCKET_UTIL_H_
