#include "net/wire.h"

#include "common/file_util.h"
#include "common/strings.h"

namespace cacheportal::net {

namespace {

constexpr char kFrameMagic[4] = {'C', 'P', 'W', '1'};
constexpr char kHelloToken[] = "cachewire";

/// crc-covered region: type(1) + epoch(8) + seq(8) = 17 bytes of header
/// plus the payload.
constexpr size_t kCrcCoveredHeader = 17;

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kEjectBatch);
}

}  // namespace

void AppendFrame(std::string* dst, const WireFrame& frame) {
  std::string covered;
  covered.reserve(kCrcCoveredHeader + frame.payload.size());
  covered.push_back(static_cast<char>(frame.type));
  PutFixed64(&covered, frame.epoch);
  PutFixed64(&covered, frame.seq);
  covered.append(frame.payload);

  dst->append(kFrameMagic, sizeof(kFrameMagic));
  PutFixed32(dst, static_cast<uint32_t>(frame.payload.size()));
  PutFixed32(dst, Crc32(covered));
  dst->append(covered);
}

std::string EncodeFrame(const WireFrame& frame) {
  std::string out;
  AppendFrame(&out, frame);
  return out;
}

DecodeResult DecodeFrame(std::string_view buffer) {
  DecodeResult result;
  // Magic first: check however many of its bytes have arrived, so a
  // stream that opens with anything else is corrupt immediately, not
  // after 29 bytes of garbage accumulate.
  size_t magic_bytes = std::min(buffer.size(), sizeof(kFrameMagic));
  if (buffer.compare(0, magic_bytes,
                     std::string_view(kFrameMagic, magic_bytes)) != 0) {
    result.outcome = DecodeOutcome::kCorrupt;
    result.reason = "bad frame magic";
    return result;
  }
  if (buffer.size() < kFrameHeaderSize) return result;  // kNeedMore.
  uint32_t len = GetFixed32(buffer.data() + 4);
  if (len > kMaxFramePayload) {
    result.outcome = DecodeOutcome::kCorrupt;
    result.reason = StrCat("absurd frame length ", len);
    return result;
  }
  if (buffer.size() < kFrameHeaderSize + len) return result;  // kNeedMore.
  uint32_t crc = GetFixed32(buffer.data() + 8);
  std::string_view covered(buffer.data() + 12, kCrcCoveredHeader + len);
  if (Crc32(covered) != crc) {
    result.outcome = DecodeOutcome::kCorrupt;
    result.reason = "frame crc mismatch";
    return result;
  }
  uint8_t type = static_cast<uint8_t>(buffer[12]);
  if (!ValidFrameType(type)) {
    result.outcome = DecodeOutcome::kCorrupt;
    result.reason = StrCat("unknown frame type ", static_cast<int>(type));
    return result;
  }
  result.outcome = DecodeOutcome::kFrame;
  result.frame.type = static_cast<FrameType>(type);
  result.frame.epoch = GetFixed64(buffer.data() + 13);
  result.frame.seq = GetFixed64(buffer.data() + 21);
  result.frame.payload.assign(buffer.data() + kFrameHeaderSize, len);
  result.consumed = kFrameHeaderSize + len;
  return result;
}

std::string EncodeHelloPayload(uint32_t version,
                               const std::string& client_id) {
  return StrCat(kHelloToken, " ", version, " ", client_id);
}

Result<HelloInfo> ParseHelloPayload(const std::string& payload) {
  std::vector<std::string> fields = StrSplit(payload, ' ');
  if (fields.size() != 3 || fields[0] != kHelloToken) {
    return Status::ParseError(StrCat("not a HELLO payload: ", payload));
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t version, ParseUint64(fields[1]));
  HelloInfo info;
  info.version = static_cast<uint32_t>(version);
  info.client_id = fields[2];
  return info;
}

std::string EncodeHelloAckPayload(uint32_t version) {
  return StrCat(kHelloToken, " ", version);
}

Result<uint32_t> ParseHelloAckPayload(const std::string& payload) {
  std::vector<std::string> fields = StrSplit(payload, ' ');
  if (fields.size() != 2 || fields[0] != kHelloToken) {
    return Status::ParseError(StrCat("not a HELLO_ACK payload: ", payload));
  }
  CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t version, ParseUint64(fields[1]));
  return static_cast<uint32_t>(version);
}

std::string EncodeEjectBatchPayload(
    const std::vector<std::string_view>& entries) {
  std::string out;
  size_t total = 4;
  for (std::string_view entry : entries) total += 4 + entry.size();
  out.reserve(total);
  PutFixed32(&out, static_cast<uint32_t>(entries.size()));
  for (std::string_view entry : entries) {
    PutFixed32(&out, static_cast<uint32_t>(entry.size()));
    out.append(entry);
  }
  return out;
}

Result<std::vector<std::string_view>> ParseEjectBatchPayload(
    std::string_view payload) {
  if (payload.size() < 4) {
    return Status::ParseError("EJECT_BATCH payload truncated before count");
  }
  uint32_t count = GetFixed32(payload.data());
  if (count == 0) {
    return Status::ParseError("EJECT_BATCH with zero entries");
  }
  if (count > kMaxBatchEntries) {
    return Status::ParseError(
        StrCat("absurd EJECT_BATCH count ", count, " (max ",
               kMaxBatchEntries, ")"));
  }
  std::vector<std::string_view> entries;
  entries.reserve(count);
  size_t pos = 4;
  for (uint32_t i = 0; i < count; ++i) {
    if (payload.size() - pos < 4) {
      return Status::ParseError(
          StrCat("EJECT_BATCH truncated at entry ", i, " length"));
    }
    uint32_t len = GetFixed32(payload.data() + pos);
    pos += 4;
    if (payload.size() - pos < len) {
      return Status::ParseError(
          StrCat("EJECT_BATCH truncated inside entry ", i, " (len ", len,
                 ", remaining ", payload.size() - pos, ")"));
    }
    entries.push_back(payload.substr(pos, len));
    pos += len;
  }
  if (pos != payload.size()) {
    return Status::ParseError(
        StrCat("EJECT_BATCH has ", payload.size() - pos,
               " trailing bytes after entry ", count - 1));
  }
  return entries;
}

ResumeLedger::Verdict ResumeLedger::Admit(uint64_t epoch, uint64_t seq) {
  uint64_t& high = entries_[epoch];
  if (seq <= high) return Verdict::kDuplicate;
  high = seq;
  return Verdict::kApply;
}

uint64_t ResumeLedger::last_applied(uint64_t epoch) const {
  auto it = entries_.find(epoch);
  return it == entries_.end() ? 0 : it->second;
}

std::string ResumeLedger::Encode() const {
  std::string out = "resume-ledger 1\n";
  for (const auto& [epoch, seq] : entries_) {
    out += StrCat(epoch, " ", seq, "\n");
  }
  out += "end\n";
  return out;
}

Result<ResumeLedger> ResumeLedger::Decode(const std::string& bytes) {
  std::vector<std::string> lines = StrSplit(bytes, '\n');
  if (lines.empty() || lines[0] != "resume-ledger 1") {
    return Status::ParseError("not a resume-ledger blob");
  }
  ResumeLedger ledger;
  bool saw_end = false;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].empty()) continue;
    if (lines[i] == "end") {
      saw_end = true;
      break;
    }
    std::vector<std::string> fields = StrSplit(lines[i], ' ');
    if (fields.size() != 2) {
      return Status::ParseError(
          StrCat("corrupt resume-ledger line: ", lines[i]));
    }
    CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t epoch, ParseUint64(fields[0]));
    CACHEPORTAL_ASSIGN_OR_RETURN(uint64_t seq, ParseUint64(fields[1]));
    ledger.entries_[epoch] = seq;
  }
  if (!saw_end) return Status::ParseError("truncated resume-ledger blob");
  return ledger;
}

}  // namespace cacheportal::net
