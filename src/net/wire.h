#ifndef CACHEPORTAL_NET_WIRE_H_
#define CACHEPORTAL_NET_WIRE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace cacheportal::net {

/// The invalidation wire protocol: the framing the invalidator and the
/// caches speak when they are separate processes (the deployment the
/// paper assumes — Section 4.2.4's eject messages travel a real
/// network). Design mirrors the WAL's record framing (storage/wal.h):
/// length + CRC32 frames, a hard length cap so a bit-flipped length
/// cannot masquerade as a huge frame, and a strict torn-vs-corrupt split
/// so the receiver can tell "more bytes coming" from "this connection is
/// speaking garbage".
///
/// Frame layout (all integers little-endian):
///
///   [magic u32 "CPW1"][len u32][crc u32][type u8][epoch u64][seq u64]
///   [payload: len bytes]
///
/// `crc` is CRC-32 over (type || epoch || seq || payload); `len` counts
/// the payload alone.
///
/// Session protocol (client = invalidator, server = cache):
///
///   client -> HELLO   {epoch/seq: last known; payload "cachewire <v> <id>"}
///   server -> HELLO_ACK {epoch: server session epoch, seq: last acked
///                        seq in that epoch; payload "cachewire <v>"}
///   client -> EJECT   {epoch, seq, payload: serialized HTTP eject}
///   client -> EJECT_BATCH {epoch, seq: base_seq, payload: batch blob}
///                     (entry i of the blob carries implicit seq
///                      base_seq + i — one contiguous run)
///   server -> ACK     {epoch, seq}   (CUMULATIVE: confirms every seq
///                      <= seq in that epoch — also for duplicates)
///   client -> HEARTBEAT {seq: counter}; server -> HEARTBEAT_ACK
///   either -> ERROR   {payload: reason} then close
///
/// Delivery is at-least-once: the client resends anything un-acked after
/// a reconnect (reusing the same (epoch, seq)), and the server dedups by
/// (epoch, seq) via a ResumeLedger. The server's session epoch bumps on
/// every process restart, so seqs from a dead incarnation can never
/// collide with fresh ones.
///
/// Cumulative acks are sound because the client streams seqs in
/// ascending order on every connection, always starting from its lowest
/// un-acked seq, and a loss on a connection kills every LATER send on it
/// too (TCP loses suffixes, not middles). The server therefore never
/// admits seq N before every lower seq it was ever sent, so "high-water
/// mark reached N" really does mean "everything <= N applied or deduped"
/// — which is why the per-epoch ResumeLedger needs no change for
/// batching or pipelining.
enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kEject = 3,
  kAck = 4,
  kHeartbeat = 5,
  kHeartbeatAck = 6,
  kError = 7,
  kEjectBatch = 8,
};

/// Protocol version carried in HELLO/HELLO_ACK payloads. A mismatch is
/// FATAL (not retryable): the peers speak different protocols and no
/// amount of reconnecting fixes that.
inline constexpr uint32_t kWireProtocolVersion = 1;

/// magic(4) + len(4) + crc(4) + type(1) + epoch(8) + seq(8).
inline constexpr size_t kFrameHeaderSize = 29;

/// A length field above this is garbage, not a big frame — without the
/// cap a bit-flipped length would read as a torn frame and stall the
/// connection waiting for bytes that never come.
inline constexpr uint32_t kMaxFramePayload = 1u << 26;

/// One decoded frame.
struct WireFrame {
  FrameType type = FrameType::kError;
  uint64_t epoch = 0;
  uint64_t seq = 0;
  std::string payload;
};

/// Serializes `frame`, appending to `*dst`.
void AppendFrame(std::string* dst, const WireFrame& frame);
std::string EncodeFrame(const WireFrame& frame);

/// What DecodeFrame concluded about the head of the buffer. The split
/// matters: kNeedMore is the normal mid-read state (a torn frame — keep
/// reading), while kCorrupt means the stream can never resync (bad
/// magic, bad CRC, absurd length) and the connection must be quarantined
/// loudly rather than guessed at.
enum class DecodeOutcome { kFrame, kNeedMore, kCorrupt };

struct DecodeResult {
  DecodeOutcome outcome = DecodeOutcome::kNeedMore;
  WireFrame frame;        // Valid iff outcome == kFrame.
  size_t consumed = 0;    // Bytes to drop from the buffer (kFrame only).
  std::string reason;     // Why the stream is corrupt (kCorrupt only).
};

/// Decodes the frame at the head of `buffer` (partial reads expected:
/// call again with more bytes on kNeedMore).
DecodeResult DecodeFrame(std::string_view buffer);

/// HELLO payload: "cachewire <version> <client_id>".
std::string EncodeHelloPayload(uint32_t version, const std::string& client_id);
struct HelloInfo {
  uint32_t version = 0;
  std::string client_id;
};
Result<HelloInfo> ParseHelloPayload(const std::string& payload);

/// HELLO_ACK payload: "cachewire <version>".
std::string EncodeHelloAckPayload(uint32_t version);
Result<uint32_t> ParseHelloAckPayload(const std::string& payload);

/// Entries one EJECT_BATCH frame may carry. A count above this is
/// corruption (like kMaxFramePayload for lengths): no conforming sender
/// builds bigger batches, so an absurd count must not drive allocation.
inline constexpr uint32_t kMaxBatchEntries = 4096;

/// EJECT_BATCH payload: [count u32] then count x ([len u32][len bytes]).
/// Entry i carries implicit seq = frame.seq + i; the server answers the
/// whole frame with ONE cumulative ACK of frame.seq + count - 1.
/// Encode requires 1..kMaxBatchEntries entries whose total stays under
/// kMaxFramePayload (the caller chunks; see WireInvalidationClient).
/// Entries are views: each is copied exactly once, into the blob.
std::string EncodeEjectBatchPayload(
    const std::vector<std::string_view>& entries);

/// Strict parse of an EJECT_BATCH payload: every length is bounds-checked
/// against the remaining bytes BEFORE anything is referenced, the count
/// must be 1..kMaxBatchEntries, and the entries must consume the payload
/// exactly (trailing bytes are corruption, not padding). The returned
/// views borrow from `payload` — they are valid only while the caller
/// keeps that buffer alive (the server applies entries straight out of
/// the received frame, so the hot path never copies them).
Result<std::vector<std::string_view>> ParseEjectBatchPayload(
    std::string_view payload);

/// The receiver's dedup state: the highest invalidation seq applied per
/// session epoch. At-least-once delivery means replays are normal (ack
/// lost, client resends); the ledger makes applies exactly-once per
/// (epoch, seq) — a replayed seq is acked without re-applying. The
/// ledger round-trips through Encode/Decode so a cache process can
/// persist it and resume dedup across a restart.
class ResumeLedger {
 public:
  enum class Verdict { kApply, kDuplicate };

  /// Admits (epoch, seq): kApply (and records it) when seq is beyond the
  /// epoch's high-water mark, kDuplicate otherwise.
  Verdict Admit(uint64_t epoch, uint64_t seq);

  /// Highest seq applied in `epoch` (0 when none).
  uint64_t last_applied(uint64_t epoch) const;

  const std::map<uint64_t, uint64_t>& entries() const { return entries_; }

  std::string Encode() const;
  static Result<ResumeLedger> Decode(const std::string& bytes);

 private:
  std::map<uint64_t, uint64_t> entries_;  // epoch -> highest applied seq.
};

}  // namespace cacheportal::net

#endif  // CACHEPORTAL_NET_WIRE_H_
