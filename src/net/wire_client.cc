#include "net/wire_client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "common/strings.h"
#include "net/socket_util.h"

namespace cacheportal::net {

namespace {

bool Contains(const std::string& haystack, std::string_view needle) {
  return haystack.find(needle) != std::string::npos;
}

}  // namespace

WireInvalidationClient::WireInvalidationClient(const Clock* clock,
                                               WireClientOptions options)
    : clock_(clock),
      options_(std::move(options)),
      current_backoff_(options_.reconnect_backoff),
      backoff_jitter_rng_(options_.backoff_jitter_seed) {}

WireInvalidationClient::~WireInvalidationClient() { Disconnect(); }

void WireInvalidationClient::Disconnect() {
  std::lock_guard<std::mutex> lock(mu_);
  DropConnectionLocked(/*schedule_backoff=*/false);
}

Status WireInvalidationClient::Deliver(const std::string& key,
                                       const std::string& payload) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fatal_.ok()) return fatal_;
  if (fd_ < 0) {
    if (clock_->NowMicros() < next_connect_at_) {
      return Status::Unavailable("reconnect backoff pending");
    }
    CACHEPORTAL_RETURN_NOT_OK(ConnectLocked());
  }
  // A redelivery of the same key reuses its assigned (epoch, seq): the
  // server's ResumeLedger turns the replay into an ack-without-apply.
  uint64_t seq;
  auto it = inflight_.find(key);
  if (it != inflight_.end() && it->second.epoch == epoch_) {
    seq = it->second.seq;
    ++replays_;
  } else {
    seq = ++last_assigned_seq_;
    inflight_[key] = Assigned{epoch_, seq};
  }
  WireFrame eject;
  eject.type = FrameType::kEject;
  eject.epoch = epoch_;
  eject.seq = seq;
  eject.payload = payload;
  if (!SendBytesLocked(EncodeFrame(eject))) {
    DropConnectionLocked(/*schedule_backoff=*/true);
    return Status::Unavailable("eject write failed (connection died)");
  }
  // Await the cumulative ack covering OUR seq; acks for earlier sends
  // retire their own in-flight entries along the way.
  uint64_t acked_high = 0;
  while (acked_high < seq) {
    CACHEPORTAL_RETURN_NOT_OK(ReapAckLocked(&acked_high));
  }
  return Status::OK();
}

Status WireInvalidationClient::ReapAckLocked(uint64_t* acked_high) {
  while (true) {
    Result<WireFrame> frame = ReadFrameLocked();
    if (!frame.ok()) {
      DropConnectionLocked(/*schedule_backoff=*/true);
      return frame.status();
    }
    switch (frame->type) {
      case FrameType::kAck: {
        if (frame->epoch != epoch_) continue;  // Ack from a dead epoch.
        ++acks_received_;
        // Cumulative: the ack confirms everything at or below its seq,
        // so retire every covered in-flight assignment, not just an
        // exact match (a batch run is confirmed by its last seq alone).
        for (auto entry = inflight_.begin(); entry != inflight_.end();) {
          if (entry->second.epoch == frame->epoch &&
              entry->second.seq <= frame->seq) {
            entry = inflight_.erase(entry);
          } else {
            ++entry;
          }
        }
        *acked_high = std::max(*acked_high, frame->seq);
        return Status::OK();
      }
      case FrameType::kHeartbeatAck:
        continue;
      case FrameType::kError: {
        const std::string& reason = frame->payload;
        if (Contains(reason, "version mismatch")) {
          fatal_ = Status::NotSupported(
              StrCat("wire protocol: ", reason));
          DropConnectionLocked(/*schedule_backoff=*/false);
          return fatal_;
        }
        DropConnectionLocked(/*schedule_backoff=*/false);
        if (Contains(reason, "stale epoch")) {
          // Not fatal: the next Deliver re-handshakes and rebases onto
          // the server's current epoch.
          next_connect_at_ = 0;
          return Status::Unavailable(StrCat("wire: ", reason));
        }
        if (Contains(reason, "quarantined")) {
          // The server judged our stream corrupt. The connection is
          // gone either way; the message itself is dead-lettered.
          return Status::ParseError(StrCat("wire: ", reason));
        }
        return Status::Unavailable(StrCat("wire: ", reason));
      }
      default:
        // HELLO / EJECT / HEARTBEAT from a server: protocol violation.
        ++corrupt_frames_;
        DropConnectionLocked(/*schedule_backoff=*/true);
        return Status::ParseError(
            StrCat("unexpected frame type ",
                   static_cast<int>(frame->type), " from server"));
    }
  }
}

WireBatchResult WireInvalidationClient::DeliverBatch(
    const std::vector<BatchEntry>& entries) {
  WireBatchResult result;
  if (entries.empty()) return result;
  std::lock_guard<std::mutex> lock(mu_);
  if (!fatal_.ok()) {
    result.status = fatal_;
    return result;
  }
  if (fd_ < 0) {
    if (clock_->NowMicros() < next_connect_at_) {
      result.status = Status::Unavailable("reconnect backoff pending");
      return result;
    }
    Status connected = ConnectLocked();
    if (!connected.ok()) {
      result.status = connected;
      return result;
    }
  }
  // Assign (or reuse) a seq per entry, exactly as Deliver() does.
  const size_t n = entries.size();
  std::vector<uint64_t> seqs(n);
  for (size_t i = 0; i < n; ++i) {
    auto it = inflight_.find(entries[i].key);
    if (it != inflight_.end() && it->second.epoch == epoch_) {
      seqs[i] = it->second.seq;
      ++replays_;
    } else {
      seqs[i] = ++last_assigned_seq_;
      inflight_.insert_or_assign(std::string(entries[i].key),
                                 Assigned{epoch_, seqs[i]});
    }
  }
  // Stream in ascending-seq order. The FIFO delivery queue already hands
  // entries that way (replayed heads first, fresh mints after), but the
  // cumulative-ack invariant — no connection sends a seq before a lower
  // un-acked one — is load-bearing enough to enforce, not assume: a
  // higher seq landing first would advance the server's high-water mark
  // past the lower one, and its replay would be dedup-swallowed without
  // ever applying.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&seqs](size_t a, size_t b) { return seqs[a] < seqs[b]; });

  const size_t batch_cap = std::max<size_t>(
      1, std::min<size_t>(options_.batch_max, kMaxBatchEntries));
  const size_t window_cap = std::max<size_t>(1, options_.window_frames);
  std::deque<uint64_t> window;  // Last seq of each un-acked frame.
  uint64_t acked_high = 0;
  Status failure = Status::OK();
  size_t pos = 0;
  while (pos < n) {
    // The next contiguous-seq run, chunked to batch_cap and the frame
    // payload cap. Duplicate keys in one call share a seq; the repeat
    // breaks contiguity, travels as its own frame, and dedups serverside.
    uint64_t base = seqs[order[pos]];
    size_t run = 1;
    size_t bytes = entries[order[pos]].payload.size() + 8;
    while (pos + run < n && seqs[order[pos + run]] == base + run &&
           run < batch_cap &&
           bytes + entries[order[pos + run]].payload.size() + 8 <
               kMaxFramePayload) {
      bytes += entries[order[pos + run]].payload.size() + 8;
      ++run;
    }
    // Window control: block for one ack before streaming past the cap.
    while (failure.ok() && window.size() >= window_cap) {
      failure = ReapAckLocked(&acked_high);
      while (!window.empty() && window.front() <= acked_high) {
        window.pop_front();
      }
    }
    if (!failure.ok()) break;
    WireFrame frame;
    frame.epoch = epoch_;
    frame.seq = base;
    if (run == 1) {
      frame.type = FrameType::kEject;
      frame.payload = entries[order[pos]].payload;
    } else {
      frame.type = FrameType::kEjectBatch;
      // Views straight into the caller's entries: each payload is
      // copied once, into the blob, and never again per layer.
      std::vector<std::string_view> payloads;
      payloads.reserve(run);
      for (size_t i = 0; i < run; ++i) {
        payloads.push_back(entries[order[pos + i]].payload);
      }
      frame.payload = EncodeEjectBatchPayload(payloads);
      ++batch_frames_sent_;
      batched_entries_ += run;
    }
    if (!SendBytesLocked(EncodeFrame(frame))) {
      DropConnectionLocked(/*schedule_backoff=*/true);
      failure = Status::Unavailable("eject write failed (connection died)");
      break;
    }
    window.push_back(base + run - 1);
    pos += run;
  }
  // Reap the tail of the pipeline: the call blocks until everything it
  // streamed is acked (or the connection fails), so "confirmed" keeps
  // the same meaning as a Deliver() OK — just amortized.
  while (failure.ok() && !window.empty()) {
    failure = ReapAckLocked(&acked_high);
    while (!window.empty() && window.front() <= acked_high) {
      window.pop_front();
    }
  }
  // Confirmed = the leading entries (call order) the cumulative acks
  // cover; unconfirmed ones keep their assignments for replay.
  while (result.confirmed < n && seqs[result.confirmed] <= acked_high) {
    ++result.confirmed;
  }
  if (result.confirmed == n) {
    result.status = Status::OK();
  } else {
    result.status =
        failure.ok()
            ? Status::Unavailable("batch ended before every ack arrived")
            : failure;
  }
  return result;
}

Status WireInvalidationClient::Ping() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!fatal_.ok()) return fatal_;
  if (fd_ < 0) {
    if (clock_->NowMicros() < next_connect_at_) {
      return Status::Unavailable("reconnect backoff pending");
    }
    CACHEPORTAL_RETURN_NOT_OK(ConnectLocked());
  }
  WireFrame heartbeat;
  heartbeat.type = FrameType::kHeartbeat;
  heartbeat.epoch = epoch_;
  heartbeat.seq = ++heartbeat_seq_;
  if (!SendBytesLocked(EncodeFrame(heartbeat))) {
    DropConnectionLocked(/*schedule_backoff=*/true);
    return Status::Unavailable("heartbeat write failed");
  }
  ++heartbeats_sent_;
  while (true) {
    Result<WireFrame> frame = ReadFrameLocked();
    if (!frame.ok()) {
      DropConnectionLocked(/*schedule_backoff=*/true);
      return frame.status();
    }
    if (frame->type == FrameType::kHeartbeatAck) return Status::OK();
    if (frame->type == FrameType::kAck) {
      // A late eject ack surfacing during the probe still counts.
      ++acks_received_;
      continue;
    }
    if (frame->type == FrameType::kError) {
      // Same ERROR classification as Deliver(): a version mismatch is
      // fatal — retrying a peer that speaks a different protocol can
      // never succeed, so latch it rather than spin on reconnects.
      if (Contains(frame->payload, "version mismatch")) {
        fatal_ = Status::NotSupported(
            StrCat("wire protocol: ", frame->payload));
        DropConnectionLocked(/*schedule_backoff=*/false);
        return fatal_;
      }
      DropConnectionLocked(/*schedule_backoff=*/true);
      return Status::Unavailable(StrCat("wire: ", frame->payload));
    }
    ++corrupt_frames_;
    DropConnectionLocked(/*schedule_backoff=*/true);
    return Status::ParseError("unexpected frame during heartbeat");
  }
}

Status WireInvalidationClient::ConnectLocked() {
  if (options_.faults != nullptr && options_.faults->ShouldPartition()) {
    ScheduleBackoffLocked();
    return Status::Unavailable("partition injected: connect refused");
  }
  Result<int> fd = ConnectLoopback(options_.port);
  if (!fd.ok()) {
    ScheduleBackoffLocked();
    return fd.status();
  }
  fd_ = *fd;
  read_buffer_.clear();
  blackholed_ = false;
  SetSocketIoTimeout(fd_, options_.io_timeout);
  // Nagle would hold each small frame until the previous one is acked —
  // stop-and-wait reimposed by the kernel, pipelining defeated.
  SetTcpNoDelay(fd_);
  WireFrame hello;
  hello.type = FrameType::kHello;
  hello.epoch = epoch_;  // Last known server epoch (0 on first contact).
  hello.seq = 0;
  hello.payload = EncodeHelloPayload(kWireProtocolVersion,
                                     options_.client_id);
  if (!SendBytesLocked(EncodeFrame(hello))) {
    DropConnectionLocked(/*schedule_backoff=*/true);
    return Status::Unavailable("HELLO write failed");
  }
  while (true) {
    Result<WireFrame> frame = ReadFrameLocked();
    if (!frame.ok()) {
      DropConnectionLocked(/*schedule_backoff=*/true);
      return frame.status().IsParseError()
                 ? frame.status()
                 : Status::Unavailable("handshake timed out");
    }
    if (frame->type == FrameType::kError) {
      if (Contains(frame->payload, "version mismatch")) {
        fatal_ = Status::NotSupported(
            StrCat("wire protocol: ", frame->payload));
        DropConnectionLocked(/*schedule_backoff=*/false);
        return fatal_;
      }
      DropConnectionLocked(/*schedule_backoff=*/true);
      return Status::Unavailable(StrCat("wire: ", frame->payload));
    }
    if (frame->type != FrameType::kHelloAck) continue;
    Result<uint32_t> version = ParseHelloAckPayload(frame->payload);
    if (!version.ok()) {
      ++corrupt_frames_;
      DropConnectionLocked(/*schedule_backoff=*/true);
      return version.status();
    }
    if (*version != kWireProtocolVersion) {
      fatal_ = Status::NotSupported(
          StrCat("wire protocol: server speaks version ", *version,
                 ", we speak ", kWireProtocolVersion));
      DropConnectionLocked(/*schedule_backoff=*/false);
      return fatal_;
    }
    uint64_t server_epoch = frame->epoch;
    uint64_t server_acked = frame->seq;
    if (server_epoch != epoch_) {
      // New cache incarnation: old (epoch, seq) assignments are
      // meaningless — clear them so redeliveries mint fresh seqs in
      // the new epoch, starting beyond whatever the server already has.
      epoch_ = server_epoch;
      inflight_.clear();
      last_assigned_seq_ = server_acked;
      LogMessage(LogLevel::kInfo,
                 StrCat("wire client: cache session epoch ", server_epoch,
                        ", resuming after seq ", server_acked));
    } else {
      // Same incarnation: keep in-flight assignments (their replays
      // dedup), and never reuse a seq the server has already seen.
      last_assigned_seq_ = std::max(last_assigned_seq_, server_acked);
    }
    ++connects_;
    epochs_.insert(server_epoch);
    current_backoff_ = options_.reconnect_backoff;
    next_connect_at_ = 0;
    return Status::OK();
  }
}

void WireInvalidationClient::DropConnectionLocked(bool schedule_backoff) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  read_buffer_.clear();
  blackholed_ = false;
  if (schedule_backoff) ScheduleBackoffLocked();
}

void WireInvalidationClient::ScheduleBackoffLocked() {
  double backoff = static_cast<double>(current_backoff_);
  if (options_.backoff_jitter > 0.0) {
    // Seeded +/- jitter (the FaultInjector pattern): many peers backing
    // off from the same server restart must not reconnect in lockstep.
    double jitter = (backoff_jitter_rng_.NextDouble() * 2.0 - 1.0) *
                    options_.backoff_jitter;
    backoff *= 1.0 + jitter;
  }
  next_connect_at_ =
      clock_->NowMicros() + std::max<Micros>(1, static_cast<Micros>(backoff));
  current_backoff_ =
      std::min(static_cast<Micros>(static_cast<double>(current_backoff_) *
                                   options_.backoff_multiplier),
               options_.max_backoff);
}

bool WireInvalidationClient::SendBytesLocked(const std::string& bytes) {
  if (blackholed_) return true;  // Everything after the loss is lost too.
  if (options_.faults != nullptr) {
    if (std::optional<Micros> delay = options_.faults->ShouldDelay()) {
      std::this_thread::sleep_for(std::chrono::microseconds(*delay));
    }
    if (options_.faults->ShouldPartition() || options_.faults->ShouldDrop()) {
      // Blackholed: "sent" from our side, never arrives — and the latch
      // makes the loss a SUFFIX of the connection's stream, as real TCP
      // loss is. A lost middle with delivered successors would let the
      // server's high-water mark jump the gap and dedup-swallow the
      // gap's replay. The loss surfaces as an ack timeout.
      blackholed_ = true;
      return true;
    }
    if (options_.faults->ShouldReset()) {
      return false;  // RST: the write fails outright.
    }
    if (options_.faults->ShouldPartialWrite()) {
      // A prefix reaches the wire, then the connection dies: the server
      // sees a torn frame (its slow-loris/partial accounting, not
      // corruption — the bytes that arrived are valid).
      WriteAllBytes(fd_, std::string_view(bytes).substr(0, bytes.size() / 2));
      return false;
    }
  }
  return WriteAllBytes(fd_, bytes);
}

Result<WireFrame> WireInvalidationClient::ReadFrameLocked() {
  char chunk[4096];
  while (true) {
    DecodeResult decoded = DecodeFrame(read_buffer_);
    if (decoded.outcome == DecodeOutcome::kCorrupt) {
      ++corrupt_frames_;
      LogMessage(LogLevel::kError,
                 StrCat("wire client: corrupt frame from server: ",
                        decoded.reason));
      return Status::ParseError(
          StrCat("corrupt frame from server: ", decoded.reason));
    }
    if (decoded.outcome == DecodeOutcome::kFrame) {
      read_buffer_.erase(0, decoded.consumed);
      return decoded.frame;
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      return Status::Unavailable("ack read timed out or connection closed");
    }
    read_buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool WireInvalidationClient::connected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fd_ >= 0;
}

uint64_t WireInvalidationClient::connects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connects_;
}

uint64_t WireInvalidationClient::reconnects() const {
  std::lock_guard<std::mutex> lock(mu_);
  return connects_ > 0 ? connects_ - 1 : 0;
}

uint64_t WireInvalidationClient::epochs_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_.size();
}

uint64_t WireInvalidationClient::acks_received() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acks_received_;
}

uint64_t WireInvalidationClient::replays() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replays_;
}

uint64_t WireInvalidationClient::heartbeats_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return heartbeats_sent_;
}

uint64_t WireInvalidationClient::corrupt_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return corrupt_frames_;
}

uint64_t WireInvalidationClient::batch_frames_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batch_frames_sent_;
}

uint64_t WireInvalidationClient::batched_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return batched_entries_;
}

std::string WireInvalidationClient::HealthReport() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StrCat("wire-client: connected=", fd_ >= 0 ? 1 : 0,
                " connects=", connects_,
                " reconnects=", connects_ > 0 ? connects_ - 1 : 0,
                " epochs-seen=", epochs_.size(),
                " acks=", acks_received_, " replays=", replays_,
                " inflight=", inflight_.size(),
                " heartbeats=", heartbeats_sent_,
                " corrupt-frames=", corrupt_frames_,
                " batch-frames=", batch_frames_sent_,
                " batched-entries=", batched_entries_,
                fatal_.ok() ? "" : StrCat(" FATAL=", fatal_.ToString()));
}

}  // namespace cacheportal::net
