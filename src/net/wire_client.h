#ifndef CACHEPORTAL_NET_WIRE_CLIENT_H_
#define CACHEPORTAL_NET_WIRE_CLIENT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/random.h"
#include "common/status.h"
#include "net/wire.h"

namespace cacheportal::net {

struct WireClientOptions {
  /// Target InvalidationServer port on 127.0.0.1.
  uint16_t port = 0;
  /// Identifies this invalidator in the HELLO (diagnostics only).
  std::string client_id = "invalidator";
  /// Socket read/write timeout (real time): bounds how long a Deliver
  /// waits for an ack before declaring the attempt lost.
  Micros io_timeout = 2 * kMicrosPerSecond;
  /// Reconnect backoff: after a failed connect or a dead connection,
  /// Deliver returns Unavailable immediately (no blocking) until this
  /// much injected-Clock time has passed; doubles per consecutive
  /// failure up to max_backoff, resets on success.
  Micros reconnect_backoff = 100 * kMicrosPerMilli;
  double backoff_multiplier = 2.0;
  Micros max_backoff = 5 * kMicrosPerSecond;
  /// Uniform jitter applied to each reconnect backoff, as a fraction of
  /// it (0.2 = +/-20%). With many clients reconnecting to a restarted
  /// server, pure doubling from the same instant produces a synchronized
  /// herd; jitter decorrelates them. Seeded (the FaultInjector pattern)
  /// so tests replay exactly.
  double backoff_jitter = 0.2;
  uint64_t backoff_jitter_seed = 0x7ec0ffee;
  /// Most eject entries one EJECT_BATCH frame carries (contiguous-seq
  /// runs are chunked to this); 1 disables batching. Capped at
  /// kMaxBatchEntries.
  size_t batch_max = 64;
  /// Most un-acked frames DeliverBatch keeps in flight while streaming;
  /// 1 degenerates to stop-and-wait per frame.
  size_t window_frames = 128;
  /// Client-side socket faults (drops, resets, partial writes,
  /// partitions, delays). Not owned; must outlive the client.
  FaultInjector* faults = nullptr;
};

/// What a DeliverBatch call achieved: the server cumulatively acked the
/// first `confirmed` entries (in call order); `status` explains why the
/// remainder — if any — did not confirm. confirmed == entries.size()
/// implies status.ok().
struct WireBatchResult {
  size_t confirmed = 0;
  Status status = Status::OK();
};

/// The invalidator's side of the invalidation wire (net/wire.h): a
/// persistent connection to one cache's InvalidationServer with the
/// versioned HELLO handshake, per-message (epoch, seq) assignment,
/// ack-based confirmation, and reconnect-with-backoff paced by the
/// injected Clock.
///
/// Deliver() is deliberately one-shot: a failed attempt returns
/// immediately (Status::Unavailable) instead of blocking in a retry
/// loop, because retry pacing belongs to core::ReliableDeliveryQueue —
/// the client only remembers which (epoch, seq) each un-acked key was
/// assigned, so a redelivery of the same key reuses the same seq and the
/// server's ResumeLedger can dedup the replay. When the server restarts
/// (new session epoch in the HELLO_ACK), the in-flight map is cleared
/// and redeliveries mint fresh seqs in the new epoch.
///
/// Error taxonomy (what the delivery queue keys retry-vs-dead-letter
/// off): connect failures, resets, timeouts, and partitions return
/// kUnavailable (retryable); a protocol version mismatch returns
/// kNotSupported and a corrupt frame kParseError (both fatal — no
/// amount of retrying fixes a peer speaking a different protocol or a
/// stream that desynced).
///
/// Threading: matches the InvalidationSink contract — one caller at a
/// time; the stats accessors are safe from other threads.
class WireInvalidationClient {
 public:
  WireInvalidationClient(const Clock* clock, WireClientOptions options);
  ~WireInvalidationClient();

  WireInvalidationClient(const WireInvalidationClient&) = delete;
  WireInvalidationClient& operator=(const WireInvalidationClient&) = delete;

  /// Delivers one eject payload identified by `key` (the cache key:
  /// stable across redeliveries of the same message). OK means the
  /// server ACKED it — applied or deduped.
  Status Deliver(const std::string& key, const std::string& payload);

  /// One entry of a DeliverBatch call: the stable cache key (redelivery
  /// identity) and the serialized eject it carries. Both are views —
  /// DeliverBatch is synchronous, so the caller only needs to keep the
  /// backing strings alive for the duration of the call. This keeps the
  /// hot path copy-free: a batched eject's bytes are copied exactly once
  /// on the client (into the frame blob), not per API layer.
  struct BatchEntry {
    std::string_view key;
    std::string_view payload;
  };

  /// Pipelined delivery of many ejects in one call: entries are grouped
  /// into contiguous-seq runs (each an EJECT_BATCH frame of up to
  /// batch_max entries; singleton runs go as plain EJECTs), streamed
  /// with up to window_frames frames un-acked, and the cumulative acks
  /// reaped as they arrive. The call returns only once every entry is
  /// acked or the connection fails — so `confirmed` has the same
  /// meaning as a Deliver() OK, just amortized: the callers' crash-
  /// safety story (ReliableDeliveryQueue checkpoints) never sees a
  /// "sent but maybe not applied" state. Unconfirmed entries keep their
  /// (epoch, seq) assignments; redelivering them replays the same run
  /// and the server's ledger dedups whatever did land.
  WireBatchResult DeliverBatch(const std::vector<BatchEntry>& entries);

  /// Liveness probe: HEARTBEAT round trip on the session connection
  /// (connecting first if needed, subject to the same backoff).
  Status Ping();

  /// Drops the connection (test hook / shutdown); the next Deliver
  /// reconnects immediately (no backoff penalty for a local close).
  void Disconnect();

  bool connected() const;
  uint64_t connects() const;
  /// Re-handshakes after the first connect.
  uint64_t reconnects() const;
  /// Distinct server session epochs observed.
  uint64_t epochs_seen() const;
  uint64_t acks_received() const;
  /// Deliveries that reused an already-assigned (epoch, seq) — replays
  /// the server may dedup.
  uint64_t replays() const;
  uint64_t heartbeats_sent() const;
  /// Frames from the server that failed to decode (stream quarantined).
  uint64_t corrupt_frames() const;
  /// EJECT_BATCH frames sent, and eject entries they carried.
  uint64_t batch_frames_sent() const;
  uint64_t batched_entries() const;

  /// One diagnostic line (no trailing newline) — per-peer connection
  /// health for StatsReport().
  std::string HealthReport() const;

 private:
  /// Connects and completes the HELLO handshake. Caller holds mu_.
  Status ConnectLocked();
  /// Closes the socket and schedules the reconnect backoff. Caller
  /// holds mu_.
  void DropConnectionLocked(bool schedule_backoff);
  /// Schedules the jittered reconnect backoff and doubles it for the
  /// next failure. Caller holds mu_.
  void ScheduleBackoffLocked();
  /// Sends raw bytes through the fault injector. False = connection is
  /// dead (caller drops it). A "drop" or "partition" fault returns true
  /// with nothing sent AND latches the connection blackholed: every
  /// later send on it is swallowed too. TCP loses suffixes, never
  /// middles — modeling a single lost frame with delivered successors
  /// would let the server's high-water mark jump a gap and dedup-swallow
  /// the gap's replay (a lost invalidation the real transport cannot
  /// produce).
  bool SendBytesLocked(const std::string& bytes);
  /// Blocking read of the next frame (bounded by io_timeout). Caller
  /// holds mu_.
  Result<WireFrame> ReadFrameLocked();
  /// Reads frames until one cumulative ack for the current epoch
  /// arrives, raising *acked_high and retiring in-flight assignments at
  /// or below it. Any failure drops the connection and returns the
  /// Deliver() error taxonomy (fatal version mismatch latched, stale
  /// epoch retryable-now, quarantine kParseError). Caller holds mu_.
  Status ReapAckLocked(uint64_t* acked_high);

  const Clock* clock_;
  WireClientOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string read_buffer_;
  uint64_t epoch_ = 0;
  uint64_t last_assigned_seq_ = 0;
  /// Un-acked key -> assigned (epoch, seq). Transparent comparator so
  /// the batch path can probe with string_view keys without allocating.
  struct Assigned {
    uint64_t epoch = 0;
    uint64_t seq = 0;
  };
  std::map<std::string, Assigned, std::less<>> inflight_;
  /// Sticky fatal state (version mismatch): every future Deliver fails
  /// fast with the same status.
  Status fatal_ = Status::OK();
  Micros next_connect_at_ = 0;
  Micros current_backoff_ = 0;
  uint64_t heartbeat_seq_ = 0;
  Random backoff_jitter_rng_;
  /// A drop/partition fault fired on this connection: all later sends on
  /// it are swallowed until reconnect (suffix loss, like real TCP).
  bool blackholed_ = false;

  uint64_t connects_ = 0;
  std::set<uint64_t> epochs_;
  uint64_t acks_received_ = 0;
  uint64_t replays_ = 0;
  uint64_t heartbeats_sent_ = 0;
  uint64_t corrupt_frames_ = 0;
  uint64_t batch_frames_sent_ = 0;
  uint64_t batched_entries_ = 0;
};

}  // namespace cacheportal::net

#endif  // CACHEPORTAL_NET_WIRE_CLIENT_H_
