#ifndef CACHEPORTAL_NET_WIRE_CLIENT_H_
#define CACHEPORTAL_NET_WIRE_CLIENT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/status.h"
#include "net/wire.h"

namespace cacheportal::net {

struct WireClientOptions {
  /// Target InvalidationServer port on 127.0.0.1.
  uint16_t port = 0;
  /// Identifies this invalidator in the HELLO (diagnostics only).
  std::string client_id = "invalidator";
  /// Socket read/write timeout (real time): bounds how long a Deliver
  /// waits for an ack before declaring the attempt lost.
  Micros io_timeout = 2 * kMicrosPerSecond;
  /// Reconnect backoff: after a failed connect or a dead connection,
  /// Deliver returns Unavailable immediately (no blocking) until this
  /// much injected-Clock time has passed; doubles per consecutive
  /// failure up to max_backoff, resets on success.
  Micros reconnect_backoff = 100 * kMicrosPerMilli;
  double backoff_multiplier = 2.0;
  Micros max_backoff = 5 * kMicrosPerSecond;
  /// Client-side socket faults (drops, resets, partial writes,
  /// partitions, delays). Not owned; must outlive the client.
  FaultInjector* faults = nullptr;
};

/// The invalidator's side of the invalidation wire (net/wire.h): a
/// persistent connection to one cache's InvalidationServer with the
/// versioned HELLO handshake, per-message (epoch, seq) assignment,
/// ack-based confirmation, and reconnect-with-backoff paced by the
/// injected Clock.
///
/// Deliver() is deliberately one-shot: a failed attempt returns
/// immediately (Status::Unavailable) instead of blocking in a retry
/// loop, because retry pacing belongs to core::ReliableDeliveryQueue —
/// the client only remembers which (epoch, seq) each un-acked key was
/// assigned, so a redelivery of the same key reuses the same seq and the
/// server's ResumeLedger can dedup the replay. When the server restarts
/// (new session epoch in the HELLO_ACK), the in-flight map is cleared
/// and redeliveries mint fresh seqs in the new epoch.
///
/// Error taxonomy (what the delivery queue keys retry-vs-dead-letter
/// off): connect failures, resets, timeouts, and partitions return
/// kUnavailable (retryable); a protocol version mismatch returns
/// kNotSupported and a corrupt frame kParseError (both fatal — no
/// amount of retrying fixes a peer speaking a different protocol or a
/// stream that desynced).
///
/// Threading: matches the InvalidationSink contract — one caller at a
/// time; the stats accessors are safe from other threads.
class WireInvalidationClient {
 public:
  WireInvalidationClient(const Clock* clock, WireClientOptions options);
  ~WireInvalidationClient();

  WireInvalidationClient(const WireInvalidationClient&) = delete;
  WireInvalidationClient& operator=(const WireInvalidationClient&) = delete;

  /// Delivers one eject payload identified by `key` (the cache key:
  /// stable across redeliveries of the same message). OK means the
  /// server ACKED it — applied or deduped.
  Status Deliver(const std::string& key, const std::string& payload);

  /// Liveness probe: HEARTBEAT round trip on the session connection
  /// (connecting first if needed, subject to the same backoff).
  Status Ping();

  /// Drops the connection (test hook / shutdown); the next Deliver
  /// reconnects immediately (no backoff penalty for a local close).
  void Disconnect();

  bool connected() const;
  uint64_t connects() const;
  /// Re-handshakes after the first connect.
  uint64_t reconnects() const;
  /// Distinct server session epochs observed.
  uint64_t epochs_seen() const;
  uint64_t acks_received() const;
  /// Deliveries that reused an already-assigned (epoch, seq) — replays
  /// the server may dedup.
  uint64_t replays() const;
  uint64_t heartbeats_sent() const;
  /// Frames from the server that failed to decode (stream quarantined).
  uint64_t corrupt_frames() const;

  /// One diagnostic line (no trailing newline) — per-peer connection
  /// health for StatsReport().
  std::string HealthReport() const;

 private:
  /// Connects and completes the HELLO handshake. Caller holds mu_.
  Status ConnectLocked();
  /// Closes the socket and schedules the reconnect backoff. Caller
  /// holds mu_.
  void DropConnectionLocked(bool schedule_backoff);
  /// Sends raw bytes through the fault injector. False = connection is
  /// dead (caller drops it). A "drop" fault returns true with nothing
  /// sent — the loss surfaces as an ack timeout, like a real partition.
  bool SendBytesLocked(const std::string& bytes);
  /// Blocking read of the next frame (bounded by io_timeout). Caller
  /// holds mu_.
  Result<WireFrame> ReadFrameLocked();

  const Clock* clock_;
  WireClientOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;
  std::string read_buffer_;
  uint64_t epoch_ = 0;
  uint64_t last_assigned_seq_ = 0;
  /// Un-acked key -> assigned (epoch, seq).
  struct Assigned {
    uint64_t epoch = 0;
    uint64_t seq = 0;
  };
  std::map<std::string, Assigned> inflight_;
  /// Sticky fatal state (version mismatch): every future Deliver fails
  /// fast with the same status.
  Status fatal_ = Status::OK();
  Micros next_connect_at_ = 0;
  Micros current_backoff_ = 0;
  uint64_t heartbeat_seq_ = 0;

  uint64_t connects_ = 0;
  std::set<uint64_t> epochs_;
  uint64_t acks_received_ = 0;
  uint64_t replays_ = 0;
  uint64_t heartbeats_sent_ = 0;
  uint64_t corrupt_frames_ = 0;
};

}  // namespace cacheportal::net

#endif  // CACHEPORTAL_NET_WIRE_CLIENT_H_
