#include "server/app_server.h"

#include "common/strings.h"

namespace cacheportal::server {

Status ApplicationServer::RegisterServlet(const std::string& path,
                                          std::unique_ptr<Servlet> servlet,
                                          ServletConfig config) {
  if (servlets_.contains(path)) {
    return Status::AlreadyExists(StrCat("servlet at ", path));
  }
  if (config.name.empty()) config.name = path;
  servlets_.emplace(path,
                    Registration{std::move(servlet), std::move(config)});
  return Status::OK();
}

const ServletConfig* ApplicationServer::FindConfig(
    const std::string& path) const {
  auto it = servlets_.find(path);
  return it == servlets_.end() ? nullptr : &it->second.config;
}

std::vector<std::string> ApplicationServer::Paths() const {
  std::vector<std::string> paths;
  paths.reserve(servlets_.size());
  for (const auto& [path, reg] : servlets_) paths.push_back(path);
  return paths;
}

http::HttpResponse ApplicationServer::Handle(
    const http::HttpRequest& request) {
  ++requests_served_;
  auto it = servlets_.find(request.path);
  if (it == servlets_.end()) {
    return http::HttpResponse::NotFound(
        StrCat("no servlet registered at ", request.path));
  }
  Registration& reg = it->second;

  uint64_t token = 0;
  if (interceptor_ != nullptr) {
    token = interceptor_->BeforeService(reg.config.name, request);
  }

  ServletContext context;
  context.connection = pool_ != nullptr ? pool_->Acquire() : nullptr;
  http::HttpResponse response = reg.servlet->Service(request, &context);

  if (interceptor_ != nullptr) {
    interceptor_->AfterService(token, reg.config.name, request, &response);
  }
  return response;
}

}  // namespace cacheportal::server
