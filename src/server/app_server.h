#ifndef CACHEPORTAL_SERVER_APP_SERVER_H_
#define CACHEPORTAL_SERVER_APP_SERVER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/handler.h"
#include "server/jdbc.h"
#include "server/servlet.h"

namespace cacheportal::server {

/// Hooks around servlet execution. The CachePortal sniffer installs one
/// of these (the request logger of Section 3.1): it observes request and
/// response, may rewrite cache directives, but cannot change application
/// logic — this is the "wrapper around the servlet" of the paper.
class ServletInterceptor {
 public:
  virtual ~ServletInterceptor() = default;

  /// Called before the servlet runs. Returns an opaque token passed to
  /// AfterService (e.g. a request-log ID).
  virtual uint64_t BeforeService(const std::string& servlet_name,
                                 const http::HttpRequest& request) = 0;

  /// Called after the servlet produced `response`; may mutate it (the
  /// cache-directive rewrite happens here).
  virtual void AfterService(uint64_t token, const std::string& servlet_name,
                            const http::HttpRequest& request,
                            http::HttpResponse* response) = 0;
};

/// The application server: routes request paths to servlets and supplies
/// each invocation with a pooled connection. Stands in for BEA WebLogic.
class ApplicationServer : public RequestHandler {
 public:
  /// `pool` supplies servlet connections (not owned).
  explicit ApplicationServer(ConnectionPool* pool) : pool_(pool) {}

  /// Registers `servlet` under `path` (exact match).
  Status RegisterServlet(const std::string& path,
                         std::unique_ptr<Servlet> servlet,
                         ServletConfig config);

  /// Installs the (single) interceptor; pass nullptr to detach.
  void SetInterceptor(ServletInterceptor* interceptor) {
    interceptor_ = interceptor;
  }

  /// Configuration of the servlet at `path`, or nullptr.
  const ServletConfig* FindConfig(const std::string& path) const;

  /// All registered servlet paths.
  std::vector<std::string> Paths() const;

  http::HttpResponse Handle(const http::HttpRequest& request) override;

  /// Requests served so far.
  uint64_t requests_served() const { return requests_served_; }

 private:
  struct Registration {
    std::unique_ptr<Servlet> servlet;
    ServletConfig config;
  };

  ConnectionPool* pool_;
  ServletInterceptor* interceptor_ = nullptr;
  std::map<std::string, Registration> servlets_;
  uint64_t requests_served_ = 0;
};

}  // namespace cacheportal::server

#endif  // CACHEPORTAL_SERVER_APP_SERVER_H_
