#ifndef CACHEPORTAL_SERVER_FAULT_CONNECTION_H_
#define CACHEPORTAL_SERVER_FAULT_CONNECTION_H_

#include <string>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "server/jdbc.h"

namespace cacheportal::server {

/// Wraps a JDBC-style Connection with a FaultInjector, modeling a flaky
/// database link (the invalidator's polling connection, a data-cache
/// backend). Drops and transient errors fail the call with
/// Status::Internal and no side effect; delays execute the statement but
/// account the injected latency in injected_delay() — callers pacing by
/// a simulated clock can advance it by that much. Malformed responses
/// are not meaningful at this layer.
///
/// The invalidator's contract under these faults: a failed polling query
/// invalidates conservatively, so injected connection errors cost
/// precision, never freshness.
class FaultInjectingConnection : public Connection {
 public:
  /// Neither pointer is owned.
  FaultInjectingConnection(Connection* wrapped, FaultInjector* faults)
      : wrapped_(wrapped), faults_(faults) {}

  Result<db::QueryResult> ExecuteQuery(const std::string& sql) override {
    if (faults_->ShouldDrop() || faults_->ShouldError()) {
      return Status::Internal("fault injected: connection error");
    }
    if (std::optional<Micros> delay = faults_->ShouldDelay()) {
      injected_delay_ += *delay;
    }
    return wrapped_->ExecuteQuery(sql);
  }

  Result<int64_t> ExecuteUpdate(const std::string& sql) override {
    if (faults_->ShouldDrop() || faults_->ShouldError()) {
      return Status::Internal("fault injected: connection error");
    }
    if (std::optional<Micros> delay = faults_->ShouldDelay()) {
      injected_delay_ += *delay;
    }
    return wrapped_->ExecuteUpdate(sql);
  }

  /// Total latency injected into executed statements.
  Micros injected_delay() const { return injected_delay_; }

 private:
  Connection* wrapped_;
  FaultInjector* faults_;
  Micros injected_delay_ = 0;
};

}  // namespace cacheportal::server

#endif  // CACHEPORTAL_SERVER_FAULT_CONNECTION_H_
