#ifndef CACHEPORTAL_SERVER_HANDLER_H_
#define CACHEPORTAL_SERVER_HANDLER_H_

#include "http/message.h"

namespace cacheportal::server {

/// Anything that can answer an HTTP request: web servers, application
/// servers, load balancers, and caching proxies all implement this, which
/// lets the three site configurations of the paper be assembled by
/// composing handlers.
class RequestHandler {
 public:
  virtual ~RequestHandler() = default;

  virtual http::HttpResponse Handle(const http::HttpRequest& request) = 0;
};

}  // namespace cacheportal::server

#endif  // CACHEPORTAL_SERVER_HANDLER_H_
