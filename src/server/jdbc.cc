#include "server/jdbc.h"

#include "common/strings.h"

namespace cacheportal::server {

namespace {

/// Connection executing directly against an in-process Database.
class MemoryDbConnection : public Connection {
 public:
  explicit MemoryDbConnection(db::Database* database) : database_(database) {}

  Result<db::QueryResult> ExecuteQuery(const std::string& sql) override {
    return database_->ExecuteSql(sql);
  }

  Result<int64_t> ExecuteUpdate(const std::string& sql) override {
    CACHEPORTAL_ASSIGN_OR_RETURN(db::QueryResult result,
                                 database_->ExecuteSql(sql));
    if (result.columns.size() == 1 && result.columns[0] == "affected" &&
        result.rows.size() == 1 && result.rows[0][0].is_int()) {
      return result.rows[0][0].AsInt();
    }
    return Status::InvalidArgument("ExecuteUpdate used with a SELECT");
  }

 private:
  db::Database* database_;
};

}  // namespace

void DriverManager::RegisterDriver(std::unique_ptr<Driver> driver) {
  drivers_.push_back(std::move(driver));
}

Result<std::unique_ptr<Connection>> DriverManager::GetConnection(
    const std::string& url) {
  for (const auto& driver : drivers_) {
    if (driver->AcceptsUrl(url)) return driver->Connect(url);
  }
  return Status::NotFound(StrCat("no driver accepts URL ", url));
}

void MemoryDbDriver::BindDatabase(const std::string& name,
                                  db::Database* database) {
  databases_[name] = database;
}

bool MemoryDbDriver::AcceptsUrl(const std::string& url) const {
  return StartsWith(url, kUrlPrefix);
}

Result<std::unique_ptr<Connection>> MemoryDbDriver::Connect(
    const std::string& url) {
  if (!AcceptsUrl(url)) {
    return Status::InvalidArgument(StrCat("unsupported URL ", url));
  }
  std::string name = url.substr(sizeof(kUrlPrefix) - 1);
  auto it = databases_.find(name);
  if (it == databases_.end()) {
    return Status::NotFound(StrCat("database ", name, " is not bound"));
  }
  return std::unique_ptr<Connection>(
      std::make_unique<MemoryDbConnection>(it->second));
}

Result<std::unique_ptr<ConnectionPool>> ConnectionPool::Create(
    std::string name, const std::string& url, size_t size,
    DriverManager* manager) {
  if (size == 0) {
    return Status::InvalidArgument("connection pool size must be > 0");
  }
  std::vector<std::unique_ptr<Connection>> connections;
  connections.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    CACHEPORTAL_ASSIGN_OR_RETURN(std::unique_ptr<Connection> conn,
                                 manager->GetConnection(url));
    connections.push_back(std::move(conn));
  }
  return std::unique_ptr<ConnectionPool>(
      new ConnectionPool(std::move(name), std::move(connections)));
}

Connection* ConnectionPool::Acquire() {
  ++acquisitions_;
  Connection* conn = connections_[next_].get();
  next_ = (next_ + 1) % connections_.size();
  return conn;
}

Status DataSourceRegistry::Bind(const std::string& jndi_name,
                                ConnectionPool* pool) {
  if (pools_.contains(jndi_name)) {
    return Status::AlreadyExists(StrCat("data source ", jndi_name));
  }
  pools_[jndi_name] = pool;
  return Status::OK();
}

Result<ConnectionPool*> DataSourceRegistry::Lookup(
    const std::string& jndi_name) const {
  auto it = pools_.find(jndi_name);
  if (it == pools_.end()) {
    return Status::NotFound(StrCat("data source ", jndi_name));
  }
  return it->second;
}

}  // namespace cacheportal::server
