#ifndef CACHEPORTAL_SERVER_JDBC_H_
#define CACHEPORTAL_SERVER_JDBC_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/database.h"

namespace cacheportal::server {

/// A JDBC-style connection: executes SQL against some database. The
/// sniffer's query logger wraps this interface (Section 3.2 of the paper),
/// which is what makes query capture independent of how the application
/// obtained the connection (explicit driver, pool, or data source).
class Connection {
 public:
  virtual ~Connection() = default;

  /// Executes a SELECT, returning its result set.
  virtual Result<db::QueryResult> ExecuteQuery(const std::string& sql) = 0;

  /// Executes DML, returning the affected-row count.
  virtual Result<int64_t> ExecuteUpdate(const std::string& sql) = 0;
};

/// A JDBC-style driver: accepts database URLs and opens connections.
class Driver {
 public:
  virtual ~Driver() = default;

  /// True if this driver understands `url`.
  virtual bool AcceptsUrl(const std::string& url) const = 0;

  virtual Result<std::unique_ptr<Connection>> Connect(
      const std::string& url) = 0;
};

/// Driver registry, analogous to java.sql.DriverManager.
class DriverManager {
 public:
  DriverManager() = default;

  DriverManager(const DriverManager&) = delete;
  DriverManager& operator=(const DriverManager&) = delete;

  void RegisterDriver(std::unique_ptr<Driver> driver);

  /// Opens a connection via the first driver accepting `url`.
  Result<std::unique_ptr<Connection>> GetConnection(const std::string& url);

  size_t num_drivers() const { return drivers_.size(); }

 private:
  std::vector<std::unique_ptr<Driver>> drivers_;
};

/// Driver for in-process cacheportal databases. URLs look like
/// "jdbc:cacheportal:<name>"; names are bound with BindDatabase. Stands in
/// for the BEA WebLogic jDriver of the paper's deployment.
class MemoryDbDriver : public Driver {
 public:
  MemoryDbDriver() = default;

  /// Binds `name` to `database` (not owned; must outlive the driver).
  void BindDatabase(const std::string& name, db::Database* database);

  bool AcceptsUrl(const std::string& url) const override;
  Result<std::unique_ptr<Connection>> Connect(
      const std::string& url) override;

  static constexpr char kUrlPrefix[] = "jdbc:cacheportal:";

 private:
  std::map<std::string, db::Database*> databases_;
};

/// A named group of identical connections to one database URL, analogous
/// to a WebLogic connection pool. Connections are created eagerly at
/// registration (like the paper describes) and handed out round-robin.
class ConnectionPool {
 public:
  /// Creates `size` connections through `manager`.
  static Result<std::unique_ptr<ConnectionPool>> Create(
      std::string name, const std::string& url, size_t size,
      DriverManager* manager);

  const std::string& name() const { return name_; }
  size_t size() const { return connections_.size(); }

  /// Borrows a connection (round-robin; connections stay pool-owned).
  Connection* Acquire();

  /// Total Acquire() calls, for load accounting.
  uint64_t acquisitions() const { return acquisitions_; }

 private:
  ConnectionPool(std::string name,
                 std::vector<std::unique_ptr<Connection>> connections)
      : name_(std::move(name)), connections_(std::move(connections)) {}

  std::string name_;
  std::vector<std::unique_ptr<Connection>> connections_;
  size_t next_ = 0;
  uint64_t acquisitions_ = 0;
};

/// A JNDI-style registry binding data-source names to connection pools —
/// the recommended WebLogic access path in Section 3.2.
class DataSourceRegistry {
 public:
  DataSourceRegistry() = default;

  /// Binds `jndi_name` to `pool` (not owned).
  Status Bind(const std::string& jndi_name, ConnectionPool* pool);

  /// Looks up a data source; NotFound when unbound.
  Result<ConnectionPool*> Lookup(const std::string& jndi_name) const;

 private:
  std::map<std::string, ConnectionPool*> pools_;
};

}  // namespace cacheportal::server

#endif  // CACHEPORTAL_SERVER_JDBC_H_
