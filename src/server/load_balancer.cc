#include "server/load_balancer.h"

#include <algorithm>

namespace cacheportal::server {

void LoadBalancer::AddBackend(RequestHandler* backend) {
  backends_.push_back(backend);
  counts_.push_back(0);
}

size_t LoadBalancer::PickBackend() {
  switch (policy_) {
    case BalancePolicy::kRoundRobin: {
      size_t pick = next_;
      next_ = (next_ + 1) % backends_.size();
      return pick;
    }
    case BalancePolicy::kLeastRequests: {
      return static_cast<size_t>(
          std::min_element(counts_.begin(), counts_.end()) - counts_.begin());
    }
  }
  return 0;
}

http::HttpResponse LoadBalancer::Handle(const http::HttpRequest& request) {
  if (backends_.empty()) {
    return http::HttpResponse(503, "no backends");
  }
  size_t pick = PickBackend();
  ++counts_[pick];
  return backends_[pick]->Handle(request);
}

}  // namespace cacheportal::server
