#ifndef CACHEPORTAL_SERVER_LOAD_BALANCER_H_
#define CACHEPORTAL_SERVER_LOAD_BALANCER_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "server/handler.h"

namespace cacheportal::server {

/// Backend-selection policies.
enum class BalancePolicy {
  kRoundRobin,
  kLeastRequests,  // Fewest requests dispatched so far.
};

/// The traffic balancer in front of the web-server farm (Cisco
/// LocalDirector in the paper's testbed).
class LoadBalancer : public RequestHandler {
 public:
  explicit LoadBalancer(BalancePolicy policy = BalancePolicy::kRoundRobin)
      : policy_(policy) {}

  /// Adds a backend (not owned).
  void AddBackend(RequestHandler* backend);

  size_t num_backends() const { return backends_.size(); }

  /// Requests dispatched to backend `i`.
  uint64_t RequestsTo(size_t i) const { return counts_.at(i); }

  http::HttpResponse Handle(const http::HttpRequest& request) override;

 private:
  size_t PickBackend();

  BalancePolicy policy_;
  std::vector<RequestHandler*> backends_;
  std::vector<uint64_t> counts_;
  size_t next_ = 0;
};

}  // namespace cacheportal::server

#endif  // CACHEPORTAL_SERVER_LOAD_BALANCER_H_
