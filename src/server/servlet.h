#ifndef CACHEPORTAL_SERVER_SERVLET_H_
#define CACHEPORTAL_SERVER_SERVLET_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "http/message.h"
#include "server/jdbc.h"

namespace cacheportal::server {

/// Per-request context handed to a servlet: the connection it should use
/// for database access (already pool-managed, and — when CachePortal is
/// attached — already wrapped by the query logger).
struct ServletContext {
  Connection* connection = nullptr;
};

/// The application-programming surface: servlets turn a request plus
/// query results into a page. Applications never talk to CachePortal —
/// the sniffer observes around them (non-invasiveness, Section 2.1).
class Servlet {
 public:
  virtual ~Servlet() = default;

  virtual http::HttpResponse Service(const http::HttpRequest& request,
                                     ServletContext* context) = 0;
};

/// A servlet defined by a function (most examples and tests use this).
class FunctionServlet : public Servlet {
 public:
  using Fn = std::function<http::HttpResponse(const http::HttpRequest&,
                                              ServletContext*)>;

  explicit FunctionServlet(Fn fn) : fn_(std::move(fn)) {}

  http::HttpResponse Service(const http::HttpRequest& request,
                             ServletContext* context) override {
    return fn_(request, context);
  }

 private:
  Fn fn_;
};

/// Deployment metadata the sniffer keeps per servlet (Section 3.1):
/// which request parameters act as cache keys, how temporally sensitive
/// the servlet's pages are, and its error sensitivity.
struct ServletConfig {
  std::string name;
  /// GET/POST/cookie parameter names that form the page identity. A page
  /// request differing only in non-key parameters maps to the same cache
  /// entry.
  std::vector<std::string> key_get_params;
  std::vector<std::string> key_post_params;
  std::vector<std::string> key_cookie_params;
  /// How quickly (in microseconds) pages must reflect data changes. Pages
  /// more sensitive than the invalidation cycle are never cached; 0 means
  /// no constraint.
  Micros temporal_sensitivity = 0;
  /// Tolerance for serving slightly stale data (statistical use only).
  double error_sensitivity = 0.0;
};

}  // namespace cacheportal::server

#endif  // CACHEPORTAL_SERVER_SERVLET_H_
