#include "server/web_server.h"

namespace cacheportal::server {

void WebServer::AddStaticPage(const std::string& path, std::string body) {
  static_pages_[path] = std::move(body);
}

http::HttpResponse WebServer::Handle(const http::HttpRequest& request) {
  ++requests_served_;
  auto it = static_pages_.find(request.path);
  if (it != static_pages_.end()) {
    ++static_served_;
    http::HttpResponse response = http::HttpResponse::Ok(it->second);
    http::CacheControl cc;
    cc.is_public = true;
    response.SetCacheControl(cc);
    return response;
  }
  if (app_server_ == nullptr) {
    return http::HttpResponse::NotFound();
  }
  ++dynamic_forwarded_;
  return app_server_->Handle(request);
}

}  // namespace cacheportal::server
