#ifndef CACHEPORTAL_SERVER_WEB_SERVER_H_
#define CACHEPORTAL_SERVER_WEB_SERVER_H_

#include <cstdint>
#include <map>
#include <string>

#include "server/handler.h"

namespace cacheportal::server {

/// The web server in front of an application server (Apache in the
/// paper's testbed): serves registered static pages directly and forwards
/// everything else to the application tier.
class WebServer : public RequestHandler {
 public:
  /// `app_server` handles dynamic requests (not owned; may be null, in
  /// which case unknown paths 404).
  explicit WebServer(RequestHandler* app_server) : app_server_(app_server) {}

  /// Registers static content at `path`.
  void AddStaticPage(const std::string& path, std::string body);

  http::HttpResponse Handle(const http::HttpRequest& request) override;

  uint64_t requests_served() const { return requests_served_; }
  uint64_t static_served() const { return static_served_; }
  uint64_t dynamic_forwarded() const { return dynamic_forwarded_; }

 private:
  RequestHandler* app_server_;
  std::map<std::string, std::string> static_pages_;
  uint64_t requests_served_ = 0;
  uint64_t static_served_ = 0;
  uint64_t dynamic_forwarded_ = 0;
};

}  // namespace cacheportal::server

#endif  // CACHEPORTAL_SERVER_WEB_SERVER_H_
