#ifndef CACHEPORTAL_SIM_METRICS_H_
#define CACHEPORTAL_SIM_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "sim/params.h"

namespace cacheportal::sim {

/// Simple mean accumulator.
struct MeanAccumulator {
  uint64_t count = 0;
  double total = 0;

  void Add(double x) {
    ++count;
    total += x;
  }
  double Mean() const { return count == 0 ? 0.0 : total / count; }
};

/// Response-time metrics in the layout of Tables 2 and 3: misses split
/// into DB time and total response, hits, and the overall expectation.
struct SimMetrics {
  MeanAccumulator miss_db;        // DB component of cache misses (ms).
  MeanAccumulator miss_response;  // Total response of misses (ms).
  MeanAccumulator hit_response;   // Total response of hits (ms).
  MeanAccumulator response;       // All requests (the "Exp." column, ms).
  MeanAccumulator per_class[kNumRequestClasses];
  uint64_t completed = 0;
  uint64_t generated = 0;
  /// All response samples (ms), for percentile reporting.
  std::vector<double> samples;

  /// p in [0, 1]; e.g. Percentile(0.95). 0 when no samples.
  double Percentile(double p) const;

  void RecordMiss(RequestClass cls, double response_ms, double db_ms) {
    miss_db.Add(db_ms);
    miss_response.Add(response_ms);
    Record(cls, response_ms);
  }
  void RecordHit(RequestClass cls, double response_ms) {
    hit_response.Add(response_ms);
    Record(cls, response_ms);
  }

  /// One row of the paper's tables: "missDB missResp hitResp expResp".
  std::string ToRowString() const;

 private:
  void Record(RequestClass cls, double response_ms) {
    response.Add(response_ms);
    per_class[static_cast<int>(cls)].Add(response_ms);
    samples.push_back(response_ms);
    ++completed;
  }
};

}  // namespace cacheportal::sim

#endif  // CACHEPORTAL_SIM_METRICS_H_
