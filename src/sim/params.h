#ifndef CACHEPORTAL_SIM_PARAMS_H_
#define CACHEPORTAL_SIM_PARAMS_H_

#include <cstdint>

#include "common/clock.h"

namespace cacheportal::sim {

/// Request classes from Section 5.2.1: a light page selects on the small
/// table, a medium page on the large table, a heavy page joins both.
enum class RequestClass { kLight = 0, kMedium = 1, kHeavy = 2 };
inline constexpr int kNumRequestClasses = 3;

const char* RequestClassName(RequestClass c);

/// The three site architectures compared in Section 5.
enum class SiteConfig {
  kReplicated = 1,      // Configuration I.
  kMiddleTierCache = 2, // Configuration II.
  kWebCache = 3,        // Configuration III (CachePortal).
};

const char* SiteConfigName(SiteConfig c);

/// Update load in the paper's notation <ins1, del1, ins2, del2>: inserts
/// and deletes per second on the small (1) and large (2) tables.
struct UpdateLoad {
  double ins1 = 0, del1 = 0, ins2 = 0, del2 = 0;

  double Total() const { return ins1 + del1 + ins2 + del2; }
};

/// All experiment parameters (Table 1) plus the calibrated service-time
/// constants of the simulated testbed (4×200 MHz PCs, Section 5).
/// Defaults reproduce the Table 2 / Table 3 setup.
struct SimParams {
  // ---- Workload (Section 5.2.2) ----
  /// Requests per second per class (10 light + 10 medium + 10 heavy).
  double req_per_class_per_sec = 10.0;
  UpdateLoad updates;

  // ---- Topology ----
  int num_web_servers = 4;       // Web/app machines behind the balancer.
  int processes_per_server = 120; // Server process pool per machine.

  // ---- Caching (Sections 5.2.4 / 5.2.5) ----
  double hit_ratio = 0.7;   // Constant 70% in the paper's runs.
  /// Conf II only: whether data-cache access carries a connection cost
  /// (Table 3) or is negligible (Table 2).
  bool data_cache_connection_cost = false;
  /// When true, Conf III's hit ratio is no longer the constant above but
  /// degrades with the update rate — Table 1's "hit_ratio (function of
  /// cache size)" / "inval_rate (function of the number of polling
  /// queries)" coupling: over-invalidation ejects pages faster than
  /// requests repopulate them. The decay constant below was fitted to
  /// the measured end-to-end curve of bench_end_to_end.
  bool model_invalidation = false;
  /// Effective hit ratio = hit_ratio / (1 + inval_sensitivity * total
  /// updates per second).
  double inval_sensitivity = 0.035;
  /// Overload degradation (requires model_invalidation): once the update
  /// rate crosses this threshold the invalidator's degradation ladder is
  /// assumed active — polling budgets shrink, so more instances are
  /// invalidated conservatively and the hit ratio takes a further
  /// multiplicative penalty proportional to the excess. 0 disables.
  double overload_update_threshold = 0.0;
  /// Fractional hit-ratio penalty per update/sec above the threshold
  /// (applied as hit_ratio *= 1 / (1 + penalty * excess)).
  double degraded_hit_penalty = 0.01;

  // ---- Calibrated service times (microseconds) ----
  // Database work per query class on a dedicated database machine.
  Micros db_light = 30 * kMicrosPerMilli;
  Micros db_medium = 70 * kMicrosPerMilli;
  Micros db_heavy = 160 * kMicrosPerMilli;
  /// Conf I co-locates the DBMS with the web/app server on one 200 MHz
  /// box; queries cost this factor more there (cache pollution, context
  /// switches).
  double colocated_db_factor = 2.0;
  Micros web_app_cpu = 16 * kMicrosPerMilli;  // Servlet + page assembly.
  Micros update_cost = 3 * kMicrosPerMilli;   // DB work per update stmt.
  /// Client <-> site latency applied to every request (both ways total).
  Micros client_network = 90 * kMicrosPerMilli;
  /// Per-message service time on the shared site network (it carries
  /// request traffic, update traffic, and synchronization traffic).
  Micros site_network = 3 * kMicrosPerMilli;
  /// Web cache service time (Conf III front cache; a lightweight box).
  Micros web_cache_service = 9 * kMicrosPerMilli;
  /// Data-cache in-memory access (Conf II, Table 2 variant).
  Micros data_cache_access = 1 * kMicrosPerMilli;
  /// Data-cache connection establishment (Conf II, Table 3 variant) —
  /// a local DBMS connection per access, on the app-server CPU.
  Micros data_cache_connect = 350 * kMicrosPerMilli;
  /// Per-update work applied at each replica (Conf I synchronization).
  Micros replica_sync_cost = 1 * kMicrosPerMilli;
  /// Per-cache per-second synchronization query (Conf II): base cost plus
  /// per-update transfer cost.
  Micros data_cache_sync_base = 5 * kMicrosPerMilli;
  Micros data_cache_sync_per_update = 500;  // 0.5 ms
  /// Invalidator polling (Conf III): one query per second to the DBMS
  /// fetching the recent updates (Section 5.2.4).
  Micros invalidator_poll_cost = 6 * kMicrosPerMilli;

  // ---- Run control ----
  Micros duration = 120 * kMicrosPerSecond;
  Micros warmup = 15 * kMicrosPerSecond;
  uint64_t seed = 42;
};

}  // namespace cacheportal::sim

#endif  // CACHEPORTAL_SIM_PARAMS_H_
