#include "sim/simulator.h"

namespace cacheportal::sim {

void Simulator::At(Micros t, std::function<void()> fn) {
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

void Simulator::RunUntil(Micros until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    // Copy out; the callback may schedule more events.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
  if (now_ < until) now_ = until;
}

void Simulator::RunAll() {
  while (!queue_.empty()) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    ++events_processed_;
    event.fn();
  }
}

}  // namespace cacheportal::sim
