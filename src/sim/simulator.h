#ifndef CACHEPORTAL_SIM_SIMULATOR_H_
#define CACHEPORTAL_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/clock.h"

namespace cacheportal::sim {

/// A discrete-event simulator: a virtual clock plus a time-ordered event
/// queue. All site models in this library run on top of it, which is what
/// lets a two-minute testbed experiment execute in milliseconds while
/// preserving queueing behavior.
class Simulator : public Clock {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  Micros NowMicros() const override { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now).
  void At(Micros t, std::function<void()> fn);

  /// Schedules `fn` after `delay` microseconds.
  void After(Micros delay, std::function<void()> fn) {
    At(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  /// Runs events until the queue empties or virtual time passes `until`.
  void RunUntil(Micros until);

  /// Runs until the queue is empty.
  void RunAll();

  uint64_t events_processed() const { return events_processed_; }

 private:
  struct Event {
    Micros time;
    uint64_t seq;  // FIFO tie-break.
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  Micros now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace cacheportal::sim

#endif  // CACHEPORTAL_SIM_SIMULATOR_H_
