#include "sim/site.h"

#include <algorithm>
#include <memory>
#include <vector>

#include "common/random.h"
#include "sim/simulator.h"
#include "sim/station.h"

namespace cacheportal::sim {

const char* RequestClassName(RequestClass c) {
  switch (c) {
    case RequestClass::kLight:
      return "light";
    case RequestClass::kMedium:
      return "medium";
    case RequestClass::kHeavy:
      return "heavy";
  }
  return "?";
}

const char* SiteConfigName(SiteConfig c) {
  switch (c) {
    case SiteConfig::kReplicated:
      return "Conf I (replication)";
    case SiteConfig::kMiddleTierCache:
      return "Conf II (middle-tier data cache)";
    case SiteConfig::kWebCache:
      return "Conf III (dynamic web cache)";
  }
  return "?";
}

double SimMetrics::Percentile(double p) const {
  if (samples.empty()) return 0.0;
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  double idx = p * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(idx);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

std::string SimMetrics::ToRowString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "missDB=%8.0fms missResp=%8.0fms hit=%6.0fms exp=%8.0fms",
                miss_db.Mean(), miss_response.Mean(), hit_response.Mean(),
                response.Mean());
  return buf;
}

namespace {

/// Per-request bookkeeping threaded through the event chains.
struct RequestState {
  Micros start = 0;
  RequestClass cls = RequestClass::kLight;
  Micros db_start = 0;
  double db_ms = 0;
  bool hit = false;
};

/// Shared simulation world.
struct World {
  explicit World(const SimParams& p)
      : params(p),
        rng(p.seed),
        site_net(&sim, "site-network", 1),
        db(&sim, "dbms", 1),
        web_cache(&sim, "web-cache", 1) {
    for (int i = 0; i < p.num_web_servers; ++i) {
      machines.push_back(std::make_unique<Station>(
          &sim, "machine-" + std::to_string(i), 1));
      pools.push_back(std::make_unique<ProcessPool>(
          &sim, "pool-" + std::to_string(i), p.processes_per_server));
    }
  }

  Micros QueryCost(RequestClass cls) const {
    switch (cls) {
      case RequestClass::kLight:
        return params.db_light;
      case RequestClass::kMedium:
        return params.db_medium;
      case RequestClass::kHeavy:
        return params.db_heavy;
    }
    return params.db_light;
  }

  bool AfterWarmup() const { return sim.NowMicros() >= params.warmup; }

  void Finish(const std::shared_ptr<RequestState>& req) {
    if (!AfterWarmup() || req->start < params.warmup) return;
    double response_ms =
        static_cast<double>(sim.NowMicros() - req->start +
                            params.client_network) /
        kMicrosPerMilli;
    if (req->hit) {
      metrics.RecordHit(req->cls, response_ms);
    } else {
      metrics.RecordMiss(req->cls, response_ms, req->db_ms);
    }
  }

  const SimParams& params;
  Simulator sim;
  Random rng;
  Station site_net;
  Station db;
  Station web_cache;
  std::vector<std::unique_ptr<Station>> machines;
  std::vector<std::unique_ptr<ProcessPool>> pools;
  size_t next_machine = 0;
  SimMetrics metrics;
  // Updates seen since the last data-cache synchronization (Conf II).
  uint64_t updates_since_sync = 0;
  // Arrival-generator closures; owned here so their self-references are
  // raw pointers (a self-capturing shared_ptr would leak).
  std::vector<std::unique_ptr<std::function<void(Micros)>>> generators;
};

// ---------------------------------------------------------------------
// Configuration I: full replication, no caches.
// ---------------------------------------------------------------------
void ConfIRequest(World* w, std::shared_ptr<RequestState> req) {
  w->site_net.Submit(w->params.site_network, [w, req]() {
    size_t m = w->next_machine;
    w->next_machine = (w->next_machine + 1) % w->machines.size();
    w->pools[m]->Acquire([w, req, m]() {
      w->machines[m]->Submit(w->params.web_app_cpu, [w, req, m]() {
        req->db_start = w->sim.NowMicros();
        Micros query = static_cast<Micros>(
            static_cast<double>(w->QueryCost(req->cls)) *
            w->params.colocated_db_factor);
        w->machines[m]->Submit(query, [w, req, m]() {
          req->db_ms = static_cast<double>(w->sim.NowMicros() -
                                           req->db_start) /
                       kMicrosPerMilli;
          w->pools[m]->Release();
          w->site_net.Submit(w->params.site_network,
                             [w, req]() { w->Finish(req); });
        });
      });
    });
  });
}

void ConfIUpdate(World* w) {
  // The update travels the network once, then every replica applies it.
  w->site_net.Submit(w->params.site_network, [w]() {
    for (auto& machine : w->machines) {
      // Replicas apply the propagated update (cheap redo, no parsing).
      machine->Submit(w->params.replica_sync_cost, nullptr);
    }
  });
}

// ---------------------------------------------------------------------
// Configuration II: one DBMS + middle-tier data caches.
// ---------------------------------------------------------------------
void ConfIIRequest(World* w, std::shared_ptr<RequestState> req) {
  w->site_net.Submit(w->params.site_network, [w, req]() {
    size_t m = w->next_machine;
    w->next_machine = (w->next_machine + 1) % w->machines.size();
    w->pools[m]->Acquire([w, req, m]() {
      w->machines[m]->Submit(w->params.web_app_cpu, [w, req, m]() {
        req->hit = w->rng.OneIn(w->params.hit_ratio);
        if (req->hit) {
          // Data-cache access runs on the same machine's CPU (the cache
          // competes with the web/app server for resources).
          Micros access = w->params.data_cache_access;
          if (w->params.data_cache_connection_cost) {
            access += w->params.data_cache_connect;
          }
          w->machines[m]->Submit(access, [w, req, m]() {
            w->pools[m]->Release();
            w->site_net.Submit(w->params.site_network,
                               [w, req]() { w->Finish(req); });
          });
          return;
        }
        // Miss: the query crosses the shared network to the DBMS.
        w->site_net.Submit(w->params.site_network, [w, req, m]() {
          req->db_start = w->sim.NowMicros();
          w->db.Submit(w->QueryCost(req->cls), [w, req, m]() {
            req->db_ms = static_cast<double>(w->sim.NowMicros() -
                                             req->db_start) /
                         kMicrosPerMilli;
            w->site_net.Submit(w->params.site_network, [w, req, m]() {
              w->pools[m]->Release();
              w->site_net.Submit(w->params.site_network,
                                 [w, req]() { w->Finish(req); });
            });
          });
        });
      });
    });
  });
}

void ConfIIUpdate(World* w) {
  ++w->updates_since_sync;
  w->site_net.Submit(w->params.site_network, [w]() {
    w->db.Submit(w->params.update_cost, nullptr);
  });
}

void ConfIISyncTick(World* w) {
  // Each cache pulls the recent updates from the DBMS once per second:
  // a query on the DBMS, traffic on the shared network, and apply work
  // on the cache's machine.
  uint64_t pending = w->updates_since_sync;
  w->updates_since_sync = 0;
  Micros db_cost = w->params.data_cache_sync_base +
                   static_cast<Micros>(pending) *
                       w->params.data_cache_sync_per_update;
  for (size_t m = 0; m < w->machines.size(); ++m) {
    w->site_net.Submit(w->params.site_network, [w, m, db_cost, pending]() {
      w->db.Submit(db_cost, [w, m, pending]() {
        w->site_net.Submit(w->params.site_network, [w, m, pending]() {
          Micros apply = static_cast<Micros>(pending) *
                         w->params.data_cache_sync_per_update;
          w->machines[m]->Submit(apply, nullptr);
        });
      });
    });
  }
}

// ---------------------------------------------------------------------
// Configuration III: dynamic web cache in front of the load balancer.
// ---------------------------------------------------------------------
void ConfIIIRequest(World* w, std::shared_ptr<RequestState> req) {
  double hit_ratio = w->params.hit_ratio;
  if (w->params.model_invalidation) {
    // Invalidation pressure lowers the realized hit ratio (Section 5.1.1:
    // over-invalidation causes the hit ratio to decrease).
    double total_updates = w->params.updates.Total();
    hit_ratio /= 1.0 + w->params.inval_sensitivity * total_updates;
    if (w->params.overload_update_threshold > 0.0 &&
        total_updates > w->params.overload_update_threshold) {
      // Past the overload threshold the degradation ladder trades
      // precision for timeliness: conservative invalidation ejects more
      // pages than strictly necessary, further depressing the hit ratio.
      double excess = total_updates - w->params.overload_update_threshold;
      hit_ratio /= 1.0 + w->params.degraded_hit_penalty * excess;
    }
  }
  // The cache sits outside the site network: hits never enter it.
  w->web_cache.Submit(w->params.web_cache_service, [w, req, hit_ratio]() {
    req->hit = w->rng.OneIn(hit_ratio);
    if (req->hit) {
      w->Finish(req);
      return;
    }
    w->site_net.Submit(w->params.site_network, [w, req]() {
      size_t m = w->next_machine;
      w->next_machine = (w->next_machine + 1) % w->machines.size();
      w->pools[m]->Acquire([w, req, m]() {
        w->machines[m]->Submit(w->params.web_app_cpu, [w, req, m]() {
          w->site_net.Submit(w->params.site_network, [w, req, m]() {
            req->db_start = w->sim.NowMicros();
            w->db.Submit(w->QueryCost(req->cls), [w, req, m]() {
              req->db_ms = static_cast<double>(w->sim.NowMicros() -
                                               req->db_start) /
                           kMicrosPerMilli;
              w->site_net.Submit(w->params.site_network, [w, req, m]() {
                w->pools[m]->Release();
                w->site_net.Submit(w->params.site_network, [w, req]() {
                  // Store the fresh page in the web cache on the way out.
                  w->web_cache.Submit(w->params.web_cache_service,
                                      [w, req]() { w->Finish(req); });
                });
              });
            });
          });
        });
      });
    });
  });
}

void ConfIIIUpdate(World* w) {
  w->site_net.Submit(w->params.site_network, [w]() {
    w->db.Submit(w->params.update_cost, nullptr);
  });
}

void ConfIIIInvalidatorTick(World* w) {
  // One polling query per second fetching the recent updates
  // (Section 5.2.4); invalidation messages themselves are off the site
  // network (cache side) and negligible.
  w->site_net.Submit(w->params.site_network, [w]() {
    w->db.Submit(w->params.invalidator_poll_cost, nullptr);
  });
}

/// Schedules a Poisson arrival process for `rate` events/second, calling
/// `fire` at each arrival until the horizon. The recursive closure is
/// owned by the World (self-ownership through a shared_ptr would cycle).
void SchedulePoisson(World* w, double rate, Micros horizon,
                     std::function<void()> fire) {
  if (rate <= 0) return;
  double mean_gap = kMicrosPerSecond / rate;
  w->generators.push_back(std::make_unique<std::function<void(Micros)>>());
  std::function<void(Micros)>* arrive = w->generators.back().get();
  auto fire_shared =
      std::make_shared<std::function<void()>>(std::move(fire));
  *arrive = [w, mean_gap, horizon, arrive, fire_shared](Micros t) {
    if (t > horizon) return;
    w->sim.At(t, [w, t, mean_gap, horizon, arrive, fire_shared]() {
      (*fire_shared)();
      Micros next =
          t + static_cast<Micros>(w->rng.Exponential(mean_gap));
      (*arrive)(next);
    });
  };
  (*arrive)(static_cast<Micros>(w->rng.Exponential(mean_gap)));
}

}  // namespace

RunReport RunSiteSimulation(SiteConfig config, const SimParams& params) {
  World world(params);
  World* w = &world;
  Micros horizon = params.duration;

  auto launch_request = [w, config](RequestClass cls) {
    auto req = std::make_shared<RequestState>();
    req->start = w->sim.NowMicros();
    req->cls = cls;
    ++w->metrics.generated;
    switch (config) {
      case SiteConfig::kReplicated:
        ConfIRequest(w, std::move(req));
        break;
      case SiteConfig::kMiddleTierCache:
        ConfIIRequest(w, std::move(req));
        break;
      case SiteConfig::kWebCache:
        ConfIIIRequest(w, std::move(req));
        break;
    }
  };

  // Request generators: one Poisson stream per class (Section 5.2.2).
  for (int c = 0; c < kNumRequestClasses; ++c) {
    RequestClass cls = static_cast<RequestClass>(c);
    SchedulePoisson(w, params.req_per_class_per_sec, horizon,
                    [launch_request, cls]() { launch_request(cls); });
  }

  // Update generators (Section 5.2.3): four independent streams.
  auto launch_update = [w, config]() {
    switch (config) {
      case SiteConfig::kReplicated:
        ConfIUpdate(w);
        break;
      case SiteConfig::kMiddleTierCache:
        ConfIIUpdate(w);
        break;
      case SiteConfig::kWebCache:
        ConfIIIUpdate(w);
        break;
    }
  };
  for (double rate : {params.updates.ins1, params.updates.del1,
                      params.updates.ins2, params.updates.del2}) {
    SchedulePoisson(w, rate, horizon, launch_update);
  }

  // Per-second ticks: Conf II cache synchronization, Conf III invalidator
  // polling.
  for (Micros t = kMicrosPerSecond; t <= horizon; t += kMicrosPerSecond) {
    w->sim.At(t, [w, config]() {
      if (config == SiteConfig::kMiddleTierCache) ConfIISyncTick(w);
      if (config == SiteConfig::kWebCache) ConfIIIInvalidatorTick(w);
    });
  }

  // Generators stop at the horizon; drain every in-flight request so the
  // averages reflect the full response-time distribution even under
  // overload (Conf I builds multi-minute backlogs).
  w->sim.RunAll();

  RunReport report;
  report.metrics = w->metrics;
  Micros elapsed = horizon;
  report.db_utilization = w->db.Utilization(elapsed);
  report.network_utilization = w->site_net.Utilization(elapsed);
  double util_sum = 0;
  for (auto& m : w->machines) util_sum += m->Utilization(elapsed);
  report.machine_utilization =
      w->machines.empty() ? 0 : util_sum / static_cast<double>(w->machines.size());
  report.cache_utilization = w->web_cache.Utilization(elapsed);
  report.events = w->sim.events_processed();
  return report;
}

}  // namespace cacheportal::sim
