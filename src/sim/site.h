#ifndef CACHEPORTAL_SIM_SITE_H_
#define CACHEPORTAL_SIM_SITE_H_

#include <string>

#include "sim/metrics.h"
#include "sim/params.h"

namespace cacheportal::sim {

/// Everything a run reports: the Table 2/3 response-time metrics plus
/// per-module utilizations (the paper's "how the bottleneck moves").
struct RunReport {
  SimMetrics metrics;
  double db_utilization = 0;        // Dedicated DB machine (Conf II/III).
  double network_utilization = 0;   // Shared site network.
  double machine_utilization = 0;   // Mean over web/app machines.
  double cache_utilization = 0;     // Web cache box (Conf III).
  uint64_t events = 0;
};

/// Runs one experiment: the given site configuration under the given
/// parameters, returning averaged response times after warmup.
///
/// The model follows Section 5's testbed:
///  - Configuration I: four machines, each hosting web server +
///    application server + DBMS (queries pay the co-location factor);
///    updates are applied at every replica.
///  - Configuration II: four web/app machines with middle-tier data
///    caches (in-memory, or local-DBMS with connection cost for the
///    Table 3 variant) + one dedicated DBMS; caches synchronize against
///    the DBMS once per second over the shared network.
///  - Configuration III: a dynamic-web-content cache in front of the
///    load balancer (hits never enter the site network) + four web/app
///    machines + one dedicated DBMS; the invalidator sends one polling
///    query per second to the DBMS.
///
/// Requests hold a server process for their full stay on a machine, which
/// reproduces the resource starvation Conf. I exhibits in the paper.
RunReport RunSiteSimulation(SiteConfig config, const SimParams& params);

}  // namespace cacheportal::sim

#endif  // CACHEPORTAL_SIM_SITE_H_
