#include "sim/station.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace cacheportal::sim {

Station::Station(Simulator* sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)), servers_(std::max(1, servers)) {}

void Station::Submit(Micros service, std::function<void()> done) {
  queue_.push_back(Job{service, sim_->NowMicros(), std::move(done)});
  max_queue_ = std::max(max_queue_, queue_.size());
  StartNext();
}

void Station::StartNext() {
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    total_wait_ += sim_->NowMicros() - job.submitted;
    total_busy_ += job.service;
    Micros service = job.service;
    // Move the callback into the completion event.
    auto done = std::make_shared<std::function<void()>>(std::move(job.done));
    sim_->After(service, [this, done]() {
      --busy_;
      ++jobs_completed_;
      if (*done) (*done)();
      StartNext();
    });
  }
}

ProcessPool::ProcessPool(Simulator* sim, std::string name, int capacity)
    : sim_(sim), name_(std::move(name)), capacity_(std::max(1, capacity)) {}

void ProcessPool::Acquire(std::function<void()> granted) {
  if (in_use_ < capacity_) {
    ++in_use_;
    // Run asynchronously for uniform semantics.
    sim_->After(0, std::move(granted));
    return;
  }
  waiters_.push_back(std::move(granted));
  max_waiting_ = std::max(max_waiting_, waiters_.size());
}

void ProcessPool::Release() {
  if (!waiters_.empty()) {
    std::function<void()> next = std::move(waiters_.front());
    waiters_.pop_front();
    sim_->After(0, std::move(next));
    return;  // Unit transfers directly to the waiter.
  }
  --in_use_;
}

}  // namespace cacheportal::sim
