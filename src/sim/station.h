#ifndef CACHEPORTAL_SIM_STATION_H_
#define CACHEPORTAL_SIM_STATION_H_

#include <deque>
#include <functional>
#include <string>

#include "sim/simulator.h"

namespace cacheportal::sim {

/// A FIFO queueing station with `servers` identical servers — models a
/// CPU, a database engine, or a network link. Jobs submitted while all
/// servers are busy wait in queue; completion callbacks fire when service
/// finishes. Utilization and waiting statistics are tracked for the
/// "where does the bottleneck move" analysis of Section 5.1.2.
class Station {
 public:
  Station(Simulator* sim, std::string name, int servers = 1);

  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  /// Submits a job needing `service` microseconds; `done` fires at
  /// completion. Returns immediately.
  void Submit(Micros service, std::function<void()> done);

  const std::string& name() const { return name_; }
  uint64_t jobs_completed() const { return jobs_completed_; }
  Micros total_busy() const { return total_busy_; }
  Micros total_wait() const { return total_wait_; }
  size_t queue_length() const { return queue_.size(); }
  size_t max_queue_length() const { return max_queue_; }

  /// Server utilization in [0, servers], measured against `elapsed`.
  double Utilization(Micros elapsed) const {
    return elapsed <= 0 ? 0.0
                        : static_cast<double>(total_busy_) /
                              static_cast<double>(elapsed);
  }

  /// Mean in-queue waiting time per completed job.
  double AvgWaitMicros() const {
    return jobs_completed_ == 0 ? 0.0
                                : static_cast<double>(total_wait_) /
                                      static_cast<double>(jobs_completed_);
  }

 private:
  struct Job {
    Micros service;
    Micros submitted;
    std::function<void()> done;
  };

  void StartNext();

  Simulator* sim_;
  std::string name_;
  int servers_;
  int busy_ = 0;
  std::deque<Job> queue_;
  uint64_t jobs_completed_ = 0;
  Micros total_busy_ = 0;
  Micros total_wait_ = 0;
  size_t max_queue_ = 0;
};

/// A counting semaphore over the simulator — models a bounded pool of
/// server processes/threads. A request holds one unit for its entire stay
/// on a machine, which reproduces the paper's resource starvation:
/// processes holding memory and connections while waiting on the DBMS.
class ProcessPool {
 public:
  ProcessPool(Simulator* sim, std::string name, int capacity);

  ProcessPool(const ProcessPool&) = delete;
  ProcessPool& operator=(const ProcessPool&) = delete;

  /// Calls `granted` once a unit is available (immediately if one is).
  void Acquire(std::function<void()> granted);

  /// Returns a unit, waking the next waiter.
  void Release();

  int in_use() const { return in_use_; }
  size_t waiting() const { return waiters_.size(); }
  size_t max_waiting() const { return max_waiting_; }

 private:
  Simulator* sim_;
  std::string name_;
  int capacity_;
  int in_use_ = 0;
  std::deque<std::function<void()>> waiters_;
  size_t max_waiting_ = 0;
};

}  // namespace cacheportal::sim

#endif  // CACHEPORTAL_SIM_STATION_H_
