#include "sniffer/log_io.h"

#include <cstdlib>

#include "common/strings.h"

namespace cacheportal::sniffer {

namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string EscapeLogField(const std::string& field) {
  static const char* kHex = "0123456789ABCDEF";
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    if (c == '\t' || c == '\n' || c == '\r' || c == '%') {
      unsigned char u = static_cast<unsigned char>(c);
      out += '%';
      out += kHex[u >> 4];
      out += kHex[u & 0xF];
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeLogField(const std::string& field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '%' && i + 2 < field.size() &&
        HexDigit(field[i + 1]) >= 0 && HexDigit(field[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(field[i + 1]) * 16 +
                               HexDigit(field[i + 2]));
      i += 2;
    } else {
      out += field[i];
    }
  }
  return out;
}

std::string SerializeRequestLog(
    const std::vector<RequestLogEntry>& entries) {
  std::string out;
  for (const RequestLogEntry& e : entries) {
    out += StrCat("R\t", e.id, "\t", EscapeLogField(e.servlet_name), "\t",
                  EscapeLogField(e.request_string), "\t",
                  EscapeLogField(e.cookie_string), "\t",
                  EscapeLogField(e.post_string), "\t",
                  EscapeLogField(e.page_key), "\t", e.receive_time, "\t",
                  e.delivery_time, "\n");
  }
  return out;
}

Result<std::vector<RequestLogEntry>> ParseRequestLog(
    const std::string& text) {
  std::vector<RequestLogEntry> entries;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 9 || fields[0] != "R") {
      return Status::ParseError(StrCat("malformed request log line: ",
                                       line));
    }
    RequestLogEntry e;
    e.id = std::strtoull(fields[1].c_str(), nullptr, 10);
    e.servlet_name = UnescapeLogField(fields[2]);
    e.request_string = UnescapeLogField(fields[3]);
    e.cookie_string = UnescapeLogField(fields[4]);
    e.post_string = UnescapeLogField(fields[5]);
    e.page_key = UnescapeLogField(fields[6]);
    e.receive_time = std::strtoll(fields[7].c_str(), nullptr, 10);
    e.delivery_time = std::strtoll(fields[8].c_str(), nullptr, 10);
    entries.push_back(std::move(e));
  }
  return entries;
}

std::string SerializeQueryLog(const std::vector<QueryLogEntry>& entries) {
  std::string out;
  for (const QueryLogEntry& e : entries) {
    out += StrCat("Q\t", e.id, "\t", e.is_select ? "S" : "U", "\t",
                  e.receive_time, "\t", e.delivery_time, "\t",
                  EscapeLogField(e.sql), "\n");
  }
  return out;
}

Result<std::vector<QueryLogEntry>> ParseQueryLog(const std::string& text) {
  std::vector<QueryLogEntry> entries;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 6 || fields[0] != "Q" ||
        (fields[2] != "S" && fields[2] != "U")) {
      return Status::ParseError(StrCat("malformed query log line: ", line));
    }
    QueryLogEntry e;
    e.id = std::strtoull(fields[1].c_str(), nullptr, 10);
    e.is_select = fields[2] == "S";
    e.receive_time = std::strtoll(fields[3].c_str(), nullptr, 10);
    e.delivery_time = std::strtoll(fields[4].c_str(), nullptr, 10);
    e.sql = UnescapeLogField(fields[5]);
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace cacheportal::sniffer
