#ifndef CACHEPORTAL_SNIFFER_LOG_IO_H_
#define CACHEPORTAL_SNIFFER_LOG_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sniffer/query_log.h"
#include "sniffer/request_log.h"

namespace cacheportal::sniffer {

/// Serialization of the sniffer's logs. The invalidator runs on a
/// separate machine and pulls the request and query logs at regular
/// intervals (Section 2.2, Figure 7); these functions define the shipped
/// format: one record per line, tab-separated, with fields
/// percent-escaped so embedded tabs/newlines round-trip.
///
/// Request log line:
///   R <id> <servlet> <request-string> <cookie> <post> <page-key>
///     <receive-us> <delivery-us>
/// Query log line:
///   Q <id> <S|U> <receive-us> <delivery-us> <sql>

/// Serializes request-log entries (one line each, trailing newline).
std::string SerializeRequestLog(const std::vector<RequestLogEntry>& entries);

/// Parses lines produced by SerializeRequestLog.
Result<std::vector<RequestLogEntry>> ParseRequestLog(const std::string& text);

/// Serializes query-log entries.
std::string SerializeQueryLog(const std::vector<QueryLogEntry>& entries);

/// Parses lines produced by SerializeQueryLog.
Result<std::vector<QueryLogEntry>> ParseQueryLog(const std::string& text);

/// Escapes tabs, newlines, '%', and CR as %XX (field-level escaping).
std::string EscapeLogField(const std::string& field);

/// Inverse of EscapeLogField.
std::string UnescapeLogField(const std::string& field);

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_LOG_IO_H_
