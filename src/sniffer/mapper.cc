#include "sniffer/mapper.h"

#include <algorithm>

namespace cacheportal::sniffer {

size_t RequestToQueryMapper::Run() {
  size_t added = 0;
  const auto& queries = query_log_->entries();
  for (const RequestLogEntry& request : request_log_->entries()) {
    if (!request.completed()) continue;
    if (processed_.contains(request.id)) continue;
    processed_.insert(request.id);

    // Query log entries are appended in receive-time order; binary-search
    // the first candidate.
    auto begin = std::lower_bound(
        queries.begin(), queries.end(), request.receive_time,
        [](const QueryLogEntry& q, Micros t) { return q.receive_time < t; });
    for (auto it = begin; it != queries.end(); ++it) {
      if (it->receive_time > request.delivery_time) break;
      if (!it->is_select) continue;
      if (it->delivery_time > request.delivery_time) continue;
      uint64_t before = map_->size();
      map_->Add(it->sql, request.page_key, request.request_string,
                request.delivery_time);
      if (map_->size() > before) ++added;
    }
  }
  return added;
}

}  // namespace cacheportal::sniffer
