#ifndef CACHEPORTAL_SNIFFER_MAPPER_H_
#define CACHEPORTAL_SNIFFER_MAPPER_H_

#include <cstdint>
#include <set>

#include "sniffer/qiurl_map.h"
#include "sniffer/query_log.h"
#include "sniffer/request_log.h"

namespace cacheportal::sniffer {

/// The request-to-query mapper (Section 3.3): joins the request log and
/// the query log on time intervals. For every completed request interval
/// [receive, delivery], each SELECT whose own [receive, delivery] interval
/// falls inside it is recorded as a (query instance, URL) pair in the
/// QI/URL map.
///
/// Note the inherent approximation the paper accepts: when requests
/// overlap in time, a query may be attributed to several requests. That
/// errs toward over-invalidation, never staleness.
class RequestToQueryMapper {
 public:
  /// None of the pointers are owned.
  RequestToQueryMapper(const RequestLog* request_log,
                       const QueryLog* query_log, QiUrlMap* map)
      : request_log_(request_log), query_log_(query_log), map_(map) {}

  /// Processes newly completed requests; returns how many (query, page)
  /// pairs were added to the map. Idempotent per request.
  size_t Run();

  /// Requests processed so far.
  uint64_t requests_processed() const { return processed_.size(); }

 private:
  const RequestLog* request_log_;
  const QueryLog* query_log_;
  QiUrlMap* map_;
  std::set<uint64_t> processed_;
};

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_MAPPER_H_
