#include "sniffer/qiurl_map.h"

#include <cstdlib>

#include "common/strings.h"
#include "sniffer/log_io.h"

namespace cacheportal::sniffer {

uint64_t QiUrlMap::Add(const std::string& query_sql,
                       const std::string& page_key,
                       const std::string& request_string, Micros timestamp) {
  auto key = std::make_pair(query_sql, page_key);
  auto it = pair_index_.find(key);
  if (it != pair_index_.end()) {
    entries_[it->second].timestamp = timestamp;
    return it->second;
  }
  uint64_t id = next_id_++;
  QiUrlEntry entry;
  entry.id = id;
  entry.query_sql = query_sql;
  entry.page_key = page_key;
  entry.request_string = request_string;
  entry.timestamp = timestamp;
  entries_.emplace(id, std::move(entry));
  pair_index_.emplace(std::move(key), id);
  by_query_[query_sql].insert(page_key);
  by_page_[page_key].insert(query_sql);
  return id;
}

std::vector<QiUrlEntry> QiUrlMap::ReadSince(uint64_t after_id) const {
  std::vector<QiUrlEntry> out;
  for (auto it = entries_.upper_bound(after_id); it != entries_.end(); ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> QiUrlMap::PagesForQuery(
    const std::string& query_sql) const {
  auto it = by_query_.find(query_sql);
  if (it == by_query_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

size_t QiUrlMap::NumPagesForQuery(const std::string& query_sql) const {
  auto it = by_query_.find(query_sql);
  return it == by_query_.end() ? 0 : it->second.size();
}

std::vector<std::string> QiUrlMap::QueriesForPage(
    const std::string& page_key) const {
  auto it = by_page_.find(page_key);
  if (it == by_page_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

size_t QiUrlMap::RemovePage(const std::string& page_key) {
  auto it = by_page_.find(page_key);
  if (it == by_page_.end()) return 0;
  size_t removed = 0;
  for (const std::string& query : it->second) {
    auto pair_it = pair_index_.find(std::make_pair(query, page_key));
    if (pair_it != pair_index_.end()) {
      entries_.erase(pair_it->second);
      pair_index_.erase(pair_it);
      ++removed;
    }
    auto q_it = by_query_.find(query);
    if (q_it != by_query_.end()) {
      q_it->second.erase(page_key);
      if (q_it->second.empty()) by_query_.erase(q_it);
    }
  }
  by_page_.erase(it);
  return removed;
}

std::string QiUrlMap::Serialize() const {
  std::string out;
  for (const auto& [id, entry] : entries_) {
    out += StrCat("M\t", entry.id, "\t", EscapeLogField(entry.query_sql),
                  "\t", EscapeLogField(entry.page_key), "\t",
                  EscapeLogField(entry.request_string), "\t",
                  entry.timestamp, "\n");
  }
  return out;
}

Result<QiUrlMap> QiUrlMap::Deserialize(const std::string& text) {
  QiUrlMap map;
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 6 || fields[0] != "M") {
      return Status::ParseError(StrCat("malformed QI/URL map line: ", line));
    }
    map.Add(UnescapeLogField(fields[2]), UnescapeLogField(fields[3]),
            UnescapeLogField(fields[4]),
            std::strtoll(fields[5].c_str(), nullptr, 10));
  }
  return map;
}

}  // namespace cacheportal::sniffer
