#include "sniffer/qiurl_map.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/strings.h"
#include "sniffer/log_io.h"

namespace cacheportal::sniffer {

QiUrlMap::QiUrlMap(QiUrlMap&& other) noexcept {
  entries_ = std::move(other.entries_);
  pair_index_ = std::move(other.pair_index_);
  by_query_ = std::move(other.by_query_);
  by_page_ = std::move(other.by_page_);
  next_id_ = other.next_id_;
  epoch_.store(other.epoch_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  removals_epoch_.store(other.removals_epoch_.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
}

QiUrlMap& QiUrlMap::operator=(QiUrlMap&& other) noexcept {
  if (this != &other) {
    entries_ = std::move(other.entries_);
    pair_index_ = std::move(other.pair_index_);
    by_query_ = std::move(other.by_query_);
    by_page_ = std::move(other.by_page_);
    next_id_ = other.next_id_;
    epoch_.store(other.epoch_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    removals_epoch_.store(
        other.removals_epoch_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
  return *this;
}

uint64_t QiUrlMap::Add(const std::string& query_sql,
                       const std::string& page_key,
                       const std::string& request_string, Micros timestamp) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto key = std::make_pair(query_sql, page_key);
  auto it = pair_index_.find(key);
  if (it != pair_index_.end()) {
    // Timestamp refreshes don't bump the epoch: the row set is unchanged
    // and consumers scanning by ID would see nothing new.
    entries_[it->second].timestamp = timestamp;
    return it->second;
  }
  uint64_t id = next_id_++;
  QiUrlEntry entry;
  entry.id = id;
  entry.query_sql = query_sql;
  entry.page_key = page_key;
  entry.request_string = request_string;
  entry.timestamp = timestamp;
  entries_.emplace(id, std::move(entry));
  pair_index_.emplace(std::move(key), id);
  by_query_[query_sql].insert(page_key);
  by_page_[page_key].insert(query_sql);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  return id;
}

std::vector<QiUrlEntry> QiUrlMap::ReadSince(uint64_t after_id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<QiUrlEntry> out;
  for (auto it = entries_.upper_bound(after_id); it != entries_.end(); ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::vector<std::string> QiUrlMap::PagesForQuery(
    const std::string& query_sql) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_query_.find(query_sql);
  if (it == by_query_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

size_t QiUrlMap::NumPagesForQuery(const std::string& query_sql) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_query_.find(query_sql);
  return it == by_query_.end() ? 0 : it->second.size();
}

std::vector<std::string> QiUrlMap::QueriesForPage(
    const std::string& page_key) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = by_page_.find(page_key);
  if (it == by_page_.end()) return {};
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

size_t QiUrlMap::RemovePage(const std::string& page_key) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = by_page_.find(page_key);
  if (it == by_page_.end()) return 0;
  size_t removed = 0;
  for (const std::string& query : it->second) {
    auto pair_it = pair_index_.find(std::make_pair(query, page_key));
    if (pair_it != pair_index_.end()) {
      entries_.erase(pair_it->second);
      pair_index_.erase(pair_it);
      ++removed;
    }
    auto q_it = by_query_.find(query);
    if (q_it != by_query_.end()) {
      q_it->second.erase(page_key);
      if (q_it->second.empty()) by_query_.erase(q_it);
    }
  }
  by_page_.erase(it);
  if (removed > 0) {
    epoch_.fetch_add(1, std::memory_order_acq_rel);
    removals_epoch_.fetch_add(1, std::memory_order_acq_rel);
  }
  return removed;
}

size_t QiUrlMap::NumQueries() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_query_.size();
}

size_t QiUrlMap::NumPages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return by_page_.size();
}

size_t QiUrlMap::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return entries_.size();
}

uint64_t QiUrlMap::LastId() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return next_id_ - 1;
}

std::string QiUrlMap::Serialize() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::string out;
  for (const auto& [id, entry] : entries_) {
    out += StrCat("M\t", entry.id, "\t", EscapeLogField(entry.query_sql),
                  "\t", EscapeLogField(entry.page_key), "\t",
                  EscapeLogField(entry.request_string), "\t",
                  entry.timestamp, "\n");
  }
  return out;
}

Result<QiUrlMap> QiUrlMap::Deserialize(const std::string& text) {
  QiUrlMap map;  // Local until returned: no locking needed.
  for (const std::string& line : StrSplit(text, '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> fields = StrSplit(line, '\t');
    if (fields.size() != 6 || fields[0] != "M") {
      return Status::ParseError(StrCat("malformed QI/URL map line: ", line));
    }
    // IDs restore verbatim (strictly parsed — a silently coerced 0 would
    // shadow every consumer cursor). Re-numbering them densely, as an
    // earlier version did, invisibly invalidated consumers' ReadSince
    // cursors: a cursor taken against the old numbering could replay
    // already-consumed rows or, worse, skip never-seen ones.
    Result<uint64_t> id = ParseUint64(fields[1]);
    if (!id.ok() || *id == 0) {
      return Status::ParseError(StrCat("bad QI/URL map row id: ", line));
    }
    QiUrlEntry entry;
    entry.id = *id;
    entry.query_sql = UnescapeLogField(fields[2]);
    entry.page_key = UnescapeLogField(fields[3]);
    entry.request_string = UnescapeLogField(fields[4]);
    entry.timestamp = std::strtoll(fields[5].c_str(), nullptr, 10);
    auto pair_key = std::make_pair(entry.query_sql, entry.page_key);
    if (!map.entries_.emplace(*id, entry).second ||
        !map.pair_index_.emplace(pair_key, *id).second) {
      return Status::ParseError(
          StrCat("duplicate QI/URL map row: ", line));
    }
    map.by_query_[entry.query_sql].insert(entry.page_key);
    map.by_page_[entry.page_key].insert(entry.query_sql);
    map.next_id_ = std::max(map.next_id_, *id + 1);
  }
  return map;
}

}  // namespace cacheportal::sniffer
