#ifndef CACHEPORTAL_SNIFFER_QIURL_MAP_H_
#define CACHEPORTAL_SNIFFER_QIURL_MAP_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace cacheportal::sniffer {

/// One row of the QI/URL map (Section 2.4): a unique ID, the query
/// instance's SQL text, and the URL (cache key) of the page it produced.
struct QiUrlEntry {
  uint64_t id = 0;
  std::string query_sql;
  std::string page_key;
  std::string request_string;  // For diagnostics / policy discovery.
  Micros timestamp = 0;
};

/// The query-instance-to-URL map, produced by the sniffer and consumed by
/// the invalidator. (query, page) pairs are deduplicated; re-adding an
/// existing pair refreshes its timestamp only.
///
/// Thread-safe: an internal shared_mutex lets the sniffer Add while the
/// invalidator's cycle reads (ReadSince / PagesForQuery / ...) or ejects
/// (RemovePage) — the decoupling that frees the two from lockstep batch
/// coupling. `epoch()` counts row-set mutations (new rows and removals;
/// timestamp refreshes don't count), so a consumer can skip its next
/// incremental scan when the epoch it last observed is unchanged.
class QiUrlMap {
 public:
  QiUrlMap() = default;

  QiUrlMap(const QiUrlMap&) = delete;
  QiUrlMap& operator=(const QiUrlMap&) = delete;
  // Moves exist for Result<QiUrlMap> (Deserialize); they are NOT
  // concurrency-safe — move only before publishing the map to threads.
  QiUrlMap(QiUrlMap&& other) noexcept;
  QiUrlMap& operator=(QiUrlMap&& other) noexcept;

  /// Adds a mapping; returns the row ID (existing ID if deduplicated).
  uint64_t Add(const std::string& query_sql, const std::string& page_key,
               const std::string& request_string, Micros timestamp);

  /// Rows with id > `after_id`, for the invalidator's incremental scan.
  std::vector<QiUrlEntry> ReadSince(uint64_t after_id) const;

  /// Cache keys of all pages built from `query_sql`.
  std::vector<std::string> PagesForQuery(const std::string& query_sql) const;

  /// Number of pages built from `query_sql`, without materializing the
  /// keys — the invalidator asks this once per instance per cycle, so it
  /// must not copy.
  size_t NumPagesForQuery(const std::string& query_sql) const;

  /// Query instances used to build page `page_key`.
  std::vector<std::string> QueriesForPage(const std::string& page_key) const;

  /// Drops all rows for `page_key` (the page left the cache). Returns the
  /// number of rows removed.
  size_t RemovePage(const std::string& page_key);

  /// Distinct query instances present.
  size_t NumQueries() const;
  /// Distinct pages present.
  size_t NumPages() const;
  size_t size() const;

  uint64_t LastId() const;

  /// Row-set mutation counter: bumped by every Add that creates a row
  /// and every RemovePage that removes one. Equal epochs across two
  /// observations mean no rows appeared or disappeared in between.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Removal-only counter: bumped by every RemovePage that removes at
  /// least one row, never by Add. A query's page count can only DROP
  /// through a removal, so a consumer that swept for page-less queries
  /// at removal epoch E needs no re-sweep while the epoch stays E.
  uint64_t removals_epoch() const {
    return removals_epoch_.load(std::memory_order_acquire);
  }

  /// Serializes all rows to the sniffer's line format (see log_io.h); the
  /// invalidator machine can persist its view of the map across restarts.
  std::string Serialize() const;

  /// Rebuilds a map from Serialize() output. Row IDs and the ID counter
  /// are preserved, so a consumer's ReadSince cursor taken against the
  /// serialized map stays valid against the restored one: rows it had
  /// consumed stay consumed, rows it hadn't are still above the cursor.
  static Result<QiUrlMap> Deserialize(const std::string& text);

 private:
  mutable std::shared_mutex mu_;
  std::atomic<uint64_t> epoch_{0};
  std::atomic<uint64_t> removals_epoch_{0};
  // id -> entry, ordered for ReadSince.
  std::map<uint64_t, QiUrlEntry> entries_;
  // (query, page) -> id for dedup.
  std::map<std::pair<std::string, std::string>, uint64_t> pair_index_;
  std::map<std::string, std::set<std::string>> by_query_;  // query -> pages.
  std::map<std::string, std::set<std::string>> by_page_;   // page -> queries.
  uint64_t next_id_ = 1;
};

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_QIURL_MAP_H_
