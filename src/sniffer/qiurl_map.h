#ifndef CACHEPORTAL_SNIFFER_QIURL_MAP_H_
#define CACHEPORTAL_SNIFFER_QIURL_MAP_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"

namespace cacheportal::sniffer {

/// One row of the QI/URL map (Section 2.4): a unique ID, the query
/// instance's SQL text, and the URL (cache key) of the page it produced.
struct QiUrlEntry {
  uint64_t id = 0;
  std::string query_sql;
  std::string page_key;
  std::string request_string;  // For diagnostics / policy discovery.
  Micros timestamp = 0;
};

/// The query-instance-to-URL map, produced by the sniffer and consumed by
/// the invalidator. (query, page) pairs are deduplicated; re-adding an
/// existing pair refreshes its timestamp only.
class QiUrlMap {
 public:
  QiUrlMap() = default;

  QiUrlMap(const QiUrlMap&) = delete;
  QiUrlMap& operator=(const QiUrlMap&) = delete;
  QiUrlMap(QiUrlMap&&) = default;
  QiUrlMap& operator=(QiUrlMap&&) = default;

  /// Adds a mapping; returns the row ID (existing ID if deduplicated).
  uint64_t Add(const std::string& query_sql, const std::string& page_key,
               const std::string& request_string, Micros timestamp);

  /// Rows with id > `after_id`, for the invalidator's incremental scan.
  std::vector<QiUrlEntry> ReadSince(uint64_t after_id) const;

  /// Cache keys of all pages built from `query_sql`.
  std::vector<std::string> PagesForQuery(const std::string& query_sql) const;

  /// Number of pages built from `query_sql`, without materializing the
  /// keys — the invalidator asks this once per instance per cycle, so it
  /// must not copy.
  size_t NumPagesForQuery(const std::string& query_sql) const;

  /// Query instances used to build page `page_key`.
  std::vector<std::string> QueriesForPage(const std::string& page_key) const;

  /// Drops all rows for `page_key` (the page left the cache). Returns the
  /// number of rows removed.
  size_t RemovePage(const std::string& page_key);

  /// Distinct query instances present.
  size_t NumQueries() const { return by_query_.size(); }
  /// Distinct pages present.
  size_t NumPages() const { return by_page_.size(); }
  size_t size() const { return entries_.size(); }

  uint64_t LastId() const { return next_id_ - 1; }

  /// Serializes all rows to the sniffer's line format (see log_io.h); the
  /// invalidator machine can persist its view of the map across restarts.
  std::string Serialize() const;

  /// Rebuilds a map from Serialize() output. Row IDs are reassigned
  /// densely (consumers must reset their read cursors after a restore).
  static Result<QiUrlMap> Deserialize(const std::string& text);

 private:
  // id -> entry, ordered for ReadSince.
  std::map<uint64_t, QiUrlEntry> entries_;
  // (query, page) -> id for dedup.
  std::map<std::pair<std::string, std::string>, uint64_t> pair_index_;
  std::map<std::string, std::set<std::string>> by_query_;  // query -> pages.
  std::map<std::string, std::set<std::string>> by_page_;   // page -> queries.
  uint64_t next_id_ = 1;
};

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_QIURL_MAP_H_
