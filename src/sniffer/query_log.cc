#include "sniffer/query_log.h"

#include <cstddef>

namespace cacheportal::sniffer {

uint64_t QueryLog::Append(const std::string& sql, bool is_select,
                          Micros receive_time, Micros delivery_time) {
  QueryLogEntry entry;
  entry.id = next_id_++;
  entry.sql = sql;
  entry.is_select = is_select;
  entry.receive_time = receive_time;
  entry.delivery_time = delivery_time;
  entries_.push_back(std::move(entry));
  return entries_.back().id;
}

std::vector<QueryLogEntry> QueryLog::ReadSince(uint64_t after_id) const {
  std::vector<QueryLogEntry> out;
  if (after_id >= entries_.size()) return out;
  out.assign(entries_.begin() + static_cast<ptrdiff_t>(after_id),
             entries_.end());
  return out;
}

}  // namespace cacheportal::sniffer
