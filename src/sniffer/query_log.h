#ifndef CACHEPORTAL_SNIFFER_QUERY_LOG_H_
#define CACHEPORTAL_SNIFFER_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"

namespace cacheportal::sniffer {

/// One record of the query instance request/delivery log (Section 3.2):
/// the query string plus receive and result-delivery timestamps, captured
/// by the JDBC wrapper.
struct QueryLogEntry {
  uint64_t id = 0;
  std::string sql;
  bool is_select = true;
  Micros receive_time = 0;
  Micros delivery_time = 0;
};

/// Append-only query log.
class QueryLog {
 public:
  QueryLog() = default;

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Appends a completed query record; returns its ID.
  uint64_t Append(const std::string& sql, bool is_select, Micros receive_time,
                  Micros delivery_time);

  const std::vector<QueryLogEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// Entries with id > `after_id`.
  std::vector<QueryLogEntry> ReadSince(uint64_t after_id) const;

 private:
  std::vector<QueryLogEntry> entries_;
  uint64_t next_id_ = 1;
};

}  // namespace cacheportal::sniffer

#endif  // CACHEPORTAL_SNIFFER_QUERY_LOG_H_
