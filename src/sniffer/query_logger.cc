#include "sniffer/query_logger.h"

#include "common/strings.h"

namespace cacheportal::sniffer {

namespace {

/// Connection decorator that timestamps and records each statement.
class LoggingConnection : public server::Connection {
 public:
  LoggingConnection(server::Connection* inner,
                    std::unique_ptr<server::Connection> owned, QueryLog* log,
                    const Clock* clock)
      : inner_(inner), owned_(std::move(owned)), log_(log), clock_(clock) {}

  Result<db::QueryResult> ExecuteQuery(const std::string& sql) override {
    Micros receive = clock_->NowMicros();
    Result<db::QueryResult> result = inner_->ExecuteQuery(sql);
    log_->Append(sql, /*is_select=*/true, receive, clock_->NowMicros());
    return result;
  }

  Result<int64_t> ExecuteUpdate(const std::string& sql) override {
    Micros receive = clock_->NowMicros();
    Result<int64_t> result = inner_->ExecuteUpdate(sql);
    log_->Append(sql, /*is_select=*/false, receive, clock_->NowMicros());
    return result;
  }

 private:
  server::Connection* inner_;
  std::unique_ptr<server::Connection> owned_;  // Set when we own inner.
  QueryLog* log_;
  const Clock* clock_;
};

}  // namespace

bool QueryLoggingDriver::AcceptsUrl(const std::string& url) const {
  if (!StartsWith(url, kUrlPrefix)) return false;
  return inner_->AcceptsUrl(url.substr(sizeof(kUrlPrefix) - 1));
}

Result<std::unique_ptr<server::Connection>> QueryLoggingDriver::Connect(
    const std::string& url) {
  if (!StartsWith(url, kUrlPrefix)) {
    return Status::InvalidArgument(StrCat("unsupported URL ", url));
  }
  std::string inner_url = url.substr(sizeof(kUrlPrefix) - 1);
  CACHEPORTAL_ASSIGN_OR_RETURN(std::unique_ptr<server::Connection> inner,
                               inner_->Connect(inner_url));
  server::Connection* raw = inner.get();
  return std::unique_ptr<server::Connection>(std::make_unique<LoggingConnection>(
      raw, std::move(inner), log_, clock_));
}

std::unique_ptr<server::Connection> QueryLoggingDriver::WrapConnection(
    server::Connection* inner) const {
  return std::make_unique<LoggingConnection>(inner, nullptr, log_, clock_);
}

}  // namespace cacheportal::sniffer
